//! Resource allocation planning (§4.3).
//!
//! Given an experiment specification, fitted model/cloud profiles (via the
//! [`Simulator`](rb_sim::Simulator)), and a time constraint, a planner
//! produces an [`AllocationPlan`](rb_sim::AllocationPlan) predicted to be
//! feasible and cheap. Three planners are provided, matching the paper's
//! evaluated policies:
//!
//! * [`static_planner`] — the *static* baseline: the cost-optimal
//!   fixed-size cluster that meets the deadline (§3.2),
//! * [`greedy`] — *RubberBand*: iterative-greedy descent from (multiples
//!   of) the static optimum, decrementing one stage at a time along the
//!   fair ladder and selecting by cost-marginal benefit (Algorithm 2),
//! * [`naive`] — the *naive elastic* baseline: cluster size tracks the
//!   trial count with a fixed per-trial allocation, à la prior systems
//!   (§6.3.1).
//!
//! [`schedule`] renders a plan as a human-readable cluster schedule
//! (Table 3), and [`budget`] solves the dual problem — minimum JCT under
//! a cost budget (§2, footnote 1).

pub(crate) mod beam;
pub mod budget;
pub mod greedy;
pub mod multi;
pub mod naive;
pub mod policy;
pub mod schedule;
pub mod select;
pub mod static_planner;

pub use budget::{plan_min_jct, BudgetPlannerConfig};
pub use greedy::{
    optimize_plan, plan_residual, plan_rubberband, GreedyOutcome, PlannerConfig, ResidualOutcome,
};
pub use multi::{plan_multi_job, MultiJobDiscipline, MultiJobPlan};
pub use naive::plan_naive_elastic;
pub use policy::{plan_with_policy, PlanOutcome, Policy};
pub use schedule::{render_schedule, ScheduleRow};
pub use select::{select_instance_type, InstanceCandidate, SelectionOutcome};
pub use static_planner::plan_static_optimal;
