//! The experiment specification API (Fig. 6).
//!
//! An [`ExperimentSpec`] is the declarative contract between an
//! early-stopping algorithm and RubberBand: an ordered list of stages, each
//! saying how many trials run and how many *additional* iterations each of
//! them executes during that stage. Because the whole structure is known
//! before runtime, resource allocation can be planned offline (§3.1).

use rb_core::{RbError, Result};

/// One stage of an experiment: `num_trials` trials each advance by `iters`
/// iterations, then a synchronization barrier ranks them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpec {
    /// Trials running during this stage.
    pub num_trials: u32,
    /// Additional training iterations each trial performs in this stage.
    pub iters: u64,
}

/// A declarative early-stopping experiment specification.
///
/// # Examples
///
/// The Fig. 6 API shape:
///
/// ```
/// use rb_hpo::spec::ExperimentSpec;
///
/// let spec = ExperimentSpec::empty()
///     .add_stage(81, 1)
///     .add_stage(27, 3)
///     .add_stage(9, 9)
///     .build()
///     .unwrap();
/// assert_eq!(spec.num_stages(), 3);
/// assert_eq!(spec.get_stage(1).unwrap(), (27, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentSpec {
    stages: Vec<StageSpec>,
}

/// Builder returned by [`ExperimentSpec::empty`].
#[derive(Debug, Clone, Default)]
pub struct ExperimentSpecBuilder {
    stages: Vec<StageSpec>,
}

impl ExperimentSpec {
    /// Starts an empty specification (Fig. 6's `EmptyExperimentSpec()`).
    pub fn empty() -> ExperimentSpecBuilder {
        ExperimentSpecBuilder::default()
    }

    /// Builds directly from stage tuples `(num_trials, iters)`.
    ///
    /// # Errors
    ///
    /// See [`ExperimentSpecBuilder::build`].
    pub fn from_stages(stages: &[(u32, u64)]) -> Result<Self> {
        let mut b = ExperimentSpec::empty();
        for &(n, i) in stages {
            b = b.add_stage(n, i);
        }
        b.build()
    }

    /// Number of stages (`|E|` in the paper).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Returns `(num_trials, iters)` for stage `index` (Fig. 6's
    /// `get_stage`).
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidSpec`] when `index` is out of range.
    pub fn get_stage(&self, index: usize) -> Result<(u32, u64)> {
        self.stages
            .get(index)
            .map(|s| (s.num_trials, s.iters))
            .ok_or_else(|| {
                RbError::InvalidSpec(format!(
                    "stage {index} out of range (spec has {})",
                    self.stages.len()
                ))
            })
    }

    /// Iterates over the stages in order.
    pub fn stages(&self) -> impl Iterator<Item = &StageSpec> {
        self.stages.iter()
    }

    /// Trials in the first stage — the number of configurations sampled.
    pub fn initial_trials(&self) -> u32 {
        self.stages[0].num_trials
    }

    /// Total work in trial-iterations: `Σ num_trials · iters`. A measure of
    /// the job's size independent of parallelization.
    pub fn total_trial_iters(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| u64::from(s.num_trials) * s.iters)
            .sum()
    }

    /// Cumulative iterations completed by a surviving trial after each
    /// stage; the final entry is the paper's `R`.
    pub fn cumulative_iters(&self) -> Vec<u64> {
        let mut acc = 0;
        self.stages
            .iter()
            .map(|s| {
                acc += s.iters;
                acc
            })
            .collect()
    }

    /// Iterations the final survivor completes in total (`R`).
    pub fn max_iters(&self) -> u64 {
        self.stages.iter().map(|s| s.iters).sum()
    }

    /// Trials terminated at the end of stage `i` (the bottom performers).
    pub fn terminated_after(&self, i: usize) -> u32 {
        let cur = self.stages[i].num_trials;
        let next = self.stages.get(i + 1).map(|s| s.num_trials).unwrap_or(0);
        cur - next
    }

    /// The residual specification from stage `start` onward: the suffix
    /// an online controller re-plans when stages `0..start` have already
    /// executed. Stage `start` of this spec becomes stage 0 of the
    /// residual; survivors carry their checkpointed progress, so the
    /// residual's iteration counts are unchanged (stage iterations are
    /// *additional* work, not cumulative).
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidSpec`] when `start` is out of range
    /// (there is no residual work once every stage has run).
    pub fn suffix(&self, start: usize) -> Result<ExperimentSpec> {
        if start >= self.stages.len() {
            return Err(RbError::InvalidSpec(format!(
                "suffix start {start} out of range (spec has {} stages)",
                self.stages.len()
            )));
        }
        // A suffix of a valid spec is valid: non-empty by the bound
        // check, and per-stage/monotonicity invariants are inherited.
        Ok(ExperimentSpec {
            stages: self.stages[start..].to_vec(),
        })
    }
}

impl ExperimentSpecBuilder {
    /// Appends a stage (Fig. 6's `add_stage(num_trials=…, iters=…)`).
    pub fn add_stage(mut self, num_trials: u32, iters: u64) -> Self {
        self.stages.push(StageSpec { num_trials, iters });
        self
    }

    /// Validates and builds the specification.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidSpec`] if there are no stages, any stage
    /// has zero trials or zero iterations, or trial counts ever increase
    /// (early stopping only terminates trials; it never adds more, §3.1).
    pub fn build(self) -> Result<ExperimentSpec> {
        if self.stages.is_empty() {
            return Err(RbError::InvalidSpec("no stages".into()));
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.num_trials == 0 {
                return Err(RbError::InvalidSpec(format!("stage {i} has zero trials")));
            }
            if s.iters == 0 {
                return Err(RbError::InvalidSpec(format!(
                    "stage {i} has zero iterations"
                )));
            }
        }
        for w in self.stages.windows(2) {
            if w[1].num_trials > w[0].num_trials {
                return Err(RbError::InvalidSpec(format!(
                    "trial count increases from {} to {}",
                    w[0].num_trials, w[1].num_trials
                )));
            }
        }
        Ok(ExperimentSpec {
            stages: self.stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(32, 1), (10, 3), (3, 9), (1, 37)]).unwrap()
    }

    #[test]
    fn accessors_match_construction() {
        let s = spec();
        assert_eq!(s.num_stages(), 4);
        assert_eq!(s.get_stage(0).unwrap(), (32, 1));
        assert_eq!(s.get_stage(3).unwrap(), (1, 37));
        assert!(s.get_stage(4).is_err());
        assert_eq!(s.initial_trials(), 32);
    }

    #[test]
    fn cumulative_iters_matches_table3_epoch_ranges() {
        // Table 3: epoch boundaries 1, 4, 13, 50.
        assert_eq!(spec().cumulative_iters(), vec![1, 4, 13, 50]);
        assert_eq!(spec().max_iters(), 50);
    }

    #[test]
    fn total_work_sums_stage_products() {
        // 32·1 + 10·3 + 3·9 + 1·37 = 126.
        assert_eq!(spec().total_trial_iters(), 126);
    }

    #[test]
    fn terminated_counts() {
        let s = spec();
        assert_eq!(s.terminated_after(0), 22);
        assert_eq!(s.terminated_after(1), 7);
        assert_eq!(s.terminated_after(2), 2);
        assert_eq!(s.terminated_after(3), 1);
    }

    #[test]
    fn validation_rejects_malformed_specs() {
        assert!(ExperimentSpec::empty().build().is_err());
        assert!(ExperimentSpec::from_stages(&[(0, 5)]).is_err());
        assert!(ExperimentSpec::from_stages(&[(4, 0)]).is_err());
        assert!(ExperimentSpec::from_stages(&[(4, 1), (8, 1)]).is_err());
    }

    #[test]
    fn single_stage_spec_is_valid() {
        // Plain random search (no early stopping) is a one-stage spec.
        let s = ExperimentSpec::from_stages(&[(16, 100)]).unwrap();
        assert_eq!(s.num_stages(), 1);
        assert_eq!(s.total_trial_iters(), 1600);
        assert_eq!(s.terminated_after(0), 16);
    }

    #[test]
    fn suffix_truncates_completed_stages() {
        let s = spec();
        let tail = s.suffix(1).unwrap();
        assert_eq!(tail.num_stages(), 3);
        assert_eq!(tail.get_stage(0).unwrap(), (10, 3));
        assert_eq!(tail.get_stage(2).unwrap(), (1, 37));
        assert_eq!(tail.total_trial_iters(), 10 * 3 + 3 * 9 + 37);
        // Whole spec and single-stage tail are both valid suffixes.
        assert_eq!(s.suffix(0).unwrap(), s);
        assert_eq!(s.suffix(3).unwrap().num_stages(), 1);
        // Past the end there is no residual work.
        assert!(s.suffix(4).is_err());
    }

    #[test]
    fn constant_trial_count_is_allowed() {
        // Stages that keep all trials (η = 1 segments) are legal.
        let s = ExperimentSpec::from_stages(&[(8, 1), (8, 2), (4, 4)]).unwrap();
        assert_eq!(s.terminated_after(0), 0);
    }
}
