//! # rb-serve — the multi-tenant tuning service
//!
//! Everything below `rb-serve` executes **one** tuning job: a spec, a
//! plan, an executor, a bill. Real clusters run many — several teams'
//! sweeps arriving over hours, competing for budget and capacity. This
//! crate is the service layer that interleaves them:
//!
//! * [`TenantSpec`] — a tenant with a fair-share weight and an optional
//!   spending budget.
//! * [`JobRequest`] — one tuning job (a prepared
//!   [`Executor`](rb_exec::Executor) plus sampled configs) arriving at a
//!   virtual time under a tenant.
//! * [`TuningService`] — the admission controller + scheduler. It runs
//!   all jobs in **one** discrete-event loop by exploiting the
//!   steppable executor: each job is an
//!   [`ExecutorCore`](rb_exec::ExecutorCore), and the service always
//!   steps the core whose virtual clock is furthest behind. Queued jobs
//!   dispatch in fair-share order (lowest spend ÷ weight first);
//!   arrivals are admitted, queued, or rejected with a typed reason.
//! * A shared elastic [`InstancePool`](rb_cloud::InstancePool)
//!   (optional): capacity one job releases at a barrier is handed to
//!   another job instead of terminated, saving the per-instance
//!   minimum-charge premium, the provisioning + init latency, and the
//!   dataset re-ingress. The savings are surfaced in
//!   [`ServeReport::net_cost`] and the pool's
//!   [`PoolStats`](rb_cloud::PoolStats).
//! * [`ServeReport`] — per-job outcomes, per-tenant spend, queue-wait
//!   distribution, pool economics, and a byte-stable [`ServeReport::render`]
//!   used by the seeded `ext-serve` verification sweep.
//!
//! Determinism carries through: every executor derives its noise from
//! its own seed, the scheduler breaks every tie by (time, job id), and
//! the pool hands instances over in release order — so a workload
//! replayed from the same seed produces the same `ServeReport`
//! byte-for-byte, regardless of planner thread count.

pub mod report;
pub mod service;
pub mod tenant;

pub use report::{JobOutcome, RejectReason, RejectedJob, ServeReport, TenantUsage};
pub use service::{ServeOptions, TuningService};
pub use tenant::{JobRequest, TenantSpec};
