//! The training substrate: synthetic models that RubberBand tunes.
//!
//! The original system trains PyTorch models on V100 clusters; RubberBand
//! itself only interacts with training through a narrow interface — start a
//! trial, advance it by some iterations, read back an intermediate metric,
//! checkpoint/restore it (§3, §5). This crate implements that interface
//! over an analytic substrate:
//!
//! * [`dataset`] — dataset descriptors (sample counts drive epoch
//!   accounting; sizes drive ingress pricing, Fig. 10),
//! * [`task`] — a learning-curve model with a hyperparameter response
//!   surface, so early-stopping decisions rank configurations meaningfully
//!   and final accuracies land in realistic ranges (Table 2),
//! * [`trial`] — the trial state machine (pending → running ⇄ paused →
//!   completed/terminated) and metric history,
//! * [`checkpoint`] — the checkpoint store standing in for Ray's shared
//!   object store, with real byte-level serialization so migration costs
//!   are proportional to actual state size.

pub mod checkpoint;
pub mod dataset;
pub mod task;
pub mod trial;

pub use checkpoint::{Checkpoint, CheckpointStore, VerifiedFetch};
pub use dataset::Dataset;
pub use task::TaskModel;
pub use trial::{Trial, TrialStatus};
