//! The reproduction harness: one function per figure/table of the paper's
//! evaluation (§6), shared by the `repro` binary and the test suite.
//!
//! Every experiment returns structured rows (so tests can assert the
//! *shape* of each result) and can render itself as the text table the
//! binary prints. Paper parameters are the defaults; tests may scale the
//! workloads down.

pub mod adapt;
pub mod chaos;
pub mod common;
pub mod csv;
pub mod ext;
pub mod figures;
pub mod fleet;
pub mod serve;
pub mod tables;
pub mod trace;

pub use common::{fig_cloud, policy_prediction, synthetic_rn50};
