//! The DAG-based execution model and Monte-Carlo simulator (§4.2).
//!
//! RubberBand models the execution of a hyperparameter tuning job over a
//! resource allocation plan as a directed acyclic graph of tasks:
//!
//! * `SCALE` — provision instances from the provider,
//! * `INIT_INSTANCE` — initialize an instance after hand-over,
//! * `TRAIN` — train one trial for a number of iterations on an allocation,
//! * `SYNC` — the end-of-stage barrier that ranks trials.
//!
//! Each node carries a latency distribution parameterized by the fitted
//! [`ModelProfile`](rb_profile::ModelProfile) and
//! [`CloudProfile`](rb_profile::CloudProfile). Sampling latencies and
//! propagating finish times along edges (Algorithm 1) yields one execution
//! sample; averaging over samples predicts job completion time. Cost is
//! derived per sample under either billing model: per-function bills each
//! TRAIN task for exactly its duration, per-instance bills reconstructed
//! instance lifetimes — including time held idle at barriers behind
//! stragglers — with per-second granularity and a 60 s minimum charge.

#[cfg(feature = "alloc-counter")]
pub mod alloc_counter;
pub(crate) mod arena;
pub mod counters;
pub mod dag;
pub mod plan;
pub mod simulate;

pub use counters::CacheCounters;
pub use dag::{DagNode, DagTemplate, ExecDag, Latency, NodeKind, StageSample};
pub use plan::AllocationPlan;
pub use simulate::{
    EngineConfig, Prediction, RunSample, SimCacheStats, SimConfig, Simulator, StageBreakdown,
    StageQuantiles,
};
