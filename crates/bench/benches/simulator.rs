//! Criterion benches for the execution-model hot path: DAG construction
//! and Monte-Carlo prediction. Planning runs thousands of predictions per
//! job, so this is the planner's unit of work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rb_bench::{fig_cloud, synthetic_rn50};
use rb_core::Prng;
use rb_hpo::ShaParams;
use rb_sim::{AllocationPlan, ExecDag, SimConfig, Simulator};

fn bench_dag_build(c: &mut Criterion) {
    let model = synthetic_rn50(512, 4.0, 1.0);
    let cloud = fig_cloud(15.0);
    let mut group = c.benchmark_group("dag_build");
    for n in [64u32, 256, 512] {
        let spec = ShaParams::new(n, 4, 508).generate().unwrap();
        let plan = AllocationPlan::flat(n, spec.num_stages());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ExecDag::build(&spec, &plan, &model, &cloud, 1.0).unwrap())
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let model = synthetic_rn50(512, 4.0, 1.0);
    let cloud = fig_cloud(15.0);
    let mut group = c.benchmark_group("predict_20_samples");
    for n in [64u32, 256] {
        let spec = ShaParams::new(n, 4, 508).generate().unwrap();
        let plan = AllocationPlan::flat(n, spec.num_stages());
        let sim = Simulator::new(model.clone(), cloud.clone());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| sim.predict(&spec, &plan).unwrap())
        });
    }
    group.finish();
}

fn bench_sample_run(c: &mut Criterion) {
    let model = synthetic_rn50(512, 4.0, 1.0);
    let cloud = fig_cloud(15.0);
    let spec = ShaParams::new(256, 4, 508).generate().unwrap();
    let plan = AllocationPlan::flat(256, spec.num_stages());
    let sim = Simulator::new(model, cloud).with_config(SimConfig::default());
    let dag = ExecDag::build(&spec, &plan, sim.model(), sim.cloud(), 1.0).unwrap();
    let mut rng = Prng::seed_from_u64(1);
    c.bench_function("sample_run_256_trials", |b| {
        b.iter(|| sim.sample_run(&dag, &mut rng))
    });
}

criterion_group!(benches, bench_dag_build, bench_predict, bench_sample_run);
criterion_main!(benches);
