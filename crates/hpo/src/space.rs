//! Search spaces and sampled configurations.
//!
//! A hyperparameter search space is a named collection of one-dimensional
//! distributions ([`Dim`]); sampling it yields a [`Config`] mapping each
//! hyperparameter name to a value. The paper expects the user to provide
//! the space and sampling method (§2); random sampling is implemented here.

use rb_core::{Prng, RbError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// One sampled hyperparameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigValue {
    /// A continuous value (learning rate, weight decay, ...).
    Float(f64),
    /// An integer value (layer count, warm-up steps, ...).
    Int(i64),
    /// A categorical choice (optimizer name, schedule, ...).
    Choice(String),
}

impl ConfigValue {
    /// Returns the float value, converting integers; `None` for choices.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ConfigValue::Float(v) => Some(*v),
            ConfigValue::Int(v) => Some(*v as f64),
            ConfigValue::Choice(_) => None,
        }
    }
}

impl fmt::Display for ConfigValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigValue::Float(v) => write!(f, "{v:.6}"),
            ConfigValue::Int(v) => write!(f, "{v}"),
            ConfigValue::Choice(s) => write!(f, "{s}"),
        }
    }
}

/// One dimension of a search space.
#[derive(Debug, Clone, PartialEq)]
pub enum Dim {
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Log-uniform on `[lo, hi)`; the standard choice for learning rates.
    LogUniform {
        /// Inclusive lower bound (must be positive).
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Uniform on `[lo, hi)` rounded to the nearest multiple of `q`.
    QUniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
        /// Quantum.
        q: f64,
    },
    /// Uniform integer on `[lo, hi]`.
    Int {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Uniform choice over the listed options.
    Choice(Vec<String>),
}

impl Dim {
    fn validate(&self, name: &str) -> Result<()> {
        let bad = |msg: String| Err(RbError::InvalidConfig(format!("dim `{name}`: {msg}")));
        match self {
            Dim::Uniform { lo, hi } | Dim::QUniform { lo, hi, .. } if lo >= hi => {
                bad(format!("empty range [{lo}, {hi})"))
            }
            Dim::QUniform { q, .. } if *q <= 0.0 => bad(format!("non-positive quantum {q}")),
            Dim::LogUniform { lo, hi } if *lo <= 0.0 || lo >= hi => {
                bad(format!("log-uniform needs 0 < lo < hi, got [{lo}, {hi})"))
            }
            Dim::Int { lo, hi } if lo > hi => bad(format!("empty range [{lo}, {hi}]")),
            Dim::Choice(opts) if opts.is_empty() => bad("no options".into()),
            _ => Ok(()),
        }
    }

    fn sample(&self, rng: &mut Prng) -> ConfigValue {
        match self {
            Dim::Uniform { lo, hi } => ConfigValue::Float(rng.uniform(*lo, *hi)),
            Dim::LogUniform { lo, hi } => ConfigValue::Float(rng.uniform(lo.ln(), hi.ln()).exp()),
            Dim::QUniform { lo, hi, q } => {
                let v = rng.uniform(*lo, *hi);
                ConfigValue::Float((v / q).round() * q)
            }
            Dim::Int { lo, hi } => {
                ConfigValue::Int(lo + rng.next_below((hi - lo + 1) as u64) as i64)
            }
            Dim::Choice(opts) => {
                ConfigValue::Choice(opts[rng.next_below(opts.len() as u64) as usize].clone())
            }
        }
    }
}

/// A sampled hyperparameter configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Config {
    values: BTreeMap<String, ConfigValue>,
}

impl Config {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        Config::default()
    }

    /// Sets a value, replacing any existing one.
    pub fn set(&mut self, name: impl Into<String>, value: ConfigValue) {
        self.values.insert(name.into(), value);
    }

    /// Builder-style [`Config::set`] for a float value.
    pub fn with_f64(mut self, name: impl Into<String>, v: f64) -> Self {
        self.set(name, ConfigValue::Float(v));
        self
    }

    /// Returns the raw value, if present.
    pub fn get(&self, name: &str) -> Option<&ConfigValue> {
        self.values.get(name)
    }

    /// Returns a numeric value, if present and numeric.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.values.get(name).and_then(ConfigValue::as_f64)
    }

    /// Returns a numeric value or `default` when absent.
    pub fn get_f64_or(&self, name: &str, default: f64) -> f64 {
        self.get_f64(name).unwrap_or(default)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &ConfigValue)> {
        self.values.iter()
    }

    /// Number of hyperparameters set.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no hyperparameters are set.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

/// A named collection of dimensions with validation and sampling.
///
/// # Examples
///
/// ```
/// use rb_hpo::space::{Dim, SearchSpace};
/// use rb_core::Prng;
///
/// let space = SearchSpace::new()
///     .add("lr", Dim::LogUniform { lo: 1e-4, hi: 1e-1 })
///     .add("momentum", Dim::Uniform { lo: 0.8, hi: 0.99 })
///     .build()
///     .unwrap();
/// let mut rng = Prng::seed_from_u64(0);
/// let cfg = space.sample(&mut rng);
/// assert!(cfg.get_f64("lr").unwrap() < 1e-1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    dims: Vec<(String, Dim)>,
}

/// Builder for [`SearchSpace`].
#[derive(Debug, Clone, Default)]
pub struct SearchSpaceBuilder {
    dims: Vec<(String, Dim)>,
}

impl SearchSpace {
    /// Starts building a space.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> SearchSpaceBuilder {
        SearchSpaceBuilder::default()
    }

    /// Samples one configuration.
    pub fn sample(&self, rng: &mut Prng) -> Config {
        let mut cfg = Config::new();
        for (name, dim) in &self.dims {
            cfg.set(name.clone(), dim.sample(rng));
        }
        cfg
    }

    /// Samples `n` configurations.
    pub fn sample_n(&self, n: usize, rng: &mut Prng) -> Vec<Config> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The dimension names, in definition order.
    pub fn dim_names(&self) -> Vec<&str> {
        self.dims.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Iterates over `(name, dim)` pairs in definition order.
    pub fn dims(&self) -> impl Iterator<Item = (&str, &Dim)> {
        self.dims.iter().map(|(n, d)| (n.as_str(), d))
    }
}

impl SearchSpaceBuilder {
    /// Adds a dimension.
    pub fn add(mut self, name: impl Into<String>, dim: Dim) -> Self {
        self.dims.push((name.into(), dim));
        self
    }

    /// Validates and builds the space.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] on an empty space, duplicate
    /// names, or malformed dimension bounds.
    pub fn build(self) -> Result<SearchSpace> {
        if self.dims.is_empty() {
            return Err(RbError::InvalidConfig(
                "search space has no dimensions".into(),
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for (name, dim) in &self.dims {
            if !seen.insert(name.as_str()) {
                return Err(RbError::InvalidConfig(format!("duplicate dim `{name}`")));
            }
            dim.validate(name)?;
        }
        Ok(SearchSpace { dims: self.dims })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-5, hi: 1e-1 })
            .add("wd", Dim::Uniform { lo: 0.0, hi: 1e-3 })
            .add("layers", Dim::Int { lo: 2, hi: 6 })
            .add(
                "bs_mult",
                Dim::QUniform {
                    lo: 0.5,
                    hi: 4.0,
                    q: 0.5,
                },
            )
            .add("opt", Dim::Choice(vec!["sgd".into(), "adam".into()]))
            .build()
            .unwrap()
    }

    #[test]
    fn samples_respect_bounds() {
        let s = space();
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..1000 {
            let c = s.sample(&mut rng);
            let lr = c.get_f64("lr").unwrap();
            assert!((1e-5..1e-1).contains(&lr));
            let wd = c.get_f64("wd").unwrap();
            assert!((0.0..1e-3).contains(&wd));
            let layers = c.get_f64("layers").unwrap();
            assert!((2.0..=6.0).contains(&layers));
            let bm = c.get_f64("bs_mult").unwrap();
            assert!((bm / 0.5 - (bm / 0.5).round()).abs() < 1e-9, "quantized");
            match c.get("opt").unwrap() {
                ConfigValue::Choice(o) => assert!(o == "sgd" || o == "adam"),
                other => panic!("expected choice, got {other:?}"),
            }
        }
    }

    #[test]
    fn loguniform_covers_decades() {
        let s = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-4, hi: 1e0 })
            .build()
            .unwrap();
        let mut rng = Prng::seed_from_u64(2);
        let mut decades = [0usize; 4];
        for _ in 0..4000 {
            let lr = s.sample(&mut rng).get_f64("lr").unwrap();
            let d = (-lr.log10()).ceil() as usize; // 1..=4
            decades[d.clamp(1, 4) - 1] += 1;
        }
        // Log-uniform spreads mass roughly evenly over decades.
        for (i, &count) in decades.iter().enumerate() {
            assert!(
                (800..1200).contains(&count),
                "decade {i} got {count} of 4000"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = space();
        let a = s.sample(&mut Prng::seed_from_u64(9));
        let b = s.sample(&mut Prng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn sample_n_returns_distinct_configs() {
        let s = space();
        let mut rng = Prng::seed_from_u64(3);
        let cfgs = s.sample_n(8, &mut rng);
        assert_eq!(cfgs.len(), 8);
        assert_ne!(cfgs[0], cfgs[1]);
    }

    #[test]
    fn builder_rejects_bad_spaces() {
        assert!(SearchSpace::new().build().is_err());
        assert!(SearchSpace::new()
            .add("x", Dim::Uniform { lo: 1.0, hi: 1.0 })
            .build()
            .is_err());
        assert!(SearchSpace::new()
            .add("x", Dim::LogUniform { lo: 0.0, hi: 1.0 })
            .build()
            .is_err());
        assert!(SearchSpace::new()
            .add("x", Dim::Int { lo: 5, hi: 2 })
            .build()
            .is_err());
        assert!(SearchSpace::new()
            .add("x", Dim::Choice(vec![]))
            .build()
            .is_err());
        assert!(SearchSpace::new()
            .add("x", Dim::Uniform { lo: 0.0, hi: 1.0 })
            .add("x", Dim::Uniform { lo: 0.0, hi: 1.0 })
            .build()
            .is_err());
        assert!(SearchSpace::new()
            .add(
                "x",
                Dim::QUniform {
                    lo: 0.0,
                    hi: 1.0,
                    q: 0.0
                }
            )
            .build()
            .is_err());
    }

    #[test]
    fn config_accessors() {
        let mut c = Config::new();
        c.set("lr", ConfigValue::Float(0.1));
        c.set("opt", ConfigValue::Choice("sgd".into()));
        c.set("n", ConfigValue::Int(4));
        assert_eq!(c.get_f64("lr"), Some(0.1));
        assert_eq!(c.get_f64("n"), Some(4.0));
        assert_eq!(c.get_f64("opt"), None);
        assert_eq!(c.get_f64_or("missing", 7.0), 7.0);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        let shown = c.to_string();
        assert!(shown.contains("lr=0.1"));
        assert!(shown.contains("opt=sgd"));
    }

    #[test]
    fn with_f64_builder() {
        let c = Config::new().with_f64("lr", 0.05);
        assert_eq!(c.get_f64("lr"), Some(0.05));
    }
}
