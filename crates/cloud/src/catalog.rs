//! The instance-type catalog.
//!
//! Prices mirror the AWS EC2 us-west-2 GPU offerings the paper evaluates on
//! (p3.2xlarge ≈ $3/h with 1 GPU, p3.16xlarge ≈ $24/h with 8 GPUs, §4.1;
//! p3.16xlarge spot ≈ $7.50/h, §6.2). The paper treats the price of an
//! instance as constant over a job (§3), which the catalog reproduces.

use rb_core::Cost;

/// Whether instances are billed at the on-demand or spot price.
///
/// Spot instances are cheaper but pre-emptible; the paper notes GPU spot
/// prices show negligible variance over long periods, so both tiers are
/// modelled as fixed prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PricingTier {
    /// Uninterruptible capacity at the list price.
    #[default]
    OnDemand,
    /// Pre-emptible capacity at the (much lower) spot price.
    Spot,
}

/// A cloud machine shape: GPU count, bandwidths, and hourly prices.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceType {
    /// Provider SKU, e.g. `"p3.8xlarge"`.
    pub name: &'static str,
    /// Number of GPUs on the instance — the allocable unit of compute.
    pub gpus: u32,
    /// Number of vCPUs (used only for descriptive output).
    pub vcpus: u32,
    /// Accelerator model, e.g. `"V100"`.
    pub gpu_model: &'static str,
    /// On-demand price per instance-hour.
    pub on_demand_hourly: Cost,
    /// Spot price per instance-hour.
    pub spot_hourly: Cost,
    /// Effective intra-node GPU interconnect bandwidth (GB/s per link,
    /// NVLink class). Governs all-reduce time for colocated workers.
    pub intra_node_bw_gbps: f64,
    /// Network bandwidth to other instances (GB/s). Governs all-reduce time
    /// for scattered workers — the quantity the placement controller exists
    /// to avoid paying (§2.1).
    pub inter_node_bw_gbps: f64,
}

impl InstanceType {
    /// Returns the hourly price under the given tier.
    pub fn hourly_price(&self, tier: PricingTier) -> Cost {
        match tier {
            PricingTier::OnDemand => self.on_demand_hourly,
            PricingTier::Spot => self.spot_hourly,
        }
    }

    /// Returns the hourly price of a single GPU's share of the instance.
    ///
    /// Per-function billing charges for exactly the resources a function
    /// uses; a k-GPU function on this instance type costs `k` GPU-shares.
    pub fn per_gpu_hourly(&self, tier: PricingTier) -> Cost {
        self.hourly_price(tier) / u64::from(self.gpus.max(1))
    }
}

/// AWS p3.2xlarge: 1× V100, the paper's ~$3/h single-GPU reference (§4.1).
pub const P3_2XLARGE: InstanceType = InstanceType {
    name: "p3.2xlarge",
    gpus: 1,
    vcpus: 8,
    gpu_model: "V100",
    on_demand_hourly: Cost::from_micros(3_060_000),
    spot_hourly: Cost::from_micros(918_000),
    intra_node_bw_gbps: 25.0,
    inter_node_bw_gbps: 1.25,
};

/// AWS p3.8xlarge: 4× V100 — the worker instance for most paper experiments.
pub const P3_8XLARGE: InstanceType = InstanceType {
    name: "p3.8xlarge",
    gpus: 4,
    vcpus: 32,
    gpu_model: "V100",
    on_demand_hourly: Cost::from_micros(12_240_000),
    spot_hourly: Cost::from_micros(3_672_000),
    intra_node_bw_gbps: 25.0,
    inter_node_bw_gbps: 1.25,
};

/// AWS p3.16xlarge: 8× V100; spot price $7.50/h as quoted in §6.2.
pub const P3_16XLARGE: InstanceType = InstanceType {
    name: "p3.16xlarge",
    gpus: 8,
    vcpus: 64,
    gpu_model: "V100",
    on_demand_hourly: Cost::from_micros(24_480_000),
    spot_hourly: Cost::from_micros(7_500_000),
    intra_node_bw_gbps: 25.0,
    inter_node_bw_gbps: 3.125,
};

/// AWS r5.4xlarge: the CPU-only head node hosting the driver and checkpoint
/// store. The paper ignores its negligible cost; we keep it for completeness.
pub const R5_4XLARGE: InstanceType = InstanceType {
    name: "r5.4xlarge",
    gpus: 0,
    vcpus: 16,
    gpu_model: "none",
    on_demand_hourly: Cost::from_micros(1_008_000),
    spot_hourly: Cost::from_micros(302_400),
    intra_node_bw_gbps: 0.0,
    inter_node_bw_gbps: 1.25,
};

/// AWS g4dn.12xlarge: 4× T4, a cheaper GPU shape useful in examples.
pub const G4DN_12XLARGE: InstanceType = InstanceType {
    name: "g4dn.12xlarge",
    gpus: 4,
    vcpus: 48,
    gpu_model: "T4",
    on_demand_hourly: Cost::from_micros(3_912_000),
    spot_hourly: Cost::from_micros(1_173_600),
    intra_node_bw_gbps: 8.0,
    inter_node_bw_gbps: 6.25,
};

/// All catalog entries.
pub const CATALOG: &[InstanceType] = &[
    P3_2XLARGE,
    P3_8XLARGE,
    P3_16XLARGE,
    R5_4XLARGE,
    G4DN_12XLARGE,
];

/// Looks up an instance type by SKU name.
///
/// # Examples
///
/// ```
/// use rb_cloud::catalog::lookup;
/// assert_eq!(lookup("p3.8xlarge").unwrap().gpus, 4);
/// assert!(lookup("m1.tiny").is_none());
/// ```
pub fn lookup(name: &str) -> Option<&'static InstanceType> {
    CATALOG.iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_prices_match_paper_quotes() {
        // §4.1: p3.2xlarge ~ $3/h, p3.16xlarge ~ $24/h.
        assert!((P3_2XLARGE.on_demand_hourly.as_dollars() - 3.06).abs() < 1e-9);
        assert!((P3_16XLARGE.on_demand_hourly.as_dollars() - 24.48).abs() < 1e-9);
        // §6.2: p3.16xlarge at $7.50/h (spot).
        assert!((P3_16XLARGE.spot_hourly.as_dollars() - 7.50).abs() < 1e-9);
    }

    #[test]
    fn per_gpu_price_divides_instance_price() {
        let per_gpu = P3_8XLARGE.per_gpu_hourly(PricingTier::OnDemand);
        assert_eq!(per_gpu * 4, P3_8XLARGE.on_demand_hourly);
    }

    #[test]
    fn per_gpu_price_on_cpu_instance_does_not_divide_by_zero() {
        assert_eq!(
            R5_4XLARGE.per_gpu_hourly(PricingTier::OnDemand),
            R5_4XLARGE.on_demand_hourly
        );
    }

    #[test]
    fn lookup_finds_all_entries() {
        for t in CATALOG {
            assert_eq!(lookup(t.name).unwrap(), t);
        }
        assert!(lookup("nonexistent").is_none());
    }

    #[test]
    fn spot_is_cheaper_than_on_demand() {
        for t in CATALOG {
            assert!(t.spot_hourly <= t.on_demand_hourly, "{}", t.name);
        }
    }

    #[test]
    fn tier_selection() {
        assert_eq!(
            P3_8XLARGE.hourly_price(PricingTier::Spot),
            P3_8XLARGE.spot_hourly
        );
        assert_eq!(
            P3_8XLARGE.hourly_price(PricingTier::OnDemand),
            P3_8XLARGE.on_demand_hourly
        );
    }
}
