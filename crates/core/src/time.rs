//! Virtual time for the discrete-event simulators.
//!
//! All RubberBand components operate on simulated wall-clock time with
//! millisecond resolution. [`SimTime`] is an absolute instant (milliseconds
//! since the start of the experiment) and [`SimDuration`] is a span between
//! two instants. Both are thin wrappers over `u64` so arithmetic is exact and
//! ordering is total — properties the event queue and the critical-path
//! simulator rely on.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in milliseconds since time zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ms` milliseconds after time zero.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant `s` seconds after time zero.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Returns the instant as milliseconds since time zero.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since time zero.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero if
    /// `earlier` is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Returns `self + rhs`, saturating at the representable maximum
    /// instead of overflowing. Use wherever the duration comes from
    /// untrusted arithmetic (e.g. exponential backoff with extreme
    /// user-supplied bounds).
    pub const fn saturating_add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Creates a duration of `m` minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Creates a duration of `h` hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// millisecond and saturating negative values at zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1000.0).round() as u64)
    }

    /// Returns the duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns the duration as fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Returns the duration as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Returns `self - other`, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative float, rounding to the
    /// nearest millisecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "duration scale factor must be non-negative");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    /// Formats as `HH:MM:SS.mmm`, omitting hours when zero.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1000;
        let total_secs = self.0 / 1000;
        let s = total_secs % 60;
        let m = (total_secs / 60) % 60;
        let h = total_secs / 3600;
        if h > 0 {
            write!(f, "{h}:{m:02}:{s:02}.{ms:03}")
        } else {
            write!(f, "{m:02}:{s:02}.{ms:03}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(2500);
        assert_eq!((t + d).as_millis(), 12_500);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_hours(2), SimDuration::from_mins(120));
        assert_eq!(SimDuration::from_mins(3), SimDuration::from_secs(180));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
    }

    #[test]
    fn from_secs_f64_rounds_and_saturates() {
        assert_eq!(SimDuration::from_secs_f64(1.2345).as_millis(), 1235);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2500));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_millis(61_500).to_string(), "01:01.500");
        assert_eq!(
            SimDuration::from_secs(3_600 + 62).to_string(),
            "1:01:02.000"
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_secs(1);
        let tb = SimTime::from_secs(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }

    #[test]
    fn saturating_sub_duration() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_secs(1));
    }
}
