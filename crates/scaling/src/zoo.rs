//! The model zoo: performance descriptors for the architectures the paper
//! evaluates.
//!
//! Each entry records what the communication-aware scaling model needs:
//! parameter count (gradient volume per all-reduce), single-V100 training
//! throughput, and per-GPU batch capacity (for gradient accumulation under
//! strong scaling, §3). Throughputs are representative published numbers
//! for fp32 training on V100-class hardware; the *relative* shapes, not the
//! absolute values, are what the reproduction depends on.

/// A deep-learning model architecture's performance descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArch {
    /// Human-readable name, e.g. `"ResNet-50"`.
    pub name: &'static str,
    /// Trainable parameters, in millions.
    pub params_millions: f64,
    /// Single-GPU training throughput in samples/second (V100, fp32).
    pub per_gpu_samples_per_sec: f64,
    /// Largest per-GPU micro-batch that fits in accelerator memory. Larger
    /// effective batches on a single GPU use gradient accumulation.
    pub max_samples_per_gpu: u32,
    /// Fixed per-iteration overhead in seconds (kernel launches, data
    /// loading, Python driver) independent of batch and GPU count.
    pub fixed_overhead_secs: f64,
    /// Extra overhead per gradient-accumulation micro-step, in seconds.
    pub microstep_overhead_secs: f64,
}

impl ModelArch {
    /// Gradient volume exchanged per all-reduce, in bytes (fp32 gradients).
    pub fn grad_bytes(&self) -> f64 {
        self.params_millions * 1e6 * 4.0
    }
}

/// ResNet-50 v1.5 (He et al.): 25.6 M parameters.
pub const RESNET50: ModelArch = ModelArch {
    name: "ResNet-50",
    params_millions: 25.6,
    per_gpu_samples_per_sec: 750.0,
    max_samples_per_gpu: 256,
    fixed_overhead_secs: 0.010,
    microstep_overhead_secs: 0.004,
};

/// ResNet-101: 44.5 M parameters.
pub const RESNET101: ModelArch = ModelArch {
    name: "ResNet-101",
    params_millions: 44.5,
    per_gpu_samples_per_sec: 430.0,
    max_samples_per_gpu: 192,
    fixed_overhead_secs: 0.012,
    microstep_overhead_secs: 0.005,
};

/// ResNet-152: 60.2 M parameters.
pub const RESNET152: ModelArch = ModelArch {
    name: "ResNet-152",
    params_millions: 60.2,
    per_gpu_samples_per_sec: 300.0,
    max_samples_per_gpu: 128,
    fixed_overhead_secs: 0.014,
    microstep_overhead_secs: 0.006,
};

/// BERT-base (Devlin et al.), sequence length 128: 110 M parameters.
/// Communication-heavy relative to its compute, so it scales worst — the
/// bottom curve of Fig. 4.
pub const BERT_BASE: ModelArch = ModelArch {
    name: "BERT-base",
    params_millions: 110.0,
    per_gpu_samples_per_sec: 210.0,
    max_samples_per_gpu: 64,
    fixed_overhead_secs: 0.015,
    microstep_overhead_secs: 0.006,
};

/// VGG-16: few layers but 138 M parameters, the classic poor scaler.
pub const VGG16: ModelArch = ModelArch {
    name: "VGG-16",
    params_millions: 138.0,
    per_gpu_samples_per_sec: 330.0,
    max_samples_per_gpu: 128,
    fixed_overhead_secs: 0.010,
    microstep_overhead_secs: 0.004,
};

/// DenseNet-121: only 8 M parameters — the best scaler in the zoo (tiny
/// gradients relative to compute).
pub const DENSENET121: ModelArch = ModelArch {
    name: "DenseNet-121",
    params_millions: 8.0,
    per_gpu_samples_per_sec: 420.0,
    max_samples_per_gpu: 192,
    fixed_overhead_secs: 0.014,
    microstep_overhead_secs: 0.006,
};

/// GPT-2 small (124 M parameters), sequence length 1024: heavy gradients
/// and heavy compute.
pub const GPT2_SMALL: ModelArch = ModelArch {
    name: "GPT-2 small",
    params_millions: 124.0,
    per_gpu_samples_per_sec: 26.0,
    max_samples_per_gpu: 8,
    fixed_overhead_secs: 0.020,
    microstep_overhead_secs: 0.010,
};

/// ViT-B/16 (86 M parameters) at 224×224.
pub const VIT_B16: ModelArch = ModelArch {
    name: "ViT-B/16",
    params_millions: 86.0,
    per_gpu_samples_per_sec: 290.0,
    max_samples_per_gpu: 128,
    fixed_overhead_secs: 0.013,
    microstep_overhead_secs: 0.006,
};

/// All zoo entries, heaviest communicators last.
pub const ZOO: &[ModelArch] = &[
    RESNET50,
    RESNET101,
    RESNET152,
    BERT_BASE,
    VGG16,
    DENSENET121,
    GPT2_SMALL,
    VIT_B16,
];

/// Looks up an architecture by name.
pub fn lookup(name: &str) -> Option<&'static ModelArch> {
    ZOO.iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_bytes_is_four_bytes_per_param() {
        assert!((RESNET50.grad_bytes() - 25.6e6 * 4.0).abs() < 1.0);
    }

    #[test]
    fn zoo_lookup_round_trips() {
        for m in ZOO {
            assert_eq!(lookup(m.name).unwrap(), m);
        }
        assert!(lookup("AlexNet").is_none());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn deeper_resnets_are_slower_per_gpu() {
        assert!(RESNET50.per_gpu_samples_per_sec > RESNET101.per_gpu_samples_per_sec);
        assert!(RESNET101.per_gpu_samples_per_sec > RESNET152.per_gpu_samples_per_sec);
    }

    #[test]
    fn communication_intensity_orders_scaling_quality() {
        use crate::analytic::AnalyticScaling;
        use crate::{PlacementQuality, ScalingModel};
        // Gradient bytes per unit of compute predicts who scales best:
        // DenseNet (tiny gradients) beats VGG (huge gradients) at 8 GPUs.
        let speedup = |arch: &ModelArch| {
            AnalyticScaling::for_arch(arch, 256, 8).speedup(8, PlacementQuality::Packed)
        };
        assert!(speedup(&DENSENET121) > speedup(&RESNET50));
        assert!(speedup(&RESNET50) > speedup(&VGG16));
        // GPT-2's compute per sample is so large that even 124M-parameter
        // gradients amortize.
        assert!(speedup(&GPT2_SMALL) > speedup(&VGG16));
    }
}
