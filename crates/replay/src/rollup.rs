//! Fleet analytics: aggregate many runs' manifests into one
//! byte-stable report.
//!
//! A *run manifest* is a one-object JSON file describing a single
//! executed run — which sweep produced it, its scenario label, the
//! tenant it billed to (multi-tenant sweeps only), and its headline
//! numbers. The `repro fleet` artifact writes one manifest per run
//! under `repro_out/fleet/<sweep>/`, and the `rollup` binary in this
//! crate walks such a directory and renders cost/JCT/queue-wait
//! distributions with per-scenario and per-tenant breakdowns.
//!
//! Everything here is deterministic: records sort by (sweep, scenario,
//! tenant, cost, jct), distributions use nearest-rank percentiles (no
//! averaging of floats), and money stays in integer micro-dollars until
//! the final exact-decimal rendering.

use crate::json_i64;
use rb_obs::json::{parse_json, write_json_str, Json};
use std::fmt::Write as _;

/// One run's manifest: the unit the fleet rollup aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Sweep that produced the run (e.g. `ext-serve`).
    pub sweep: String,
    /// Scenario label within the sweep (e.g. `uniform-1.50 spot-2.0`).
    pub scenario: String,
    /// Billing tenant, for multi-tenant sweeps.
    pub tenant: Option<String>,
    /// Job completion time in virtual milliseconds.
    pub jct_ms: u64,
    /// Total billed cost in micro-dollars.
    pub cost_micros: i64,
    /// Queue wait before dispatch in virtual milliseconds (0 for
    /// sweeps without an admission queue).
    pub queue_wait_ms: u64,
    /// Faults injected by the chaos layer.
    pub faults: u64,
    /// Provisioning retry rounds.
    pub retries: u64,
    /// Checkpoint fetches that fell back a generation.
    pub fallbacks: u64,
    /// Stages run on degraded capacity.
    pub degraded: u64,
    /// Re-plans the controller applied.
    pub replans: u64,
    /// Spot preemptions absorbed.
    pub preemptions: u64,
    /// Whether pool-aware admission dispatched this run early (0 or 1;
    /// summed per group). Manifests written before the field existed
    /// parse as 0.
    pub pool_admits: u64,
    /// Market/zone switch decisions the controller made — advisory
    /// recommendations in open-advice sweeps, executed fleet drains in
    /// execute-mode sweeps. Manifests written before the field existed
    /// parse as 0.
    pub market_switches: u64,
}

impl RunRecord {
    /// Serializes the manifest as its one-line JSON document (the
    /// inverse of [`parse_run_record`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"sweep\":");
        write_json_str(&mut out, &self.sweep);
        out.push_str(",\"scenario\":");
        write_json_str(&mut out, &self.scenario);
        out.push_str(",\"tenant\":");
        match &self.tenant {
            Some(t) => write_json_str(&mut out, t),
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"jct_ms\":{},\"cost_micros\":{},\"queue_wait_ms\":{},\"faults\":{},\
             \"retries\":{},\"fallbacks\":{},\"degraded\":{},\"replans\":{},\"preemptions\":{},\
             \"pool_admits\":{},\"market_switches\":{}}}",
            self.jct_ms,
            self.cost_micros,
            self.queue_wait_ms,
            self.faults,
            self.retries,
            self.fallbacks,
            self.degraded,
            self.replans,
            self.preemptions,
            self.pool_admits,
            self.market_switches
        );
        out
    }
}

/// Parses one manifest document.
///
/// # Errors
///
/// Describes the first missing or mistyped field.
pub fn parse_run_record(text: &str) -> Result<RunRecord, String> {
    let doc = parse_json(text.trim())?;
    let str_field = |key: &str| -> Result<String, String> {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing or non-string `{key}`"))
    };
    let u64_field = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer `{key}`"))
    };
    Ok(RunRecord {
        sweep: str_field("sweep")?,
        scenario: str_field("scenario")?,
        tenant: match doc.get("tenant") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| "non-string `tenant`".to_owned())?
                    .to_owned(),
            ),
        },
        jct_ms: u64_field("jct_ms")?,
        cost_micros: doc
            .get("cost_micros")
            .and_then(json_i64)
            .ok_or_else(|| "missing or non-integer `cost_micros`".to_owned())?,
        queue_wait_ms: u64_field("queue_wait_ms")?,
        faults: u64_field("faults")?,
        retries: u64_field("retries")?,
        fallbacks: u64_field("fallbacks")?,
        degraded: u64_field("degraded")?,
        replans: u64_field("replans")?,
        preemptions: u64_field("preemptions")?,
        // Absent in manifests written before pool-aware admission
        // existed; treat those as "never admitted from the pool".
        pool_admits: doc.get("pool_admits").and_then(Json::as_u64).unwrap_or(0),
        // Absent in manifests written before market execution existed;
        // treat those as "no switch decisions".
        market_switches: doc
            .get("market_switches")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    })
}

/// Exact dollars with six decimals from integer micro-dollars.
fn fmt_micros(micros: i64) -> String {
    let sign = if micros < 0 { "-" } else { "" };
    let abs = micros.unsigned_abs();
    format!("{sign}{}.{:06}", abs / 1_000_000, abs % 1_000_000)
}

/// Seconds with three decimals from exact milliseconds.
fn fmt_ms_as_secs(ms: u64) -> String {
    format!("{}.{:03}", ms / 1000, ms % 1000)
}

/// Nearest-rank percentile over an ascending-sorted slice (p in 0..=1).
fn percentile<T: Copy>(sorted: &[T], p: f64) -> T {
    debug_assert!(!sorted.is_empty());
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// min/p50/p90/max of an integer distribution, rendered by `fmt`.
fn dist_line<T: Copy + Ord>(values: &mut [T], fmt: impl Fn(T) -> String) -> String {
    values.sort_unstable();
    format!(
        "min {} p50 {} p90 {} max {}",
        fmt(values[0]),
        fmt(percentile(values, 0.50)),
        fmt(percentile(values, 0.90)),
        fmt(*values.last().expect("non-empty")),
    )
}

struct GroupStats {
    runs: usize,
    cost_total: i64,
    costs: Vec<i64>,
    jcts: Vec<u64>,
    waits: Vec<u64>,
    faults: u64,
    retries: u64,
    fallbacks: u64,
    degraded: u64,
    replans: u64,
    preemptions: u64,
    pool_admits: u64,
    market_switches: u64,
}

impl GroupStats {
    fn collect<'a>(records: impl Iterator<Item = &'a RunRecord>) -> GroupStats {
        let mut g = GroupStats {
            runs: 0,
            cost_total: 0,
            costs: Vec::new(),
            jcts: Vec::new(),
            waits: Vec::new(),
            faults: 0,
            retries: 0,
            fallbacks: 0,
            degraded: 0,
            replans: 0,
            preemptions: 0,
            pool_admits: 0,
            market_switches: 0,
        };
        for r in records {
            g.runs += 1;
            g.cost_total += r.cost_micros;
            g.costs.push(r.cost_micros);
            g.jcts.push(r.jct_ms);
            g.waits.push(r.queue_wait_ms);
            g.faults += r.faults;
            g.retries += r.retries;
            g.fallbacks += r.fallbacks;
            g.degraded += r.degraded;
            g.replans += r.replans;
            g.preemptions += r.preemptions;
            g.pool_admits += r.pool_admits;
            g.market_switches += r.market_switches;
        }
        g
    }

    fn render(&mut self, out: &mut String, indent: &str) {
        let _ = writeln!(
            out,
            "{indent}cost_usd     total {}  {}",
            fmt_micros(self.cost_total),
            dist_line(&mut self.costs, fmt_micros)
        );
        let _ = writeln!(
            out,
            "{indent}jct_s        {}",
            dist_line(&mut self.jcts, fmt_ms_as_secs)
        );
        let _ = writeln!(
            out,
            "{indent}queue_wait_s {}",
            dist_line(&mut self.waits, fmt_ms_as_secs)
        );
        let _ = writeln!(
            out,
            "{indent}recovery     faults {} retries {} fallbacks {} degraded {} \
             replans {} preemptions {} pool_admits {} market_switches {}",
            self.faults,
            self.retries,
            self.fallbacks,
            self.degraded,
            self.replans,
            self.preemptions,
            self.pool_admits,
            self.market_switches
        );
    }
}

/// Renders the fleet report for `records`: overall totals, then one
/// block per sweep with per-scenario rows, then the per-tenant
/// breakdown across all multi-tenant runs. Byte-stable: records are
/// sorted internally, so input order does not matter.
pub fn render_rollup(records: &[RunRecord]) -> String {
    let mut records: Vec<&RunRecord> = records.iter().collect();
    records.sort_by(|a, b| {
        (&a.sweep, &a.scenario, &a.tenant, a.cost_micros, a.jct_ms).cmp(&(
            &b.sweep,
            &b.scenario,
            &b.tenant,
            b.cost_micros,
            b.jct_ms,
        ))
    });

    let sweeps: Vec<&str> = {
        let mut s: Vec<&str> = records.iter().map(|r| r.sweep.as_str()).collect();
        s.dedup();
        s
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet rollup: {} runs across {} sweeps",
        records.len(),
        sweeps.len()
    );
    if records.is_empty() {
        return out;
    }
    GroupStats::collect(records.iter().copied()).render(&mut out, "  ");

    for sweep in sweeps {
        let in_sweep: Vec<&RunRecord> = records
            .iter()
            .copied()
            .filter(|r| r.sweep == sweep)
            .collect();
        let _ = writeln!(out, "\nsweep {sweep}: {} runs", in_sweep.len());
        GroupStats::collect(in_sweep.iter().copied()).render(&mut out, "  ");
        let mut scenarios: Vec<&str> = in_sweep.iter().map(|r| r.scenario.as_str()).collect();
        scenarios.dedup();
        for scenario in scenarios {
            let mut g =
                GroupStats::collect(in_sweep.iter().copied().filter(|r| r.scenario == scenario));
            g.costs.sort_unstable();
            g.jcts.sort_unstable();
            let _ = writeln!(
                out,
                "  scenario {scenario}: runs {} cost_usd total {} p50 {} jct_s p50 {} \
                 faults {} replans {} preemptions {}",
                g.runs,
                fmt_micros(g.cost_total),
                fmt_micros(percentile(&g.costs, 0.50)),
                fmt_ms_as_secs(percentile(&g.jcts, 0.50)),
                g.faults,
                g.replans,
                g.preemptions
            );
        }
    }

    let mut tenants: Vec<&str> = records.iter().filter_map(|r| r.tenant.as_deref()).collect();
    tenants.sort_unstable();
    tenants.dedup();
    if !tenants.is_empty() {
        let _ = writeln!(out, "\nper-tenant ({} tenants)", tenants.len());
        for tenant in tenants {
            let mut g = GroupStats::collect(
                records
                    .iter()
                    .copied()
                    .filter(|r| r.tenant.as_deref() == Some(tenant)),
            );
            g.costs.sort_unstable();
            g.jcts.sort_unstable();
            g.waits.sort_unstable();
            let _ = writeln!(
                out,
                "  tenant {tenant}: runs {} cost_usd total {} p50 {} jct_s p50 {} \
                 queue_wait_s p50 {}",
                g.runs,
                fmt_micros(g.cost_total),
                fmt_micros(percentile(&g.costs, 0.50)),
                fmt_ms_as_secs(percentile(&g.jcts, 0.50)),
                fmt_ms_as_secs(percentile(&g.waits, 0.50)),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(sweep: &str, scenario: &str, tenant: Option<&str>, cost: i64, jct: u64) -> RunRecord {
        RunRecord {
            sweep: sweep.into(),
            scenario: scenario.into(),
            tenant: tenant.map(str::to_owned),
            jct_ms: jct,
            cost_micros: cost,
            queue_wait_ms: jct / 10,
            faults: 1,
            retries: 0,
            fallbacks: 0,
            degraded: 0,
            replans: 2,
            preemptions: 3,
            pool_admits: 0,
            market_switches: 0,
        }
    }

    #[test]
    fn manifests_round_trip() {
        for r in [
            rec(
                "ext-serve",
                "t2 gap300 pool",
                Some("tenant-0"),
                1_234_567,
                90_000,
            ),
            rec("ext-chaos", "spot-storm", None, -5, 1),
        ] {
            let parsed = parse_run_record(&r.to_json()).expect("parses");
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert!(parse_run_record("{\"sweep\":\"s\"}").is_err());
        assert!(parse_run_record("nope").is_err());
    }

    #[test]
    fn manifests_without_pool_admits_parse_as_zero() {
        // Fleet manifests written before pool-aware admission existed
        // lack the field; they must keep parsing (as "never admitted").
        let mut r = rec("ext-serve", "t2 gap0 pool-on", Some("tenant-0"), 10, 20);
        r.pool_admits = 3;
        let old = r.to_json().replace(",\"pool_admits\":3", "");
        let parsed = parse_run_record(&old).expect("old manifest parses");
        assert_eq!(parsed.pool_admits, 0);
        assert_eq!(parse_run_record(&r.to_json()).expect("round trip"), r);
    }

    #[test]
    fn manifests_without_market_switches_parse_as_zero() {
        // Fleet manifests written before market execution existed lack
        // the field; they must keep parsing (as "no switch decisions").
        let mut r = rec("ext-chaos", "zones-early switch-on", None, 10, 20);
        r.market_switches = 2;
        let old = r.to_json().replace(",\"market_switches\":2", "");
        let parsed = parse_run_record(&old).expect("old manifest parses");
        assert_eq!(parsed.market_switches, 0);
        assert_eq!(parse_run_record(&r.to_json()).expect("round trip"), r);
    }

    #[test]
    fn rollup_is_input_order_invariant_and_stable() {
        let a = rec("ext-adapt", "calm", None, 100, 10);
        let b = rec("ext-adapt", "drift", None, 300, 30);
        let c = rec("ext-serve", "t2", Some("tenant-1"), 200, 20);
        let d = rec("ext-serve", "t2", Some("tenant-0"), 400, 40);
        let fwd = render_rollup(&[a.clone(), b.clone(), c.clone(), d.clone()]);
        let rev = render_rollup(&[d, c, b, a]);
        assert_eq!(fwd, rev);
        assert!(fwd.starts_with("fleet rollup: 4 runs across 2 sweeps"));
        assert!(fwd.contains("sweep ext-adapt: 2 runs"));
        assert!(fwd.contains("scenario calm: runs 1"));
        assert!(fwd.contains("tenant tenant-0: runs 1"));
        assert!(fwd.contains("cost_usd     total 0.001000"), "{fwd}");
    }

    #[test]
    fn empty_fleet_renders_a_header_only() {
        assert_eq!(render_rollup(&[]), "fleet rollup: 0 runs across 0 sweeps\n");
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted = [1u64, 2, 3, 4];
        assert_eq!(percentile(&sorted, 0.5), 2);
        assert_eq!(percentile(&sorted, 0.9), 4);
        assert_eq!(fmt_micros(-1_500_000), "-1.500000");
        assert_eq!(fmt_ms_as_secs(90_123), "90.123");
    }
}
