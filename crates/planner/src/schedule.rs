//! Rendering a plan as a cluster schedule (Table 3).
//!
//! "RubberBand will leverage a given allocation plan to create a cluster
//! resource schedule" — epoch ranges, trials, GPUs per trial, and cluster
//! size per stage.

use rb_hpo::ExperimentSpec;
use rb_sim::AllocationPlan;
use std::fmt;

/// One stage of the rendered schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleRow {
    /// Work-unit (epoch) range `[from, to)` covered by the stage.
    pub epoch_range: (u64, u64),
    /// Trials running.
    pub trials: u32,
    /// GPUs allocated to each trial.
    pub gpus_per_trial: u32,
    /// Instances provisioned.
    pub cluster_size: u32,
}

impl fmt::Display for ScheduleRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>5}-{:<5} {:>6} {:>9} {:>12}",
            self.epoch_range.0,
            self.epoch_range.1,
            self.trials,
            self.gpus_per_trial,
            self.cluster_size
        )
    }
}

/// Renders `plan` for `spec` on instances with `gpus_per_instance` GPUs.
pub fn render_schedule(
    spec: &ExperimentSpec,
    plan: &AllocationPlan,
    gpus_per_instance: u32,
) -> Vec<ScheduleRow> {
    let mut rows = Vec::with_capacity(spec.num_stages());
    let mut epoch = 0u64;
    for (i, stage) in spec.stages().enumerate() {
        let from = epoch;
        epoch += stage.iters;
        rows.push(ScheduleRow {
            epoch_range: (from, epoch),
            trials: stage.num_trials,
            gpus_per_trial: plan.gpus_per_trial(i, spec),
            cluster_size: plan.instances(i, gpus_per_instance),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape() {
        // Table 3 renders SHA(n=32, r=1, R=50, η=3) under the 20-minute
        // RubberBand plan: 32×1, 10×2, 3×4, 1×8 GPUs on p3.8xlarge.
        let spec = ExperimentSpec::from_stages(&[(32, 1), (10, 3), (3, 9), (1, 37)]).unwrap();
        let plan = AllocationPlan::new(vec![32, 20, 12, 8]);
        let rows = render_schedule(&spec, &plan, 4);
        assert_eq!(
            rows,
            vec![
                ScheduleRow {
                    epoch_range: (0, 1),
                    trials: 32,
                    gpus_per_trial: 1,
                    cluster_size: 8
                },
                ScheduleRow {
                    epoch_range: (1, 4),
                    trials: 10,
                    gpus_per_trial: 2,
                    cluster_size: 5
                },
                ScheduleRow {
                    epoch_range: (4, 13),
                    trials: 3,
                    gpus_per_trial: 4,
                    cluster_size: 3
                },
                ScheduleRow {
                    epoch_range: (13, 50),
                    trials: 1,
                    gpus_per_trial: 8,
                    cluster_size: 2
                },
            ]
        );
    }

    #[test]
    fn rows_display_cleanly() {
        let row = ScheduleRow {
            epoch_range: (0, 1),
            trials: 32,
            gpus_per_trial: 1,
            cluster_size: 8,
        };
        let s = row.to_string();
        assert!(s.contains("32"));
        assert!(s.contains('8'));
    }
}
