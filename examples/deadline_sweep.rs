//! Deadline sweep (Table 2): compare static, naive-elastic and RubberBand
//! across time constraints for ResNet-101/CIFAR-10, in prediction and in
//! event-accurate execution.
//!
//! Run with: `cargo run --release --example deadline_sweep`

use rubberband::prelude::*;
use rubberband::rb_cloud::catalog::P3_8XLARGE;
use rubberband::rb_hpo::{Dim, ShaParams};
use rubberband::rb_train::task::resnet101_cifar10;

fn main() {
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate().unwrap();
    let task = resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15));
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .add("weight_decay", Dim::LogUniform { lo: 1e-5, hi: 1e-2 })
        .build()
        .unwrap();

    println!(
        "{:<14} {:>8} {:>11} {:>11} {:>11} {:>11} {:>8}",
        "policy", "deadline", "JCT (sim)", "cost (sim)", "JCT (real)", "cost (real)", "acc"
    );
    for mins in [20u64, 30, 40] {
        let deadline = SimDuration::from_mins(mins);
        for policy in [Policy::Static, Policy::NaiveElastic, Policy::RubberBand] {
            let planned = rubberband::compile_plan_with(
                policy,
                &spec,
                &physics,
                &cloud,
                deadline,
                &PlannerConfig::default(),
            );
            let Ok(out) = planned else {
                println!("{policy:<14} {mins:>7}m   infeasible");
                continue;
            };
            let report = rubberband::execute(&spec, &out.plan, &task, &physics, &cloud, &space, 1);
            match report {
                Ok(r) => println!(
                    "{:<14} {:>7}m {:>11} {:>11} {:>11} {:>11} {:>7.1}%",
                    policy.to_string(),
                    mins,
                    out.prediction.jct.to_string(),
                    out.prediction.cost.to_string(),
                    r.jct.to_string(),
                    r.total_cost().to_string(),
                    r.best_accuracy * 100.0
                ),
                Err(e) => println!(
                    "{:<14} {:>7}m {:>11} {:>11}   execution failed: {e}",
                    policy.to_string(),
                    mins,
                    out.prediction.jct.to_string(),
                    out.prediction.cost.to_string()
                ),
            }
        }
    }
}
