//! Quickstart: the Fig. 6 workflow end to end.
//!
//! Build an SHA experiment spec, profile the model, compile a
//! cost-efficient elastic plan under a deadline, execute it on the
//! simulated cloud, and print the resulting schedule, bill and winner.
//!
//! Run with: `cargo run --release --example quickstart`

use rubberband::prelude::*;
use rubberband::rb_cloud::catalog::P3_8XLARGE;
use rubberband::rb_hpo::{Dim, ShaParams};
use rubberband::rb_planner::render_schedule;
use rubberband::rb_profile::{profile_training, ProfilerConfig};
use rubberband::rb_train::task::resnet101_cifar10;

fn main() {
    // 1. The tuning job: SHA(n=32, r=1, R=50, η=3) — Table 2's workload.
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate().unwrap();
    println!(
        "experiment: {} stages, {} initial trials, survivor trains {} epochs",
        spec.num_stages(),
        spec.initial_trials(),
        spec.max_iters()
    );

    // 2. Profile the model's scaling (the paper's pre-execution step).
    let task = resnet101_cifar10();
    let truth = AnalyticScaling::for_arch(&task.arch, 1024, 4);
    let profiled = profile_training(
        &truth,
        task.steps_per_iter(1024),
        5.0,
        &ProfilerConfig {
            max_gpus: 32,
            ..ProfilerConfig::default()
        },
    )
    .unwrap();
    println!(
        "profiling took {:.0} GPU-seconds ({:.0} s wall)",
        profiled.profiling_gpu_seconds, profiled.profiling_wall_seconds
    );
    let mut model = profiled.profile;
    model.train_startup_secs = 5.0;

    // 3. The target cloud: on-demand p3.8xlarge, 15 s provision + 15 s init.
    let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15));

    // 4. Compile a plan under a 20-minute deadline.
    let deadline = SimDuration::from_mins(20);
    let outcome = rubberband::compile_plan(&spec, &model, &cloud, deadline).unwrap();
    println!("\nplan: {}", outcome.plan);
    println!(
        "predicted: JCT {} at {}",
        outcome.prediction.jct, outcome.prediction.cost
    );
    println!("\ncluster schedule (cf. paper Table 3):");
    println!(
        "{:>11} {:>6} {:>9} {:>12}",
        "epochs", "trials", "GPUs/trial", "cluster size"
    );
    for row in render_schedule(&spec, &outcome.plan, 4) {
        println!("{row}");
    }

    // 5. Execute it for real (event-accurate simulation) on a search space.
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .add("weight_decay", Dim::LogUniform { lo: 1e-5, hi: 1e-2 })
        .build()
        .unwrap();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let report =
        rubberband::execute(&spec, &outcome.plan, &task, &physics, &cloud, &space, 42).unwrap();
    println!("\nexecuted: JCT {} at {}", report.jct, report.total_cost());
    println!(
        "winner: {} with accuracy {:.1}% (config {})",
        report.best_trial,
        report.best_accuracy * 100.0,
        report.best_config
    );
    println!(
        "instances provisioned: {}, migrations: {}, utilization: {:.0}%",
        report.instances_provisioned,
        report.migrations,
        report.utilization.unwrap_or(0.0) * 100.0
    );
    println!("\n{}", rubberband::rb_exec::render_timeline(&report, 48));
}
