//! The learning-curve model: what "training" means in this reproduction.
//!
//! A [`TaskModel`] maps a hyperparameter configuration and an iteration
//! count to a validation accuracy. Two properties matter for fidelity:
//!
//! 1. **Diminishing returns** (§2): accuracy follows a saturating curve, so
//!    most of the signal about a configuration's quality arrives early —
//!    the premise of early stopping.
//! 2. **A meaningful response surface**: the asymptotic accuracy is a bowl
//!    in log-learning-rate (with secondary weight-decay and momentum
//!    terms), and configurations far from the optimum also *learn slower*.
//!    Intermediate metrics are therefore imperfect predictors of final
//!    quality, which is exactly why SHA keeps a top tier training longer
//!    rather than committing after one stage (§2).
//!
//! Evaluation noise is deterministic in `(trial seed, iteration)`, so
//! repeated runs with the same seeds reproduce accuracy tables exactly.

use crate::dataset::Dataset;
use rb_core::Prng;
use rb_hpo::Config;
use rb_scaling::zoo::{self, ModelArch};

/// A tunable training task: dataset + architecture + response surface.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskModel {
    /// Task name, e.g. `"ResNet-101 / CIFAR-10"`.
    pub name: &'static str,
    /// The dataset trained on.
    pub dataset: Dataset,
    /// The model architecture (links to the scaling model zoo).
    pub arch: ModelArch,
    /// Best achievable validation accuracy at the ideal configuration and
    /// full convergence.
    pub peak_acc: f64,
    /// Learning rate at the bottom of the response-surface bowl.
    pub lr_opt: f64,
    /// Accuracy lost per squared decade of log-lr distance from `lr_opt`.
    pub lr_sensitivity: f64,
    /// Optimal weight decay (secondary dimension; zero disables).
    pub wd_opt: f64,
    /// Accuracy lost per squared decade of log-wd distance from `wd_opt`.
    pub wd_sensitivity: f64,
    /// Work units (spec "iterations") to reach half of the asymptotic
    /// improvement, at the optimal configuration.
    pub halflife_iters: f64,
    /// Hill-curve exponent controlling how sharp the saturation is.
    pub shape_p: f64,
    /// How much slower far-from-optimal configurations converge: the
    /// half-life is multiplied by `1 + slowdown · |log10(lr/lr_opt)|`.
    pub convergence_slowdown: f64,
    /// Accuracy recovered by an annealing learning-rate schedule
    /// (`schedule = "cosine"` in the configuration); the §6.3.1 footnote's
    /// "standard (compatible) techniques".
    pub schedule_bonus: f64,
    /// Standard deviation of per-evaluation accuracy noise.
    pub eval_noise_std: f64,
    /// Training samples consumed by one work unit (one spec "iteration").
    /// For epoch-granularity specs this equals the dataset size.
    pub samples_per_iter: u64,
}

impl TaskModel {
    /// SGD steps needed for one work unit at global batch `batch_size`.
    pub fn steps_per_iter(&self, batch_size: u32) -> u64 {
        self.samples_per_iter.div_ceil(u64::from(batch_size))
    }

    /// The asymptotic (fully converged) accuracy of a configuration,
    /// before noise. Reads `lr` and optionally `weight_decay` from the
    /// configuration; a missing `lr` is treated as `lr_opt` (useful for
    /// workloads where the surface is irrelevant, e.g. the cost-model
    /// figures).
    pub fn asymptotic_accuracy(&self, config: &Config) -> f64 {
        let chance = self.dataset.chance_accuracy();
        let lr = config.get_f64_or("lr", self.lr_opt).max(1e-12);
        let d_lr = (lr / self.lr_opt).log10();
        let mut acc = self.peak_acc - self.lr_sensitivity * d_lr * d_lr;
        if self.wd_sensitivity > 0.0 {
            let wd = config.get_f64_or("weight_decay", self.wd_opt).max(1e-12);
            let d_wd = (wd / self.wd_opt.max(1e-12)).log10();
            acc -= self.wd_sensitivity * d_wd * d_wd;
        }
        // Learning-rate schedules: "standard (compatible) techniques such
        // as using an lr-schedule" recover extra accuracy (§6.3.1
        // footnote). Annealing also widens the tolerance to an over-large
        // initial learning rate.
        acc += match config.get("schedule") {
            Some(rb_hpo::ConfigValue::Choice(s)) if s == "cosine" => {
                self.schedule_bonus + 0.25 * self.lr_sensitivity * d_lr.max(0.0).powi(2)
            }
            Some(rb_hpo::ConfigValue::Choice(s)) if s == "step" => 0.6 * self.schedule_bonus,
            _ => 0.0,
        };
        acc.clamp(chance, self.peak_acc + self.schedule_bonus)
    }

    /// The effective convergence half-life of a configuration, in work
    /// units.
    pub fn halflife(&self, config: &Config) -> f64 {
        let lr = config.get_f64_or("lr", self.lr_opt).max(1e-12);
        let d_lr = (lr / self.lr_opt).log10().abs();
        self.halflife_iters * (1.0 + self.convergence_slowdown * d_lr)
    }

    /// Noise-free validation accuracy after `iters` work units.
    pub fn clean_accuracy(&self, config: &Config, iters: u64) -> f64 {
        if iters == 0 {
            return self.dataset.chance_accuracy();
        }
        let chance = self.dataset.chance_accuracy();
        let a_inf = self.asymptotic_accuracy(config);
        let h = self.halflife(config);
        let x = (iters as f64 / h).powf(self.shape_p);
        chance + (a_inf - chance) * x / (1.0 + x)
    }

    /// Observed validation accuracy after `iters` work units: the clean
    /// curve plus evaluation noise, deterministic in `(trial_seed, iters)`.
    pub fn accuracy(&self, config: &Config, iters: u64, trial_seed: u64) -> f64 {
        let clean = self.clean_accuracy(config, iters);
        if self.eval_noise_std == 0.0 || iters == 0 {
            return clean;
        }
        let mut rng = Prng::seed_from_u64(trial_seed ^ iters.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (clean + self.eval_noise_std * rng.standard_normal()).clamp(0.0, 1.0)
    }
}

/// ResNet-101 on CIFAR-10 — the Table 2/3 end-to-end workload. The paper
/// reaches 88–92% under its 50-epoch SHA budget (94% state-of-the-art is
/// out of scope, §6.3.1 footnote).
///
/// The architecture descriptor is a CIFAR-calibrated variant of the zoo's
/// ImageNet-224 entry: 32×32 inputs raise per-GPU throughput by ~1.5×
/// while the gradient volume (parameter count) is unchanged, which makes
/// the model distinctly communication-bound beyond one machine — the
/// regime where elastic shrinking pays (Tables 2/3).
pub fn resnet101_cifar10() -> TaskModel {
    TaskModel {
        name: "ResNet-101 / CIFAR-10",
        dataset: crate::dataset::CIFAR10,
        arch: ModelArch {
            name: "ResNet-101 (CIFAR)",
            params_millions: 44.5,
            per_gpu_samples_per_sec: 500.0,
            max_samples_per_gpu: 512,
            fixed_overhead_secs: 0.012,
            microstep_overhead_secs: 0.005,
        },
        peak_acc: 0.945,
        lr_opt: 0.1,
        lr_sensitivity: 0.045,
        wd_opt: 5e-4,
        wd_sensitivity: 0.010,
        halflife_iters: 5.5,
        shape_p: 1.3,
        convergence_slowdown: 0.45,
        schedule_bonus: 0.012,
        eval_noise_std: 0.008,
        samples_per_iter: 50_000,
    }
}

/// ResNet-152 on CIFAR-100 — the Table 4 middle row.
pub fn resnet152_cifar100() -> TaskModel {
    TaskModel {
        name: "ResNet-152 / CIFAR-100",
        dataset: crate::dataset::CIFAR100,
        arch: ModelArch {
            name: "ResNet-152 (CIFAR)",
            params_millions: 60.2,
            per_gpu_samples_per_sec: 450.0,
            max_samples_per_gpu: 384,
            fixed_overhead_secs: 0.014,
            microstep_overhead_secs: 0.006,
        },
        peak_acc: 0.74,
        lr_opt: 0.08,
        lr_sensitivity: 0.06,
        wd_opt: 5e-4,
        wd_sensitivity: 0.015,
        halflife_iters: 9.0,
        shape_p: 1.3,
        convergence_slowdown: 0.5,
        schedule_bonus: 0.012,
        eval_noise_std: 0.01,
        samples_per_iter: 50_000,
    }
}

/// BERT-base fine-tuned on RTE — the Table 4 bottom row. Fine-tuning
/// converges in a handful of epochs and is noisy.
/// The fp32 fine-tuning throughput (~45 samples/s on a V100 at sequence
/// length 128) is well below the zoo's mixed-precision figure, so the
/// arch is a task-specific variant.
pub fn bert_rte() -> TaskModel {
    TaskModel {
        name: "BERT / RTE",
        dataset: crate::dataset::RTE,
        arch: ModelArch {
            name: "BERT-base (fine-tune)",
            params_millions: 110.0,
            per_gpu_samples_per_sec: 45.0,
            max_samples_per_gpu: 32,
            fixed_overhead_secs: 0.015,
            microstep_overhead_secs: 0.008,
        },
        peak_acc: 0.71,
        lr_opt: 3e-5,
        lr_sensitivity: 0.05,
        wd_opt: 1e-2,
        wd_sensitivity: 0.004,
        halflife_iters: 2.0,
        shape_p: 1.5,
        convergence_slowdown: 0.6,
        schedule_bonus: 0.012,
        eval_noise_std: 0.015,
        samples_per_iter: 2_490,
    }
}

/// ResNet-50 on ImageNet — the Fig. 10a large-dataset workload.
pub fn resnet50_imagenet() -> TaskModel {
    TaskModel {
        name: "ResNet-50 / ImageNet",
        dataset: crate::dataset::IMAGENET,
        arch: zoo::RESNET50,
        peak_acc: 0.765,
        lr_opt: 0.4,
        lr_sensitivity: 0.05,
        wd_opt: 1e-4,
        wd_sensitivity: 0.01,
        halflife_iters: 25.0,
        shape_p: 1.2,
        convergence_slowdown: 0.4,
        schedule_bonus: 0.012,
        eval_noise_std: 0.004,
        samples_per_iter: 1_281_167,
    }
}

/// ResNet-50 on CIFAR-10 — the workhorse of the simulated cost experiments
/// (Figs. 9–12), where one spec "iteration" is a fixed block of samples
/// rather than an epoch.
pub fn resnet50_cifar10() -> TaskModel {
    TaskModel {
        name: "ResNet-50 / CIFAR-10",
        dataset: crate::dataset::CIFAR10,
        arch: zoo::RESNET50,
        peak_acc: 0.945,
        lr_opt: 0.1,
        lr_sensitivity: 0.05,
        wd_opt: 5e-4,
        wd_sensitivity: 0.012,
        halflife_iters: 40.0,
        shape_p: 1.3,
        convergence_slowdown: 0.45,
        schedule_bonus: 0.012,
        eval_noise_std: 0.006,
        samples_per_iter: 2_048,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_cfg(task: &TaskModel) -> Config {
        Config::new()
            .with_f64("lr", task.lr_opt)
            .with_f64("weight_decay", task.wd_opt)
    }

    #[test]
    fn accuracy_is_monotonic_in_iterations_without_noise() {
        let t = resnet101_cifar10();
        let cfg = good_cfg(&t);
        let mut prev = 0.0;
        for iters in [0, 1, 2, 4, 8, 16, 32, 64] {
            let a = t.clean_accuracy(&cfg, iters);
            assert!(a >= prev, "accuracy dipped at {iters}");
            prev = a;
        }
    }

    #[test]
    fn accuracy_starts_at_chance_and_approaches_asymptote() {
        let t = resnet101_cifar10();
        let cfg = good_cfg(&t);
        assert_eq!(t.clean_accuracy(&cfg, 0), 0.1);
        let near = t.clean_accuracy(&cfg, 10_000);
        assert!((near - t.asymptotic_accuracy(&cfg)).abs() < 0.01);
    }

    #[test]
    fn optimal_lr_beats_bad_lrs_asymptotically() {
        let t = resnet101_cifar10();
        let best = t.asymptotic_accuracy(&good_cfg(&t));
        for lr in [1e-4, 1e-3, 1.0, 10.0] {
            let cfg = Config::new()
                .with_f64("lr", lr)
                .with_f64("weight_decay", t.wd_opt);
            assert!(t.asymptotic_accuracy(&cfg) < best, "lr={lr}");
        }
    }

    #[test]
    fn terrible_configs_sit_at_chance() {
        let t = resnet101_cifar10();
        let cfg = Config::new().with_f64("lr", 1e4);
        assert!((t.asymptotic_accuracy(&cfg) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn far_configs_converge_slower() {
        let t = resnet101_cifar10();
        let near = good_cfg(&t);
        let far = Config::new().with_f64("lr", t.lr_opt / 100.0);
        assert!(t.halflife(&far) > t.halflife(&near));
    }

    #[test]
    fn table2_accuracy_band_is_reachable() {
        // Under the 50-epoch SHA budget the best configuration should land
        // in the high-80s/low-90s, matching Table 2's 88–92% band.
        let t = resnet101_cifar10();
        let a50 = t.clean_accuracy(&good_cfg(&t), 50);
        assert!((0.87..0.94).contains(&a50), "a50 = {a50}");
    }

    #[test]
    fn evaluation_noise_is_deterministic_and_bounded() {
        let t = resnet101_cifar10();
        let cfg = good_cfg(&t);
        let a1 = t.accuracy(&cfg, 10, 7);
        let a2 = t.accuracy(&cfg, 10, 7);
        assert_eq!(a1, a2);
        // Different seeds give different observations.
        let a3 = t.accuracy(&cfg, 10, 8);
        assert_ne!(a1, a3);
        // Noise stays near the clean curve.
        let clean = t.clean_accuracy(&cfg, 10);
        assert!((a1 - clean).abs() < 6.0 * t.eval_noise_std);
    }

    #[test]
    fn noise_free_at_zero_iters() {
        let t = resnet101_cifar10();
        assert_eq!(t.accuracy(&good_cfg(&t), 0, 3), 0.1);
    }

    #[test]
    fn steps_per_iter_rounds_up() {
        let t = resnet101_cifar10();
        // 50 000 samples at batch 1024 → 49 steps.
        assert_eq!(t.steps_per_iter(1024), 49);
        assert_eq!(t.steps_per_iter(50_000), 1);
        assert_eq!(t.steps_per_iter(33_333), 2);
    }

    #[test]
    fn missing_lr_defaults_to_optimal() {
        let t = resnet50_cifar10();
        let empty = Config::new();
        assert_eq!(
            t.asymptotic_accuracy(&empty),
            t.asymptotic_accuracy(
                &Config::new()
                    .with_f64("lr", t.lr_opt)
                    .with_f64("weight_decay", t.wd_opt)
            )
        );
    }

    #[test]
    fn all_tasks_have_sane_surfaces() {
        for t in [
            resnet101_cifar10(),
            resnet152_cifar100(),
            bert_rte(),
            resnet50_imagenet(),
            resnet50_cifar10(),
        ] {
            let chance = t.dataset.chance_accuracy();
            assert!(t.peak_acc > chance, "{}", t.name);
            let best = t.asymptotic_accuracy(
                &Config::new()
                    .with_f64("lr", t.lr_opt)
                    .with_f64("weight_decay", t.wd_opt),
            );
            assert!((best - t.peak_acc).abs() < 1e-9, "{}", t.name);
        }
    }

    #[test]
    fn lr_schedules_recover_accuracy() {
        use rb_hpo::ConfigValue;
        let t = resnet101_cifar10();
        let base = good_cfg(&t);
        let mut cosine = base.clone();
        cosine.set("schedule", ConfigValue::Choice("cosine".into()));
        let mut step = base.clone();
        step.set("schedule", ConfigValue::Choice("step".into()));
        let a_base = t.asymptotic_accuracy(&base);
        let a_cos = t.asymptotic_accuracy(&cosine);
        let a_step = t.asymptotic_accuracy(&step);
        assert!(a_cos > a_base, "cosine should help: {a_cos} vs {a_base}");
        assert!(a_step > a_base && a_step < a_cos, "step in between");
        assert!(a_cos <= t.peak_acc + t.schedule_bonus + 1e-12);
    }

    #[test]
    fn cosine_schedule_tolerates_hot_learning_rates() {
        use rb_hpo::ConfigValue;
        let t = resnet101_cifar10();
        // 0.5 decades above optimal: annealing recovers part of the loss.
        let hot = Config::new()
            .with_f64("lr", t.lr_opt * 3.16)
            .with_f64("weight_decay", t.wd_opt);
        let mut hot_cos = hot.clone();
        hot_cos.set("schedule", ConfigValue::Choice("cosine".into()));
        let gain_hot = t.asymptotic_accuracy(&hot_cos) - t.asymptotic_accuracy(&hot);
        let cold = Config::new()
            .with_f64("lr", t.lr_opt / 3.16)
            .with_f64("weight_decay", t.wd_opt);
        let mut cold_cos = cold.clone();
        cold_cos.set("schedule", ConfigValue::Choice("cosine".into()));
        let gain_cold = t.asymptotic_accuracy(&cold_cos) - t.asymptotic_accuracy(&cold);
        assert!(
            gain_hot > gain_cold,
            "annealing helps hot LRs more: {gain_hot} vs {gain_cold}"
        );
    }
}
