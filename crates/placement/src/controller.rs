//! The placement controller algorithm (Algorithm 3).
//!
//! Responsibilities, per §4.4:
//!
//! * return the current plan unchanged when it already satisfies the
//!   requested allocations;
//! * preserve assignments of trials whose allocation did not change;
//! * place changed trials largest-first, best-fit, each on a single node
//!   when it fits (locality) or on whole nodes when it does not;
//! * displace strictly smaller, unreserved trials when needed — displaced
//!   trials re-enter the queue and get their own chance to be placed;
//!   trials placed in this round cannot be displaced again;
//! * never perturb *reserved* placements (reassigned but not yet acquired
//!   by their workers);
//! * bin-pack trials off victim nodes ahead of a scale-down so instances
//!   can be deprovisioned without interrupting the experiment (Fig. 5).

use crate::plan::{ClusterState, Placement, PlacementPlan};
use rb_core::{NodeId, RbError, Result, TrialId};
use std::collections::{BTreeMap, BTreeSet};

/// What changed in one controller invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementDiff {
    /// Previously placed trials whose physical assignment changed (their
    /// workers must be checkpointed, destroyed and recreated, §5).
    pub moved: Vec<TrialId>,
    /// Trials placed for the first time.
    pub started: Vec<TrialId>,
    /// Trials removed from the plan (terminated or completed).
    pub removed: Vec<TrialId>,
}

impl PlacementDiff {
    /// True when the invocation changed nothing.
    pub fn is_noop(&self) -> bool {
        self.moved.is_empty() && self.started.is_empty() && self.removed.is_empty()
    }
}

/// The stateful placement controller.
#[derive(Debug, Clone, Default)]
pub struct PlacementController {
    plan: PlacementPlan,
    reserved: BTreeSet<TrialId>,
}

impl PlacementController {
    /// Creates a controller with an empty plan.
    pub fn new() -> Self {
        PlacementController::default()
    }

    /// The current placement plan.
    pub fn plan(&self) -> &PlacementPlan {
        &self.plan
    }

    /// Marks a trial's placement as reserved: reassigned but not yet
    /// acquired. Reserved placements are never displaced or repacked.
    pub fn reserve(&mut self, trial: TrialId) {
        self.reserved.insert(trial);
    }

    /// Confirms a reserved placement (the workers acquired it).
    pub fn confirm(&mut self, trial: TrialId) {
        self.reserved.remove(&trial);
    }

    /// True if the trial's placement is currently reserved.
    pub fn is_reserved(&self, trial: TrialId) -> bool {
        self.reserved.contains(&trial)
    }

    /// Runs the placement algorithm for the requested `allocations`
    /// (trial → GPUs) over `cluster`, updating the plan in place.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Placement`] when the allocations cannot be
    /// satisfied (aggregate or fragmentation-induced capacity shortfall
    /// that displacement cannot fix). The plan is left unchanged on error.
    pub fn update(
        &mut self,
        allocations: &BTreeMap<TrialId, u32>,
        cluster: &ClusterState,
    ) -> Result<PlacementDiff> {
        let total: u32 = allocations.values().sum();
        if total > cluster.total_gpus() {
            return Err(RbError::Placement(format!(
                "allocations need {total} GPUs, cluster has {}",
                cluster.total_gpus()
            )));
        }
        let cap = cluster.gpus_per_node();
        let mut plan = self.plan.clone();
        let mut diff = PlacementDiff::default();

        // Drop trials that are gone.
        for trial in plan.trials() {
            if !allocations.contains_key(&trial) {
                plan.remove(trial);
                diff.removed.push(trial);
            }
        }

        // Identify trials whose current placement is already satisfactory:
        // correct total, on live nodes, minimal node count. Reserved trials
        // are treated as satisfied by definition.
        let mut queue: Vec<(u32, TrialId)> = Vec::new();
        let mut previously_placed = BTreeSet::new();
        for (&trial, &gpus) in allocations {
            if self.reserved.contains(&trial) && plan.get(trial).is_some() {
                continue;
            }
            let ok = plan.get(trial).is_some_and(|chunks| {
                let tot: u32 = chunks.iter().map(|p| p.gpus).sum();
                tot == gpus
                    && chunks.iter().all(|p| cluster.contains(p.node))
                    && chunks.len() as u32 <= gpus.div_ceil(cap)
            });
            if ok {
                continue;
            }
            if plan.remove(trial).is_some() {
                previously_placed.insert(trial);
            }
            queue.push((gpus, trial));
        }
        if queue.is_empty() {
            self.plan = plan;
            return Ok(diff);
        }

        // Largest allocation first; ties by trial id for determinism.
        queue.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut placed_this_round: BTreeSet<TrialId> = BTreeSet::new();

        while let Some((gpus, trial)) = queue.first().copied() {
            queue.remove(0);
            let displaced = self.place_one(&mut plan, cluster, trial, gpus, &placed_this_round)?;
            placed_this_round.insert(trial);
            for d in displaced {
                let alloc = allocations[&d];
                previously_placed.insert(d);
                // Re-insert maintaining descending-allocation order.
                let pos = queue
                    .binary_search_by(|(a, t)| alloc.cmp(a).then(t.cmp(&d)))
                    .unwrap_or_else(|p| p);
                queue.insert(pos, (alloc, d));
            }
        }

        for &trial in &placed_this_round {
            if previously_placed.contains(&trial) {
                diff.moved.push(trial);
            } else {
                diff.started.push(trial);
            }
        }
        debug_assert!(
            plan.is_valid_for(cluster),
            "controller produced invalid plan"
        );
        self.plan = plan;
        Ok(diff)
    }

    /// Places one trial, possibly displacing smaller unreserved trials.
    /// Returns the displaced trials (now unplaced).
    fn place_one(
        &self,
        plan: &mut PlacementPlan,
        cluster: &ClusterState,
        trial: TrialId,
        gpus: u32,
        placed_this_round: &BTreeSet<TrialId>,
    ) -> Result<Vec<TrialId>> {
        let cap = cluster.gpus_per_node();
        if gpus <= cap {
            self.place_single_node(plan, cluster, trial, gpus, placed_this_round)
        } else {
            self.place_multi_node(plan, cluster, trial, gpus, placed_this_round)
        }
    }

    fn evictable(
        &self,
        plan: &PlacementPlan,
        node: NodeId,
        max_alloc: u32,
        placed_this_round: &BTreeSet<TrialId>,
    ) -> Vec<(u32, TrialId)> {
        let mut out: Vec<(u32, TrialId)> = plan
            .iter()
            .filter(|(t, chunks)| {
                !self.reserved.contains(t)
                    && !placed_this_round.contains(t)
                    && chunks.iter().any(|p| p.node == node)
            })
            .map(|(t, _)| (plan.assigned_gpus(t), t))
            .filter(|&(a, _)| a < max_alloc)
            .collect();
        // Evict smallest victims first to minimize churn.
        out.sort();
        out
    }

    fn place_single_node(
        &self,
        plan: &mut PlacementPlan,
        cluster: &ClusterState,
        trial: TrialId,
        gpus: u32,
        placed_this_round: &BTreeSet<TrialId>,
    ) -> Result<Vec<TrialId>> {
        // Best fit: the node with the least free space that still fits.
        let free = plan.free_per_node(cluster);
        let best = free
            .iter()
            .filter(|(_, &f)| f >= gpus)
            .min_by_key(|(&n, &f)| (f, n));
        if let Some((&node, _)) = best {
            plan.assign(trial, vec![Placement { node, gpus }]);
            return Ok(Vec::new());
        }
        // Displacement: scan nodes by descending free space, evicting
        // strictly smaller victims until the trial fits.
        let mut nodes: Vec<(NodeId, u32)> = free.into_iter().collect();
        nodes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (node, free_gpus) in nodes {
            let victims = self.evictable(plan, node, gpus, placed_this_round);
            let evictable_on_node: u32 = victims
                .iter()
                .map(|&(_, t)| {
                    plan.get(t)
                        .map(|cs| {
                            cs.iter()
                                .filter(|p| p.node == node)
                                .map(|p| p.gpus)
                                .sum::<u32>()
                        })
                        .unwrap_or(0)
                })
                .sum();
            if free_gpus + evictable_on_node < gpus {
                continue;
            }
            let mut freed = free_gpus;
            let mut displaced = Vec::new();
            for (_, victim) in victims {
                if freed >= gpus {
                    break;
                }
                let chunks = plan.remove(victim).expect("victim is placed");
                freed += chunks
                    .iter()
                    .filter(|p| p.node == node)
                    .map(|p| p.gpus)
                    .sum::<u32>();
                displaced.push(victim);
            }
            debug_assert!(freed >= gpus);
            plan.assign(trial, vec![Placement { node, gpus }]);
            return Ok(displaced);
        }
        Err(RbError::Placement(format!(
            "cannot place {trial} ({gpus} GPUs): no node can be freed"
        )))
    }

    fn place_multi_node(
        &self,
        plan: &mut PlacementPlan,
        cluster: &ClusterState,
        trial: TrialId,
        gpus: u32,
        placed_this_round: &BTreeSet<TrialId>,
    ) -> Result<Vec<TrialId>> {
        let cap = cluster.gpus_per_node();
        // Whole empty nodes needed for the full chunks; the remainder can
        // share a node.
        let needed_nodes = (gpus / cap) as usize;
        // Gather empty nodes first, then nodes that can be fully emptied
        // by displacing smaller unreserved trials (emptiest first).
        let free = plan.free_per_node(cluster);
        let mut empties: Vec<NodeId> = free
            .iter()
            .filter(|(_, &f)| f == cap)
            .map(|(&n, _)| n)
            .collect();
        empties.sort();
        let mut displaced = Vec::new();
        if empties.len() < needed_nodes {
            let mut candidates: Vec<(u32, NodeId)> = free
                .iter()
                .filter(|(_, &f)| f < cap)
                .map(|(&n, &f)| (cap - f, n))
                .collect();
            candidates.sort();
            for (_, node) in candidates {
                if empties.len() >= needed_nodes {
                    break;
                }
                // Every resident trial must be evictable.
                let residents: Vec<TrialId> = plan
                    .iter()
                    .filter(|(_, chunks)| chunks.iter().any(|p| p.node == node))
                    .map(|(t, _)| t)
                    .collect();
                let all_evictable = residents.iter().all(|t| {
                    !self.reserved.contains(t)
                        && !placed_this_round.contains(t)
                        && plan.assigned_gpus(*t) < gpus
                });
                if !all_evictable {
                    continue;
                }
                for t in residents {
                    plan.remove(t);
                    displaced.push(t);
                }
                empties.push(node);
            }
        }
        // Full nodes for the bulk of the allocation; a remainder chunk may
        // share a node (best-fit) so that unfair static allocations like
        // 5 GPUs on 4-GPU machines remain placeable.
        let full_nodes = (gpus / cap) as usize;
        let remainder = gpus % cap;
        if empties.len() < full_nodes {
            return Err(RbError::Placement(format!(
                "cannot place {trial} ({gpus} GPUs): needs {full_nodes} free nodes"
            )));
        }
        let mut chunks: Vec<Placement> = empties
            .iter()
            .take(full_nodes)
            .map(|&node| Placement { node, gpus: cap })
            .collect();
        if remainder > 0 {
            let taken: Vec<NodeId> = chunks.iter().map(|p| p.node).collect();
            let free_now = plan.free_per_node(cluster);
            let best = free_now
                .iter()
                .filter(|(n, &f)| !taken.contains(n) && f >= remainder)
                .min_by_key(|(&n, &f)| (f, n));
            match best {
                Some((&node, _)) => chunks.push(Placement {
                    node,
                    gpus: remainder,
                }),
                None => {
                    return Err(RbError::Placement(format!(
                        "cannot place {trial}: no node for the {remainder}-GPU remainder"
                    )))
                }
            }
        }
        plan.assign(trial, chunks);
        Ok(displaced)
    }

    /// Prepares a scale-down by `count` nodes: picks the emptiest victim
    /// nodes, relocates their trials onto survivors (best-fit), and
    /// returns `(freed nodes, relocated trials)`. The plan is updated;
    /// the caller deprovisions the freed nodes and shrinks the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Placement`] if fewer than `count` nodes can be
    /// freed without perturbing reserved trials or exceeding surviving
    /// capacity. The plan is left unchanged on error.
    pub fn plan_scale_down(
        &mut self,
        cluster: &ClusterState,
        count: usize,
    ) -> Result<(Vec<NodeId>, Vec<TrialId>)> {
        if count == 0 {
            return Ok((Vec::new(), Vec::new()));
        }
        if count > cluster.nodes().len() {
            return Err(RbError::Placement(format!(
                "cannot remove {count} of {} nodes",
                cluster.nodes().len()
            )));
        }
        let mut plan = self.plan.clone();
        let cap = cluster.gpus_per_node();
        // Victims: least-used nodes first.
        let free = plan.free_per_node(cluster);
        let mut by_use: Vec<(u32, NodeId)> = free.iter().map(|(&n, &f)| (cap - f, n)).collect();
        by_use.sort();
        let mut freed = Vec::new();
        let mut moved = Vec::new();
        for (_, victim) in by_use {
            if freed.len() >= count {
                break;
            }
            let residents: Vec<TrialId> = plan
                .iter()
                .filter(|(_, chunks)| chunks.iter().any(|p| p.node == victim))
                .map(|(t, _)| t)
                .collect();
            if residents.iter().any(|t| self.reserved.contains(t)) {
                continue;
            }
            // Tentatively relocate every resident into surviving nodes.
            let mut attempt = plan.clone();
            let mut ok = true;
            let mut relocated = Vec::new();
            for t in residents {
                let gpus = attempt.assigned_gpus(t);
                attempt.remove(t);
                // Survivors: not the victim, not already freed.
                let surviving_free: BTreeMap<NodeId, u32> = attempt
                    .free_per_node(cluster)
                    .into_iter()
                    .filter(|(n, _)| *n != victim && !freed.contains(n))
                    .collect();
                let best = surviving_free
                    .iter()
                    .filter(|(_, &f)| f >= gpus)
                    .min_by_key(|(&n, &f)| (f, n));
                match best {
                    Some((&node, _)) if gpus <= cap => {
                        attempt.assign(t, vec![Placement { node, gpus }]);
                        relocated.push(t);
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                plan = attempt;
                freed.push(victim);
                moved.extend(relocated);
            }
        }
        if freed.len() < count {
            return Err(RbError::Placement(format!(
                "could only free {} of {count} nodes",
                freed.len()
            )));
        }
        self.plan = plan;
        Ok((freed, moved))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_scaling::PlacementQuality;

    fn alloc(pairs: &[(u64, u32)]) -> BTreeMap<TrialId, u32> {
        pairs.iter().map(|&(t, g)| (TrialId::new(t), g)).collect()
    }

    #[test]
    fn trials_are_colocated_on_single_nodes() {
        let cluster = ClusterState::with_n_nodes(4, 4);
        let mut pc = PlacementController::new();
        let diff = pc
            .update(&alloc(&[(0, 2), (1, 2), (2, 4), (3, 1)]), &cluster)
            .unwrap();
        assert_eq!(diff.started.len(), 4);
        for t in [0u64, 1, 2, 3] {
            assert_eq!(
                pc.plan().quality(TrialId::new(t), 4),
                Some(PlacementQuality::Packed),
                "trial {t} scattered"
            );
            assert_eq!(pc.plan().get(TrialId::new(t)).unwrap().len(), 1);
        }
        assert!(pc.plan().is_valid_for(&cluster));
    }

    #[test]
    fn best_fit_packs_small_trials_together() {
        let cluster = ClusterState::with_n_nodes(2, 4);
        let mut pc = PlacementController::new();
        pc.update(&alloc(&[(0, 3)]), &cluster).unwrap();
        // A 1-GPU trial should slot into node 0's remaining GPU, not open
        // node 1.
        pc.update(&alloc(&[(0, 3), (1, 1)]), &cluster).unwrap();
        let n0 = pc.plan().get(TrialId::new(0)).unwrap()[0].node;
        let n1 = pc.plan().get(TrialId::new(1)).unwrap()[0].node;
        assert_eq!(n0, n1, "best fit should co-locate");
    }

    #[test]
    fn unchanged_allocations_keep_their_assignment() {
        let cluster = ClusterState::with_n_nodes(4, 4);
        let mut pc = PlacementController::new();
        pc.update(&alloc(&[(0, 4), (1, 4), (2, 4)]), &cluster)
            .unwrap();
        let before = pc.plan().get(TrialId::new(1)).unwrap().to_vec();
        // Trial 0 terminates; 1 and 2 unchanged; 3 arrives.
        let diff = pc
            .update(&alloc(&[(1, 4), (2, 4), (3, 4)]), &cluster)
            .unwrap();
        assert_eq!(diff.removed, vec![TrialId::new(0)]);
        assert_eq!(diff.moved, vec![]);
        assert_eq!(diff.started, vec![TrialId::new(3)]);
        assert_eq!(pc.plan().get(TrialId::new(1)).unwrap(), &before[..]);
    }

    #[test]
    fn noop_when_already_satisfied() {
        let cluster = ClusterState::with_n_nodes(2, 4);
        let mut pc = PlacementController::new();
        pc.update(&alloc(&[(0, 2), (1, 2)]), &cluster).unwrap();
        let diff = pc.update(&alloc(&[(0, 2), (1, 2)]), &cluster).unwrap();
        assert!(diff.is_noop());
    }

    #[test]
    fn growing_trial_displaces_smaller_ones() {
        let cluster = ClusterState::with_n_nodes(2, 4);
        let mut pc = PlacementController::new();
        // Fill both nodes with 1-GPU trials plus a 3-GPU trial.
        pc.update(
            &alloc(&[(0, 3), (1, 1), (2, 1), (3, 1), (4, 1), (5, 1)]),
            &cluster,
        )
        .unwrap();
        // Trial 0 grows to 4 GPUs: the 1-GPU trial sharing its node must be
        // displaced (and re-placed), while trial 0 gets a full node.
        let diff = pc
            .update(&alloc(&[(0, 4), (1, 1), (2, 1), (3, 1)]), &cluster)
            .unwrap();
        assert!(diff.moved.contains(&TrialId::new(0)));
        assert_eq!(pc.plan().assigned_gpus(TrialId::new(0)), 4);
        assert_eq!(pc.plan().get(TrialId::new(0)).unwrap().len(), 1);
        // Everyone still placed, nothing oversubscribed.
        for t in [1u64, 2, 3] {
            assert_eq!(pc.plan().assigned_gpus(TrialId::new(t)), 1);
        }
        assert!(pc.plan().is_valid_for(&cluster));
    }

    #[test]
    fn multi_node_trials_take_whole_nodes() {
        let cluster = ClusterState::with_n_nodes(3, 4);
        let mut pc = PlacementController::new();
        pc.update(&alloc(&[(0, 8), (1, 2)]), &cluster).unwrap();
        let chunks = pc.plan().get(TrialId::new(0)).unwrap();
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|p| p.gpus == 4));
        assert_eq!(
            pc.plan().quality(TrialId::new(0), 4),
            Some(PlacementQuality::Packed)
        );
    }

    #[test]
    fn multi_node_placement_displaces_when_needed() {
        let cluster = ClusterState::with_n_nodes(2, 4);
        let mut pc = PlacementController::new();
        pc.update(&alloc(&[(0, 1), (1, 1)]), &cluster).unwrap();
        // An 8-GPU trial needs both nodes empty.
        let diff = pc.update(&alloc(&[(2, 8)]), &cluster).unwrap();
        assert_eq!(pc.plan().assigned_gpus(TrialId::new(2)), 8);
        assert_eq!(diff.removed.len(), 2);
    }

    #[test]
    fn reserved_placements_are_never_perturbed() {
        let cluster = ClusterState::with_n_nodes(2, 4);
        let mut pc = PlacementController::new();
        pc.update(&alloc(&[(0, 1), (1, 1)]), &cluster).unwrap();
        let before0 = pc.plan().get(TrialId::new(0)).unwrap().to_vec();
        pc.reserve(TrialId::new(0));
        // A 4-GPU trial would like to displace trial 0; it must instead use
        // the other node (displacing trial 1 if needed).
        pc.update(&alloc(&[(0, 1), (1, 1), (2, 4)]), &cluster)
            .unwrap();
        assert_eq!(pc.plan().get(TrialId::new(0)).unwrap(), &before0[..]);
        let n2 = pc.plan().get(TrialId::new(2)).unwrap()[0].node;
        assert_ne!(n2, before0[0].node);
        pc.confirm(TrialId::new(0));
        assert!(!pc.is_reserved(TrialId::new(0)));
    }

    #[test]
    fn capacity_shortfall_is_an_error_and_preserves_plan() {
        let cluster = ClusterState::with_n_nodes(1, 4);
        let mut pc = PlacementController::new();
        pc.update(&alloc(&[(0, 2)]), &cluster).unwrap();
        let before = pc.plan().clone();
        let err = pc.update(&alloc(&[(0, 2), (1, 4)]), &cluster).unwrap_err();
        assert!(matches!(err, RbError::Placement(_)));
        assert_eq!(pc.plan(), &before);
    }

    #[test]
    fn scale_down_bin_packs_and_frees_nodes() {
        let cluster = ClusterState::with_n_nodes(3, 4);
        let mut pc = PlacementController::new();
        // Nodes: [t0:4], [t1:2], [t2:2] (controller packs t1,t2 together,
        // so construct a spread state explicitly via updates).
        pc.update(&alloc(&[(0, 4), (1, 2)]), &cluster).unwrap();
        pc.update(&alloc(&[(0, 4), (1, 2), (2, 4)]), &cluster)
            .unwrap();
        pc.update(&alloc(&[(0, 4), (1, 2), (2, 2)]), &cluster)
            .unwrap();
        // Now shrink by one node: t1 or t2 relocates so a node frees up.
        let (freed, _moved) = pc.plan_scale_down(&cluster, 1).unwrap();
        assert_eq!(freed.len(), 1);
        // All trials remain placed on the two survivors.
        for t in [0u64, 1, 2] {
            let chunks = pc.plan().get(TrialId::new(t)).unwrap();
            assert!(chunks.iter().all(|p| !freed.contains(&p.node)));
        }
        assert!(pc.plan().is_valid_for(&cluster));
    }

    #[test]
    fn scale_down_fails_when_survivors_cannot_absorb() {
        let cluster = ClusterState::with_n_nodes(2, 4);
        let mut pc = PlacementController::new();
        pc.update(&alloc(&[(0, 4), (1, 4)]), &cluster).unwrap();
        assert!(pc.plan_scale_down(&cluster, 1).is_err());
        // Zero-count scale-down is a no-op.
        assert_eq!(pc.plan_scale_down(&cluster, 0).unwrap().0.len(), 0);
        assert!(pc.plan_scale_down(&cluster, 3).is_err());
    }

    #[test]
    fn update_is_deterministic() {
        let cluster = ClusterState::with_n_nodes(4, 4);
        let allocs = alloc(&[(0, 2), (1, 2), (2, 4), (3, 1), (4, 3)]);
        let mut a = PlacementController::new();
        let mut b = PlacementController::new();
        a.update(&allocs, &cluster).unwrap();
        b.update(&allocs, &cluster).unwrap();
        assert_eq!(a.plan(), b.plan());
    }

    #[test]
    fn trials_on_removed_nodes_are_relocated() {
        let mut cluster = ClusterState::with_n_nodes(2, 4);
        let mut pc = PlacementController::new();
        pc.update(&alloc(&[(0, 4), (1, 4)]), &cluster).unwrap();
        // Node hosting trial 1 disappears (e.g. external deprovision).
        let n1 = pc.plan().get(TrialId::new(1)).unwrap()[0].node;
        cluster.remove(n1);
        cluster.add(NodeId::new(10));
        let diff = pc.update(&alloc(&[(0, 4), (1, 4)]), &cluster).unwrap();
        assert_eq!(diff.moved, vec![TrialId::new(1)]);
        assert_eq!(
            pc.plan().get(TrialId::new(1)).unwrap()[0].node,
            NodeId::new(10)
        );
    }
}
