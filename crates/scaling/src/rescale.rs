//! Rescaling adapter for scaling models.
//!
//! Several paper experiments pin the *absolute* iteration latency (e.g.
//! "training latency is sampled with μ = 4 s", Fig. 9; "mean training
//! latency is 12 s", Fig. 12) while keeping a real model's *relative*
//! scaling shape. [`RescaledScaling`] wraps any [`ScalingModel`] and
//! multiplies its latencies by a constant factor, preserving speedups.

use crate::{PlacementQuality, ScalingModel, SharedScaling};

/// A scaling model whose latencies are a constant multiple of another's.
#[derive(Debug, Clone)]
pub struct RescaledScaling {
    inner: SharedScaling,
    factor: f64,
}

impl RescaledScaling {
    /// Wraps `inner`, multiplying every latency by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn new(inner: SharedScaling, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "rescale factor must be positive"
        );
        RescaledScaling { inner, factor }
    }

    /// Wraps `inner` so that its single-GPU packed latency becomes exactly
    /// `target_secs`.
    pub fn pin_single_gpu_latency(inner: SharedScaling, target_secs: f64) -> Self {
        let base = inner.iter_latency_secs(1, PlacementQuality::Packed);
        RescaledScaling::new(inner, target_secs / base)
    }
}

impl ScalingModel for RescaledScaling {
    fn iter_latency_secs(&self, gpus: u32, placement: PlacementQuality) -> f64 {
        self.inner.iter_latency_secs(gpus, placement) * self.factor
    }

    fn batch_size(&self) -> u32 {
        self.inner.batch_size()
    }

    fn latency_components(&self, gpus: u32, placement: PlacementQuality) -> (f64, f64) {
        let (compute, comm) = self.inner.latency_components(gpus, placement);
        (compute * self.factor, comm * self.factor)
    }
}

/// A perfectly linear scaler: `latency(g) = base / g`.
///
/// No real model scales like this (Fig. 4), but it is the limiting case in
/// which a *static* allocation is already cost-optimal (§1: "if the DL
/// model being tuned scales relatively well with compute, the optimal
/// solution may indeed be a static allocation"), and it makes simulator
/// arithmetic exactly checkable in tests.
#[derive(Debug, Clone, PartialEq)]
pub struct IdealScaling {
    /// Single-GPU iteration latency in seconds.
    pub base_secs: f64,
    /// Nominal global batch size.
    pub batch: u32,
}

impl IdealScaling {
    /// Creates an ideal scaler with the given single-GPU latency.
    pub fn new(base_secs: f64, batch: u32) -> Self {
        assert!(base_secs > 0.0, "latency must be positive");
        IdealScaling { base_secs, batch }
    }
}

impl ScalingModel for IdealScaling {
    fn iter_latency_secs(&self, gpus: u32, _placement: PlacementQuality) -> f64 {
        assert!(gpus > 0, "cannot train on zero GPUs");
        self.base_secs / f64::from(gpus)
    }

    fn batch_size(&self) -> u32 {
        self.batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::AnalyticScaling;
    use crate::zoo::RESNET50;
    use std::sync::Arc;

    #[test]
    fn ideal_scaling_is_exactly_linear() {
        let m = IdealScaling::new(8.0, 512);
        for g in [1, 2, 4, 8] {
            assert!((m.speedup(g, PlacementQuality::Packed) - f64::from(g)).abs() < 1e-12);
        }
        assert_eq!(m.iter_latency_secs(4, PlacementQuality::Packed), 2.0);
    }

    #[test]
    fn pinning_sets_single_gpu_latency_exactly() {
        let inner: SharedScaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
        let pinned = RescaledScaling::pin_single_gpu_latency(inner.clone(), 4.0);
        assert!((pinned.iter_latency_secs(1, PlacementQuality::Packed) - 4.0).abs() < 1e-12);
        // Relative speedups are preserved.
        for g in [2, 4, 8] {
            let orig = inner.speedup(g, PlacementQuality::Packed);
            let new = pinned.speedup(g, PlacementQuality::Packed);
            assert!((orig - new).abs() < 1e-9, "speedup changed at {g} GPUs");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        let inner: SharedScaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
        let _ = RescaledScaling::new(inner, 0.0);
    }
}
