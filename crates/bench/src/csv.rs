//! Minimal CSV export for figure data (no external dependencies).
//!
//! `repro --csv` writes each figure's series to `repro_out/*.csv` so the
//! plots can be regenerated with any plotting tool.

use crate::figures::{Fig10Row, Fig11Row, Fig12Row, Fig4Row, Fig9Row};
use rb_core::{RbError, Result};
use std::io::Write as _;
use std::path::Path;

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.6}")).unwrap_or_default()
}

/// Writes one CSV file, creating parent directories as needed.
///
/// # Errors
///
/// Returns [`RbError::Execution`] on I/O failure.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> Result<()> {
    let io_err = |e: std::io::Error| RbError::Execution(format!("csv {}: {e}", path.display()));
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(io_err)?;
    }
    let mut f = std::fs::File::create(path).map_err(io_err)?;
    writeln!(f, "{}", header.join(",")).map_err(io_err)?;
    for row in rows {
        debug_assert_eq!(row.len(), header.len(), "ragged CSV row");
        writeln!(f, "{}", row.join(",")).map_err(io_err)?;
    }
    Ok(())
}

/// Exports Fig. 4 (one row per model × GPU count).
pub fn export_fig4(dir: &Path, rows: &[Fig4Row]) -> Result<()> {
    let data: Vec<Vec<String>> = rows
        .iter()
        .flat_map(|r| {
            r.speedups
                .iter()
                .map(move |&(g, s)| vec![r.model.to_string(), g.to_string(), format!("{s:.4}")])
        })
        .collect();
    write_csv(&dir.join("fig4.csv"), &["model", "gpus", "speedup"], &data)
}

/// Exports Fig. 9.
pub fn export_fig9(dir: &Path, rows: &[Fig9Row]) -> Result<()> {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.sigma),
                fmt_opt(r.static_per_instance),
                fmt_opt(r.static_per_function),
                fmt_opt(r.elastic_per_instance),
                fmt_opt(r.elastic_per_function),
            ]
        })
        .collect();
    write_csv(
        &dir.join("fig9.csv"),
        &[
            "sigma_secs",
            "static_per_instance",
            "static_per_function",
            "elastic_per_instance",
            "elastic_per_function",
        ],
        &data,
    )
}

/// Exports one Fig. 10 panel.
pub fn export_fig10(dir: &Path, dataset: &str, rows: &[Fig10Row]) -> Result<()> {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.4}", r.price_per_gb),
                fmt_opt(r.static_cost),
                fmt_opt(r.elastic_cost),
            ]
        })
        .collect();
    write_csv(
        &dir.join(format!(
            "fig10_{}.csv",
            dataset.to_lowercase().replace('-', "")
        )),
        &["price_per_gb", "static_cost", "elastic_cost"],
        &data,
    )
}

/// Exports one Fig. 11 panel.
pub fn export_fig11(dir: &Path, billing: &str, rows: &[Fig11Row]) -> Result<()> {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.trials.to_string(),
                fmt_opt(r.static_cost),
                fmt_opt(r.elastic_cost),
            ]
        })
        .collect();
    write_csv(
        &dir.join(format!("fig11_{billing}.csv")),
        &["trials", "static_cost", "elastic_cost"],
        &data,
    )
}

/// Exports one Fig. 12 panel.
pub fn export_fig12(dir: &Path, init_secs: f64, rows: &[Fig12Row]) -> Result<()> {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.deadline_mins.to_string(),
                fmt_opt(r.static_cost),
                fmt_opt(r.elastic_cost),
            ]
        })
        .collect();
    write_csv(
        &dir.join(format!("fig12_init{init_secs:.0}s.csv")),
        &["deadline_mins", "static_cost", "elastic_cost"],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use rb_core::SimDuration;

    #[test]
    fn csv_round_trips_fig4() {
        let dir = std::env::temp_dir().join("rb_csv_test");
        let rows = figures::fig4(&[1, 2]);
        export_fig4(&dir, &rows).unwrap();
        let text = std::fs::read_to_string(dir.join("fig4.csv")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "model,gpus,speedup");
        // One row per model × GPU count, plus the header.
        assert_eq!(lines.len(), 1 + 2 * rb_scaling::zoo::ZOO.len());
        assert!(lines[1].starts_with("ResNet-50,1,1.0000"));
    }

    #[test]
    fn csv_handles_missing_values() {
        let dir = std::env::temp_dir().join("rb_csv_test2");
        let rows = vec![figures::Fig11Row {
            trials: 64,
            static_cost: Some(7.1),
            elastic_cost: None,
        }];
        export_fig11(&dir, "per_instance", &rows).unwrap();
        let text = std::fs::read_to_string(dir.join("fig11_per_instance.csv")).unwrap();
        assert!(text.contains("64,7.100000,\n"));
        let _ = SimDuration::ZERO;
    }
}
