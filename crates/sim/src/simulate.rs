//! Monte-Carlo simulation over the execution DAG (Algorithm 1).
//!
//! One *sample* draws a latency for every node, propagates finish times
//! along dependency edges (the vector order is already topological), and
//! reads the job completion time off the sink. Cost is derived from the
//! same sample:
//!
//! * **per-function**: each TRAIN task is billed for its GPUs × duration;
//! * **per-instance**: instance lifetimes are reconstructed from stage
//!   boundaries — instances are handed over when their SCALE task
//!   finishes, and released only at the synchronization barrier of the
//!   last stage that needs them, so time held idle behind stragglers is
//!   paid for (the mechanism behind Fig. 9).
//!
//! Data ingress is billed once per provisioned instance under both models.

use crate::dag::{ExecDag, NodeKind};
use crate::plan::AllocationPlan;
use rb_core::{Cost, Prng, Result, SimDuration};
use rb_hpo::ExperimentSpec;
use rb_profile::{CloudProfile, ModelProfile};

/// Monte-Carlo configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of execution samples per prediction. "Configured to be
    /// small by default to ensure plans are generated quickly" (§5).
    pub samples: u32,
    /// Seed of the sampling stream.
    pub seed: u64,
    /// Latency of the end-of-stage evaluation barrier, in seconds.
    pub sync_overhead_secs: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            samples: 20,
            seed: 0xB0A710AD,
            sync_overhead_secs: 1.0,
        }
    }
}

/// One sampled execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSample {
    /// Job completion time in seconds.
    pub jct_secs: f64,
    /// Compute bill.
    pub compute_cost: Cost,
    /// Data-ingress bill.
    pub data_cost: Cost,
}

impl RunSample {
    /// Compute plus data.
    pub fn total_cost(&self) -> Cost {
        self.compute_cost + self.data_cost
    }
}

/// Aggregated prediction for one (spec, plan) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Mean job completion time.
    pub jct: SimDuration,
    /// Standard deviation of JCT across samples, in seconds.
    pub jct_std_secs: f64,
    /// Mean total cost.
    pub cost: Cost,
    /// Standard deviation of cost across samples.
    pub cost_std: Cost,
    /// Samples drawn.
    pub samples: u32,
}

impl Prediction {
    /// True when the predicted JCT fits the deadline.
    pub fn feasible(&self, deadline: SimDuration) -> bool {
        self.jct <= deadline
    }
}

/// Per-stage breakdown of a prediction (means over the Monte-Carlo
/// samples) — where the money and time go.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBreakdown {
    /// Stage index.
    pub stage: usize,
    /// Trials running.
    pub trials: u32,
    /// GPUs per trial.
    pub gpus_per_trial: u32,
    /// Instances held.
    pub instances: u32,
    /// Mean wall-clock duration of the stage (scale-up + training +
    /// barrier).
    pub duration: SimDuration,
    /// Mean compute cost attributed to the stage (instances held over its
    /// span, under per-instance billing; train-task GPU-time under
    /// per-function billing).
    pub cost: Cost,
}

/// The plan simulator: owns the fitted profiles and predicts JCT/cost for
/// candidate allocation plans.
#[derive(Debug, Clone)]
pub struct Simulator {
    model: ModelProfile,
    cloud: CloudProfile,
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with default Monte-Carlo settings.
    pub fn new(model: ModelProfile, cloud: CloudProfile) -> Self {
        Simulator {
            model,
            cloud,
            config: SimConfig::default(),
        }
    }

    /// Overrides the Monte-Carlo configuration.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// The cloud profile in use.
    pub fn cloud(&self) -> &CloudProfile {
        &self.cloud
    }

    /// The model profile in use.
    pub fn model(&self) -> &ModelProfile {
        &self.model
    }

    /// The Monte-Carlo configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Predicts JCT and cost of executing `spec` under `plan`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rb_sim::{AllocationPlan, Simulator};
    /// use rb_profile::{CloudProfile, ModelProfile};
    /// use rb_cloud::{catalog::P3_8XLARGE, CloudPricing};
    /// use rb_hpo::ShaParams;
    /// use rb_scaling::{AnalyticScaling, zoo::RESNET50};
    /// use std::sync::Arc;
    ///
    /// let spec = ShaParams::new(8, 1, 8).generate().unwrap();
    /// let model = ModelProfile::from_scaling(
    ///     "rn50",
    ///     Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4)),
    ///     10,
    ///     2.0,
    ///     0.0,
    /// );
    /// let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
    /// let sim = Simulator::new(model, cloud);
    /// let pred = sim.predict(&spec, &AllocationPlan::flat(8, 4)).unwrap();
    /// assert!(pred.cost > rb_core::Cost::ZERO);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`rb_core::RbError::InvalidPlan`] when the plan does not
    /// validate against the spec.
    pub fn predict(&self, spec: &ExperimentSpec, plan: &AllocationPlan) -> Result<Prediction> {
        let dag = ExecDag::build(
            spec,
            plan,
            &self.model,
            &self.cloud,
            self.config.sync_overhead_secs,
        )?;
        let mut rng = Prng::seed_from_u64(self.config.seed);
        let mut jct = rb_core::stats::OnlineStats::new();
        let mut cost = rb_core::stats::OnlineStats::new();
        for _ in 0..self.config.samples.max(1) {
            let s = self.sample_run(&dag, &mut rng);
            jct.push(s.jct_secs);
            cost.push(s.total_cost().as_dollars());
        }
        Ok(Prediction {
            jct: SimDuration::from_secs_f64(jct.mean()),
            jct_std_secs: jct.std(),
            cost: Cost::from_dollars(cost.mean()),
            cost_std: Cost::from_dollars(cost.std()),
            samples: self.config.samples.max(1),
        })
    }

    /// Explains a plan stage by stage: mean duration and cost share per
    /// stage across the Monte-Carlo samples. The cost decomposition is
    /// informational (instances that span stages are attributed to the
    /// stage in which they are released), so stage costs sum to the
    /// compute bill but individual attributions are approximate.
    ///
    /// # Errors
    ///
    /// Returns [`rb_core::RbError::InvalidPlan`] when the plan does not
    /// validate against the spec.
    pub fn explain(
        &self,
        spec: &ExperimentSpec,
        plan: &AllocationPlan,
    ) -> Result<Vec<StageBreakdown>> {
        let dag = ExecDag::build(
            spec,
            plan,
            &self.model,
            &self.cloud,
            self.config.sync_overhead_secs,
        )?;
        let samples = self.config.samples.max(1);
        let mut rng = Prng::seed_from_u64(self.config.seed);
        let n_stages = spec.num_stages();
        let mut dur_sum = vec![0.0_f64; n_stages];
        let mut cost_sum = vec![0.0_f64; n_stages];
        let pricing = &self.cloud.pricing;
        for _ in 0..samples {
            // Re-run the critical path, tracking per-stage boundaries.
            let n = dag.nodes.len();
            let mut finish = vec![0.0_f64; n];
            let mut duration = vec![0.0_f64; n];
            for (i, node) in dag.nodes.iter().enumerate() {
                let start = node
                    .preds
                    .iter()
                    .map(|&p| finish[p])
                    .fold(0.0_f64, f64::max);
                let d = node.latency.sample(&mut rng);
                duration[i] = d;
                finish[i] = start + d;
            }
            let mut prev_end = 0.0_f64;
            // Per-instance attribution: lifetimes released at each stage.
            let mut live: Vec<f64> = Vec::new();
            for s in 0..n_stages {
                let stage_end = finish[dag.stage_sync[s]];
                dur_sum[s] += stage_end - prev_end;
                prev_end = stage_end;
                if pricing.billing.is_per_instance() {
                    if dag.stage_new_instances[s] > 0 {
                        let hand_over = finish[dag.stage_scale[s].expect("scale node exists")];
                        for _ in 0..dag.stage_new_instances[s] {
                            live.push(hand_over);
                        }
                    }
                    let keep = if s + 1 < n_stages {
                        dag.stage_instances[s + 1] as usize
                    } else {
                        0
                    };
                    while live.len() > keep {
                        let h = live.pop().expect("live non-empty");
                        cost_sum[s] += pricing
                            .instance_charge(SimDuration::from_secs_f64((stage_end - h).max(0.0)))
                            .as_dollars();
                    }
                }
            }
            if !pricing.billing.is_per_instance() {
                for (i, node) in dag.nodes.iter().enumerate() {
                    if let NodeKind::Train { stage, gpus, .. } = node.kind {
                        cost_sum[stage] += pricing
                            .function_charge(gpus, SimDuration::from_secs_f64(duration[i]))
                            .as_dollars();
                    }
                }
            }
        }
        Ok((0..n_stages)
            .map(|s| {
                let (trials, _) = spec.get_stage(s).expect("stage in range");
                StageBreakdown {
                    stage: s,
                    trials,
                    gpus_per_trial: plan.gpus_per_trial(s, spec),
                    instances: dag.stage_instances[s],
                    duration: SimDuration::from_secs_f64(dur_sum[s] / samples as f64),
                    cost: Cost::from_dollars(cost_sum[s] / samples as f64),
                }
            })
            .collect())
    }

    /// Draws one execution sample from the DAG (Algorithm 1 plus billing).
    pub fn sample_run(&self, dag: &ExecDag, rng: &mut Prng) -> RunSample {
        let n = dag.nodes.len();
        let mut finish = vec![0.0_f64; n];
        let mut duration = vec![0.0_f64; n];
        for (i, node) in dag.nodes.iter().enumerate() {
            let start = node
                .preds
                .iter()
                .map(|&p| finish[p])
                .fold(0.0_f64, f64::max);
            let d = node.latency.sample(rng);
            duration[i] = d;
            finish[i] = start + d;
        }
        let jct_secs = finish.iter().copied().fold(0.0_f64, f64::max);

        let pricing = &self.cloud.pricing;
        let data_cost =
            pricing.ingress_charge(self.cloud.dataset_gb) * u64::from(dag.total_instances);

        let compute_cost = if pricing.billing.is_per_instance() {
            // Reconstruct instance lifetimes from stage boundaries.
            let mut live: Vec<f64> = Vec::new();
            let mut total = Cost::ZERO;
            let stages = dag.stage_sync.len();
            for s in 0..stages {
                if dag.stage_new_instances[s] > 0 {
                    let scale_idx = dag.stage_scale[s]
                        .expect("stage with new instances must have a SCALE node");
                    let hand_over = finish[scale_idx];
                    for _ in 0..dag.stage_new_instances[s] {
                        live.push(hand_over);
                    }
                }
                let stage_end = finish[dag.stage_sync[s]];
                let keep = if s + 1 < stages {
                    dag.stage_instances[s + 1] as usize
                } else {
                    0
                };
                while live.len() > keep {
                    let hand_over = live.pop().expect("live is non-empty");
                    let held = SimDuration::from_secs_f64((stage_end - hand_over).max(0.0));
                    total += pricing.instance_charge(held);
                }
            }
            debug_assert!(live.is_empty(), "all instances released at job end");
            total
        } else {
            // Per-function: each TRAIN task pays for its own GPU-time.
            let mut total = Cost::ZERO;
            for (i, node) in dag.nodes.iter().enumerate() {
                if let NodeKind::Train { gpus, .. } = node.kind {
                    total += pricing.function_charge(gpus, SimDuration::from_secs_f64(duration[i]));
                }
            }
            total
        };

        RunSample {
            jct_secs,
            compute_cost,
            data_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_2XLARGE;
    use rb_cloud::CloudPricing;
    use rb_scaling::zoo::RESNET50;
    use rb_scaling::{AnalyticScaling, IdealScaling};
    use std::sync::Arc;

    fn ideal_model(noise: f64) -> ModelProfile {
        ModelProfile::from_scaling(
            "ideal",
            Arc::new(IdealScaling::new(4.0, 512)),
            1,
            0.0,
            noise,
        )
    }

    fn cloud_1gpu() -> CloudProfile {
        CloudProfile::new(CloudPricing::on_demand(P3_2XLARGE))
            .with_provision_delay(SimDuration::from_secs(10))
            .with_init_latency(SimDuration::from_secs(20))
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(4, 10), (2, 10), (1, 10)]).unwrap()
    }

    fn sim(noise: f64, cloud: CloudProfile) -> Simulator {
        Simulator::new(ideal_model(noise), cloud).with_config(SimConfig {
            samples: 8,
            seed: 7,
            sync_overhead_secs: 1.0,
        })
    }

    #[test]
    fn deterministic_jct_is_exact() {
        // Stage timeline: scale 10 + init 20 + train 40 + sync 1 = 71;
        // then 40 + 1 = 112; then 40 + 1 = 153.
        let s = sim(0.0, cloud_1gpu());
        let p = s
            .predict(&spec(), &AllocationPlan::new(vec![4, 2, 1]))
            .unwrap();
        assert_eq!(p.jct, SimDuration::from_secs(153));
        assert_eq!(p.jct_std_secs, 0.0);
    }

    #[test]
    fn deterministic_per_instance_cost_is_exact() {
        // Lifetimes: hand-over at t=10 for all 4; two released at 71
        // (61 s each), one at 112 (102 s), one at 153 (143 s).
        let s = sim(0.0, cloud_1gpu());
        let p = s
            .predict(&spec(), &AllocationPlan::new(vec![4, 2, 1]))
            .unwrap();
        let pr = CloudPricing::on_demand(P3_2XLARGE);
        let expect = pr.instance_charge(SimDuration::from_secs(61)) * 2
            + pr.instance_charge(SimDuration::from_secs(102))
            + pr.instance_charge(SimDuration::from_secs(143));
        assert_eq!(p.cost, expect);
        assert_eq!(p.cost_std, Cost::ZERO);
    }

    #[test]
    fn deterministic_per_function_cost_is_exact() {
        let cloud = cloud_1gpu();
        let pricing = cloud.pricing.clone().with_per_function_billing();
        let cloud = CloudProfile { pricing, ..cloud };
        let s = sim(0.0, cloud);
        let p = s
            .predict(&spec(), &AllocationPlan::new(vec![4, 2, 1]))
            .unwrap();
        // 7 TRAIN tasks × 40 s × 1 GPU.
        let pr = CloudPricing::on_demand(P3_2XLARGE).with_per_function_billing();
        let expect = pr.function_charge(1, SimDuration::from_secs(40)) * 7;
        assert_eq!(p.cost, expect);
    }

    #[test]
    fn stragglers_inflate_per_instance_but_not_per_function_cost() {
        // The Fig. 9 mechanism. Same workload, rising noise.
        let spec = ExperimentSpec::from_stages(&[(8, 10), (4, 10)]).unwrap();
        let plan = AllocationPlan::new(vec![8, 4]);
        let run = |noise: f64, per_function: bool| {
            let mut cloud = cloud_1gpu();
            if per_function {
                cloud.pricing = cloud.pricing.with_per_function_billing();
            }
            let s = Simulator::new(ideal_model(noise), cloud).with_config(SimConfig {
                samples: 60,
                seed: 3,
                sync_overhead_secs: 1.0,
            });
            s.predict(&spec, &plan).unwrap().cost.as_dollars()
        };
        let pi_calm = run(0.01, false);
        let pi_stormy = run(1.5, false);
        let pf_calm = run(0.01, true);
        let pf_stormy = run(1.5, true);
        // Per-instance: everyone waits for the slowest trial.
        assert!(
            pi_stormy > pi_calm * 1.3,
            "per-instance {pi_calm} -> {pi_stormy}"
        );
        // Per-function: cost tracks mean work, which noise barely moves.
        assert!(
            (pf_stormy - pf_calm).abs() / pf_calm < 0.15,
            "per-function {pf_calm} -> {pf_stormy}"
        );
    }

    #[test]
    fn data_ingress_charged_once_per_instance() {
        let cloud = cloud_1gpu().with_dataset_gb(150.0);
        let mut pricing = cloud.pricing.clone();
        pricing = pricing.with_data_price(Cost::from_dollars(0.01));
        let cloud = CloudProfile { pricing, ..cloud };
        let s = sim(0.0, cloud);
        let plan = AllocationPlan::new(vec![4, 2, 1]);
        let dag = ExecDag::build(&spec(), &plan, s.model(), s.cloud(), 1.0).unwrap();
        let mut rng = Prng::seed_from_u64(0);
        let sample = s.sample_run(&dag, &mut rng);
        // 4 instances × 150 GB × $0.01 = $6.00.
        assert_eq!(sample.data_cost, Cost::from_dollars(6.0));
    }

    #[test]
    fn elastic_beats_static_under_sublinear_scaling() {
        // ResNet-50-shaped scaling: paying for 4 GPUs per trial in late
        // stages buys little speedup, so shrinking is cheaper.
        let scaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 1));
        let model = ModelProfile::from_scaling("rn50", scaling, 10, 0.0, 0.0);
        let spec = ExperimentSpec::from_stages(&[(8, 8), (4, 16), (2, 32), (1, 64)]).unwrap();
        let s = Simulator::new(model, cloud_1gpu());
        let static_plan = AllocationPlan::flat(8, 4);
        let elastic = AllocationPlan::new(vec![8, 4, 2, 1]);
        let p_static = s.predict(&spec, &static_plan).unwrap();
        let p_elastic = s.predict(&spec, &elastic).unwrap();
        assert!(
            p_elastic.cost < p_static.cost,
            "elastic {} vs static {}",
            p_elastic.cost,
            p_static.cost
        );
    }

    #[test]
    fn under_linear_scaling_static_matches_elastic_cost_closely() {
        // With ideal scaling and no overheads, GPU-seconds of work are
        // conserved; the static plan is not wasteful (§1's converse case).
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_2XLARGE))
            .with_provision_delay(SimDuration::from_secs(0))
            .with_init_latency(SimDuration::from_secs(0));
        let s = sim(0.0, cloud).with_config(SimConfig {
            samples: 1,
            seed: 0,
            sync_overhead_secs: 0.0,
        });
        let spec = ExperimentSpec::from_stages(&[(4, 60), (2, 60), (1, 60)]).unwrap();
        let p_static = s.predict(&spec, &AllocationPlan::flat(4, 3)).unwrap();
        let p_elastic = s
            .predict(&spec, &AllocationPlan::new(vec![4, 2, 1]))
            .unwrap();
        let a = p_static.cost.as_dollars();
        let b = p_elastic.cost.as_dollars();
        assert!((a - b).abs() / b < 0.05, "static {a} vs elastic {b}");
    }

    #[test]
    fn predictions_are_deterministic_per_seed() {
        let s = sim(0.5, cloud_1gpu());
        let plan = AllocationPlan::new(vec![4, 2, 1]);
        let a = s.predict(&spec(), &plan).unwrap();
        let b = s.predict(&spec(), &plan).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn minimum_charge_binds_for_tiny_stages() {
        // One 5 s stage on one instance still pays for 60 s.
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_2XLARGE))
            .with_provision_delay(SimDuration::from_secs(0))
            .with_init_latency(SimDuration::from_secs(0));
        let model =
            ModelProfile::from_scaling("tiny", Arc::new(IdealScaling::new(5.0, 1)), 1, 0.0, 0.0);
        let s = Simulator::new(model, cloud).with_config(SimConfig {
            samples: 1,
            seed: 0,
            sync_overhead_secs: 0.0,
        });
        let spec = ExperimentSpec::from_stages(&[(1, 1)]).unwrap();
        let p = s.predict(&spec, &AllocationPlan::flat(1, 1)).unwrap();
        let pr = CloudPricing::on_demand(P3_2XLARGE);
        assert_eq!(p.cost, pr.instance_charge(SimDuration::from_secs(60)));
    }

    #[test]
    fn feasibility_check() {
        let s = sim(0.0, cloud_1gpu());
        let p = s
            .predict(&spec(), &AllocationPlan::new(vec![4, 2, 1]))
            .unwrap();
        assert!(p.feasible(SimDuration::from_secs(153)));
        assert!(!p.feasible(SimDuration::from_secs(152)));
    }

    #[test]
    fn explain_decomposes_duration_and_cost() {
        let s = sim(0.0, cloud_1gpu());
        let spec = spec();
        let plan = AllocationPlan::new(vec![4, 2, 1]);
        let pred = s.predict(&spec, &plan).unwrap();
        let rows = s.explain(&spec, &plan).unwrap();
        assert_eq!(rows.len(), 3);
        // Stage durations sum to the JCT.
        let total: f64 = rows.iter().map(|r| r.duration.as_secs_f64()).sum();
        assert!((total - pred.jct.as_secs_f64()).abs() < 1e-6);
        // Stage costs sum to the compute bill (data cost is zero here).
        let cost: f64 = rows.iter().map(|r| r.cost.as_dollars()).sum();
        assert!((cost - pred.cost.as_dollars()).abs() < 1e-6);
        // Metadata matches the plan.
        assert_eq!(rows[0].instances, 4);
        assert_eq!(rows[2].gpus_per_trial, 1);
    }

    #[test]
    fn explain_per_function_attributes_train_time() {
        let mut cloud = cloud_1gpu();
        cloud.pricing = cloud.pricing.with_per_function_billing();
        let s = sim(0.0, cloud);
        let spec = spec();
        let plan = AllocationPlan::new(vec![4, 2, 1]);
        let pred = s.predict(&spec, &plan).unwrap();
        let rows = s.explain(&spec, &plan).unwrap();
        let cost: f64 = rows.iter().map(|r| r.cost.as_dollars()).sum();
        assert!((cost - pred.cost.as_dollars()).abs() < 1e-6);
        // Stage 0 runs 4 trials, stage 2 one: 4x the train cost.
        assert!(rows[0].cost.as_dollars() > 3.9 * rows[2].cost.as_dollars());
    }
}
