//! End-to-end integration: profile → plan → execute, across the whole
//! workspace, through the public `rubberband` facade.

use rubberband::prelude::*;
use rubberband::rb_cloud::catalog::P3_8XLARGE;
use rubberband::rb_hpo::{hyperband_brackets, Dim, ShaParams};
use rubberband::rb_profile::{profile_training, ProfilerConfig};
use rubberband::rb_train::task::resnet101_cifar10;

fn search_space() -> SearchSpace {
    SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .add("weight_decay", Dim::LogUniform { lo: 1e-5, hi: 1e-2 })
        .build()
        .unwrap()
}

fn cloud() -> CloudProfile {
    CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15))
}

/// The full pipeline the paper describes: a profiling step fits the
/// scaling function, the planner compiles a plan from the *fitted*
/// profile, and execution runs on the ground truth.
#[test]
fn profile_plan_execute_pipeline() {
    let task = resnet101_cifar10();
    let truth = AnalyticScaling::for_arch(&task.arch, 1024, 4);
    let profiled = profile_training(
        &truth,
        task.steps_per_iter(1024),
        5.0,
        &ProfilerConfig {
            max_gpus: 32,
            ..ProfilerConfig::default()
        },
    )
    .unwrap();
    let mut model = profiled.profile;
    model.train_startup_secs = 5.0;

    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate().unwrap();
    let deadline = SimDuration::from_mins(20);
    let outcome = rubberband::compile_plan(&spec, &model, &cloud(), deadline).unwrap();
    assert!(outcome.prediction.feasible(deadline));

    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let report = rubberband::execute(
        &spec,
        &outcome.plan,
        &task,
        &physics,
        &cloud(),
        &search_space(),
        1,
    )
    .unwrap();

    // The executed run should land close to the planner's prediction
    // (Table 2's sim-vs-real fidelity): within 10% on both axes.
    let jct_err = (report.jct.as_secs_f64() - outcome.prediction.jct.as_secs_f64()).abs()
        / outcome.prediction.jct.as_secs_f64();
    let cost_err = (report.total_cost().as_dollars() - outcome.prediction.cost.as_dollars()).abs()
        / outcome.prediction.cost.as_dollars();
    assert!(jct_err < 0.10, "JCT error {jct_err}");
    assert!(cost_err < 0.10, "cost error {cost_err}");

    // And the tuning result is a good model: high-80s accuracy with a
    // near-optimal learning rate (Table 2's accuracy column).
    assert!(
        (0.85..0.95).contains(&report.best_accuracy),
        "accuracy {}",
        report.best_accuracy
    );
    let lr = report.best_config.get_f64("lr").unwrap();
    assert!((lr / task.lr_opt).log10().abs() < 1.0);
}

/// The planner's Table 3 artifact: for the paper's exact workload the
/// greedy planner reproduces the published front-loaded schedule.
#[test]
fn planner_recovers_table3_schedule() {
    let task = resnet101_cifar10();
    // Plan from the *profiled* model, exactly as the system runs (§5).
    let truth = AnalyticScaling::for_arch(&task.arch, 1024, 4);
    let mut model = profile_training(
        &truth,
        task.steps_per_iter(1024),
        5.0,
        &ProfilerConfig {
            max_gpus: 32,
            ..ProfilerConfig::default()
        },
    )
    .unwrap()
    .profile;
    model.train_startup_secs = 5.0;
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate().unwrap();
    let outcome =
        rubberband::compile_plan(&spec, &model, &cloud(), SimDuration::from_mins(20)).unwrap();
    // Paper Table 3: 32, 20, 12, 8 GPUs (8, 5, 3, 2 p3.8xlarge instances).
    assert_eq!(outcome.plan.as_slice(), &[32, 20, 12, 8]);
    let rows = rubberband::rb_planner::render_schedule(&spec, &outcome.plan, 4);
    let gpt: Vec<u32> = rows.iter().map(|r| r.gpus_per_trial).collect();
    assert_eq!(gpt, vec![1, 2, 4, 8]);
}

/// Hyperband runs as a multi-job: every bracket is planned and executed
/// independently, and the overall winner comes from some bracket.
#[test]
fn hyperband_multi_job_execution() {
    let task = resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let cloud = cloud();
    let space = search_space();
    let brackets = hyperband_brackets(1, 27, 3).unwrap();
    assert_eq!(brackets.len(), 4);
    let mut best: Option<(f64, Config)> = None;
    let mut total_cost = Cost::ZERO;
    for (i, (_, spec)) in brackets.iter().enumerate() {
        let outcome =
            rubberband::compile_plan(spec, &physics, &cloud, SimDuration::from_mins(30)).unwrap();
        let report = rubberband::execute(
            spec,
            &outcome.plan,
            &task,
            &physics,
            &cloud,
            &space,
            100 + i as u64,
        )
        .unwrap();
        total_cost += report.total_cost();
        if best
            .as_ref()
            .map_or(true, |(a, _)| report.best_accuracy > *a)
        {
            best = Some((report.best_accuracy, report.best_config.clone()));
        }
    }
    let (acc, cfg) = best.unwrap();
    assert!(acc > 0.75, "hyperband winner reached {acc}");
    assert!(cfg.get_f64("lr").is_some());
    assert!(total_cost > Cost::ZERO);
}

/// Checkpoint/migrate/restore does not corrupt learning curves: a plan
/// with heavy reallocation reaches the same winner accuracy as a static
/// one (same seed ⇒ same configurations and noise streams).
#[test]
fn migration_preserves_training_state() {
    let task = resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let spec = ShaParams::new(8, 1, 8).generate().unwrap();
    let space = search_space();
    let run = |plan: Vec<u32>| {
        rubberband::execute(
            &spec,
            &AllocationPlan::new(plan),
            &task,
            &physics,
            &cloud(),
            &space,
            9,
        )
        .unwrap()
    };
    let static_run = run(vec![8, 8, 8, 8]);
    let elastic_run = run(vec![8, 8, 4, 4]);
    assert_eq!(static_run.best_trial, elastic_run.best_trial);
    assert_eq!(static_run.best_accuracy, elastic_run.best_accuracy);
}

/// Spot pricing scales every bill down by the spot/on-demand ratio
/// without changing schedules.
#[test]
fn spot_pricing_scales_cost() {
    let task = resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let spec = ShaParams::new(8, 1, 8).generate().unwrap();
    let space = search_space();
    let run = |spot: bool| {
        let mut c = cloud();
        if spot {
            c.pricing = c.pricing.with_spot();
        }
        rubberband::execute(
            &spec,
            &AllocationPlan::new(vec![8, 4, 4, 4]),
            &task,
            &physics,
            &c,
            &space,
            9,
        )
        .unwrap()
    };
    let od = run(false);
    let spot = run(true);
    assert_eq!(od.jct, spot.jct);
    let ratio = spot.total_cost().as_dollars() / od.total_cost().as_dollars();
    assert!((ratio - 0.30).abs() < 0.01, "spot ratio {ratio}");
}

/// Spot capacity with aggressive interruptions still finishes the job,
/// counts its preemptions, and remains cheaper than on-demand at these
/// rates; the tuning outcome is unchanged.
#[test]
fn spot_interruptions_end_to_end() {
    use rubberband::rb_exec::ExecOptions;
    let task = resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let spec = ShaParams::new(8, 1, 8).generate().unwrap();
    let space = search_space();
    let run = |rate: f64, spot: bool| {
        let mut c = cloud().with_spot_interruptions(rate);
        if spot {
            c.pricing = c.pricing.with_spot();
        }
        rubberband::execute_with(
            &spec,
            &AllocationPlan::new(vec![8, 4, 4, 4]),
            &task,
            &physics,
            &c,
            &space,
            ExecOptions {
                seed: 5,
                ..ExecOptions::default()
            },
        )
        .unwrap()
    };
    let od = run(0.0, false);
    let calm = run(0.5, true);
    let stormy = run(25.0, true);
    assert!(stormy.preemptions > 0);
    assert!(stormy.jct >= od.jct);
    // A calm spot market keeps most of the 70% discount...
    assert!(
        calm.total_cost() < od.total_cost() * 0.5,
        "calm spot {} vs on-demand {}",
        calm.total_cost(),
        od.total_cost()
    );
    // ...while a stormy one pays for lost work and replacements.
    assert!(stormy.total_cost() > calm.total_cost());
    // The tuning outcome is unchanged either way.
    assert_eq!(stormy.best_trial, od.best_trial);
    assert_eq!(stormy.best_accuracy, od.best_accuracy);
}

/// The warm pool accelerates re-growth without changing tuning results.
#[test]
fn warm_pool_end_to_end() {
    use rubberband::rb_exec::ExecOptions;
    let task = resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    // Shrink then re-grow.
    let spec = rubberband::rb_hpo::ExperimentSpec::from_stages(&[(8, 2), (4, 4), (2, 8)]).unwrap();
    let plan = AllocationPlan::new(vec![8, 2, 8]);
    let space = search_space();
    let run = |warm: usize| {
        rubberband::execute_with(
            &spec,
            &plan,
            &task,
            &physics,
            &cloud()
                .with_provision_delay(SimDuration::from_secs(30))
                .with_init_latency(SimDuration::from_secs(60)),
            &space,
            ExecOptions {
                seed: 2,
                warm_pool: warm,
                warm_hold_secs: 3600.0,
                ..ExecOptions::default()
            },
        )
        .unwrap()
    };
    let cold = run(0);
    let warm = run(2);
    assert!(
        warm.jct.as_secs_f64() < cold.jct.as_secs_f64() - 60.0,
        "warm {} vs cold {}",
        warm.jct,
        cold.jct
    );
    assert!(warm.instances_provisioned < cold.instances_provisioned);
    assert_eq!(warm.best_accuracy, cold.best_accuracy);
}
