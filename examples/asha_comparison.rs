//! RubberBand vs ASHA (§7): the same tuning problem, same budget, run
//! through RubberBand's planned elastic execution and through ASHA's
//! asynchronous promotion over fixed clusters.
//!
//! Run with: `cargo run --release --example asha_comparison`

use rubberband::prelude::*;
use rubberband::rb_cloud::catalog::P3_8XLARGE;
use rubberband::rb_exec::{run_asha, AshaConfig};
use rubberband::rb_hpo::{Dim, ShaParams};

fn main() {
    let task = rubberband::rb_train::task::resnet101_cifar10();
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate().unwrap();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15));
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .add("weight_decay", Dim::LogUniform { lo: 1e-5, hi: 1e-2 })
        .build()
        .unwrap();
    let deadline = SimDuration::from_mins(20);

    // RubberBand: plan, then execute elastically.
    let outcome = rubberband::compile_plan(&spec, &physics, &cloud, deadline).unwrap();
    let rb = rubberband::execute(&spec, &outcome.plan, &task, &physics, &cloud, &space, 1).unwrap();
    println!(
        "RubberBand {:<18} -> {:>6.1}% for {} ({} trials, util {:.0}%)",
        outcome.plan.to_string(),
        rb.best_accuracy * 100.0,
        rb.total_cost(),
        32,
        rb.utilization.unwrap_or(0.0) * 100.0
    );

    // ASHA on fixed clusters.
    for (gpus, gpt) in [(32u32, 1u32), (32, 4), (64, 4)] {
        let report = run_asha(
            &task,
            &physics,
            &cloud,
            &space,
            &AshaConfig {
                eta: 3,
                r: 1,
                big_r: 50,
                gpus_per_trial: gpt,
                cluster_gpus: gpus,
                deadline,
                initial_trials: 32,
                sample_new_on_free: true,
                seed: 1,
            },
        )
        .unwrap();
        println!(
            "ASHA {gpus:>3} GPUs x {gpt}/trial    -> {:>6.1}% for {} ({} trials, busy {:.0}%)",
            report.best_accuracy * 100.0,
            report.cost,
            report.trials_sampled,
            report.busy_fraction * 100.0
        );
    }
    println!("\nASHA keeps its fixed pool busy by sampling ever more configurations,");
    println!("but under a deadline that budget is better spent finishing the top");
    println!("tier — which the elastic plan does at a fraction of the cost (§7).");
}
