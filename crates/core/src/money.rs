//! Exact money arithmetic.
//!
//! Cloud bills are sums of many small per-second charges; floating point
//! would accumulate error and make billing tests brittle. [`Cost`] stores
//! integer **micro-dollars** (1 μ$ = 10⁻⁶ USD) in an `i64`, which covers
//! ±9.2 trillion dollars — far beyond any experiment budget — while keeping
//! addition and comparison exact.

use crate::time::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact amount of money in integer micro-dollars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cost(i64);

impl Cost {
    /// Zero dollars.
    pub const ZERO: Cost = Cost(0);

    /// Creates a cost from integer micro-dollars.
    pub const fn from_micros(micros: i64) -> Self {
        Cost(micros)
    }

    /// Creates a cost from fractional dollars, rounding to the nearest
    /// micro-dollar.
    pub fn from_dollars(dollars: f64) -> Self {
        debug_assert!(dollars.is_finite(), "cost must be finite");
        Cost((dollars * 1e6).round() as i64)
    }

    /// Returns the amount in micro-dollars.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Returns the amount in fractional dollars.
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns true if the amount is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Computes the charge for running a resource priced at `self` per hour
    /// for `dur`, rounding to the nearest micro-dollar.
    ///
    /// This is the fundamental billing primitive: all major providers charge
    /// per-second (with hourly list prices), which this reproduces exactly.
    pub fn per_hour_for(self, dur: SimDuration) -> Cost {
        // Use i128 to avoid overflow: price (μ$) × duration (ms) can exceed
        // i64 for multi-day runs at high prices.
        let micros = self.0 as i128 * dur.as_millis() as i128;
        Cost(((micros + 1_800_000) / 3_600_000) as i64)
    }

    /// Computes the charge for `gb` gigabytes at a price of `self` per GB.
    pub fn per_gb_for(self, gb: f64) -> Cost {
        debug_assert!(gb >= 0.0, "data volume must be non-negative");
        Cost((self.0 as f64 * gb).round() as i64)
    }

    /// Returns the larger of two amounts.
    pub fn max(self, other: Cost) -> Cost {
        Cost(self.0.max(other.0))
    }

    /// Returns the smaller of two amounts.
    pub fn min(self, other: Cost) -> Cost {
        Cost(self.0.min(other.0))
    }

    /// Saturating subtraction clamped at zero: `max(self - other, 0)`.
    pub fn saturating_sub(self, other: Cost) -> Cost {
        Cost((self.0 - other.0).max(0))
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sub for Cost {
    type Output = Cost;
    fn sub(self, rhs: Cost) -> Cost {
        Cost(self.0 - rhs.0)
    }
}

impl SubAssign for Cost {
    fn sub_assign(&mut self, rhs: Cost) {
        self.0 -= rhs.0;
    }
}

impl Neg for Cost {
    type Output = Cost;
    fn neg(self) -> Cost {
        Cost(-self.0)
    }
}

impl Mul<u64> for Cost {
    type Output = Cost;
    fn mul(self, rhs: u64) -> Cost {
        Cost(self.0 * rhs as i64)
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    fn mul(self, rhs: f64) -> Cost {
        Cost((self.0 as f64 * rhs).round() as i64)
    }
}

impl Div<u64> for Cost {
    type Output = Cost;
    fn div(self, rhs: u64) -> Cost {
        Cost(self.0 / rhs as i64)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl fmt::Display for Cost {
    /// Formats as dollars with two decimal places, e.g. `$15.68`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let dollars = abs / 1_000_000;
        let cents = (abs % 1_000_000 + 5_000) / 10_000;
        // Carry if rounding cents overflows (e.g. $1.9999995).
        let (dollars, cents) = if cents == 100 {
            (dollars + 1, 0)
        } else {
            (dollars, cents)
        };
        write!(f, "{sign}${dollars}.{cents:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dollars_round_trip() {
        let c = Cost::from_dollars(12.24);
        assert_eq!(c.as_micros(), 12_240_000);
        assert!((c.as_dollars() - 12.24).abs() < 1e-9);
    }

    #[test]
    fn per_hour_billing_is_exact() {
        // $3.60/hour for 1 second = $0.001 = 1000 μ$.
        let hourly = Cost::from_dollars(3.60);
        assert_eq!(
            hourly.per_hour_for(SimDuration::from_secs(1)).as_micros(),
            1000
        );
        // Full hour bills the list price exactly.
        assert_eq!(hourly.per_hour_for(SimDuration::from_hours(1)), hourly);
    }

    #[test]
    fn per_hour_no_overflow_for_long_runs() {
        let hourly = Cost::from_dollars(24.48);
        let week = SimDuration::from_hours(24 * 7);
        let c = hourly.per_hour_for(week);
        assert!((c.as_dollars() - 24.48 * 24.0 * 7.0).abs() < 1e-3);
    }

    #[test]
    fn per_gb_pricing() {
        let per_gb = Cost::from_dollars(0.01);
        assert_eq!(per_gb.per_gb_for(150.0), Cost::from_dollars(1.50));
    }

    #[test]
    fn arithmetic() {
        let a = Cost::from_dollars(1.0);
        let b = Cost::from_dollars(0.25);
        assert_eq!(a + b, Cost::from_dollars(1.25));
        assert_eq!(a - b, Cost::from_dollars(0.75));
        assert_eq!(b * 4, a);
        assert_eq!(a / 4, b);
        assert_eq!(a * 0.5, Cost::from_dollars(0.5));
        assert_eq!(-a, Cost::from_dollars(-1.0));
        assert_eq!(b.saturating_sub(a), Cost::ZERO);
    }

    #[test]
    fn display_rounds_to_cents() {
        assert_eq!(Cost::from_dollars(15.678).to_string(), "$15.68");
        assert_eq!(Cost::from_dollars(-0.5).to_string(), "-$0.50");
        assert_eq!(Cost::from_dollars(1.999999).to_string(), "$2.00");
        assert_eq!(Cost::ZERO.to_string(), "$0.00");
    }

    #[test]
    fn sum_of_costs() {
        let total: Cost = (1..=4).map(|i| Cost::from_dollars(i as f64)).sum();
        assert_eq!(total, Cost::from_dollars(10.0));
    }

    #[test]
    fn min_max() {
        let a = Cost::from_dollars(1.0);
        let b = Cost::from_dollars(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
