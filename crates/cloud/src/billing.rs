//! The billing meter: converts resource usage into exact dollar amounts.
//!
//! The meter is deliberately dumb — it records *what happened* (instance
//! lifetimes, data ingress, function executions) and prices the record under
//! a [`CloudPricing`] profile on demand. This lets the same execution trace
//! be priced under per-instance and per-function billing, which is exactly
//! the comparison Fig. 9 and Fig. 11 make.

use crate::catalog::PricingTier;
use crate::pricing::{BillingModel, CloudPricing};
use rb_core::{Cost, InstanceId, RbError, Result, SimDuration, SimTime};
use std::collections::BTreeMap;

/// One function execution: `gpus` GPUs busy for `duration`.
///
/// Under per-function billing these records *are* the compute bill; under
/// per-instance billing they are ignored (lifetimes are billed instead) but
/// remain useful for utilization accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsageRecord {
    /// GPUs used by the function.
    pub gpus: u32,
    /// How long the function ran.
    pub duration: SimDuration,
}

#[derive(Debug, Clone, Copy)]
struct Lifetime {
    started: SimTime,
    stopped: Option<SimTime>,
}

/// Accumulates billable events during an execution.
#[derive(Debug, Clone, Default)]
pub struct BillingMeter {
    lifetimes: BTreeMap<InstanceId, Lifetime>,
    /// Lifetimes priced under a tier other than the profile's — a
    /// mid-run market switch pins everything bought on the old market
    /// so the flip only reprices *future* capacity.
    tier_overrides: BTreeMap<InstanceId, PricingTier>,
    usage: Vec<UsageRecord>,
    ingress_gb: f64,
}

impl BillingMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        BillingMeter::default()
    }

    /// Records that billing for `id` begins at `t` (the instant the provider
    /// hands over the instance; initialization time is billed, as on EC2).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the instance was already started.
    pub fn instance_started(&mut self, id: InstanceId, t: SimTime) {
        let prev = self.lifetimes.insert(
            id,
            Lifetime {
                started: t,
                stopped: None,
            },
        );
        debug_assert!(prev.is_none(), "instance {id} started twice");
    }

    /// Records that `id` was terminated at `t`.
    ///
    /// Stopping is **idempotent**: a spot reclaim can race the executor's
    /// own release, so a second stop keeps the *earliest* recorded stop
    /// time and is not an error. A stop time before the recorded start is
    /// clamped to the start (zero-length lifetime; the billing minimum
    /// still applies exactly once, in [`CloudPricing::instance_charge`]).
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Provider`] if the instance was never started.
    pub fn instance_stopped(&mut self, id: InstanceId, t: SimTime) -> Result<()> {
        let life = self
            .lifetimes
            .get_mut(&id)
            .ok_or_else(|| RbError::Provider(format!("instance {id} stopped but never started")))?;
        let t = t.max(life.started);
        life.stopped = Some(match life.stopped {
            Some(prev) => prev.min(t),
            None => t,
        });
        Ok(())
    }

    /// Records a function execution (used for per-function compute billing
    /// and utilization statistics).
    pub fn record_usage(&mut self, rec: UsageRecord) {
        self.usage.push(rec);
    }

    /// Records `gb` gigabytes of ingress data movement.
    pub fn record_ingress(&mut self, gb: f64) {
        debug_assert!(gb >= 0.0);
        self.ingress_gb += gb;
    }

    /// Total ingress volume recorded, in GB.
    pub fn ingress_gb(&self) -> f64 {
        self.ingress_gb
    }

    /// Number of instances ever started.
    pub fn instances_started(&self) -> usize {
        self.lifetimes.len()
    }

    /// When billing for `id` began, if it was ever started. Pool handoff
    /// uses this to compute the donated instance's billed lifetime.
    pub fn started_at(&self, id: InstanceId) -> Option<SimTime> {
        self.lifetimes.get(&id).map(|l| l.started)
    }

    /// Pins `id`'s lifetime to `tier`: it will be priced under that
    /// tier regardless of the profile passed to [`Self::compute_cost`].
    pub fn pin_tier(&mut self, id: InstanceId, tier: PricingTier) {
        self.tier_overrides.insert(id, tier);
    }

    /// Pins every lifetime recorded so far to `tier` and returns how
    /// many were pinned. Called at the instant of a market switch: the
    /// capacity bought up to now was bought on the old market, and only
    /// instances provisioned after the flip follow the new profile.
    pub fn pin_existing_lifetimes(&mut self, tier: PricingTier) -> usize {
        let mut pinned = 0;
        for id in self.lifetimes.keys() {
            if !self.tier_overrides.contains_key(id) {
                self.tier_overrides.insert(*id, tier);
                pinned += 1;
            }
        }
        pinned
    }

    /// The tier `id` is pinned to, if any.
    pub fn pinned_tier(&self, id: InstanceId) -> Option<PricingTier> {
        self.tier_overrides.get(&id).copied()
    }

    fn lifetime_charge(
        &self,
        id: InstanceId,
        life: &Lifetime,
        pricing: &CloudPricing,
        now: SimTime,
    ) -> Cost {
        let dur = pricing.billing.billable(life.stopped.unwrap_or(now) - life.started);
        let hourly = match self.tier_overrides.get(&id) {
            Some(&tier) => pricing.instance_type.hourly_price(tier),
            None => pricing.instance_hourly(),
        };
        hourly.per_hour_for(dur)
    }

    /// Total GPU-seconds of recorded function usage.
    pub fn busy_gpu_seconds(&self) -> f64 {
        self.usage
            .iter()
            .map(|u| u.gpus as f64 * u.duration.as_secs_f64())
            .sum()
    }

    /// Total instance-seconds held (instances still open are charged up to
    /// `now`).
    pub fn held_instance_seconds(&self, now: SimTime) -> f64 {
        self.lifetimes
            .values()
            .map(|l| (l.stopped.unwrap_or(now) - l.started).as_secs_f64())
            .sum()
    }

    /// Cluster-level GPU utilization in `[0, 1]`: busy GPU-time over held
    /// GPU-time. Returns `None` when nothing was held.
    pub fn utilization(&self, now: SimTime, gpus_per_instance: u32) -> Option<f64> {
        let held = self.held_instance_seconds(now) * f64::from(gpus_per_instance);
        if held <= 0.0 {
            return None;
        }
        Some((self.busy_gpu_seconds() / held).min(1.0))
    }

    /// The compute bill under `pricing`, charging open instances up to `now`.
    pub fn compute_cost(&self, pricing: &CloudPricing, now: SimTime) -> Cost {
        match pricing.billing {
            BillingModel::PerInstance { .. } => self
                .lifetimes
                .iter()
                .map(|(&id, l)| self.lifetime_charge(id, l, pricing, now))
                .sum(),
            BillingModel::PerFunction => self
                .usage
                .iter()
                .map(|u| pricing.function_charge(u.gpus, u.duration))
                .sum(),
        }
    }

    /// The data-movement bill under `pricing`.
    pub fn data_cost(&self, pricing: &CloudPricing) -> Cost {
        pricing.ingress_charge(self.ingress_gb)
    }

    /// The complete bill: compute plus data.
    pub fn total_cost(&self, pricing: &CloudPricing, now: SimTime) -> Cost {
        self.compute_cost(pricing, now) + self.data_cost(pricing)
    }

    /// The instance-lifetime bill as a cumulative timeline: one
    /// `(release_time, cost_so_far)` point per instance, ordered by
    /// release time (open lifetimes close at `now`; ties keep instance
    /// id order). The final point equals
    /// [`BillingMeter::compute_cost`] under per-instance billing — this
    /// is the meter's spend curve, exported to the trace bus so a run's
    /// cost can be read off the timeline like any other lane.
    pub fn cost_timeline(&self, pricing: &CloudPricing, now: SimTime) -> Vec<(SimTime, Cost)> {
        let mut charges: Vec<(SimTime, Cost)> = self
            .lifetimes
            .iter()
            .map(|(&id, l)| {
                let end = l.stopped.unwrap_or(now);
                (end, self.lifetime_charge(id, l, pricing, now))
            })
            .collect();
        charges.sort_by_key(|&(t, _)| t);
        let mut total = Cost::ZERO;
        charges
            .into_iter()
            .map(|(t, c)| {
                total += c;
                (t, total)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::P3_8XLARGE;

    fn pricing() -> CloudPricing {
        CloudPricing::on_demand(P3_8XLARGE)
    }

    #[test]
    fn per_instance_bill_sums_lifetimes() {
        let mut m = BillingMeter::new();
        m.instance_started(InstanceId::new(0), SimTime::ZERO);
        m.instance_stopped(InstanceId::new(0), SimTime::from_secs(3600))
            .unwrap();
        m.instance_started(InstanceId::new(1), SimTime::from_secs(100));
        m.instance_stopped(InstanceId::new(1), SimTime::from_secs(1900))
            .unwrap();
        let bill = m.compute_cost(&pricing(), SimTime::from_secs(3600));
        // 1 h + 0.5 h = 1.5 × hourly.
        assert_eq!(bill, P3_8XLARGE.on_demand_hourly * 3 / 2);
    }

    #[test]
    fn open_instances_billed_to_now() {
        let mut m = BillingMeter::new();
        m.instance_started(InstanceId::new(0), SimTime::ZERO);
        let bill = m.compute_cost(&pricing(), SimTime::from_secs(7200));
        assert_eq!(bill, P3_8XLARGE.on_demand_hourly * 2);
    }

    #[test]
    fn minimum_charge_applies_per_instance() {
        let mut m = BillingMeter::new();
        m.instance_started(InstanceId::new(0), SimTime::ZERO);
        m.instance_stopped(InstanceId::new(0), SimTime::from_secs(5))
            .unwrap();
        let bill = m.compute_cost(&pricing(), SimTime::from_secs(5));
        assert_eq!(
            bill,
            pricing()
                .instance_hourly()
                .per_hour_for(SimDuration::from_secs(60))
        );
    }

    #[test]
    fn double_stop_is_idempotent_and_keeps_earliest() {
        let mut m = BillingMeter::new();
        m.instance_started(InstanceId::new(0), SimTime::ZERO);
        // Spot reclaim at t=1800 races the executor's own release at
        // t=3600 — whichever lands second must not extend the bill.
        m.instance_stopped(InstanceId::new(0), SimTime::from_secs(3600))
            .unwrap();
        m.instance_stopped(InstanceId::new(0), SimTime::from_secs(1800))
            .unwrap();
        m.instance_stopped(InstanceId::new(0), SimTime::from_secs(7200))
            .unwrap();
        let bill = m.compute_cost(&pricing(), SimTime::from_secs(7200));
        assert_eq!(bill, P3_8XLARGE.on_demand_hourly / 2);
    }

    #[test]
    fn stop_of_unknown_instance_is_a_typed_error() {
        let mut m = BillingMeter::new();
        let err = m
            .instance_stopped(InstanceId::new(7), SimTime::from_secs(10))
            .unwrap_err();
        assert!(matches!(err, rb_core::RbError::Provider(_)));
    }

    #[test]
    fn stop_before_start_clamps_to_zero_length() {
        let mut m = BillingMeter::new();
        m.instance_started(InstanceId::new(0), SimTime::from_secs(100));
        m.instance_stopped(InstanceId::new(0), SimTime::from_secs(40))
            .unwrap();
        // Zero-length lifetime still pays the 60 s minimum, once.
        let bill = m.compute_cost(&pricing(), SimTime::from_secs(100));
        assert_eq!(
            bill,
            pricing()
                .instance_hourly()
                .per_hour_for(SimDuration::from_secs(60))
        );
    }

    #[test]
    fn preempted_instance_pays_minimum_exactly_once() {
        // A 5 s spot lifetime reclaimed, then redundantly released by the
        // executor: the 60 s minimum applies once, not per stop call.
        let mut m = BillingMeter::new();
        m.instance_started(InstanceId::new(0), SimTime::ZERO);
        m.instance_stopped(InstanceId::new(0), SimTime::from_secs(5))
            .unwrap();
        m.instance_stopped(InstanceId::new(0), SimTime::from_secs(5))
            .unwrap();
        let expected = pricing()
            .instance_hourly()
            .per_hour_for(SimDuration::from_secs(60));
        assert_eq!(m.compute_cost(&pricing(), SimTime::from_secs(5)), expected);
        // The timeline agrees: one point, one minimum charge.
        let timeline = m.cost_timeline(&pricing(), SimTime::from_secs(5));
        assert_eq!(timeline.len(), 1);
        assert_eq!(timeline[0].1, expected);
    }

    #[test]
    fn pinned_lifetimes_keep_their_tier_across_a_market_flip() {
        let mut m = BillingMeter::new();
        // One instance bought on-demand, then the run flips to spot.
        m.instance_started(InstanceId::new(0), SimTime::ZERO);
        assert_eq!(m.pin_existing_lifetimes(PricingTier::OnDemand), 1);
        assert_eq!(m.pinned_tier(InstanceId::new(0)), Some(PricingTier::OnDemand));
        // Re-pinning is a no-op for already-pinned lifetimes.
        assert_eq!(m.pin_existing_lifetimes(PricingTier::Spot), 0);
        // A second instance bought after the flip follows the profile.
        m.instance_started(InstanceId::new(1), SimTime::ZERO);
        let hour = SimTime::from_secs(3600);
        m.instance_stopped(InstanceId::new(0), hour).unwrap();
        m.instance_stopped(InstanceId::new(1), hour).unwrap();
        let spot = pricing().with_spot();
        let bill = m.compute_cost(&spot, hour);
        let expected =
            P3_8XLARGE.on_demand_hourly + P3_8XLARGE.hourly_price(PricingTier::Spot);
        assert_eq!(bill, expected);
        // The timeline's final point agrees with the bill.
        let timeline = m.cost_timeline(&spot, hour);
        assert_eq!(timeline.last().unwrap().1, expected);
    }

    #[test]
    fn per_function_bill_ignores_lifetimes() {
        let mut m = BillingMeter::new();
        m.instance_started(InstanceId::new(0), SimTime::ZERO);
        m.instance_stopped(InstanceId::new(0), SimTime::from_secs(3600))
            .unwrap();
        m.record_usage(UsageRecord {
            gpus: 4,
            duration: SimDuration::from_secs(1800),
        });
        let p = pricing().with_per_function_billing();
        // 4 GPUs × 0.5 h = half the instance hourly price.
        assert_eq!(
            m.compute_cost(&p, SimTime::from_secs(3600)),
            P3_8XLARGE.on_demand_hourly / 2
        );
    }

    #[test]
    fn data_cost_accumulates_ingress() {
        let mut m = BillingMeter::new();
        m.record_ingress(150.0);
        m.record_ingress(150.0);
        let p = pricing().with_data_price(Cost::from_dollars(0.01));
        assert_eq!(m.data_cost(&p), Cost::from_dollars(3.0));
        assert_eq!(m.ingress_gb(), 300.0);
    }

    #[test]
    fn utilization_ratio() {
        let mut m = BillingMeter::new();
        m.instance_started(InstanceId::new(0), SimTime::ZERO);
        m.instance_stopped(InstanceId::new(0), SimTime::from_secs(100))
            .unwrap();
        // 4-GPU instance held 100 s = 400 GPU-s; 200 GPU-s busy → 50%.
        m.record_usage(UsageRecord {
            gpus: 2,
            duration: SimDuration::from_secs(100),
        });
        let u = m.utilization(SimTime::from_secs(100), 4).unwrap();
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_none_when_nothing_held() {
        let m = BillingMeter::new();
        assert!(m.utilization(SimTime::ZERO, 4).is_none());
    }

    #[test]
    fn total_is_compute_plus_data() {
        let mut m = BillingMeter::new();
        m.instance_started(InstanceId::new(0), SimTime::ZERO);
        m.instance_stopped(InstanceId::new(0), SimTime::from_secs(3600))
            .unwrap();
        m.record_ingress(100.0);
        let p = pricing().with_data_price(Cost::from_dollars(0.02));
        let now = SimTime::from_secs(3600);
        assert_eq!(
            m.total_cost(&p, now),
            m.compute_cost(&p, now) + Cost::from_dollars(2.0)
        );
    }
}
