//! Extensions tour: pre-emptible spot capacity and the dual planning
//! problem (minimum JCT under a cost budget).
//!
//! Run with: `cargo run --release --example spot_and_budget`

use rubberband::prelude::*;
use rubberband::rb_cloud::catalog::P3_8XLARGE;
use rubberband::rb_hpo::{Dim, ShaParams};
use rubberband::rb_planner::{plan_min_jct, BudgetPlannerConfig};
use rubberband::rb_scaling::zoo::RESNET50;
use std::sync::Arc;

fn main() {
    let task = rubberband::rb_train::task::resnet101_cifar10();
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate().unwrap();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .add("weight_decay", Dim::LogUniform { lo: 1e-5, hi: 1e-2 })
        .build()
        .unwrap();

    // --- Part 1: spot capacity -------------------------------------------
    println!("=== spot capacity under interruptions ===\n");
    let base = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15));
    let outcome =
        rubberband::compile_plan(&spec, &physics, &base, SimDuration::from_mins(30)).unwrap();
    for (label, spot, rate) in [
        ("on-demand", false, 0.0),
        ("spot, calm market (0.2/h)", true, 0.2),
        ("spot, volatile market (2/h)", true, 2.0),
    ] {
        let mut cloud = base.clone().with_spot_interruptions(rate);
        if spot {
            cloud.pricing = cloud.pricing.with_spot();
        }
        let report =
            rubberband::execute(&spec, &outcome.plan, &task, &physics, &cloud, &space, 7).unwrap();
        println!(
            "{label:<30} JCT {} cost {} ({} interruptions absorbed)",
            report.jct,
            report.total_cost(),
            report.preemptions
        );
    }

    // --- Part 2: minimum JCT under a budget ------------------------------
    println!("\n=== minimum JCT under a cost budget (dual problem) ===\n");
    let reference: rubberband::rb_scaling::SharedScaling =
        Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
    let model = ModelProfile::synthetic("rn50-sim", reference, 4.0, 1.0);
    let sim = Simulator::new(model, base.clone());
    let sweep_spec = ShaParams::new(64, 4, 508).generate().unwrap();
    for budget in [7.0, 10.0, 20.0, 40.0] {
        match plan_min_jct(
            &sim,
            &sweep_spec,
            Cost::from_dollars(budget),
            &BudgetPlannerConfig::default(),
        ) {
            Ok((plan, pred)) => println!(
                "budget ${budget:>5.2}: JCT {} at {} with plan {plan}",
                pred.jct, pred.cost
            ),
            Err(e) => println!("budget ${budget:>5.2}: {e}"),
        }
    }
}
