//! Criterion benches for the three planners (static sweep, naive-elastic
//! sweep, RubberBand greedy descent) on the paper's workload sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rb_bench::{fig_cloud, synthetic_rn50};
use rb_core::SimDuration;
use rb_hpo::ShaParams;
use rb_planner::{plan_with_policy, PlannerConfig, Policy};
use rb_sim::{SimConfig, Simulator};

fn sim(n_samples: u32) -> Simulator {
    Simulator::new(synthetic_rn50(512, 4.0, 1.0), fig_cloud(15.0)).with_config(SimConfig {
        samples: n_samples,
        seed: 7,
        sync_overhead_secs: 1.0,
    })
}

fn bench_policies(c: &mut Criterion) {
    let deadline = SimDuration::from_mins(20);
    let mut group = c.benchmark_group("plan");
    group.sample_size(10);
    for n in [64u32, 256] {
        let spec = ShaParams::new(n, 4, 508).generate().unwrap();
        let s = sim(10);
        for policy in [Policy::Static, Policy::NaiveElastic, Policy::RubberBand] {
            group.bench_with_input(BenchmarkId::new(policy.to_string(), n), &n, |b, _| {
                b.iter(|| {
                    plan_with_policy(policy, &s, &spec, deadline, &PlannerConfig::default())
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
