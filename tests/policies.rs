//! Policy-comparison shape tests: the qualitative claims of §6, asserted
//! at test scale. Each test mirrors one simulated-experiment mechanism
//! (Figs. 9–12) so regressions in the planner or cost model surface as
//! shape violations, not just number drift.

use rubberband::prelude::*;
use rubberband::rb_cloud::catalog::P3_8XLARGE;
use rubberband::rb_hpo::ShaParams;
use rubberband::rb_scaling::zoo::RESNET50;
use std::sync::Arc;

fn cloud() -> CloudProfile {
    CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15))
}

/// A synthetic ResNet-50-shaped workload with a pinned unit latency, as
/// the paper's simulated experiments construct them (§6.1: "training
/// latency sampled from a normal distribution with μ = 4 seconds").
fn model(mean_unit_secs: f64, noise_std: f64) -> ModelProfile {
    let reference = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
    ModelProfile::synthetic("sha-sim", reference, mean_unit_secs, noise_std)
}

/// The Fig. 9 / Fig. 11 workload: SHA(n=64, r=4, R=508).
fn fig_spec(n: u32) -> ExperimentSpec {
    ShaParams::new(n, 4, 508).generate().unwrap()
}

fn plan_cost(
    policy: Policy,
    spec: &ExperimentSpec,
    m: &ModelProfile,
    c: &CloudProfile,
    deadline: SimDuration,
) -> Cost {
    rubberband::compile_plan_with(policy, spec, m, c, deadline, &PlannerConfig::default())
        .unwrap()
        .prediction
        .cost
}

/// RubberBand never does worse than the optimal static allocation — the
/// §4.3 guarantee — across a sweep of deadlines.
#[test]
fn rubberband_dominates_static_across_deadlines() {
    let spec = fig_spec(64);
    let m = model(4.0, 1.0);
    let c = cloud();
    for mins in [15u64, 20, 30, 60, 120] {
        let d = SimDuration::from_mins(mins);
        let rb = plan_cost(Policy::RubberBand, &spec, &m, &c, d);
        let st = plan_cost(Policy::Static, &spec, &m, &c, d);
        assert!(rb <= st, "{mins} min: rubberband {rb} > static {st}");
    }
}

/// The elastic advantage grows as the deadline tightens and shrinks as it
/// relaxes (Table 2 / Fig. 12's trend).
#[test]
fn elastic_advantage_grows_with_tightness() {
    let spec = fig_spec(64);
    let m = model(4.0, 1.0);
    let c = cloud();
    let ratio = |mins: u64| {
        let d = SimDuration::from_mins(mins);
        let st = plan_cost(Policy::Static, &spec, &m, &c, d).as_dollars();
        let rb = plan_cost(Policy::RubberBand, &spec, &m, &c, d).as_dollars();
        st / rb
    };
    let tight = ratio(15);
    let lax = ratio(120);
    assert!(
        tight >= lax - 1e-9,
        "tight-deadline ratio {tight} < lax ratio {lax}"
    );
    assert!(tight > 1.15, "no meaningful advantage at 15 min: {tight}");
}

/// Fig. 11's mechanism: the gap between static and elastic widens as the
/// number of trials (available parallelism) grows.
#[test]
fn advantage_grows_with_trial_count() {
    let m = model(4.0, 1.0);
    let c = cloud();
    let gap = |n: u32| {
        let spec = fig_spec(n);
        let d = SimDuration::from_mins(40);
        let st = plan_cost(Policy::Static, &spec, &m, &c, d).as_dollars();
        let rb = plan_cost(Policy::RubberBand, &spec, &m, &c, d).as_dollars();
        st - rb
    };
    let small = gap(16);
    let large = gap(128);
    assert!(
        large > small,
        "absolute saving should grow with trials: {small} vs {large}"
    );
}

/// Fig. 10's mechanism: as data-ingress pricing rises, the *relative*
/// benefit of elasticity shrinks (data cost hits both policies roughly
/// equally), yet the elastic policy never loses.
#[test]
fn data_price_dilutes_but_never_inverts_benefit() {
    let spec = fig_spec(64);
    let m = model(4.0, 1.0);
    let d = SimDuration::from_mins(20);
    let ratio = |price_per_gb: f64, gb: f64| {
        let mut c = cloud().with_dataset_gb(gb);
        c.pricing = c.pricing.with_data_price(Cost::from_dollars(price_per_gb));
        let st = plan_cost(Policy::Static, &spec, &m, &c, d).as_dollars();
        let rb = plan_cost(Policy::RubberBand, &spec, &m, &c, d).as_dollars();
        st / rb
    };
    let free_data = ratio(0.0, 150.0);
    let pricey_imagenet = ratio(0.16, 150.0);
    let pricey_cifar = ratio(0.16, 0.15);
    assert!(
        pricey_imagenet < free_data,
        "ImageNet at $0.16/GB should dilute the ratio: {pricey_imagenet} vs {free_data}"
    );
    assert!(pricey_imagenet >= 0.999, "elastic never loses");
    // A small dataset leaves the benefit intact.
    assert!(pricey_cifar > pricey_imagenet);
}

/// Fig. 12's mechanism: initialization latency erodes the elastic
/// advantage because mid-job scale-ups (and big short-lived clusters)
/// price in the overhead.
#[test]
fn init_latency_erodes_elastic_advantage() {
    let spec = fig_spec(64);
    let d = SimDuration::from_mins(20);
    let ratio = |init_secs: u64| {
        let c = cloud()
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(init_secs));
        let m = model(4.0, 1.0);
        let st = plan_cost(Policy::Static, &spec, &m, &c, d).as_dollars();
        let rb = plan_cost(Policy::RubberBand, &spec, &m, &c, d).as_dollars();
        st / rb
    };
    let fast = ratio(1);
    let slow = ratio(100);
    assert!(
        fast >= slow - 1e-9,
        "ratio should not grow with init latency: {fast} vs {slow}"
    );
    assert!(
        slow >= 0.999,
        "elastic never loses (it can fall back to static)"
    );
}

/// The naive elastic baseline (fixed GPUs per trial) is never better than
/// RubberBand, and at tight deadlines it over-provisions early stages
/// (§6.3.1's 512-GPU pathology).
#[test]
fn naive_elastic_is_dominated_and_overprovisions() {
    let spec = fig_spec(64);
    let m = model(4.0, 1.0);
    let c = cloud();
    let d = SimDuration::from_mins(15);
    let cfg = PlannerConfig::default();
    let rb = rubberband::compile_plan_with(Policy::RubberBand, &spec, &m, &c, d, &cfg).unwrap();
    let ne = rubberband::compile_plan_with(Policy::NaiveElastic, &spec, &m, &c, d, &cfg).unwrap();
    assert!(rb.prediction.cost <= ne.prediction.cost);
    // The naive plan buys the final stage's per-trial share for every one
    // of the 64 first-stage trials.
    assert!(ne.plan.gpus(0) >= rb.plan.gpus(0));
}

/// Per-function billing collapses the straggler penalty (Fig. 9): with
/// heavy latency variance, per-instance bills grow sharply while
/// per-function bills barely move. Tested against a fixed full-parallel
/// plan so the mechanism is isolated from planner choices.
#[test]
fn billing_model_controls_straggler_penalty() {
    let spec = fig_spec(64);
    let plan = AllocationPlan::flat(64, spec.num_stages());
    let cost = |noise: f64, per_function: bool| {
        let mut c = cloud().with_init_latency(SimDuration::from_secs(0));
        if per_function {
            c.pricing = c.pricing.with_per_function_billing();
        }
        let sim = Simulator::new(model(4.0, noise), c).with_config(SimConfig {
            samples: 40,
            seed: 17,
            sync_overhead_secs: 1.0,
        });
        sim.predict(&spec, &plan).unwrap().cost.as_dollars()
    };
    let pi_growth = cost(8.0, false) / cost(1.0, false);
    let pf_growth = cost(8.0, true) / cost(1.0, true);
    assert!(
        pi_growth > pf_growth + 0.15,
        "per-instance growth {pi_growth} not clearly above per-function {pf_growth}"
    );
}
