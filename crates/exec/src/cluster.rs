//! The cluster manager (§5): elastic scaling against the simulated
//! provider.
//!
//! Extends the provider with the job-side realities the paper models:
//! after the provider hands an instance over (scaling latency), the
//! instance still pays an *initialization latency* (dependency install,
//! joining the cluster) and a one-time dataset download before trials can
//! use it. Billing runs from hand-over to termination; the embedded
//! [`BillingMeter`](rb_cloud::BillingMeter) is the source of truth for
//! "real" cost columns.

use rb_cloud::{ProviderConfig, SimProvider, UsageRecord};
use rb_core::{Cost, InstanceId, NodeId, Prng, RbError, Result, SimDuration, SimTime};
use rb_profile::CloudProfile;
use std::collections::BTreeMap;

/// A node still being initialized.
#[derive(Debug, Clone, Copy)]
struct PendingNode {
    instance: InstanceId,
    usable_at: SimTime,
}

/// A deprovision-deferred instance kept initialized for fast reattach.
#[derive(Debug, Clone, Copy)]
struct WarmNode {
    node: NodeId,
    instance: InstanceId,
    /// The instance is released for real if not reused by this time.
    expires_at: SimTime,
}

/// Elastic cluster of homogeneous GPU instances.
#[derive(Debug)]
pub struct ClusterManager {
    provider: SimProvider,
    cloud: CloudProfile,
    rng: Prng,
    pending: Vec<PendingNode>,
    ready: BTreeMap<NodeId, InstanceId>,
    /// Warm pool (§6.3.1 runs with "a warm pool of instances"): released
    /// nodes are parked here — still billed — and reattached in
    /// `warm_attach_secs` instead of a full provision+init cycle.
    warm: Vec<WarmNode>,
    warm_capacity: usize,
    warm_hold: SimDuration,
    warm_attach: SimDuration,
}

impl ClusterManager {
    /// Creates a manager over a fresh provider.
    pub fn new(cloud: CloudProfile, seed: u64) -> Self {
        let provider = SimProvider::new(
            ProviderConfig {
                instance_type: cloud.pricing.instance_type.clone(),
                provision_delay_secs: cloud.provision_delay.clone(),
                quota: None,
                interruption_rate_per_hour: cloud.spot_interruptions_per_hour,
            },
            seed ^ 0xC1A5_7E12,
        );
        ClusterManager {
            provider,
            cloud,
            rng: Prng::seed_from_u64(seed ^ 0x11D0_77E5),
            pending: Vec::new(),
            ready: BTreeMap::new(),
            warm: Vec::new(),
            warm_capacity: 0,
            warm_hold: SimDuration::ZERO,
            warm_attach: SimDuration::from_secs(2),
        }
    }

    /// Installs a recorder on the embedded provider: provision,
    /// termination and preemption events flow onto the unified trace
    /// bus. A no-op recorder (the default) costs nothing.
    pub fn set_recorder(&mut self, recorder: rb_obs::RecorderHandle) {
        self.provider.set_recorder(recorder);
    }

    /// Enables a warm pool: up to `capacity` released nodes are held
    /// (billed) for `hold`, and reattach in `attach` instead of a full
    /// provision + initialization cycle.
    pub fn with_warm_pool(
        mut self,
        capacity: usize,
        hold: SimDuration,
        attach: SimDuration,
    ) -> Self {
        self.warm_capacity = capacity;
        self.warm_hold = hold;
        self.warm_attach = attach;
        self
    }

    /// Releases warm nodes whose hold expired by `now` back to the
    /// provider (their billing stops at expiry).
    fn expire_warm(&mut self, now: SimTime) {
        let mut keep = Vec::with_capacity(self.warm.len());
        for w in self.warm.drain(..) {
            if w.expires_at <= now {
                self.provider
                    .terminate(w.instance, w.expires_at)
                    .expect("warm instance is running");
            } else {
                keep.push(w);
            }
        }
        self.warm = keep;
    }

    /// Number of instances currently parked warm.
    pub fn warm_count(&self) -> usize {
        self.warm.len()
    }

    /// GPUs on each node.
    pub fn gpus_per_node(&self) -> u32 {
        self.cloud.gpus_per_instance()
    }

    /// Requests `k` new instances at `now`. Each becomes usable after its
    /// provisioning delay plus a sampled initialization latency; its
    /// dataset ingress is charged immediately on hand-over.
    ///
    /// # Errors
    ///
    /// Propagates provider errors (e.g. quota).
    pub fn request_nodes(&mut self, k: usize, now: SimTime) -> Result<()> {
        self.expire_warm(now);
        // Reattach from the warm pool first (most recently parked first).
        let mut k = k;
        while k > 0 {
            let Some(w) = self.warm.pop() else { break };
            self.pending.push(PendingNode {
                instance: w.instance,
                usable_at: now + self.warm_attach,
            });
            k -= 1;
        }
        if k == 0 {
            return Ok(());
        }
        let handles = self.provider.provision(k, now)?;
        for (instance, ready_at) in handles {
            let init = SimDuration::from_secs_f64(self.cloud.init_latency.sample(&mut self.rng));
            self.provider
                .meter_mut()
                .record_ingress(self.cloud.dataset_gb);
            self.pending.push(PendingNode {
                instance,
                usable_at: ready_at + init,
            });
        }
        Ok(())
    }

    /// The instant every currently pending node becomes usable, if any
    /// are pending. The executor's stage barrier waits for this.
    pub fn pending_ready_time(&self) -> Option<SimTime> {
        self.pending.iter().map(|p| p.usable_at).max()
    }

    /// Promotes pending nodes whose initialization finished by `now` into
    /// the ready set. Returns the newly usable node ids.
    pub fn absorb_ready(&mut self, now: SimTime) -> Vec<NodeId> {
        // The provider marks hand-over (billing start) for anything whose
        // provisioning completed; initialization may still be running.
        self.provider.poll_ready(now);
        let mut new_nodes = Vec::new();
        let mut still_pending = Vec::new();
        for p in self.pending.drain(..) {
            if p.usable_at <= now {
                let node = NodeId::new(p.instance.raw());
                self.ready.insert(node, p.instance);
                new_nodes.push(node);
            } else {
                still_pending.push(p);
            }
        }
        self.pending = still_pending;
        new_nodes
    }

    /// The usable nodes, in id order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.ready.keys().copied().collect()
    }

    /// Number of usable nodes.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Number of requested-but-not-yet-usable nodes.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Terminates the given nodes at `now`, ending their billing.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] if a node is unknown; provider
    /// errors propagate.
    pub fn terminate_nodes(&mut self, nodes: &[NodeId], now: SimTime) -> Result<()> {
        self.expire_warm(now);
        for &node in nodes {
            let instance = self
                .ready
                .remove(&node)
                .ok_or_else(|| RbError::Execution(format!("terminating unknown node {node}")))?;
            if self.warm.len() < self.warm_capacity {
                // Park instead of releasing: stays billed, reattaches fast.
                self.warm.push(WarmNode {
                    node,
                    instance,
                    expires_at: now + self.warm_hold,
                });
            } else {
                self.provider.terminate(instance, now)?;
            }
        }
        Ok(())
    }

    /// Terminates everything at `now` (job teardown), including warm
    /// nodes (billed up to `now` or their earlier expiry).
    pub fn terminate_all(&mut self, now: SimTime) {
        for w in std::mem::take(&mut self.warm) {
            let at = now.min(w.expires_at);
            let _ = w.node;
            self.provider
                .terminate(w.instance, at)
                .expect("warm instance is running");
        }
        // Pending instances may still be mid-provisioning; release the
        // ready ones and let any pending ones be cancelled by marking them
        // ready first (their billing started at hand-over regardless).
        self.provider
            .poll_ready(now + SimDuration::from_hours(24 * 365));
        self.provider.terminate_all(now.max(self.latest_handover()));
        self.ready.clear();
        self.pending.clear();
    }

    fn latest_handover(&self) -> SimTime {
        self.pending
            .iter()
            .map(|p| p.usable_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The instant the spot market will reclaim `node`, if pre-emptible
    /// and still alive.
    pub fn preemption_time(&self, node: NodeId) -> Option<SimTime> {
        let instance = self.ready.get(&node)?;
        self.provider.preemption_time(*instance)
    }

    /// Reclaims a spot node at its sampled interruption instant, stopping
    /// its billing there and removing it from the ready set.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] for unknown nodes; provider errors
    /// (already reclaimed, no interruption scheduled) propagate.
    pub fn preempt_node(&mut self, node: NodeId) -> Result<SimTime> {
        let instance = self
            .ready
            .remove(&node)
            .ok_or_else(|| RbError::Execution(format!("preempting unknown node {node}")))?;
        self.provider.preempt(instance)
    }

    /// Records a function-granularity usage event (for per-function
    /// billing and utilization accounting).
    pub fn record_usage(&mut self, gpus: u32, duration: SimDuration) {
        self.provider
            .meter_mut()
            .record_usage(UsageRecord { gpus, duration });
    }

    /// The compute + data bill as of `now`, under the profile's billing
    /// model.
    pub fn total_cost(&self, now: SimTime) -> Cost {
        self.provider.meter().total_cost(&self.cloud.pricing, now)
    }

    /// The compute-only bill as of `now`.
    pub fn compute_cost(&self, now: SimTime) -> Cost {
        self.provider.meter().compute_cost(&self.cloud.pricing, now)
    }

    /// The data-ingress bill.
    pub fn data_cost(&self) -> Cost {
        self.provider.meter().data_cost(&self.cloud.pricing)
    }

    /// Cluster GPU utilization (busy GPU-time / held GPU-time) as of `now`.
    pub fn utilization(&self, now: SimTime) -> Option<f64> {
        self.provider.meter().utilization(now, self.gpus_per_node())
    }

    /// Total instance-seconds held (billed) as of `now`, open instances
    /// accruing. Dividing observed preemptions by this (in hours) gives
    /// an online estimate of the spot interruption rate.
    pub fn held_instance_seconds(&self, now: SimTime) -> f64 {
        self.provider.meter().held_instance_seconds(now)
    }

    /// Instances ever provisioned.
    pub fn instances_provisioned(&self) -> usize {
        self.provider.meter().instances_started()
    }

    /// The billing meter's cumulative spend curve as of `now` (see
    /// [`rb_cloud::BillingMeter::cost_timeline`]).
    pub fn cost_timeline(&self, now: SimTime) -> Vec<(SimTime, Cost)> {
        self.provider
            .meter()
            .cost_timeline(&self.cloud.pricing, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;
    use rb_cloud::CloudPricing;

    fn cloud() -> CloudProfile {
        CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15))
    }

    #[test]
    fn nodes_become_usable_after_provision_plus_init() {
        let mut cm = ClusterManager::new(cloud(), 1);
        cm.request_nodes(2, SimTime::ZERO).unwrap();
        assert_eq!(cm.pending_count(), 2);
        assert_eq!(cm.pending_ready_time(), Some(SimTime::from_secs(30)));
        assert!(cm.absorb_ready(SimTime::from_secs(29)).is_empty());
        let nodes = cm.absorb_ready(SimTime::from_secs(30));
        assert_eq!(nodes.len(), 2);
        assert_eq!(cm.ready_count(), 2);
        assert_eq!(cm.pending_count(), 0);
    }

    #[test]
    fn billing_covers_init_but_not_queue_delay() {
        let mut cm = ClusterManager::new(cloud(), 1);
        cm.request_nodes(1, SimTime::ZERO).unwrap();
        let t = SimTime::from_secs(30);
        let nodes = cm.absorb_ready(t);
        // Hold for 1 hour after becoming usable, then terminate.
        let end = t + SimDuration::from_hours(1);
        cm.terminate_nodes(&nodes, end).unwrap();
        // Billed from hand-over (15 s) to end (3630 s): 3615 s.
        let expect =
            CloudPricing::on_demand(P3_8XLARGE).instance_charge(SimDuration::from_secs(3615));
        assert_eq!(cm.compute_cost(end), expect);
    }

    #[test]
    fn ingress_charged_per_instance() {
        let mut cloud = cloud().with_dataset_gb(150.0);
        cloud.pricing = cloud.pricing.with_data_price(Cost::from_dollars(0.01));
        let mut cm = ClusterManager::new(cloud, 1);
        cm.request_nodes(3, SimTime::ZERO).unwrap();
        assert_eq!(cm.data_cost(), Cost::from_dollars(4.50));
    }

    #[test]
    fn terminate_unknown_node_errors() {
        let mut cm = ClusterManager::new(cloud(), 1);
        assert!(cm
            .terminate_nodes(&[NodeId::new(9)], SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn usage_drives_per_function_cost_and_utilization() {
        let mut profile = cloud();
        profile.pricing = profile.pricing.with_per_function_billing();
        let mut cm = ClusterManager::new(profile, 1);
        cm.request_nodes(1, SimTime::ZERO).unwrap();
        let t = SimTime::from_secs(30);
        cm.absorb_ready(t);
        cm.record_usage(2, SimDuration::from_secs(1800));
        let end = t + SimDuration::from_secs(3600);
        // Per-function: 2 GPUs × 0.5 h = a quarter of the 4-GPU instance
        // hourly price.
        assert_eq!(cm.compute_cost(end), P3_8XLARGE.on_demand_hourly / 4);
        // Utilization: 3600 GPU-s busy of (3615 s × 4 GPUs) held.
        let u = cm.utilization(end).unwrap();
        assert!((u - 3600.0 / (3615.0 * 4.0)).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn terminate_all_cleans_up() {
        let mut cm = ClusterManager::new(cloud(), 1);
        cm.request_nodes(2, SimTime::ZERO).unwrap();
        cm.absorb_ready(SimTime::from_secs(30));
        cm.request_nodes(1, SimTime::from_secs(40)).unwrap();
        cm.terminate_all(SimTime::from_secs(100));
        assert_eq!(cm.ready_count(), 0);
        assert_eq!(cm.pending_count(), 0);
        assert_eq!(cm.instances_provisioned(), 3);
    }

    #[test]
    fn warm_pool_reattaches_quickly_and_keeps_billing() {
        let mut cm = ClusterManager::new(cloud(), 1).with_warm_pool(
            2,
            SimDuration::from_secs(300),
            SimDuration::from_secs(2),
        );
        cm.request_nodes(2, SimTime::ZERO).unwrap();
        let nodes = cm.absorb_ready(SimTime::from_secs(30));
        // Release both: they park warm instead of terminating.
        cm.terminate_nodes(&nodes, SimTime::from_secs(100)).unwrap();
        assert_eq!(cm.ready_count(), 0);
        assert_eq!(cm.warm_count(), 2);
        // Re-request within the hold: ready after 2 s, not 30 s.
        cm.request_nodes(2, SimTime::from_secs(150)).unwrap();
        assert_eq!(cm.pending_ready_time(), Some(SimTime::from_secs(152)));
        cm.absorb_ready(SimTime::from_secs(152));
        assert_eq!(cm.ready_count(), 2);
        assert_eq!(cm.warm_count(), 0);
        // No new instances were provisioned.
        assert_eq!(cm.instances_provisioned(), 2);
        // Billing covered the warm interval: both instances still open.
        let end = SimTime::from_secs(252);
        cm.terminate_all(end);
        let expect =
            CloudPricing::on_demand(P3_8XLARGE).instance_charge(SimDuration::from_secs(252 - 15));
        assert_eq!(cm.compute_cost(end), expect * 2);
    }

    #[test]
    fn warm_pool_expires_and_stops_billing() {
        let mut cm = ClusterManager::new(cloud(), 1).with_warm_pool(
            1,
            SimDuration::from_secs(60),
            SimDuration::from_secs(2),
        );
        cm.request_nodes(1, SimTime::ZERO).unwrap();
        let nodes = cm.absorb_ready(SimTime::from_secs(30));
        cm.terminate_nodes(&nodes, SimTime::from_secs(100)).unwrap();
        // Past the hold: the next request provisions fresh capacity and the
        // warm instance's billing stopped at its expiry (t=160).
        cm.request_nodes(1, SimTime::from_secs(400)).unwrap();
        assert_eq!(cm.warm_count(), 0);
        assert_eq!(
            cm.pending_ready_time(),
            Some(SimTime::from_secs(430)),
            "fresh provision pays the full 30 s"
        );
        let ready = cm.absorb_ready(SimTime::from_secs(430));
        assert_eq!(cm.instances_provisioned(), 2);
        cm.terminate_nodes(&ready, SimTime::from_secs(500)).unwrap();
        // First instance billed 15..160 (145 s), second 415..500 (85 s)...
        // but the second parks warm again (capacity 1), so bill to its end:
        cm.terminate_all(SimTime::from_secs(520));
        let pr = CloudPricing::on_demand(P3_8XLARGE);
        let expect = pr.instance_charge(SimDuration::from_secs(145))
            + pr.instance_charge(SimDuration::from_secs(520 - 415));
        assert_eq!(cm.compute_cost(SimTime::from_secs(520)), expect);
    }

    #[test]
    fn warm_capacity_is_respected() {
        let mut cm = ClusterManager::new(cloud(), 1).with_warm_pool(
            1,
            SimDuration::from_secs(300),
            SimDuration::from_secs(2),
        );
        cm.request_nodes(3, SimTime::ZERO).unwrap();
        let nodes = cm.absorb_ready(SimTime::from_secs(30));
        cm.terminate_nodes(&nodes, SimTime::from_secs(100)).unwrap();
        // Only one fits the pool; the other two released for real.
        assert_eq!(cm.warm_count(), 1);
    }
}
