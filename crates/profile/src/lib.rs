//! Profiling: turning a training job and a cloud into model parameters.
//!
//! Before planning, RubberBand runs a short instrumentation step (§5):
//! it trains the model at power-of-two GPU allocations, measures iteration
//! latencies, fits a scaling function, and fits latency distributions for
//! cloud operations. The planner and simulator consume only these fitted
//! artifacts — never the ground truth — so planning quality honestly
//! reflects profiling quality.
//!
//! * [`ModelProfile`] — fitted training-latency model: scaling function,
//!   per-work-unit noise, startup overhead (checkpoint load + worker
//!   connection establishment).
//! * [`CloudProfile`] — pricing plus provisioning/initialization latency
//!   distributions and per-instance dataset ingress volume.
//! * [`profiler`] — the measurement procedure itself.

pub mod cloud_profile;
pub mod model_profile;
pub mod profiler;

pub use cloud_profile::{CapacityEvents, CloudProfile};
pub use model_profile::ModelProfile;
pub use profiler::{profile_training, ProfileReport, ProfilerConfig};
