//! The drift monitor: observed stage spans vs the plan's Monte-Carlo
//! envelope.
//!
//! The planner's model is fitted once, before the job starts; reality can
//! diverge from it (mispredicted scaling, a slow dataset shard, noisy
//! neighbours, spot churn). The monitor compares each completed stage's
//! barrier-to-barrier span against the per-stage quantiles exported by
//! the simulator ([`Simulator::stage_quantiles`]) and maintains an
//! exponentially-weighted estimate of the *drift factor* — the ratio of
//! observed to predicted stage time. A factor near 1.0 means the model is
//! calibrated; a sustained factor beyond the configured threshold means
//! every remaining prediction is suspect and the plan should be
//! reconsidered.
//!
//! [`Simulator::stage_quantiles`]: rb_sim::Simulator::stage_quantiles

use rb_core::SimDuration;
use rb_sim::StageQuantiles;

/// Drift-detection knobs.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Re-plan when the smoothed drift factor leaves
    /// `[1/replan_threshold, replan_threshold]`. Must be > 1.
    pub replan_threshold: f64,
    /// EWMA smoothing weight for new observations, in `(0, 1]`. `1.0`
    /// trusts only the latest stage; smaller values demand sustained
    /// drift before tripping.
    pub ewma_alpha: f64,
    /// Also trigger a re-plan at any barrier whose stage absorbed spot
    /// preemptions, regardless of the drift factor.
    pub replan_on_preemption: bool,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            // Wide enough that the executor's ordinary model mismatch
            // (noise, provisioning jitter) stays inside the band.
            replan_threshold: 1.15,
            ewma_alpha: 0.5,
            replan_on_preemption: true,
        }
    }
}

/// One barrier's drift reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftObservation {
    /// The completed stage (absolute index into the original spec).
    pub stage: usize,
    /// Observed barrier-to-barrier span, in seconds.
    pub observed_secs: f64,
    /// The model's mean span for this stage.
    pub predicted_mean_secs: f64,
    /// The model's p90 span for this stage.
    pub predicted_p90_secs: f64,
    /// `observed / predicted_mean` for this stage alone.
    pub ratio: f64,
    /// The smoothed drift factor after folding this observation in.
    pub drift_factor: f64,
    /// True when the observation fell outside the p10–p90 envelope.
    pub outside_envelope: bool,
}

/// Tracks observed-vs-predicted stage spans across a job.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: DriftConfig,
    /// Per-stage prediction envelope, absolute stage index.
    expected: Vec<StageQuantiles>,
    factor: f64,
    observations: Vec<DriftObservation>,
}

impl DriftMonitor {
    /// Creates a monitor over the plan's per-stage envelope (one entry
    /// per stage of the full spec, in order).
    pub fn new(expected: Vec<StageQuantiles>, config: DriftConfig) -> Self {
        DriftMonitor {
            config,
            expected,
            factor: 1.0,
            observations: Vec::new(),
        }
    }

    /// Folds a completed stage's observed span into the drift estimate.
    ///
    /// Contract: the EWMA factor is only ever updated with a **finite**
    /// ratio, so it stays finite forever. Three cases record a neutral
    /// observation (ratio 1.0) and leave the estimate untouched:
    ///
    /// * stages without an envelope entry (index out of range),
    /// * envelopes with `mean_secs <= 0` (a zero-length stage — e.g. a
    ///   degenerate spec with zero iterations — would otherwise divide
    ///   by zero and poison the factor with inf/NaN permanently),
    /// * a non-finite ratio from a non-finite observed span.
    pub fn observe(&mut self, stage: usize, observed: SimDuration) -> DriftObservation {
        let observed_secs = observed.as_secs_f64();
        let obs = match self.expected.get(stage) {
            Some(q) if q.mean_secs > 0.0 && (observed_secs / q.mean_secs).is_finite() => {
                let ratio = observed_secs / q.mean_secs;
                self.factor += self.config.ewma_alpha * (ratio - self.factor);
                DriftObservation {
                    stage,
                    observed_secs,
                    predicted_mean_secs: q.mean_secs,
                    predicted_p90_secs: q.p90_secs,
                    ratio,
                    drift_factor: self.factor,
                    outside_envelope: observed_secs < q.p10_secs || observed_secs > q.p90_secs,
                }
            }
            _ => DriftObservation {
                stage,
                observed_secs,
                predicted_mean_secs: 0.0,
                predicted_p90_secs: 0.0,
                ratio: 1.0,
                drift_factor: self.factor,
                outside_envelope: false,
            },
        };
        self.observations.push(obs);
        obs
    }

    /// Replaces the envelope for stages `start..` with freshly computed
    /// quantiles (whose `stage` fields are relative to `start`) — called
    /// after a re-plan changes the remaining allocation.
    pub fn retarget(&mut self, start: usize, quantiles: Vec<StageQuantiles>) {
        for q in quantiles {
            let absolute = start + q.stage;
            if let Some(slot) = self.expected.get_mut(absolute) {
                *slot = StageQuantiles {
                    stage: absolute,
                    ..q
                };
            }
        }
    }

    /// Folds a projected ratio into the EWMA without recording a stage
    /// observation — used by the mid-stage watchdog, whose evidence is a
    /// partial stage rather than a completed barrier span. Non-finite or
    /// non-positive ratios are ignored (same contract as
    /// [`DriftMonitor::observe`]).
    pub fn nudge(&mut self, ratio: f64) {
        if ratio.is_finite() && ratio > 0.0 {
            self.factor += self.config.ewma_alpha * (ratio - self.factor);
        }
    }

    /// Marks one stage's envelope as unusable so its eventual barrier
    /// observation takes the neutral path. Called after a watchdog fires
    /// mid-stage: the barrier-to-barrier span of that stage now includes
    /// a checkpoint/re-plan detour and would double-count drift the
    /// watchdog already folded in via [`DriftMonitor::nudge`].
    pub fn invalidate(&mut self, stage: usize) {
        if let Some(slot) = self.expected.get_mut(stage) {
            slot.mean_secs = 0.0;
        }
    }

    /// The per-stage envelope currently in force (absolute stage index).
    pub fn expected(&self) -> &[StageQuantiles] {
        &self.expected
    }

    /// The smoothed observed/predicted ratio (1.0 = calibrated).
    pub fn drift_factor(&self) -> f64 {
        self.factor
    }

    /// Resets the smoothed factor (used after a profile refit absorbs
    /// the observed drift into the model itself — keeping the old factor
    /// would dilate deadlines twice for the same slowdown).
    pub fn reset_factor(&mut self, factor: f64) {
        if factor.is_finite() && factor > 0.0 {
            self.factor = factor;
        }
    }

    /// True when the smoothed factor is outside the configured band.
    pub fn drifted(&self) -> bool {
        let t = self.config.replan_threshold.max(1.0);
        self.factor > t || self.factor < 1.0 / t
    }

    /// Every reading so far, in barrier order.
    pub fn observations(&self) -> &[DriftObservation] {
        &self.observations
    }

    /// Consumes the monitor, returning its readings.
    pub fn into_observations(self) -> Vec<DriftObservation> {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(means: &[f64]) -> Vec<StageQuantiles> {
        means
            .iter()
            .enumerate()
            .map(|(stage, &m)| StageQuantiles {
                stage,
                samples: 16,
                mean_secs: m,
                p10_secs: 0.9 * m,
                p50_secs: m,
                p90_secs: 1.1 * m,
            })
            .collect()
    }

    #[test]
    fn calibrated_observations_do_not_trip() {
        let mut mon = DriftMonitor::new(envelope(&[100.0, 200.0]), DriftConfig::default());
        let o = mon.observe(0, SimDuration::from_secs_f64(103.0));
        assert!(!mon.drifted());
        assert!(!o.outside_envelope);
        mon.observe(1, SimDuration::from_secs_f64(195.0));
        assert!(!mon.drifted());
        assert!((mon.drift_factor() - 1.0).abs() < 0.05);
    }

    #[test]
    fn sustained_slowdown_trips_the_threshold() {
        let mut mon = DriftMonitor::new(envelope(&[100.0, 100.0]), DriftConfig::default());
        let o = mon.observe(0, SimDuration::from_secs_f64(150.0));
        assert!(o.outside_envelope);
        // α = 0.5: one 1.5× stage lifts the factor to 1.25 > 1.15.
        assert!(mon.drifted());
        assert!((mon.drift_factor() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn speedup_drift_trips_symmetrically() {
        let config = DriftConfig {
            ewma_alpha: 1.0,
            ..DriftConfig::default()
        };
        let mut mon = DriftMonitor::new(envelope(&[100.0]), config);
        mon.observe(0, SimDuration::from_secs_f64(60.0));
        assert!(mon.drift_factor() < 1.0 / 1.15);
        assert!(mon.drifted(), "running fast is drift too");
    }

    #[test]
    fn retarget_replaces_the_tail_envelope() {
        let mut mon = DriftMonitor::new(envelope(&[100.0, 100.0, 100.0]), DriftConfig::default());
        // Re-plan after stage 0: stages 1..3 now expect 50 s.
        let fresh = envelope(&[50.0, 50.0]);
        mon.retarget(1, fresh);
        let o = mon.observe(1, SimDuration::from_secs_f64(50.0));
        assert!((o.ratio - 1.0).abs() < 1e-12);
        assert_eq!(o.predicted_mean_secs, 50.0);
        // Absolute stage indices were rewritten.
        let o2 = mon.observe(2, SimDuration::from_secs_f64(50.0));
        assert_eq!(o2.predicted_mean_secs, 50.0);
    }

    #[test]
    fn zero_length_stage_does_not_poison_the_factor() {
        // A degenerate envelope (mean 0) must not divide the observation
        // into inf/NaN: regression for the EWMA-poisoning bug.
        let mut mon = DriftMonitor::new(envelope(&[0.0, 100.0]), DriftConfig::default());
        let o = mon.observe(0, SimDuration::from_secs_f64(42.0));
        assert_eq!(o.ratio, 1.0);
        assert!(mon.drift_factor().is_finite());
        assert_eq!(mon.drift_factor(), 1.0);
        assert!(!mon.drifted());
        // The monitor still works on later, well-formed stages.
        mon.observe(1, SimDuration::from_secs_f64(150.0));
        assert!(mon.drift_factor().is_finite());
        assert!(mon.drifted());
    }

    #[test]
    fn non_finite_ratio_is_clamped_to_neutral() {
        // SimDuration saturates rather than carrying inf, so the worst
        // observable span is huge-but-finite; the factor must stay
        // finite through it. A subnormal envelope mean that would push
        // the ratio over f64::MAX is clamped to neutral.
        let mut mon = DriftMonitor::new(envelope(&[100.0]), DriftConfig::default());
        let o = mon.observe(0, SimDuration::from_millis(u64::MAX));
        assert!(o.ratio.is_finite());
        assert!(mon.drift_factor().is_finite());

        let mut tiny = envelope(&[100.0]);
        tiny[0].mean_secs = f64::MIN_POSITIVE;
        let mut mon = DriftMonitor::new(tiny, DriftConfig::default());
        let o = mon.observe(0, SimDuration::from_millis(u64::MAX));
        assert_eq!(o.ratio, 1.0, "overflowing ratio takes the neutral path");
        assert!(mon.drift_factor().is_finite());
        assert_eq!(mon.drift_factor(), 1.0);
    }

    #[test]
    fn nudge_moves_the_factor_and_rejects_non_finite() {
        let mut mon = DriftMonitor::new(envelope(&[100.0]), DriftConfig::default());
        mon.nudge(2.0);
        assert!((mon.drift_factor() - 1.5).abs() < 1e-12);
        mon.nudge(f64::NAN);
        mon.nudge(f64::INFINITY);
        mon.nudge(-1.0);
        assert!((mon.drift_factor() - 1.5).abs() < 1e-12);
        assert!(mon.observations().is_empty(), "nudges are not observations");
    }

    #[test]
    fn invalidate_makes_a_stage_neutral() {
        let mut mon = DriftMonitor::new(envelope(&[100.0, 100.0]), DriftConfig::default());
        mon.invalidate(0);
        let o = mon.observe(0, SimDuration::from_secs_f64(1e6));
        assert_eq!(o.ratio, 1.0);
        assert_eq!(mon.drift_factor(), 1.0);
    }

    #[test]
    fn unknown_stage_is_neutral() {
        let mut mon = DriftMonitor::new(envelope(&[100.0]), DriftConfig::default());
        let before = mon.drift_factor();
        let o = mon.observe(7, SimDuration::from_secs_f64(1e6));
        assert_eq!(o.ratio, 1.0);
        assert_eq!(mon.drift_factor(), before);
        assert!(!mon.drifted());
    }
}
