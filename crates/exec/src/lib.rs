//! The RubberBand executor: event-accurate execution of an allocation plan.
//!
//! Where [`rb_sim`] is the *planner's* coarse DAG model, this crate
//! is the reproduction's "reality": a fine-grained, discrete-event runtime
//! that drives the actual control loop of §5 —
//!
//! * the **cluster manager** ([`cluster`]) services ad-hoc scale requests
//!   against the simulated provider, pays provisioning and initialization
//!   latencies, and tracks every billable second;
//! * the **executor** ([`executor`]) schedules trials stage by stage:
//!   fair allocation, wave scheduling when GPUs are scarce, placement via
//!   the placement controller (or the scattered baseline for the Table 1
//!   ablation), checkpoint/migrate/restore between reallocations, noisy
//!   per-iteration training latencies, synchronization barriers, and
//!   survivor promotion;
//! * the **report** ([`report`]) collects what the paper's tables report:
//!   JCT, dollar cost under the billing model, final accuracy, per-stage
//!   timeline, migrations, utilization, and per-trial throughput.
//!
//! Because the executor samples its own noise independently of the
//! planner's Monte-Carlo model, comparing a plan's predicted JCT/cost with
//! the executed outcome is a genuine fidelity test (Table 2 "sim" vs
//! "real").
//!
//! [`asha`] additionally implements the ASHA baseline the paper compares
//! against in §7: asynchronous successive halving over a fixed worker
//! pool, with optional new-configuration sampling on free workers.

pub mod asha;
pub mod cluster;
pub mod executor;
pub mod report;
pub mod scheduler;

pub use asha::{run_asha, AshaConfig, AshaReport};
pub use cluster::{ClusterManager, RetryOutcome, RetryPolicy, SwitchDirective, SwitchOutcome};
pub use executor::{
    BarrierHook, BarrierSnapshot, ExecOptions, Executor, ExecutorCore, NoopHook, StepOutcome,
    UnitObservation, WatchdogSnapshot,
};
pub use report::{render_timeline, ExecutionReport, ExecutionTrace, StageRecord, TraceEvent};
pub use scheduler::{schedule_stage, StageSchedule};
