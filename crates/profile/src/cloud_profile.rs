//! The fitted cloud profile.

use rb_cloud::CloudPricing;
use rb_core::{Distribution, RbError, Result, SimDuration};

/// Observed capacity-fault tallies over a recent event window. Collected
/// by the executor's retry layer and folded back into the provisioning
/// model by [`CloudProfile::risk_from_events`], so residual re-plans
/// price the capacity risk the run is *actually seeing* (a degraded
/// zone, a brownout) rather than the calibrated steady state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CapacityEvents {
    /// Provisioning requests issued in the window.
    pub requests: u64,
    /// Requests denied (capacity or zone faults).
    pub denials: u64,
    /// Retry attempts spent recovering from denials.
    pub retries: u64,
    /// Instances lost to correlated zone outages.
    pub outage_kills: u64,
}

impl CapacityEvents {
    /// True when the window recorded no capacity trouble at all.
    pub fn is_calm(&self) -> bool {
        self.denials == 0 && self.retries == 0 && self.outage_kills == 0
    }
}

/// Everything the planner/simulator knows about the target cloud: pricing
/// plus the two provider-side latency distributions of §4.1 (scaling
/// latency and instance initialization latency) and the per-instance data
/// ingress volume.
#[derive(Debug, Clone)]
pub struct CloudProfile {
    /// Instance type, billing model, tier, and data price.
    pub pricing: CloudPricing,
    /// Scaling latency: seconds from provisioning request to hand-over
    /// (provider queuing delay).
    pub provision_delay: Distribution,
    /// Instance initialization latency: seconds to install dependencies
    /// and join the cluster after hand-over.
    pub init_latency: Distribution,
    /// Gigabytes of training data each new instance downloads once.
    pub dataset_gb: f64,
    /// Spot interruption rate per instance-hour (extension; zero for
    /// on-demand capacity and for the paper's experiments).
    pub spot_interruptions_per_hour: f64,
}

impl CloudProfile {
    /// A profile with constant provisioning/initialization latencies and no
    /// data ingress.
    pub fn new(pricing: CloudPricing) -> Self {
        CloudProfile {
            pricing,
            provision_delay: Distribution::Constant(30.0),
            init_latency: Distribution::Constant(60.0),
            dataset_gb: 0.0,
            spot_interruptions_per_hour: 0.0,
        }
    }

    /// Sets a constant provisioning delay.
    pub fn with_provision_delay(mut self, d: SimDuration) -> Self {
        self.provision_delay = Distribution::Constant(d.as_secs_f64());
        self
    }

    /// Sets a constant instance-initialization latency.
    pub fn with_init_latency(mut self, d: SimDuration) -> Self {
        self.init_latency = Distribution::Constant(d.as_secs_f64());
        self
    }

    /// Sets the provisioning-delay distribution.
    ///
    /// # Panics
    ///
    /// Panics if the distribution has negative or non-finite parameters.
    pub fn with_provision_delay_dist(mut self, d: Distribution) -> Self {
        d.validate().expect("invalid provision-delay distribution");
        self.provision_delay = d;
        self
    }

    /// Sets the init-latency distribution.
    ///
    /// # Panics
    ///
    /// Panics if the distribution has negative or non-finite parameters.
    pub fn with_init_latency_dist(mut self, d: Distribution) -> Self {
        d.validate().expect("invalid init-latency distribution");
        self.init_latency = d;
        self
    }

    /// Sets the per-instance dataset download volume (GB).
    ///
    /// # Panics
    ///
    /// Panics if `gb` is negative or non-finite.
    pub fn with_dataset_gb(mut self, gb: f64) -> Self {
        assert!(
            gb.is_finite() && gb >= 0.0,
            "dataset_gb must be finite and non-negative, got {gb}"
        );
        self.dataset_gb = gb;
        self
    }

    /// Enables spot interruptions at `rate` reclaims per instance-hour.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or non-finite.
    pub fn with_spot_interruptions(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "spot interruption rate must be finite and non-negative, got {rate}"
        );
        self.spot_interruptions_per_hour = rate;
        self
    }

    /// Checks the whole profile: both latency distributions well-formed,
    /// data volume and interruption rate finite and non-negative, and no
    /// negative prices. Builders already reject bad values one at a time;
    /// this covers profiles assembled by struct literal or deserialized.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        self.provision_delay.validate()?;
        self.init_latency.validate()?;
        if !self.dataset_gb.is_finite() || self.dataset_gb < 0.0 {
            return Err(RbError::InvalidConfig(format!(
                "dataset_gb must be finite and non-negative, got {}",
                self.dataset_gb
            )));
        }
        if !self.spot_interruptions_per_hour.is_finite() || self.spot_interruptions_per_hour < 0.0 {
            return Err(RbError::InvalidConfig(format!(
                "spot_interruptions_per_hour must be finite and non-negative, got {}",
                self.spot_interruptions_per_hour
            )));
        }
        let ty = &self.pricing.instance_type;
        for (what, price) in [
            ("on_demand_hourly", ty.on_demand_hourly),
            ("spot_hourly", ty.spot_hourly),
            ("data_price_per_gb", self.pricing.data_price_per_gb),
        ] {
            if price < rb_core::Cost::ZERO {
                return Err(RbError::InvalidConfig(format!(
                    "{what} must be non-negative, got {price}"
                )));
            }
        }
        Ok(())
    }

    /// Mean seconds from requesting an instance to it being usable:
    /// provisioning plus initialization.
    pub fn mean_scale_up_secs(&self) -> f64 {
        self.provision_delay.mean() + self.init_latency.mean()
    }

    /// Re-prices provisioning risk from an observed event window: the
    /// provision-delay distribution is stretched by the expected number
    /// of attempts a request will need under the observed denial rate.
    ///
    /// Two estimates are compared and the worse one wins: the *measured*
    /// expansion `1 + retries/requests` (what recovery actually cost so
    /// far, including outage re-provisioning) and the *stationary*
    /// expectation `1/(1 - p)` with
    /// `p = (denials + outage_kills)/requests` capped at 0.95 (what an
    /// ongoing denial rate implies for future requests). A calm window
    /// returns the profile unchanged, so risk pricing is bit-neutral
    /// when nothing went wrong.
    pub fn risk_from_events(&self, window: &CapacityEvents) -> CloudProfile {
        if window.requests == 0 || window.is_calm() {
            return self.clone();
        }
        let req = window.requests as f64;
        let measured = 1.0 + window.retries as f64 / req;
        let p = (((window.denials + window.outage_kills) as f64) / req).min(0.95);
        let stationary = 1.0 / (1.0 - p);
        let factor = measured.max(stationary);
        let mut risky = self.clone();
        risky.provision_delay = self.provision_delay.scaled(factor);
        risky
    }

    /// GPUs per instance (the allocable unit granularity).
    pub fn gpus_per_instance(&self) -> u32 {
        self.pricing.instance_type.gpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;

    #[test]
    fn builder_chain_sets_fields() {
        let p = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15))
            .with_dataset_gb(150.0);
        assert_eq!(p.provision_delay.mean(), 15.0);
        assert_eq!(p.init_latency.mean(), 15.0);
        assert_eq!(p.dataset_gb, 150.0);
        assert_eq!(p.mean_scale_up_secs(), 30.0);
        assert_eq!(p.gpus_per_instance(), 4);
    }

    #[test]
    fn stochastic_delays_supported() {
        let p = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay_dist(Distribution::lognormal_from_moments(20.0, 8.0));
        assert!((p.provision_delay.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn validate_accepts_the_default_profile() {
        let p = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_dataset_gb(150.0)
            .with_spot_interruptions(1.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_struct_literal_garbage() {
        let good = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let bad_delay = CloudProfile {
            provision_delay: Distribution::Constant(-1.0),
            ..good.clone()
        };
        assert!(bad_delay.validate().is_err());
        let bad_init = CloudProfile {
            init_latency: Distribution::Exponential { rate: f64::NAN },
            ..good.clone()
        };
        assert!(bad_init.validate().is_err());
        let bad_gb = CloudProfile {
            dataset_gb: f64::INFINITY,
            ..good.clone()
        };
        assert!(bad_gb.validate().is_err());
        let bad_rate = CloudProfile {
            spot_interruptions_per_hour: -0.5,
            ..good.clone()
        };
        assert!(bad_rate.validate().is_err());
        let mut bad_price = good.clone();
        bad_price.pricing.data_price_per_gb = rb_core::Cost::from_dollars(-0.01);
        assert!(bad_price.validate().is_err());
    }

    #[test]
    fn risk_from_events_stretches_provision_delay() {
        let p = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(30));
        // Calm window: untouched (bit-neutral for re-planning).
        let calm = CapacityEvents {
            requests: 10,
            ..CapacityEvents::default()
        };
        assert!(calm.is_calm());
        assert_eq!(p.risk_from_events(&calm).provision_delay.mean(), 30.0);
        assert_eq!(
            p.risk_from_events(&CapacityEvents::default())
                .provision_delay
                .mean(),
            30.0
        );
        // Half the requests denied: stationary expectation doubles the
        // delay (1/(1-0.5)), beating the measured 1 + 5/10 = 1.5.
        let rough = CapacityEvents {
            requests: 10,
            denials: 5,
            retries: 5,
            outage_kills: 0,
        };
        let risky = p.risk_from_events(&rough);
        assert!((risky.provision_delay.mean() - 60.0).abs() < 1e-9);
        // Heavy measured retries win over a mild denial rate.
        let churny = CapacityEvents {
            requests: 10,
            denials: 1,
            retries: 30,
            outage_kills: 0,
        };
        assert!((p.risk_from_events(&churny).provision_delay.mean() - 120.0).abs() < 1e-9);
        // The denial probability is capped, so a fully-denied window
        // stays finite.
        let dark = CapacityEvents {
            requests: 4,
            denials: 4,
            retries: 0,
            outage_kills: 8,
        };
        assert!(p.risk_from_events(&dark).provision_delay.mean().is_finite());
        // Everything else is preserved.
        assert_eq!(risky.init_latency.mean(), p.init_latency.mean());
        assert_eq!(risky.pricing, p.pricing);
    }

    #[test]
    #[should_panic(expected = "invalid provision-delay distribution")]
    fn builder_rejects_malformed_distribution() {
        let _ = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay_dist(Distribution::Uniform { lo: 5.0, hi: 1.0 });
    }

    #[test]
    #[should_panic(expected = "spot interruption rate")]
    fn builder_rejects_nan_interruption_rate() {
        let _ = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_spot_interruptions(f64::NAN);
    }
}
