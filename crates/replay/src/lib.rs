//! # rb-replay: deterministic trace replay for RubberBand runs
//!
//! A recorded run's JSONL trace (see [`rb_obs::schema`]) carries every
//! result-bearing event the executor emits: the `run` span pair with
//! the billing meters and winner, one `stage` span pair per executed
//! stage, the node/trial lifecycle events that make up the
//! [`ExecutionTrace`], per-trial throughput instants, and the winning
//! hyperparameter configuration. This crate inverts that encoding:
//! [`replay_jsonl`] parses a trace file **alone** — no planner, no
//! simulator, no re-execution — and reconstructs the
//! [`ExecutionReport`] and [`rb_obs::RunSummary`] of the run that
//! produced it, bit for bit.
//!
//! Exactness is by construction, not luck:
//!
//! * virtual time is integer milliseconds, so `t_ms`/`end_ms` fields
//!   round-trip timestamps exactly;
//! * money travels as integer micro-dollars (`*_cost_micros` fields);
//! * `f64` metrics (accuracy, throughput, utilization, float
//!   hyperparameters) rely on the exporter's shortest-roundtrip
//!   formatting, which `str::parse::<f64>` inverts exactly.
//!
//! The `repro replay` subcommand uses this to close the provenance
//! loop in CI: replay `repro_out/trace.jsonl`, re-run the live
//! workload, and assert the two reports render identically.
//!
//! The crate also ships the `rollup` binary (see [`rollup`]): a
//! fleet-analytics CLI that walks a directory of per-run manifest
//! files and aggregates cost/JCT/queue-wait/recovery distributions
//! into a byte-stable report.

pub mod rollup;

use rb_core::{Cost, NodeId, SimTime, TrialId};
use rb_exec::{ExecutionReport, ExecutionTrace, StageRecord, TraceEvent};
use rb_hpo::{Config, ConfigValue};
use rb_obs::json::{parse_json, Json};
use rb_obs::{CacheStats, RunSummary};
use std::collections::BTreeMap;

/// A run reconstructed from its trace: the execution report and the
/// rollup summary, both bit-identical to the live run's (for a trace
/// produced by a recording-on single-job run).
#[derive(Debug)]
pub struct ReplayedRun {
    /// The reconstructed execution report.
    pub report: ExecutionReport,
    /// The reconstructed end-of-run rollup.
    pub summary: RunSummary,
}

/// The integer value of `j`, if it is one exactly. The JSON parser
/// holds numbers as `f64`, which is exact for integers below 2^53 —
/// far above any id, timestamp, or micro-dollar amount we emit.
pub(crate) fn json_i64(j: &Json) -> Option<i64> {
    match j {
        Json::Num(v) if v.fract() == 0.0 && v.abs() <= 9_007_199_254_740_992.0 => Some(*v as i64),
        _ => None,
    }
}

/// Typed access to one event line's `fields` object.
struct Fields<'a>(&'a Json);

impl Fields<'_> {
    fn get(&self, key: &str) -> Option<&Json> {
        self.0.get(key)
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer field `{key}`"))
    }

    fn i64(&self, key: &str) -> Result<i64, String> {
        self.get(key)
            .and_then(json_i64)
            .ok_or_else(|| format!("missing or non-integer field `{key}`"))
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
    }
}

/// The numeric id of a `prefix:id` lane label.
fn lane_id(label: &str, prefix: &str) -> Option<u64> {
    label
        .strip_prefix(prefix)
        .and_then(|rest| rest.strip_prefix(':'))
        .and_then(|id| id.parse::<u64>().ok())
}

/// What the `exec`/`run` span end carries: everything only the
/// executor knew at teardown.
struct RunResult {
    end: SimTime,
    compute_cost: Cost,
    data_cost: Cost,
    best_trial: TrialId,
    best_accuracy: f64,
    migrations: u32,
    preemptions: u32,
    instances_provisioned: usize,
    faults_injected: u64,
    provision_retries: u64,
    checkpoint_fallbacks: u64,
    degraded_stages: u32,
    utilization: Option<f64>,
}

/// Replays a JSONL trace into the run's [`ExecutionReport`] and
/// [`RunSummary`] without re-executing anything. The stream is schema
/// validated first; the trace must contain exactly one `exec`/`run`
/// span pair on the global lane (i.e. a single-job, recording-on run —
/// the `repro trace` artifact's shape).
///
/// # Errors
///
/// Returns a human-readable description of the first problem: schema
/// violations, a missing or duplicated run span, or result fields that
/// are absent or mistyped.
pub fn replay_jsonl(text: &str) -> Result<ReplayedRun, String> {
    rb_obs::schema::validate_jsonl(text).map_err(|e| format!("schema: {e}"))?;

    let mut trace = ExecutionTrace::default();
    let mut stages: Vec<StageRecord> = Vec::new();
    let mut run_start: Option<SimTime> = None;
    let mut run_result: Option<RunResult> = None;
    let mut trial_throughput: BTreeMap<TrialId, f64> = BTreeMap::new();
    let mut best_config = Config::new();
    let mut counters: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut event_lines = 0usize;

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let doc = parse_json(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if let Some(metric) = doc.get("metric").and_then(Json::as_str) {
            if metric == "counter" {
                let scope = doc
                    .get("scope")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {lineno}: counter without scope"))?;
                let name = doc
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {lineno}: counter without name"))?;
                let value = doc
                    .get("value")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {lineno}: counter without value"))?;
                counters.insert((scope.to_owned(), name.to_owned()), value);
            }
            continue; // Histograms carry no report state.
        }
        event_lines += 1;
        let at = SimTime::from_millis(
            doc.get("t_ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {lineno}: event without t_ms"))?,
        );
        let scope = doc.get("scope").and_then(Json::as_str).unwrap_or("");
        if scope != "exec" {
            continue;
        }
        let name = doc.get("name").and_then(Json::as_str).unwrap_or("");
        let lane = doc.get("lane").and_then(Json::as_str).unwrap_or("");
        let kind = doc.get("kind").and_then(Json::as_str).unwrap_or("");
        let empty = Json::Obj(Vec::new());
        let fields = Fields(doc.get("fields").unwrap_or(&empty));
        let err = |e: String| format!("line {lineno}: {name}: {e}");

        match (name, kind) {
            ("node.up", "instant") => {
                if let Some(node) = lane_id(lane, "node") {
                    trace.events.push(TraceEvent::NodeUp {
                        node: NodeId::new(node),
                        at,
                    });
                }
            }
            ("node.down", "instant") => {
                if let Some(node) = lane_id(lane, "node") {
                    trace.events.push(TraceEvent::NodeDown {
                        node: NodeId::new(node),
                        at,
                        preempted: fields
                            .get("preempted")
                            .and_then(Json::as_bool)
                            .unwrap_or(false),
                    });
                }
            }
            ("trial.segment", "span") => {
                if let Some(trial) = lane_id(lane, "trial") {
                    let end = doc
                        .get("end_ms")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| err("span without end_ms".into()))?;
                    trace.events.push(TraceEvent::TrialSegment {
                        trial: TrialId::new(trial),
                        stage: fields.u64("stage").map_err(err)? as usize,
                        start: at,
                        end: SimTime::from_millis(end),
                        gpus: fields.u64("gpus").map_err(err)? as u32,
                    });
                }
            }
            ("migration", "instant") => {
                if let Some(trial) = lane_id(lane, "trial") {
                    trace.events.push(TraceEvent::Migration {
                        trial: TrialId::new(trial),
                        at,
                    });
                }
            }
            ("barrier", "instant") if lane == "global" => {
                trace.events.push(TraceEvent::Barrier {
                    stage: fields.u64("stage").map_err(err)? as usize,
                    at,
                });
            }
            ("stage", "span_end") => {
                stages.push(StageRecord {
                    stage: fields.u64("stage").map_err(err)? as usize,
                    train_start: SimTime::from_millis(fields.u64("train_start_ms").map_err(err)?),
                    sync_end: at,
                    trials: fields.u64("trials").map_err(err)? as u32,
                    gpus_per_trial: fields.u64("gpus_per_trial").map_err(err)? as u32,
                    instances: fields.u64("instances").map_err(err)? as u32,
                    migrations: fields.u64("migrations").map_err(err)? as u32,
                });
            }
            ("run", "span_start") if lane == "global" => {
                let previous = run_start.replace(at);
                if previous.is_some() {
                    return Err(err(
                        "second run span (multi-job traces not replayable)".into()
                    ));
                }
            }
            ("run", "span_end") if lane == "global" => {
                let result = RunResult {
                    end: at,
                    compute_cost: Cost::from_micros(
                        fields.i64("compute_cost_micros").map_err(err)?,
                    ),
                    data_cost: Cost::from_micros(fields.i64("data_cost_micros").map_err(err)?),
                    best_trial: TrialId::new(fields.u64("best_trial").map_err(err)?),
                    best_accuracy: fields.f64("best_accuracy").map_err(err)?,
                    migrations: fields.u64("migrations").map_err(err)? as u32,
                    preemptions: fields.u64("preemptions").map_err(err)? as u32,
                    instances_provisioned: fields.u64("instances_provisioned").map_err(err)?
                        as usize,
                    faults_injected: fields.u64("faults_injected").map_err(err)?,
                    provision_retries: fields.u64("provision_retries").map_err(err)?,
                    checkpoint_fallbacks: fields.u64("checkpoint_fallbacks").map_err(err)?,
                    degraded_stages: fields.u64("degraded_stages").map_err(err)? as u32,
                    utilization: fields.get("utilization").and_then(Json::as_f64),
                };
                if run_result.replace(result).is_some() {
                    return Err(err("second run span end".into()));
                }
            }
            ("trial.throughput", "instant") => {
                if let Some(trial) = lane_id(lane, "trial") {
                    trial_throughput.insert(TrialId::new(trial), fields.f64("sps").map_err(err)?);
                }
            }
            ("run.best_param", "instant") => {
                let param = fields
                    .get("param")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err("missing param name".into()))?
                    .to_owned();
                let value = if let Some(v) = fields.get("float") {
                    ConfigValue::Float(v.as_f64().ok_or_else(|| err("bad float".into()))?)
                } else if let Some(v) = fields.get("int") {
                    ConfigValue::Int(json_i64(v).ok_or_else(|| err("bad int".into()))?)
                } else if let Some(v) = fields.get("choice") {
                    ConfigValue::Choice(
                        v.as_str()
                            .ok_or_else(|| err("bad choice".into()))?
                            .to_owned(),
                    )
                } else {
                    return Err(err("param without a typed value".into()));
                };
                best_config.set(param, value);
            }
            _ => {}
        }
    }

    let start = run_start.ok_or("trace has no exec/run span start on the global lane")?;
    let result = run_result.ok_or("trace has no exec/run span end on the global lane")?;
    let counter = |scope: &str, name: &str| -> u64 {
        counters
            .get(&(scope.to_owned(), name.to_owned()))
            .copied()
            .unwrap_or(0)
    };

    let report = ExecutionReport {
        jct: result.end - start,
        compute_cost: result.compute_cost,
        data_cost: result.data_cost,
        best_trial: result.best_trial,
        best_config,
        best_accuracy: result.best_accuracy,
        stages,
        migrations: result.migrations,
        preemptions: result.preemptions,
        instances_provisioned: result.instances_provisioned,
        utilization: result.utilization,
        trial_throughput,
        faults_injected: result.faults_injected,
        provision_retries: result.provision_retries,
        checkpoint_fallbacks: result.checkpoint_fallbacks,
        degraded_stages: result.degraded_stages,
        trace,
    };

    // The same rollup arithmetic as `rubberband::summarize_run`, fed
    // from the reconstructed report and the trace's own metric lines.
    let gpu_busy_secs = report.trace.busy_gpu_seconds();
    let gpu_held_secs = match report.utilization {
        Some(u) if u > 0.0 => gpu_busy_secs / u,
        _ => 0.0,
    };
    let summary = RunSummary {
        jct: report.jct,
        compute_cost: report.compute_cost,
        data_cost: report.data_cost,
        best_accuracy: report.best_accuracy,
        stages: report.stages.len(),
        migrations: report.migrations as usize,
        preemptions: report.preemptions as usize,
        instances_provisioned: report.instances_provisioned,
        gpu_busy_secs,
        gpu_held_secs,
        plan_cache: CacheStats {
            hits: counter("sim", "plan_cache_hits"),
            misses: counter("sim", "plan_cache_misses"),
            evictions: counter("sim", "plan_cache_evictions"),
        },
        stage_memo: CacheStats {
            hits: counter("sim", "stage_memo_hits"),
            misses: counter("sim", "stage_memo_misses"),
            evictions: counter("sim", "stage_memo_evictions"),
        },
        replans_applied: counter("ctrl", "replans_applied") as usize,
        replans_rejected: counter("ctrl", "replans_rejected") as usize,
        faults_injected: report.faults_injected,
        provision_retries: report.provision_retries,
        checkpoint_fallbacks: report.checkpoint_fallbacks,
        degraded_stages: report.degraded_stages,
        trace_events: event_lines,
    };

    Ok(ReplayedRun { report, summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_core::SimDuration;
    use rb_obs::{export::export_jsonl, Lane, MemoryRecorder, Recorder, SpanTracker, Value};

    /// Drives a miniature "executor run" over a recorder: run span,
    /// one stage span pair, the trace events, and the result payload.
    fn record_mini_run(rec: &dyn Recorder) {
        let mut spans = SpanTracker::new();
        let t = SimTime::from_millis;
        let (run, _) = spans.open();
        rec.span_start(t(0), "exec", "run", Lane::Global, run, None, vec![]);
        let (stage, parent) = spans.open();
        rec.span_start(
            t(0),
            "exec",
            "stage",
            Lane::Stage(0),
            stage,
            parent,
            vec![("stage", 0u64.into())],
        );
        rec.instant(t(5), "exec", "node.up", Lane::Node(0), vec![]);
        rec.instant(t(5), "exec", "migration", Lane::Trial(3), vec![]);
        rec.span(
            t(5),
            t(105),
            "exec",
            "trial.segment",
            Lane::Trial(3),
            vec![("stage", 0u64.into()), ("gpus", 2u64.into())],
        );
        rec.instant(
            t(110),
            "exec",
            "barrier",
            Lane::Global,
            vec![("stage", 0u64.into())],
        );
        rec.instant(
            t(110),
            "exec",
            "node.down",
            Lane::Node(0),
            vec![("preempted", true.into())],
        );
        rec.span_end(
            t(110),
            "exec",
            "stage",
            Lane::Stage(0),
            spans.close(),
            vec![
                ("stage", 0u64.into()),
                ("train_start_ms", 5u64.into()),
                ("trials", 1u64.into()),
                ("gpus_per_trial", 2u64.into()),
                ("instances", 1u64.into()),
                ("migrations", 1u64.into()),
            ],
        );
        rec.instant(
            t(110),
            "exec",
            "trial.throughput",
            Lane::Trial(3),
            vec![("sps", 123.456.into())],
        );
        rec.instant(
            t(110),
            "exec",
            "run.best_param",
            Lane::Global,
            vec![("param", "lr".into()), ("float", 0.0625.into())],
        );
        rec.instant(
            t(110),
            "exec",
            "run.best_param",
            Lane::Global,
            vec![("param", "opt".into()), ("choice", "sgd".into())],
        );
        let result: Vec<(&'static str, Value)> = vec![
            ("compute_cost_micros", 1_500_000i64.into()),
            ("data_cost_micros", 20_000i64.into()),
            ("best_trial", 3u64.into()),
            ("best_accuracy", 0.875.into()),
            ("migrations", 1u64.into()),
            ("preemptions", 1u64.into()),
            ("instances_provisioned", 1u64.into()),
            ("faults_injected", 0u64.into()),
            ("provision_retries", 0u64.into()),
            ("checkpoint_fallbacks", 0u64.into()),
            ("degraded_stages", 0u64.into()),
            ("utilization", 0.8.into()),
        ];
        rec.span_end(t(110), "exec", "run", Lane::Global, spans.close(), result);
        rec.counter_add("sim", "plan_cache_hits", 4);
        rec.counter_add("sim", "plan_cache_misses", 2);
        rec.counter_add("ctrl", "replans_applied", 1);
        rec.counter_add("ctrl", "replans_rejected", 2);
    }

    #[test]
    fn replays_a_recorded_run_exactly() {
        let rec = MemoryRecorder::new();
        record_mini_run(&rec);
        let jsonl = export_jsonl(&rec.finish());
        let run = replay_jsonl(&jsonl).expect("replays");

        let r = &run.report;
        assert_eq!(r.jct, SimDuration::from_millis(110));
        assert_eq!(r.compute_cost, Cost::from_micros(1_500_000));
        assert_eq!(r.data_cost, Cost::from_micros(20_000));
        assert_eq!(r.best_trial, TrialId::new(3));
        assert_eq!(r.best_accuracy, 0.875);
        assert_eq!(r.stages.len(), 1);
        assert_eq!(
            r.stages[0],
            StageRecord {
                stage: 0,
                train_start: SimTime::from_millis(5),
                sync_end: SimTime::from_millis(110),
                trials: 1,
                gpus_per_trial: 2,
                instances: 1,
                migrations: 1,
            }
        );
        assert_eq!(r.utilization, Some(0.8));
        assert_eq!(r.trial_throughput[&TrialId::new(3)], 123.456);
        assert_eq!(r.best_config.get_f64("lr"), Some(0.0625));
        assert_eq!(
            r.best_config.get("opt"),
            Some(&ConfigValue::Choice("sgd".into()))
        );
        assert_eq!(r.trace.events.len(), 5);
        assert!(r.trace.check_invariants().is_ok());
        // busy = 100 ms × 2 GPUs = 0.2 GPU-seconds; held = busy / 0.8.
        assert_eq!(run.summary.gpu_busy_secs, 0.2);
        assert_eq!(run.summary.gpu_held_secs, 0.25);
        assert_eq!(run.summary.plan_cache.hits, 4);
        assert_eq!(run.summary.replans_applied, 1);
        assert_eq!(run.summary.replans_rejected, 2);
        assert_eq!(run.summary.trace_events, 12);
    }

    #[test]
    fn rejects_traces_without_a_run_span() {
        let rec = MemoryRecorder::new();
        rec.instant(SimTime::ZERO, "exec", "node.up", Lane::Node(0), Vec::new());
        let jsonl = export_jsonl(&rec.finish());
        let e = replay_jsonl(&jsonl).unwrap_err();
        assert!(e.contains("no exec/run span start"), "{e}");
    }

    #[test]
    fn rejects_malformed_streams() {
        assert!(replay_jsonl("not json\n").unwrap_err().contains("schema"));
    }
}
