//! Property-based tests for the foundation types.
//!
//! These are randomized property checks driven by the crate's own
//! deterministic [`Prng`] (fixed seeds, fixed iteration counts), so they
//! run offline with no external test-framework dependency and fail
//! reproducibly: a reported case can be re-run bit-identically.

use rb_core::{Cost, Distribution, Prng, SimDuration, SimTime};

const CASES: u64 = 512;

/// Per-second billing is (approximately) additive in duration: billing
/// two spans separately differs from billing their union by at most
/// rounding (1 μ$ per charge).
#[test]
fn per_hour_billing_is_additive() {
    let mut rng = Prng::seed_from_u64(0xB111_0001);
    for _ in 0..CASES {
        let hourly_cents = 1 + rng.next_below(99_999) as i64;
        let a_ms = rng.next_below(10_000_000);
        let b_ms = rng.next_below(10_000_000);
        let price = Cost::from_micros(hourly_cents * 10_000);
        let split = price.per_hour_for(SimDuration::from_millis(a_ms))
            + price.per_hour_for(SimDuration::from_millis(b_ms));
        let joint = price.per_hour_for(SimDuration::from_millis(a_ms + b_ms));
        assert!(
            (split - joint).as_micros().abs() <= 1,
            "additivity violated: cents={hourly_cents} a={a_ms} b={b_ms}"
        );
    }
}

/// Billing is monotone in duration and zero for zero time.
#[test]
fn per_hour_billing_is_monotone() {
    let mut rng = Prng::seed_from_u64(0xB111_0002);
    for _ in 0..CASES {
        let hourly_cents = 1 + rng.next_below(99_999) as i64;
        let a_ms = rng.next_below(10_000_000);
        let extra_ms = rng.next_below(10_000_000);
        let price = Cost::from_micros(hourly_cents * 10_000);
        let small = price.per_hour_for(SimDuration::from_millis(a_ms));
        let big = price.per_hour_for(SimDuration::from_millis(a_ms + extra_ms));
        assert!(
            big >= small,
            "monotonicity violated: cents={hourly_cents} a={a_ms} extra={extra_ms}"
        );
        assert_eq!(price.per_hour_for(SimDuration::ZERO), Cost::ZERO);
    }
}

/// Dollars round-trip through micro-dollars at micro precision.
#[test]
fn cost_dollar_roundtrip() {
    let mut rng = Prng::seed_from_u64(0xB111_0003);
    for _ in 0..CASES {
        let d = rng.uniform(-1e7, 1e7);
        let c = Cost::from_dollars(d);
        assert!(
            (c.as_dollars() - d).abs() < 1e-6,
            "roundtrip drifted for {d}"
        );
    }
}

/// Time arithmetic round-trips.
#[test]
fn time_roundtrip() {
    let mut rng = Prng::seed_from_u64(0xB111_0004);
    for _ in 0..CASES {
        let base_ms = rng.next_below(u64::MAX / 4);
        let delta_ms = rng.next_below(u64::MAX / 4);
        let t = SimTime::from_millis(base_ms);
        let d = SimDuration::from_millis(delta_ms);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).saturating_since(t), d);
    }
}

/// Latency distributions used by the execution model never produce
/// negative samples, and sampling is deterministic per seed.
#[test]
fn latency_distributions_are_nonnegative_and_deterministic() {
    let mut rng = Prng::seed_from_u64(0xB111_0005);
    for _ in 0..CASES {
        let seed = rng.next_below(10_000);
        let mean = rng.uniform(0.001, 1000.0);
        let spread = rng.uniform(0.0, 3.0);
        for d in [
            Distribution::Constant(mean),
            Distribution::Uniform { lo: 0.0, hi: mean },
            Distribution::normal(mean, spread * mean),
            Distribution::lognormal_from_moments(mean, spread.max(1e-6) * mean),
            Distribution::Exponential { rate: 1.0 / mean },
            Distribution::ShiftedExponential {
                base: mean,
                rate: 1.0 / mean,
            },
        ] {
            let mut a = Prng::seed_from_u64(seed);
            let mut b = Prng::seed_from_u64(seed);
            for _ in 0..32 {
                let xa = d.sample(&mut a);
                let xb = d.sample(&mut b);
                assert_eq!(xa, xb);
                assert!(xa >= 0.0, "{:?} sampled {}", d, xa);
                assert!(xa.is_finite());
            }
        }
    }
}

/// `scaled(k)` scales samples of constant/uniform/normal families by
/// exactly k (same underlying uniforms).
#[test]
fn scaled_distribution_scales_samples() {
    let mut rng = Prng::seed_from_u64(0xB111_0006);
    for _ in 0..CASES {
        let seed = rng.next_below(10_000);
        let mean = rng.uniform(0.01, 100.0);
        let k = rng.uniform(0.01, 100.0);
        for d in [
            Distribution::Constant(mean),
            Distribution::Uniform { lo: 0.0, hi: mean },
            Distribution::normal(mean, mean / 10.0),
        ] {
            let s = d.scaled(k);
            let mut a = Prng::seed_from_u64(seed);
            let mut b = Prng::seed_from_u64(seed);
            for _ in 0..16 {
                let base = d.sample(&mut a);
                let scaled = s.sample(&mut b);
                assert!(
                    (scaled - base * k).abs() <= 1e-9 * (1.0 + scaled.abs()),
                    "scaled({k}) of {d:?}: {scaled} vs {base} * {k}"
                );
            }
        }
    }
}
