//! Hyperband as a multi-job (Fig. 6's "collection of specifications"):
//! plan and execute every bracket independently, then report the best
//! configuration found and the total bill.
//!
//! Run with: `cargo run --release --example hyperband_multi_job`

use rubberband::prelude::*;
use rubberband::rb_cloud::catalog::P3_8XLARGE;
use rubberband::rb_hpo::{hyperband_brackets, Dim};
use rubberband::rb_train::task::resnet152_cifar100;

fn main() {
    let task = resnet152_cifar100();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15));
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .add("weight_decay", Dim::LogUniform { lo: 1e-5, hi: 1e-2 })
        .build()
        .unwrap();

    // Hyperband(R=27, η=3): four brackets from exploratory to committed.
    let brackets = hyperband_brackets(1, 27, 3).unwrap();
    println!(
        "hyperband: {} brackets, R = 27 epochs, η = 3\n",
        brackets.len()
    );

    let deadline = SimDuration::from_mins(45);
    let mut total = Cost::ZERO;
    let mut best: Option<(f64, Config, usize)> = None;
    for (i, (params, spec)) in brackets.iter().enumerate() {
        let out = rubberband::compile_plan(spec, &physics, &cloud, deadline).unwrap();
        let report = rubberband::execute(
            spec,
            &out.plan,
            &task,
            &physics,
            &cloud,
            &space,
            7 + i as u64,
        )
        .unwrap();
        println!(
            "bracket {i}: SHA(n={}, r={}, R={}) plan {} -> JCT {} cost {} best {:.1}%",
            params.n,
            params.r,
            params.big_r,
            out.plan,
            report.jct,
            report.total_cost(),
            report.best_accuracy * 100.0
        );
        total += report.total_cost();
        if best
            .as_ref()
            .map_or(true, |(a, _, _)| report.best_accuracy > *a)
        {
            best = Some((report.best_accuracy, report.best_config.clone(), i));
        }
    }
    let (acc, cfg, bracket) = best.unwrap();
    println!(
        "\noverall winner from bracket {bracket}: {:.1}% with {cfg}",
        acc * 100.0
    );
    println!("total spend across brackets: {total}");
}
