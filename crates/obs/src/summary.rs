//! The [`RunSummary`] rollup: one screen of numbers answering "where
//! did the time and money go" for a single execution.
//!
//! Built by the `rubberband` facade from the execution report, the
//! simulator cache statistics, and the adaptation log. Every field is
//! either an exact integer (virtual milliseconds, micro-dollars,
//! counts) or an f64 computed in a deterministic order, so the rendered
//! text is byte-stable across machines for a given seed and can be
//! diffed in CI (see `scripts/verify.sh`).

use rb_core::{Cost, SimDuration};
use std::fmt::Write as _;

/// Hit/miss/eviction counts for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

/// End-of-run rollup surfaced by `rubberband::execute*` and printed by
/// the `repro`/`bench` binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Job completion time.
    pub jct: SimDuration,
    /// Instance-hours (or function) compute charges.
    pub compute_cost: Cost,
    /// Data ingress charges.
    pub data_cost: Cost,
    /// Best accuracy reached by the surviving trial.
    pub best_accuracy: f64,
    /// Number of executed stages.
    pub stages: usize,
    /// Checkpoint migrations performed.
    pub migrations: usize,
    /// Spot preemptions absorbed.
    pub preemptions: usize,
    /// Instances provisioned over the whole run.
    pub instances_provisioned: usize,
    /// GPU-seconds spent training.
    pub gpu_busy_secs: f64,
    /// GPU-seconds paid for (busy + idle); 0 if unknown.
    pub gpu_held_secs: f64,
    /// Prediction (plan) cache counters from the simulator.
    pub plan_cache: CacheStats,
    /// Stage-sample memo counters from the simulator.
    pub stage_memo: CacheStats,
    /// Re-plans proposed and applied by the controller.
    pub replans_applied: usize,
    /// Re-plans proposed but rejected (infeasible or not better).
    pub replans_rejected: usize,
    /// Faults injected by the chaos layer (all zero without a fault
    /// plan): capacity denials, stragglers, hardware failures, degraded
    /// nodes, corrupted checkpoint writes.
    pub faults_injected: u64,
    /// Provisioning retry rounds issued by the resilient executor.
    pub provision_retries: u64,
    /// Checkpoint fetches that fell back to an older generation.
    pub checkpoint_fallbacks: u64,
    /// Stages that ran degraded on reduced capacity.
    pub degraded_stages: u32,
    /// Structured events captured by the recorder (0 with the no-op).
    pub trace_events: usize,
}

impl RunSummary {
    /// GPU-seconds paid for but not training.
    pub fn gpu_idle_secs(&self) -> f64 {
        (self.gpu_held_secs - self.gpu_busy_secs).max(0.0)
    }

    /// Busy fraction of held GPU time, if any time was held.
    pub fn utilization(&self) -> Option<f64> {
        if self.gpu_held_secs > 0.0 {
            Some(self.gpu_busy_secs / self.gpu_held_secs)
        } else {
            None
        }
    }

    /// Total cost (compute + data).
    pub fn total_cost(&self) -> Cost {
        self.compute_cost + self.data_cost
    }

    /// Renders the summary as stable, diffable text.
    pub fn render(&self) -> String {
        let mut out = String::from("run summary:\n");
        let _ = writeln!(out, "  jct_ms              = {}", self.jct.as_millis());
        let _ = writeln!(
            out,
            "  compute_cost_usd    = {}",
            fmt_micros(self.compute_cost)
        );
        let _ = writeln!(
            out,
            "  data_cost_usd       = {}",
            fmt_micros(self.data_cost)
        );
        let _ = writeln!(out, "  best_accuracy       = {:.4}", self.best_accuracy);
        let _ = writeln!(out, "  stages              = {}", self.stages);
        let _ = writeln!(out, "  migrations          = {}", self.migrations);
        let _ = writeln!(out, "  preemptions         = {}", self.preemptions);
        let _ = writeln!(
            out,
            "  instances           = {}",
            self.instances_provisioned
        );
        let _ = writeln!(out, "  gpu_busy_secs       = {:.3}", self.gpu_busy_secs);
        let _ = writeln!(out, "  gpu_idle_secs       = {:.3}", self.gpu_idle_secs());
        match self.utilization() {
            Some(u) => {
                let _ = writeln!(out, "  gpu_utilization     = {u:.3}");
            }
            None => {
                let _ = writeln!(out, "  gpu_utilization     = n/a");
            }
        }
        let _ = writeln!(
            out,
            "  plan_cache          = {}",
            fmt_cache(&self.plan_cache)
        );
        let _ = writeln!(
            out,
            "  stage_memo          = {}",
            fmt_cache(&self.stage_memo)
        );
        let _ = writeln!(
            out,
            "  replans             = applied {} rejected {}",
            self.replans_applied, self.replans_rejected
        );
        let _ = writeln!(
            out,
            "  faults              = injected {} retries {} fallbacks {} degraded_stages {}",
            self.faults_injected,
            self.provision_retries,
            self.checkpoint_fallbacks,
            self.degraded_stages
        );
        let _ = writeln!(out, "  trace_events        = {}", self.trace_events);
        out
    }

    /// The summary as one JSON object (single line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"jct_ms\":{}", self.jct.as_millis());
        let _ = write!(
            out,
            ",\"compute_cost_micros\":{}",
            self.compute_cost.as_micros()
        );
        let _ = write!(out, ",\"data_cost_micros\":{}", self.data_cost.as_micros());
        let _ = write!(out, ",\"best_accuracy\":{}", self.best_accuracy);
        let _ = write!(out, ",\"stages\":{}", self.stages);
        let _ = write!(out, ",\"migrations\":{}", self.migrations);
        let _ = write!(out, ",\"preemptions\":{}", self.preemptions);
        let _ = write!(out, ",\"instances\":{}", self.instances_provisioned);
        let _ = write!(out, ",\"gpu_busy_secs\":{}", self.gpu_busy_secs);
        let _ = write!(out, ",\"gpu_idle_secs\":{}", self.gpu_idle_secs());
        let _ = write!(
            out,
            ",\"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}",
            self.plan_cache.hits, self.plan_cache.misses, self.plan_cache.evictions
        );
        let _ = write!(
            out,
            ",\"stage_memo\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}",
            self.stage_memo.hits, self.stage_memo.misses, self.stage_memo.evictions
        );
        let _ = write!(
            out,
            ",\"replans_applied\":{},\"replans_rejected\":{}",
            self.replans_applied, self.replans_rejected
        );
        let _ = write!(
            out,
            ",\"faults_injected\":{},\"provision_retries\":{},\"checkpoint_fallbacks\":{},\
             \"degraded_stages\":{}",
            self.faults_injected,
            self.provision_retries,
            self.checkpoint_fallbacks,
            self.degraded_stages
        );
        let _ = write!(out, ",\"trace_events\":{}", self.trace_events);
        out.push('}');
        out
    }
}

/// Exact dollars with six decimals from integer micro-dollars (no
/// float round-trip, so the text cannot drift across platforms).
fn fmt_micros(cost: Cost) -> String {
    let micros = cost.as_micros();
    let sign = if micros < 0 { "-" } else { "" };
    let abs = micros.unsigned_abs();
    format!("{sign}{}.{:06}", abs / 1_000_000, abs % 1_000_000)
}

fn fmt_cache(stats: &CacheStats) -> String {
    format!(
        "hits {} misses {} evictions {} (hit rate {:.3})",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hit_rate()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSummary {
        RunSummary {
            jct: SimDuration::from_millis(1_234_567),
            compute_cost: Cost::from_micros(12_345_678),
            data_cost: Cost::ZERO,
            best_accuracy: 0.91234,
            stages: 4,
            migrations: 3,
            preemptions: 1,
            instances_provisioned: 16,
            gpu_busy_secs: 100.0,
            gpu_held_secs: 125.0,
            plan_cache: CacheStats {
                hits: 30,
                misses: 10,
                evictions: 0,
            },
            stage_memo: CacheStats {
                hits: 90,
                misses: 10,
                evictions: 2,
            },
            replans_applied: 1,
            replans_rejected: 0,
            faults_injected: 5,
            provision_retries: 2,
            checkpoint_fallbacks: 1,
            degraded_stages: 1,
            trace_events: 123,
        }
    }

    #[test]
    fn render_is_stable_and_exact() {
        let text = sample().render();
        assert!(text.contains("jct_ms              = 1234567"));
        assert!(text.contains("compute_cost_usd    = 12.345678"));
        assert!(text.contains("data_cost_usd       = 0.000000"));
        assert!(text.contains("gpu_idle_secs       = 25.000"));
        assert!(text.contains("gpu_utilization     = 0.800"));
        assert!(
            text.contains("plan_cache          = hits 30 misses 10 evictions 0 (hit rate 0.750)")
        );
        assert!(text
            .contains("faults              = injected 5 retries 2 fallbacks 1 degraded_stages 1"));
        assert_eq!(text, sample().render());
    }

    #[test]
    fn json_form_parses() {
        let json = sample().to_json();
        let parsed = crate::json::parse_json(&json).expect("summary json parses");
        assert_eq!(parsed.get("jct_ms").unwrap().as_u64(), Some(1_234_567));
        assert_eq!(
            parsed
                .get("plan_cache")
                .unwrap()
                .get("hits")
                .unwrap()
                .as_u64(),
            Some(30)
        );
    }

    #[test]
    fn cache_rates() {
        let empty = CacheStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
        let merged = sample().plan_cache.merged(&sample().stage_memo);
        assert_eq!(merged.hits, 120);
        assert_eq!(merged.evictions, 2);
    }

    #[test]
    fn negative_costs_format_exactly() {
        assert_eq!(fmt_micros(Cost::from_micros(-1_500_000)), "-1.500000");
        assert_eq!(fmt_micros(Cost::from_micros(1)), "0.000001");
    }
}
