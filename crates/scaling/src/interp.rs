//! The profile-fitted scaling model.
//!
//! RubberBand's profiler measures iteration latency at power-of-two GPU
//! allocations and interpolates between them (§5). [`InterpolatedScaling`]
//! is that fitted representation: piecewise-linear in `log2(gpus)`, clamped
//! to the measured range. The planner only ever consults this fitted model
//! — never the analytic ground truth — mirroring the paper's separation of
//! profiling from planning.

use crate::{PlacementQuality, ScalingModel};
use rb_core::{RbError, Result};

/// Iteration latency interpolated from profiled `(gpus, seconds)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpolatedScaling {
    /// Knots as `(log2(gpus), latency_secs)`, sorted by the first element.
    knots: Vec<(f64, f64)>,
    batch_size: u32,
    /// Multiplier applied to latency when workers are scattered. The
    /// profiler measures packed placements; the penalty is estimated
    /// separately (or left at a conservative default).
    scattered_factor: f64,
}

impl InterpolatedScaling {
    /// Builds a fitted model from measured `(gpus, latency_secs)` samples.
    ///
    /// Points need not be sorted; duplicates of the same GPU count are
    /// averaged.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Profiling`] if `points` is empty or contains a
    /// zero GPU count or a non-positive latency.
    pub fn from_points(points: &[(u32, f64)], batch_size: u32) -> Result<Self> {
        if points.is_empty() {
            return Err(RbError::Profiling("no profiling points".into()));
        }
        let mut grouped: std::collections::BTreeMap<u32, (f64, u32)> =
            std::collections::BTreeMap::new();
        for &(g, lat) in points {
            if g == 0 {
                return Err(RbError::Profiling("profiled latency at 0 GPUs".into()));
            }
            if !(lat.is_finite() && lat > 0.0) {
                return Err(RbError::Profiling(format!(
                    "non-positive latency {lat} at {g} GPUs"
                )));
            }
            let e = grouped.entry(g).or_insert((0.0, 0));
            e.0 += lat;
            e.1 += 1;
        }
        let knots = grouped
            .into_iter()
            .map(|(g, (sum, n))| (f64::from(g).log2(), sum / f64::from(n)))
            .collect();
        Ok(InterpolatedScaling {
            knots,
            batch_size,
            scattered_factor: 2.0,
        })
    }

    /// Sets the latency multiplier applied for scattered placements.
    pub fn with_scattered_factor(mut self, factor: f64) -> Self {
        debug_assert!(
            factor >= 1.0,
            "scattered placement cannot speed training up"
        );
        self.scattered_factor = factor;
        self
    }

    /// The profiled GPU counts (knot positions), smallest first.
    pub fn profiled_gpu_counts(&self) -> Vec<u32> {
        self.knots
            .iter()
            .map(|&(lg, _)| (2f64.powf(lg)).round() as u32)
            .collect()
    }
}

impl ScalingModel for InterpolatedScaling {
    fn iter_latency_secs(&self, gpus: u32, placement: PlacementQuality) -> f64 {
        assert!(gpus > 0, "cannot train on zero GPUs");
        let base = rb_core::stats::lerp_clamped(&self.knots, f64::from(gpus).log2());
        match placement {
            PlacementQuality::Packed => base,
            PlacementQuality::Scattered => base * self.scattered_factor,
        }
    }

    fn batch_size(&self) -> u32 {
        self.batch_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::AnalyticScaling;
    use crate::zoo::RESNET50;

    #[test]
    fn exact_at_knots() {
        let m = InterpolatedScaling::from_points(&[(1, 4.0), (2, 2.5), (4, 1.6)], 512).unwrap();
        assert_eq!(m.iter_latency_secs(1, PlacementQuality::Packed), 4.0);
        assert_eq!(m.iter_latency_secs(2, PlacementQuality::Packed), 2.5);
        assert_eq!(m.iter_latency_secs(4, PlacementQuality::Packed), 1.6);
    }

    #[test]
    fn interpolates_in_log_space() {
        let m = InterpolatedScaling::from_points(&[(1, 4.0), (4, 2.0)], 512).unwrap();
        // 2 GPUs is the midpoint of [log2(1), log2(4)].
        assert!((m.iter_latency_secs(2, PlacementQuality::Packed) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_outside_profiled_range() {
        let m = InterpolatedScaling::from_points(&[(2, 3.0), (8, 1.0)], 512).unwrap();
        assert_eq!(m.iter_latency_secs(1, PlacementQuality::Packed), 3.0);
        assert_eq!(m.iter_latency_secs(64, PlacementQuality::Packed), 1.0);
    }

    #[test]
    fn duplicate_points_are_averaged() {
        let m = InterpolatedScaling::from_points(&[(2, 3.0), (2, 5.0)], 512).unwrap();
        assert_eq!(m.iter_latency_secs(2, PlacementQuality::Packed), 4.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(InterpolatedScaling::from_points(&[], 512).is_err());
        assert!(InterpolatedScaling::from_points(&[(0, 1.0)], 512).is_err());
        assert!(InterpolatedScaling::from_points(&[(1, 0.0)], 512).is_err());
        assert!(InterpolatedScaling::from_points(&[(1, f64::NAN)], 512).is_err());
    }

    #[test]
    fn scattered_factor_applies() {
        let m = InterpolatedScaling::from_points(&[(1, 4.0)], 512)
            .unwrap()
            .with_scattered_factor(1.5);
        assert_eq!(m.iter_latency_secs(1, PlacementQuality::Scattered), 6.0);
    }

    #[test]
    fn fit_of_analytic_model_tracks_it_between_knots() {
        let truth = AnalyticScaling::for_arch(&RESNET50, 512, 4);
        let points: Vec<(u32, f64)> = [1u32, 2, 4, 8, 16]
            .iter()
            .map(|&g| (g, truth.iter_latency_secs(g, PlacementQuality::Packed)))
            .collect();
        let fit = InterpolatedScaling::from_points(&points, 512).unwrap();
        // At an unprofiled count (3 GPUs, 6 GPUs) the fit should be within
        // 25% of the truth.
        for g in [3, 6, 12] {
            let t = truth.iter_latency_secs(g, PlacementQuality::Packed);
            let f = fit.iter_latency_secs(g, PlacementQuality::Packed);
            assert!((f - t).abs() / t < 0.25, "{g} GPUs: fit {f} vs truth {t}");
        }
    }

    #[test]
    fn profiled_counts_round_trip() {
        let m = InterpolatedScaling::from_points(&[(8, 1.0), (1, 4.0), (2, 2.0)], 512).unwrap();
        assert_eq!(m.profiled_gpu_counts(), vec![1, 2, 8]);
    }
}
