//! Property-based tests for the placement controller under churn.
//!
//! Randomized cases are drawn from the deterministic [`Prng`] in
//! `rb-core` (fixed seed, fixed case count), so failures reproduce
//! bit-identically and the suite runs fully offline.

use rb_core::{Prng, TrialId};
use rb_placement::{ClusterState, PlacementController};
use std::collections::BTreeMap;

const CASES: u64 = 128;

fn allocations(gpus: &[u32]) -> BTreeMap<TrialId, u32> {
    gpus.iter()
        .enumerate()
        .map(|(i, &g)| (TrialId::new(i as u64), g))
        .collect()
}

/// Draws a vector of `1..len_hi` elements uniform in `[lo, hi)`.
fn rand_vec(rng: &mut Prng, lo: u32, hi: u32, len_hi: u64) -> Vec<u32> {
    let len = 1 + rng.next_below(len_hi - 1) as usize;
    (0..len)
        .map(|_| lo + rng.next_below((hi - lo) as u64) as u32)
        .collect()
}

/// Two consecutive reallocations over a generous cluster always leave
/// a valid, complete, locality-preserving plan, and repeating the
/// same allocations is a no-op.
#[test]
fn controller_survives_reallocation_churn() {
    let mut rng = Prng::seed_from_u64(0x91AC_0001);
    for _ in 0..CASES {
        let first = rand_vec(&mut rng, 1, 9, 10);
        let second = rand_vec(&mut rng, 1, 9, 10);
        let gpn = 4u32;
        let need = |v: &[u32]| v.iter().map(|a| a.div_ceil(gpn)).sum::<u32>();
        let nodes = need(&first).max(need(&second)).max(1);
        let cluster = ClusterState::with_n_nodes(nodes, gpn);
        let mut pc = PlacementController::new();
        pc.update(&allocations(&first), &cluster).unwrap();
        let a2 = allocations(&second);
        pc.update(&a2, &cluster).unwrap();
        assert!(pc.plan().is_valid_for(&cluster));
        for (&t, &g) in &a2 {
            assert_eq!(pc.plan().assigned_gpus(t), g);
            let chunks = pc.plan().get(t).unwrap();
            assert!(
                chunks.len() as u32 <= g.div_ceil(gpn),
                "scattered: first={first:?} second={second:?}"
            );
        }
        let diff = pc.update(&a2, &cluster).unwrap();
        assert!(diff.is_noop());
    }
}

/// Scale-down either frees exactly the requested nodes while keeping
/// every trial placed, or refuses and leaves the plan untouched.
#[test]
fn scale_down_is_all_or_nothing() {
    let mut rng = Prng::seed_from_u64(0x91AC_0002);
    for _ in 0..CASES {
        let allocs = rand_vec(&mut rng, 1, 5, 8);
        let extra_nodes = rng.next_below(4) as u32;
        let remove = 1 + rng.next_below(3) as usize;
        let gpn = 4u32;
        let nodes = allocs.iter().map(|a| a.div_ceil(gpn)).sum::<u32>() + extra_nodes;
        let cluster = ClusterState::with_n_nodes(nodes.max(1), gpn);
        let map = allocations(&allocs);
        let mut pc = PlacementController::new();
        pc.update(&map, &cluster).unwrap();
        let before = pc.plan().clone();
        match pc.plan_scale_down(&cluster, remove) {
            Ok((freed, _moved)) => {
                assert_eq!(freed.len(), remove);
                for (&t, &g) in &map {
                    assert_eq!(pc.plan().assigned_gpus(t), g);
                    let chunks = pc.plan().get(t).unwrap();
                    for c in chunks {
                        assert!(
                            !freed.contains(&c.node),
                            "trial on freed node: allocs={allocs:?} remove={remove}"
                        );
                    }
                }
                assert!(pc.plan().is_valid_for(&cluster));
            }
            Err(_) => {
                assert_eq!(pc.plan(), &before);
            }
        }
    }
}
