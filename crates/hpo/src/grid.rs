//! Grid search: exhaustive enumeration of finite search spaces.
//!
//! The paper's Fig. 2 illustrates tuning as a grid over learning rate and
//! weight decay. RubberBand is agnostic to the sampling method (§2); this
//! module provides the grid counterpart to random sampling — enumerate
//! every combination of a finite space, or discretize continuous
//! dimensions first with [`linspace`]/[`logspace`].

use crate::space::{Config, ConfigValue, Dim, SearchSpace};
use rb_core::{RbError, Result};

/// `n` evenly spaced values covering `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `n` is zero or the range is inverted.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "need at least one point");
    assert!(lo <= hi, "inverted range");
    if n == 1 {
        return vec![(lo + hi) / 2.0];
    }
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// `n` log-evenly spaced values covering `[lo, hi]` inclusive — the usual
/// grid for learning rates.
///
/// # Panics
///
/// Panics if `n` is zero, `lo` is not positive, or the range is inverted.
pub fn logspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0, "log grids need positive bounds");
    linspace(lo.ln(), hi.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

/// The finite set of values a dimension takes on a grid, or `None` for
/// continuous dimensions.
pub fn dim_grid_values(dim: &Dim) -> Option<Vec<ConfigValue>> {
    match dim {
        Dim::Choice(opts) => Some(
            opts.iter()
                .map(|o| ConfigValue::Choice(o.clone()))
                .collect(),
        ),
        Dim::Int { lo, hi } => Some((*lo..=*hi).map(ConfigValue::Int).collect()),
        Dim::QUniform { lo, hi, q } => {
            let mut vals = Vec::new();
            let mut k = (lo / q).ceil() as i64;
            loop {
                let v = k as f64 * q;
                if v >= *hi {
                    break;
                }
                if v >= *lo {
                    vals.push(ConfigValue::Float(v));
                }
                k += 1;
            }
            Some(vals)
        }
        Dim::Uniform { .. } | Dim::LogUniform { .. } => None,
    }
}

/// Enumerates every configuration of a finite space, in lexicographic
/// order of its dimensions.
///
/// # Errors
///
/// Returns [`RbError::InvalidConfig`] if any dimension is continuous
/// (discretize it first with [`linspace`]/[`logspace`] and
/// [`Dim::Choice`]/[`Dim::QUniform`]) or if the grid would exceed
/// `max_points`.
pub fn enumerate_grid(space: &SearchSpace, max_points: usize) -> Result<Vec<Config>> {
    let dims: Vec<(&str, Vec<ConfigValue>)> = space
        .dims()
        .map(|(name, dim)| {
            dim_grid_values(dim)
                .map(|vals| (name, vals))
                .ok_or_else(|| {
                    RbError::InvalidConfig(format!(
                        "dim `{name}` is continuous; discretize it for grid search"
                    ))
                })
        })
        .collect::<Result<_>>()?;
    let total: usize = dims.iter().map(|(_, v)| v.len().max(1)).product();
    if total > max_points {
        return Err(RbError::InvalidConfig(format!(
            "grid has {total} points, cap is {max_points}"
        )));
    }
    let mut grid = vec![Config::new()];
    for (name, vals) in &dims {
        if vals.is_empty() {
            return Err(RbError::InvalidConfig(format!(
                "dim `{name}` has no grid points"
            )));
        }
        let mut next = Vec::with_capacity(grid.len() * vals.len());
        for cfg in &grid {
            for v in vals {
                let mut c = cfg.clone();
                c.set(name.to_string(), v.clone());
                next.push(c);
            }
        }
        grid = next;
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_and_logspace_cover_endpoints() {
        let xs = linspace(0.0, 1.0, 5);
        assert_eq!(xs, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        let ys = logspace(1e-4, 1e-1, 4);
        assert!((ys[0] - 1e-4).abs() < 1e-12);
        assert!((ys[3] - 1e-1).abs() < 1e-9);
        // Log-even: constant ratio between neighbours.
        let r0 = ys[1] / ys[0];
        let r1 = ys[2] / ys[1];
        assert!((r0 - r1).abs() < 1e-9);
        assert_eq!(linspace(2.0, 4.0, 1), vec![3.0]);
    }

    #[test]
    fn grid_enumerates_the_cartesian_product() {
        let space = SearchSpace::new()
            .add(
                "lr",
                Dim::Choice(vec!["0.01".into(), "0.1".into(), "1.0".into()]),
            )
            .add("layers", Dim::Int { lo: 1, hi: 2 })
            .build()
            .unwrap();
        let grid = enumerate_grid(&space, 100).unwrap();
        assert_eq!(grid.len(), 6);
        // All distinct.
        for i in 0..grid.len() {
            for j in 0..i {
                assert_ne!(grid[i], grid[j]);
            }
        }
    }

    #[test]
    fn quantized_dims_grid_correctly() {
        let vals = dim_grid_values(&Dim::QUniform {
            lo: 0.5,
            hi: 2.0,
            q: 0.5,
        })
        .unwrap();
        let floats: Vec<f64> = vals.iter().map(|v| v.as_f64().unwrap()).collect();
        assert_eq!(floats, vec![0.5, 1.0, 1.5]);
    }

    #[test]
    fn continuous_dims_are_rejected() {
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-4, hi: 1e-1 })
            .build()
            .unwrap();
        assert!(enumerate_grid(&space, 100).is_err());
    }

    #[test]
    fn oversized_grids_are_rejected() {
        let space = SearchSpace::new()
            .add("a", Dim::Int { lo: 0, hi: 99 })
            .add("b", Dim::Int { lo: 0, hi: 99 })
            .build()
            .unwrap();
        assert!(enumerate_grid(&space, 1000).is_err());
        assert!(enumerate_grid(&space, 10_000).is_ok());
    }
}
