//! The admission controller and fair-share scheduler.
//!
//! ## The discrete-event loop
//!
//! Every running job is an [`ExecutorCore`] whose clock advances one
//! stage per [`ExecutorCore::step`]. The service's loop is a classic
//! min-time event loop over those clocks:
//!
//! 1. **Admit** every pending arrival due at or before the next step
//!    (rejecting over-queue and over-budget arrivals with a typed
//!    reason);
//! 2. **Dispatch** queued jobs into free slots in fair-share order —
//!    the queued job whose tenant has the lowest spend ÷ weight ratio
//!    wins; ties break by arrival time, then submission index;
//! 3. **Step** the running core with the *smallest* virtual clock
//!    (ties again by submission index), so cross-job event order is a
//!    deterministic function of the jobs alone.
//!
//! Because each executor derives every noise stream from its own seed,
//! interleaving does not perturb individual runs: a job executed
//! through the service produces the same training timeline it would
//! produce alone (shifted to its dispatch time). Only the *shared*
//! resources — the queue and the optional instance pool — couple jobs,
//! and both are driven by the deterministic loop order above.
//!
//! ## The shared pool
//!
//! With [`ServeOptions::pool`] set, the service builds one
//! [`InstancePool`] (priced from the first job's cloud profile) and
//! attaches it to every core. Instances a job would terminate at a
//! barrier are parked; a job that scales up adopts them for a 2 s
//! handoff instead of a ~30 s provision + init + ingress, and the
//! donor's minimum-charge premium is credited back at the service
//! level (see [`crate::ServeReport::net_cost`]). Park time past
//! `max_hold_secs` is billed to the pool and the instance expires.

use crate::report::{JobOutcome, RejectReason, RejectedJob, ServeReport, TenantUsage};
use crate::tenant::{JobRequest, TenantSpec};
use rb_cloud::{InstancePool, PoolConfig, SharedPool};
use rb_core::{Cost, RbError, Result, SimTime};
use rb_exec::{ExecutorCore, NoopHook, StepOutcome};
use rb_obs::{JobScopedRecorder, Lane, Recorder, RecorderHandle};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Service-level knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Jobs allowed to run concurrently (≥ 1).
    pub max_concurrent: usize,
    /// Arrivals allowed to wait in the queue; the next arrival past
    /// this is rejected with [`RejectReason::QueueFull`].
    pub max_queue: usize,
    /// Shared elastic instance pool; `None` disables handoffs (every
    /// job terminates its own capacity, exactly as when run alone).
    pub pool: Option<PoolConfig>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_concurrent: 4,
            max_queue: 64,
            pool: None,
        }
    }
}

impl ServeOptions {
    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] when `max_concurrent` is zero
    /// (nothing could ever run) or the pool config is malformed (zero
    /// capacity, non-finite hold). Checked at service construction so a
    /// bad config fails loudly instead of silently starving every job.
    pub fn validate(&self) -> Result<()> {
        if self.max_concurrent == 0 {
            return Err(RbError::InvalidConfig(
                "serve: max_concurrent must be >= 1".into(),
            ));
        }
        if let Some(pool) = &self.pool {
            pool.validate()?;
        }
        Ok(())
    }
}

/// Per-job bookkeeping that outlives the consumed [`JobRequest`].
#[derive(Clone, Copy)]
struct JobMeta {
    arrival: SimTime,
    tenant: usize,
}

/// The multi-tenant tuning service.
#[derive(Debug, Clone)]
pub struct TuningService {
    tenants: Vec<TenantSpec>,
    options: ServeOptions,
}

impl TuningService {
    /// Builds a service over a validated tenant list.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] when the tenant list is empty,
    /// any tenant fails [`TenantSpec::validate`] (zero/negative/non-finite
    /// weight, non-positive budget), or the options fail
    /// [`ServeOptions::validate`].
    pub fn new(tenants: Vec<TenantSpec>, options: ServeOptions) -> Result<Self> {
        if tenants.is_empty() {
            return Err(RbError::InvalidConfig(
                "serve: at least one tenant is required".into(),
            ));
        }
        for t in &tenants {
            t.validate()?;
        }
        options.validate()?;
        Ok(TuningService { tenants, options })
    }

    /// The tenant list.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// The service options.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Runs a workload to completion without observability.
    ///
    /// # Errors
    ///
    /// As [`TuningService::run_with_recorder`].
    pub fn run(&self, jobs: Vec<JobRequest>) -> Result<ServeReport> {
        self.run_with_recorder(jobs, &RecorderHandle::noop())
    }

    /// Runs a workload to completion, reporting service events and each
    /// job's executor trace into `recorder` (jobs are lane-scoped via
    /// [`JobScopedRecorder`] so their timelines stay separable).
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] when a job names an unknown
    /// tenant, or propagates the failing executor's error.
    pub fn run_with_recorder(
        &self,
        jobs: Vec<JobRequest>,
        recorder: &RecorderHandle,
    ) -> Result<ServeReport> {
        for (i, job) in jobs.iter().enumerate() {
            if job.tenant >= self.tenants.len() {
                return Err(RbError::InvalidConfig(format!(
                    "serve: job {i} names tenant {} but only {} tenants exist",
                    job.tenant,
                    self.tenants.len()
                )));
            }
        }

        // One shared pool for the whole workload, priced from the first
        // job's cloud profile (pools only make sense across jobs renting
        // the same instance type; heterogeneous fleets would need one
        // pool per type).
        let pool = match (&self.options.pool, jobs.first()) {
            (Some(cfg), Some(first)) => Some(SharedPool::new(InstancePool::new(
                cfg.clone(),
                first.executor.cloud().pricing.clone(),
            )?)),
            _ => None,
        };

        let meta: Vec<JobMeta> = jobs
            .iter()
            .map(|j| JobMeta {
                arrival: j.arrival,
                tenant: j.tenant,
            })
            .collect();
        let mut requests: Vec<Option<JobRequest>> = jobs.into_iter().map(Some).collect();

        // Arrival order: (arrival time, submission index).
        let mut pending: VecDeque<usize> = {
            let mut order: Vec<usize> = (0..requests.len()).collect();
            order.sort_by_key(|&i| (meta[i].arrival, i));
            order.into()
        };
        let mut queue: Vec<usize> = Vec::new();
        let mut running: BTreeMap<u64, ExecutorCore> = BTreeMap::new();
        let mut dispatched_at: Vec<SimTime> = vec![SimTime::ZERO; requests.len()];
        let mut spend: Vec<Cost> = vec![Cost::ZERO; self.tenants.len()];
        let mut completed: Vec<usize> = vec![0; self.tenants.len()];
        let mut rejected_count: Vec<usize> = vec![0; self.tenants.len()];
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut rejected: Vec<RejectedJob> = Vec::new();
        let mut clock = SimTime::ZERO;
        let mut last_finish = SimTime::ZERO;
        let mut hook = NoopHook;

        loop {
            // 1. Admission horizon: the next running step, else (queue
            // drained and idle) jump the clock to the next arrival.
            let next_step = running.iter().map(|(id, core)| (core.now(), *id)).min();
            let horizon = match next_step {
                Some((t, _)) => Some(t),
                None if !queue.is_empty() => Some(clock),
                None => pending.front().map(|&i| meta[i].arrival),
            };
            let Some(horizon) = horizon else { break };

            // 2. Admit every arrival due at or before the horizon.
            while let Some(&idx) = pending.front() {
                let arrival = meta[idx].arrival;
                if arrival > horizon {
                    break;
                }
                pending.pop_front();
                clock = clock.max(arrival);
                let tenant = meta[idx].tenant;
                let reason = if queue.len() >= self.options.max_queue {
                    Some(RejectReason::QueueFull)
                } else if self.tenants[tenant]
                    .budget
                    .is_some_and(|b| spend[tenant] >= b)
                {
                    Some(RejectReason::BudgetExhausted)
                } else {
                    None
                };
                match reason {
                    Some(reason) => {
                        rejected_count[tenant] += 1;
                        recorder.instant(
                            arrival,
                            "serve",
                            "job.reject",
                            Lane::Job(idx as u64),
                            vec![("tenant", tenant.into()), ("reason", reason.label().into())],
                        );
                        recorder.counter_add("serve", "jobs_rejected", 1);
                        rejected.push(RejectedJob {
                            job: idx as u64,
                            tenant,
                            arrival,
                            reason,
                        });
                    }
                    None => {
                        recorder.instant(
                            arrival,
                            "serve",
                            "job.submit",
                            Lane::Job(idx as u64),
                            vec![("tenant", tenant.into())],
                        );
                        queue.push(idx);
                    }
                }
            }

            // 3. Dispatch queued jobs into free slots, fair-share first.
            while running.len() < self.options.max_concurrent && !queue.is_empty() {
                let pick = self.pick_fair(&queue, &meta, &spend);
                let idx = queue.remove(pick);
                let req = requests[idx].take().expect("job dispatched twice");
                let start = clock.max(req.arrival);
                let job_id = idx as u64;
                let wait = start.saturating_since(req.arrival);
                let scoped: Arc<dyn Recorder> =
                    Arc::new(JobScopedRecorder::new(recorder.share(), job_id));
                let mut core = ExecutorCore::new_at(
                    &req.executor,
                    &req.configs,
                    RecorderHandle::new(scoped),
                    start,
                )?;
                if let Some(pool) = &pool {
                    core.attach_shared_pool(pool.clone(), job_id);
                }
                if !wait.is_zero() {
                    recorder.span(
                        req.arrival,
                        start,
                        "serve",
                        "job.queued",
                        Lane::Job(job_id),
                        vec![("wait_s", wait.as_secs_f64().into())],
                    );
                }
                recorder.instant(
                    start,
                    "serve",
                    "job.dispatch",
                    Lane::Job(job_id),
                    vec![
                        ("tenant", req.tenant.into()),
                        ("wait_s", wait.as_secs_f64().into()),
                    ],
                );
                recorder.histogram("serve", "queue_wait_s", wait.as_secs_f64());
                dispatched_at[idx] = start;
                running.insert(job_id, core);
            }

            // 4. Step the running core that is furthest behind.
            let Some((t, id)) = running.iter().map(|(id, core)| (core.now(), *id)).min() else {
                // Nothing running: if nothing is waiting either, done.
                if pending.is_empty() && queue.is_empty() {
                    break;
                }
                continue;
            };
            clock = clock.max(t);
            let core = running.get_mut(&id).expect("picked a running core");
            if let StepOutcome::Finished { at } = core.step(t, &mut hook)? {
                let core = running.remove(&id).expect("finished core is running");
                let report = core.finish()?;
                clock = clock.max(at);
                last_finish = last_finish.max(at);
                let idx = id as usize;
                let tenant = meta[idx].tenant;
                let dispatched = dispatched_at[idx];
                spend[tenant] += report.total_cost();
                completed[tenant] += 1;
                recorder.instant(
                    at,
                    "serve",
                    "job.done",
                    Lane::Job(id),
                    vec![
                        ("tenant", tenant.into()),
                        ("cost_usd", report.total_cost().as_dollars().into()),
                        ("jct_s", report.jct.as_secs_f64().into()),
                    ],
                );
                recorder.counter_add("serve", "jobs_completed", 1);
                outcomes.push(JobOutcome {
                    job: id,
                    tenant,
                    arrival: meta[idx].arrival,
                    dispatched,
                    finished: at,
                    queue_wait: dispatched.saturating_since(meta[idx].arrival),
                    report,
                });
            }
        }

        // Wind down the pool: anything still parked terminates now and
        // bills its park time.
        let pool_stats = pool.map(|p| {
            p.with(|pool| {
                pool.drain(clock);
                pool.stats()
            })
        });

        let job_cost: Cost = outcomes
            .iter()
            .fold(Cost::ZERO, |acc, o| acc + o.report.total_cost());
        let park = pool_stats.as_ref().map_or(Cost::ZERO, |s| s.park_cost);
        let saved = pool_stats
            .as_ref()
            .map_or(Cost::ZERO, |s| s.min_charge_saved);
        let billed_cost = job_cost + park;
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| TenantUsage {
                name: t.name.clone(),
                weight: t.weight,
                budget: t.budget,
                completed: completed[i],
                rejected: rejected_count[i],
                spend: spend[i],
            })
            .collect();
        Ok(ServeReport {
            outcomes,
            rejected,
            tenants,
            pool: pool_stats,
            makespan: last_finish,
            billed_cost,
            net_cost: billed_cost - saved,
        })
    }

    /// The queued job that should dispatch next: lowest tenant
    /// spend ÷ weight, ties by arrival time, then submission index.
    /// Returns a position within `queue`.
    fn pick_fair(&self, queue: &[usize], meta: &[JobMeta], spend: &[Cost]) -> usize {
        let share = |idx: usize| {
            let t = meta[idx].tenant;
            spend[t].as_dollars() / self.tenants[t].weight
        };
        let mut best = 0;
        for pos in 1..queue.len() {
            let (a, b) = (queue[pos], queue[best]);
            let ord = share(a)
                .total_cmp(&share(b))
                .then(meta[a].arrival.cmp(&meta[b].arrival))
                .then(a.cmp(&b));
            if ord.is_lt() {
                best = pos;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tenant_list_is_a_typed_error() {
        let err = TuningService::new(Vec::new(), ServeOptions::default()).unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn bad_tenant_weight_is_rejected_at_construction() {
        let err = TuningService::new(
            vec![TenantSpec::new("a", 1.0), TenantSpec::new("b", 0.0)],
            ServeOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn zero_concurrency_is_rejected() {
        let err = TuningService::new(
            vec![TenantSpec::new("a", 1.0)],
            ServeOptions {
                max_concurrent: 0,
                ..ServeOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn zero_capacity_pool_is_rejected() {
        let err = TuningService::new(
            vec![TenantSpec::new("a", 1.0)],
            ServeOptions {
                pool: Some(PoolConfig {
                    capacity: 0,
                    ..PoolConfig::default()
                }),
                ..ServeOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn empty_workload_yields_an_empty_report() {
        let svc =
            TuningService::new(vec![TenantSpec::new("a", 1.0)], ServeOptions::default()).unwrap();
        let report = svc.run(Vec::new()).unwrap();
        assert!(report.outcomes.is_empty());
        assert!(report.rejected.is_empty());
        assert_eq!(report.billed_cost, Cost::ZERO);
        assert_eq!(report.makespan, SimTime::ZERO);
        assert_eq!(report.tenants.len(), 1);
    }
}
