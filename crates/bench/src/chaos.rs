//! Extension — fault injection and recovery (`repro ext-chaos`).
//!
//! The paper assumes the cloud hands over capacity on request and that
//! checkpoints read back what was written. This extension measures what
//! the hardened executor buys when neither holds: each cell executes
//! the same plan under a seeded [`FaultPlan`] — insufficient-capacity
//! denials, provisioning stragglers, degraded (slow) nodes, hardware
//! failures, corrupted checkpoint generations — once as an unhardened
//! baseline (no retry, single checkpoint generation) and once hardened
//! (capped-exponential provisioning retry with request timeouts,
//! graceful capacity degradation, checkpoint retention + verified
//! reads). The baseline aborts on the first capacity denial or
//! unrecoverable checkpoint; the hardened run absorbs the same faults
//! and reports how (retries, fallbacks, degraded stages).
//!
//! The calm cell doubles as the cardinal-invariant check: with the
//! injector disabled, the hardened executor must be bit-identical to
//! the unhardened one.

use crate::tables::{e2e_cloud, profiled_model, search_space};
use rb_cloud::{FaultPlan, ZonePlan, ZoneWindow};
use rb_core::{Prng, Result, SimDuration};
use rb_ctrl::{AdaptiveController, ControllerConfig, MarketConfig, WatchdogConfig};
use rb_exec::{ExecOptions, Executor, RetryPolicy};
use rb_hpo::ShaParams;
use rb_planner::{plan_rubberband, PlannerConfig};
use rb_sim::{EngineConfig, Simulator};

/// One named fault scenario for the sweep.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Short label printed in the table (e.g. `capacity`, `storm`).
    pub name: &'static str,
    /// The fault plan injected into both runs of the cell.
    pub faults: FaultPlan,
}

impl ChaosScenario {
    /// The default sweep: calm control cell, then each fault class in
    /// isolation, then everything at once.
    pub fn default_sweep() -> Vec<ChaosScenario> {
        vec![
            ChaosScenario {
                name: "calm",
                faults: FaultPlan::none(),
            },
            ChaosScenario {
                name: "capacity",
                faults: FaultPlan {
                    capacity_failure_prob: 0.6,
                    ..FaultPlan::none()
                },
            },
            ChaosScenario {
                name: "straggler",
                faults: FaultPlan {
                    straggler_prob: 0.5,
                    straggler_factor: 80.0,
                    ..FaultPlan::none()
                },
            },
            ChaosScenario {
                name: "degraded",
                faults: FaultPlan {
                    degraded_prob: 0.5,
                    degraded_factor: 2.0,
                    ..FaultPlan::none()
                },
            },
            ChaosScenario {
                name: "squeeze",
                faults: FaultPlan {
                    capacity_failure_prob: 0.85,
                    straggler_prob: 0.6,
                    straggler_factor: 80.0,
                    ..FaultPlan::none()
                },
            },
            ChaosScenario {
                name: "corrupt",
                faults: FaultPlan {
                    checkpoint_corruption_prob: 0.25,
                    ..FaultPlan::none()
                },
            },
            ChaosScenario {
                name: "storm",
                faults: FaultPlan {
                    capacity_failure_prob: 0.5,
                    straggler_prob: 0.25,
                    straggler_factor: 40.0,
                    degraded_prob: 0.25,
                    degraded_factor: 1.5,
                    hw_failure_rate_per_hour: 0.2,
                    checkpoint_corruption_prob: 0.2,
                    zones: ZonePlan::none(),
                },
            },
        ]
    }
}

/// One sweep cell: the unhardened baseline vs the hardened executor
/// under the same seeded faults.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Scenario label.
    pub name: &'static str,
    /// Baseline executed JCT in seconds (`None` = aborted).
    pub baseline_jct_secs: Option<f64>,
    /// Baseline executed cost in dollars (`None` = aborted).
    pub baseline_cost: Option<f64>,
    /// Baseline completed within the deadline.
    pub baseline_hit: bool,
    /// Hardened executed JCT in seconds (`None` = aborted).
    pub hardened_jct_secs: Option<f64>,
    /// Hardened executed cost in dollars (`None` = aborted).
    pub hardened_cost: Option<f64>,
    /// Hardened run completed within the deadline.
    pub hardened_hit: bool,
    /// Faults the injector actually fired in the hardened run.
    pub faults_injected: u64,
    /// Provisioning retries the hardened executor issued.
    pub retries: u64,
    /// Checkpoint reads that fell back to an older generation.
    pub fallbacks: u64,
    /// Stages the hardened run executed on reduced capacity.
    pub degraded_stages: u32,
    /// Spot/hardware preemptions the hardened run absorbed.
    pub preemptions: u32,
}

/// Runs the chaos sweep: one plan (Table 2 workload, 30 min deadline),
/// every scenario executed unhardened and hardened from the same seed.
///
/// # Errors
///
/// Propagates planner errors and *hardened* executor errors; baseline
/// aborts are expected outcomes and recorded in the row.
pub fn ext_chaos(scenarios: &[ChaosScenario], seed: u64) -> Result<(SimDuration, Vec<ChaosRow>)> {
    let task = rb_train::task::resnet101_cifar10();
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate()?;
    let model = profiled_model(&task, 1024, 4, 32);
    let physics = model.clone();
    let space = search_space();
    let deadline = SimDuration::from_mins(30);
    let cloud = e2e_cloud();
    let sim = rb_sim::Simulator::new(model, cloud.clone());
    // Plan with 20% slack: a plan that spends the whole deadline has no
    // headroom to absorb retry backoff or a degraded stage, so recovery
    // would be unobservable — every faulted run would miss regardless.
    let out = plan_rubberband(
        &sim,
        &spec,
        SimDuration::from_mins(24),
        &PlannerConfig::default(),
    )?;

    let mut rows = Vec::new();
    for scenario in scenarios {
        let baseline = rubberband::execute_with(
            &spec,
            &out.plan,
            &task,
            &physics,
            &cloud,
            &space,
            ExecOptions {
                seed,
                faults: scenario.faults.clone(),
                ..ExecOptions::default()
            },
        );
        let hardened = rubberband::execute_with(
            &spec,
            &out.plan,
            &task,
            &physics,
            &cloud,
            &space,
            ExecOptions {
                seed,
                faults: scenario.faults.clone(),
                retry: Some(RetryPolicy {
                    max_retries: 12,
                    base_backoff_secs: 5.0,
                    max_backoff_secs: 60.0,
                    // Healthy hand-overs land in ~30 s here; a minute of
                    // silence means a straggler worth abandoning.
                    request_timeout_secs: 60.0,
                }),
                checkpoint_retention: 3,
                ..ExecOptions::default()
            },
        );
        let (baseline_jct_secs, baseline_cost, baseline_hit) = match &baseline {
            Ok(r) => (
                Some(r.jct.as_secs_f64()),
                Some(r.total_cost().as_dollars()),
                r.jct <= deadline,
            ),
            Err(_) => (None, None, false),
        };
        // A hardened abort (e.g. zero capacity acquired after every
        // retry) is a recorded outcome, not a sweep failure.
        let (hardened_jct_secs, hardened_cost, hardened_hit) = match &hardened {
            Ok(r) => (
                Some(r.jct.as_secs_f64()),
                Some(r.total_cost().as_dollars()),
                r.jct <= deadline,
            ),
            Err(_) => (None, None, false),
        };
        let counters = hardened.as_ref().ok();
        rows.push(ChaosRow {
            name: scenario.name,
            baseline_jct_secs,
            baseline_cost,
            baseline_hit,
            hardened_jct_secs,
            hardened_cost,
            hardened_hit,
            faults_injected: counters.map_or(0, |r| r.faults_injected),
            retries: counters.map_or(0, |r| r.provision_retries),
            fallbacks: counters.map_or(0, |r| r.checkpoint_fallbacks),
            degraded_stages: counters.map_or(0, |r| r.degraded_stages),
            preemptions: counters.map_or(0, |r| r.preemptions),
        });
    }
    Ok((deadline, rows))
}

fn fmt_outcome(jct: Option<f64>, cost: Option<f64>, hit: bool) -> (String, String, &'static str) {
    match (jct, cost) {
        (Some(j), Some(c)) => (
            SimDuration::from_secs_f64(j).to_string(),
            format!("${c:.2}"),
            if hit { "yes" } else { "MISS" },
        ),
        _ => ("-".to_owned(), "-".to_owned(), "ABORT"),
    }
}

/// Renders the chaos sweep, ending with a machine-checkable summary
/// line (counts only — `scripts/verify.sh` diffs it against a
/// checked-in expectation).
pub fn print_ext_chaos(deadline: SimDuration, rows: &[ChaosRow]) {
    println!("Extension — fault injection and recovery (rb-chaos)");
    println!(
        "(Table 2 workload, RubberBand plan @ {deadline} deadline; baseline has no \
         retry and a single checkpoint generation)\n"
    );
    println!(
        "{:>10} | {:>10} {:>9} {:>5} | {:>10} {:>9} {:>5} {:>6} {:>7} {:>9} {:>8} {:>7}",
        "scenario",
        "base JCT",
        "cost",
        "hit",
        "hard JCT",
        "cost",
        "hit",
        "faults",
        "retries",
        "fallbacks",
        "degraded",
        "preempt"
    );
    for r in rows {
        let (bj, bc, bh) = fmt_outcome(r.baseline_jct_secs, r.baseline_cost, r.baseline_hit);
        let (hj, hc, hh) = fmt_outcome(r.hardened_jct_secs, r.hardened_cost, r.hardened_hit);
        println!(
            "{:>10} | {:>10} {:>9} {:>5} | {:>10} {:>9} {:>5} {:>6} {:>7} {:>9} {:>8} {:>7}",
            r.name,
            bj,
            bc,
            bh,
            hj,
            hc,
            hh,
            r.faults_injected,
            r.retries,
            r.fallbacks,
            r.degraded_stages,
            r.preemptions
        );
    }
    let baseline_hits = rows.iter().filter(|r| r.baseline_hit).count();
    let baseline_aborts = rows
        .iter()
        .filter(|r| r.baseline_jct_secs.is_none())
        .count();
    let hardened_hits = rows.iter().filter(|r| r.hardened_hit).count();
    let faults: u64 = rows.iter().map(|r| r.faults_injected).sum();
    let retries: u64 = rows.iter().map(|r| r.retries).sum();
    let fallbacks: u64 = rows.iter().map(|r| r.fallbacks).sum();
    let degraded: u32 = rows.iter().map(|r| r.degraded_stages).sum();
    // The calm cell must be bit-identical across the two executors: the
    // disabled injector makes the hardening knobs unobservable.
    let calm_mismatches = rows
        .iter()
        .filter(|r| r.faults_injected == 0 && r.baseline_jct_secs.is_some())
        .filter(|r| {
            r.baseline_jct_secs != r.hardened_jct_secs || r.baseline_cost != r.hardened_cost
        })
        .count();
    println!(
        "\next-chaos summary: cells={} baseline_hits={baseline_hits} \
         baseline_aborts={baseline_aborts} hardened_hits={hardened_hits} \
         faults={faults} retries={retries} fallbacks={fallbacks} \
         degraded_stages={degraded} calm_mismatches={calm_mismatches}",
        rows.len()
    );
}

/// One cell of the correlated-failure sub-sweep: the Table 2 workload
/// executed under a zone outage, either open loop (hardened retry only —
/// every post-outage scale-up pays dead-zone denial backoff before the
/// transient retry rotation finds the healthy zone) or with the
/// controller's *executed* zone switch (the fleet's home zone moves
/// permanently at the next barrier).
#[derive(Debug, Clone)]
pub struct ZoneChaosRow {
    /// Outage-timing label (`early`, `late`).
    pub name: &'static str,
    /// Whether the controller executed switches (vs open loop).
    pub switch: bool,
    /// Executed JCT in seconds.
    pub jct_secs: f64,
    /// Executed cost in dollars.
    pub cost: f64,
    /// Completed within the deadline.
    pub hit: bool,
    /// Faults the injector fired (zone denials + outage kills included).
    pub faults_injected: u64,
    /// Provisioning retry rounds issued.
    pub retries: u64,
    /// Re-plans the controller spliced in (zero open loop).
    pub replans: usize,
    /// Drains the controller executed through a market/zone directive.
    pub executed_switches: usize,
}

/// Runs the correlated-failure sub-sweep: outage timing × switch on/off
/// under a two-zone cloud whose zone 0 goes dark mid-run. Both arms use
/// the same hardened retry policy; only the switch arm is allowed to
/// move the fleet's home zone. `planner_threads` sets the Monte-Carlo
/// engine's thread count for *both* the upfront plan and the
/// controller's re-planner — rows must be byte-identical for every
/// value (the determinism contract of counter-based sample seeds).
///
/// # Errors
///
/// Propagates planner, executor, and controller errors.
pub fn ext_chaos_zones(
    seed: u64,
    planner_threads: usize,
) -> Result<(SimDuration, Vec<ZoneChaosRow>)> {
    let task = rb_train::task::resnet101_cifar10();
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate()?;
    let model = profiled_model(&task, 1024, 4, 32);
    let physics = model.clone();
    let space = search_space();
    let deadline = SimDuration::from_mins(26);
    let cloud = e2e_cloud();
    let engine = EngineConfig {
        threads: planner_threads,
        ..EngineConfig::default()
    };
    let sim = Simulator::new(model.clone(), cloud.clone()).with_engine(engine);
    let out = plan_rubberband(
        &sim,
        &spec,
        SimDuration::from_mins(24),
        &PlannerConfig::default(),
    )?;

    // Backoff heavy enough that every dead-zone denial round costs real
    // wall clock: the open loop pays it at every post-outage scale-up,
    // the executed switch pays it once and leaves.
    let retry = RetryPolicy {
        max_retries: 6,
        base_backoff_secs: 300.0,
        max_backoff_secs: 600.0,
        request_timeout_secs: 900.0,
    };
    let mut rows = Vec::new();
    // An early outage leaves stage boundaries for the controller to
    // observe and exploit; the late outage falls after the last useful
    // barrier, so the switch arm must stay bit-identical to open loop —
    // the sub-sweep's no-gratuitous-switching control.
    for (name, start_secs) in [("early", 240.0), ("late", 600.0)] {
        let faults = FaultPlan {
            zones: ZonePlan {
                zones: 2,
                outage: Some(ZoneWindow {
                    zone: 0,
                    start_secs,
                    duration_secs: 100_000.0,
                }),
                ..ZonePlan::none()
            },
            ..FaultPlan::none()
        };
        let options = || ExecOptions {
            seed,
            faults: faults.clone(),
            retry: Some(retry.clone()),
            checkpoint_retention: 3,
            ..ExecOptions::default()
        };
        let open = rubberband::execute_with(
            &spec,
            &out.plan,
            &task,
            &physics,
            &cloud,
            &space,
            options(),
        )?;
        rows.push(ZoneChaosRow {
            name,
            switch: false,
            jct_secs: open.jct.as_secs_f64(),
            cost: open.total_cost().as_dollars(),
            hit: open.jct <= deadline,
            faults_injected: open.faults_injected,
            retries: open.provision_retries,
            replans: 0,
            executed_switches: 0,
        });

        // Zone recovery in isolation: the advisory market probe is off,
        // so every executed drain is a ZoneDegraded response.
        let config = ControllerConfig {
            watchdog: WatchdogConfig {
                enabled: false,
                ..WatchdogConfig::default()
            },
            market: MarketConfig {
                enabled: false,
                execute: true,
                ..MarketConfig::default()
            },
            ..ControllerConfig::default()
        };
        let ctrl_sim = Simulator::new(model.clone(), cloud.clone()).with_engine(engine);
        let mut controller =
            AdaptiveController::new(ctrl_sim, spec.clone(), &out.plan, deadline, config)?;
        // Identical config sampling to `execute_with`: both arms of a
        // cell tune the same trials.
        let mut rng = Prng::seed_from_u64(seed ^ 0x005A_3CE0_u64);
        let configs = space.sample_n(spec.initial_trials() as usize, &mut rng);
        let switched = Executor::new(
            spec.clone(),
            out.plan.clone(),
            task.clone(),
            physics.clone(),
            cloud.clone(),
        )?
        .with_options(options())
        .run_hooked(&configs, &mut controller)?;
        let log = controller.into_log();
        rows.push(ZoneChaosRow {
            name,
            switch: true,
            jct_secs: switched.jct.as_secs_f64(),
            cost: switched.total_cost().as_dollars(),
            hit: switched.jct <= deadline,
            faults_injected: switched.faults_injected,
            retries: switched.provision_retries,
            replans: log.applied(),
            executed_switches: log.executed_switches(),
        });
    }
    Ok((deadline, rows))
}

/// Renders the correlated-failure sub-sweep, ending with a
/// machine-checkable summary line (counts only — `scripts/verify.sh`
/// diffs it against a checked-in expectation).
pub fn print_ext_chaos_zones(deadline: SimDuration, rows: &[ZoneChaosRow]) {
    println!("\nExtension — correlated failure domains (zone outage × executed switch)");
    println!(
        "(two-zone cloud @ {deadline} deadline, zone 0 dark from t onward; both arms \
         share the hardened retry policy, only `switch on` may move the fleet's \
         home zone)\n"
    );
    println!(
        "{:>8} {:>6} | {:>10} {:>9} {:>5} {:>6} {:>7} {:>7} {:>8}",
        "outage", "switch", "JCT", "cost", "hit", "faults", "retries", "replans", "executed"
    );
    for r in rows {
        println!(
            "{:>8} {:>6} | {:>10} {:>9} {:>5} {:>6} {:>7} {:>7} {:>8}",
            r.name,
            if r.switch { "on" } else { "off" },
            SimDuration::from_secs_f64(r.jct_secs).to_string(),
            format!("${:.2}", r.cost),
            if r.hit { "yes" } else { "MISS" },
            r.faults_injected,
            r.retries,
            r.replans,
            r.executed_switches
        );
    }
    let open_hits = rows.iter().filter(|r| !r.switch && r.hit).count();
    let switch_hits = rows.iter().filter(|r| r.switch && r.hit).count();
    let faults: u64 = rows.iter().map(|r| r.faults_injected).sum();
    let retries: u64 = rows.iter().map(|r| r.retries).sum();
    let replans: usize = rows.iter().map(|r| r.replans).sum();
    let executed: usize = rows.iter().map(|r| r.executed_switches).sum();
    // Cells where the executed switch recovered a deadline the open loop
    // lost to dead-zone backoff.
    let recoveries = rows
        .iter()
        .filter(|r| r.switch && r.hit)
        .filter(|r| {
            rows.iter()
                .any(|o| !o.switch && !o.hit && o.name == r.name)
        })
        .count();
    println!(
        "\next-chaos zones summary: cells={} open_hits={open_hits} \
         switch_hits={switch_hits} faults={faults} retries={retries} \
         replans={replans} executed_switches={executed} recoveries={recoveries}",
        rows.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_cell_is_bit_identical_across_hardening() {
        let (deadline, rows) = ext_chaos(
            &[ChaosScenario {
                name: "calm",
                faults: FaultPlan::none(),
            }],
            1,
        )
        .unwrap();
        let r = &rows[0];
        assert_eq!(r.baseline_jct_secs, r.hardened_jct_secs);
        assert_eq!(r.baseline_cost, r.hardened_cost);
        assert_eq!(r.faults_injected, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(r.fallbacks, 0);
        assert!(r.baseline_hit && r.hardened_hit);
        assert!(SimDuration::from_secs_f64(r.hardened_jct_secs.unwrap()) <= deadline);
    }

    #[test]
    fn hardened_executor_survives_capacity_failures_the_baseline_cannot() {
        let (_, rows) = ext_chaos(
            &[ChaosScenario {
                name: "capacity",
                faults: FaultPlan {
                    capacity_failure_prob: 0.6,
                    ..FaultPlan::none()
                },
            }],
            1,
        )
        .unwrap();
        let r = &rows[0];
        assert!(
            r.baseline_jct_secs.is_none(),
            "no-retry baseline should abort on the first capacity denial"
        );
        assert!(r.hardened_jct_secs.is_some(), "hardened run completed");
        assert!(r.hardened_hit, "hardened run met the deadline");
        assert!(r.retries > 0, "denials were retried");
        assert!(r.faults_injected > 0);
    }

    #[test]
    fn executed_zone_switch_recovers_deadlines_the_open_loop_loses() {
        let (deadline, rows) = ext_chaos_zones(1, 0).unwrap();
        assert_eq!(rows.len(), 4);
        let cell = |name: &str, switch: bool| {
            rows.iter()
                .find(|r| r.name == name && r.switch == switch)
                .unwrap()
        };
        for r in &rows {
            assert!(r.faults_injected > 0, "{} saw no zone faults", r.name);
            if !r.switch {
                assert_eq!(r.executed_switches, 0);
                assert_eq!(r.replans, 0);
            }
        }
        // The acceptance contrast: the early outage leaves barriers the
        // controller can exploit — the open loop misses the deadline on
        // dead-zone backoff, the executed zone switch recovers it.
        let (early_off, early_on) = (cell("early", false), cell("early", true));
        assert!(
            !early_off.hit,
            "open loop met the deadline through a zone outage (jct {}s)",
            early_off.jct_secs
        );
        assert!(early_on.executed_switches >= 1, "no drain was executed");
        assert!(early_on.replans >= 1);
        assert!(
            early_on.hit,
            "executed switch missed: jct {}s after {} switches",
            early_on.jct_secs, early_on.executed_switches
        );
        assert!(SimDuration::from_secs_f64(early_on.jct_secs) <= deadline);
        // The late outage falls after the last useful barrier: the
        // controller stays silent and the switch arm must be
        // bit-identical to open loop.
        let (late_off, late_on) = (cell("late", false), cell("late", true));
        assert_eq!(late_on.executed_switches, 0);
        assert_eq!(late_on.jct_secs, late_off.jct_secs);
        assert_eq!(late_on.cost, late_off.cost);
    }

    #[test]
    fn zones_sweep_is_byte_identical_across_planner_threads() {
        let (_, a) = ext_chaos_zones(1, 1).unwrap();
        let (_, b) = ext_chaos_zones(1, 2).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.jct_secs, y.jct_secs, "{} switch={}", x.name, x.switch);
            assert_eq!(x.cost, y.cost);
            assert_eq!(x.faults_injected, y.faults_injected);
            assert_eq!(x.retries, y.retries);
            assert_eq!(x.replans, y.replans);
            assert_eq!(x.executed_switches, y.executed_switches);
        }
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let cell = || {
            ext_chaos(
                &[ChaosScenario {
                    name: "storm",
                    faults: FaultPlan {
                        capacity_failure_prob: 0.5,
                        straggler_prob: 0.25,
                        straggler_factor: 40.0,
                        degraded_prob: 0.25,
                        degraded_factor: 1.5,
                        hw_failure_rate_per_hour: 0.2,
                        checkpoint_corruption_prob: 0.2,
                        zones: ZonePlan::none(),
                    },
                }],
                7,
            )
            .unwrap()
            .1
        };
        let (a, b) = (cell(), cell());
        assert_eq!(a[0].hardened_jct_secs, b[0].hardened_jct_secs);
        assert_eq!(a[0].hardened_cost, b[0].hardened_cost);
        assert_eq!(a[0].faults_injected, b[0].faults_injected);
        assert_eq!(a[0].retries, b[0].retries);
        assert_eq!(a[0].fallbacks, b[0].fallbacks);
        assert_eq!(a[0].degraded_stages, b[0].degraded_stages);
    }
}
