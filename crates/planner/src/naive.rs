//! The naive elastic baseline (§6.3.1).
//!
//! "The naive elastic baseline … finds the cost-optimal allocation plan
//! within the constrained space of fixed allocations per-trial. That is,
//! although the cluster size is elastically adjusted, the number of
//! resources allocated to each trial remains constant across stages" —
//! the strategy of prior systems such as ASHA's elastic deployments. The
//! flaw: to meet a tight deadline the (long) final stage forces a large
//! per-trial allocation, which then multiplies across the many trials of
//! the early stages ("512 GPUs in the first stage of the 20-minute
//! experiment", Table 2 footnote).

use crate::beam::batch_select;
use rb_core::{RbError, Result, SimDuration};
use rb_hpo::ExperimentSpec;
use rb_sim::{AllocationPlan, Prediction, Simulator};

/// Builds the naive-elastic plan for a fixed `gpus_per_trial`: stage `i`
/// gets `trials_i × gpus_per_trial` GPUs.
pub fn naive_plan(spec: &ExperimentSpec, gpus_per_trial: u32) -> AllocationPlan {
    let v = spec
        .stages()
        .map(|s| s.num_trials * gpus_per_trial)
        .collect();
    AllocationPlan::new(v)
}

/// Finds the cost-optimal naive-elastic plan meeting `deadline`, sweeping
/// the per-trial allocation over 1..=`max_gpus_per_trial`.
///
/// # Errors
///
/// Returns [`RbError::Infeasible`] if no per-trial allocation meets the
/// deadline; propagates simulator errors.
pub fn plan_naive_elastic(
    sim: &Simulator,
    spec: &ExperimentSpec,
    deadline: SimDuration,
    max_gpus_per_trial: u32,
) -> Result<(AllocationPlan, Prediction)> {
    let mut plans: Vec<AllocationPlan> = (1..=max_gpus_per_trial.max(1))
        .map(|g| naive_plan(spec, g))
        .collect();
    // One batched prediction across the per-trial sweep; cheapest
    // feasible plan wins, earlier (smaller) allocation breaking ties.
    batch_select(
        sim,
        spec,
        &plans,
        |pred| pred.feasible(deadline),
        |a, b| a.cost < b.cost,
    )?
    .map(|(i, pred)| (plans.swap_remove(i), pred))
    .ok_or_else(|| RbError::Infeasible {
        reason: format!(
            "no fixed per-trial allocation up to {max_gpus_per_trial} GPUs meets {deadline}"
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;
    use rb_cloud::CloudPricing;
    use rb_profile::{CloudProfile, ModelProfile};
    use rb_scaling::zoo::RESNET50;
    use rb_scaling::AnalyticScaling;
    use rb_sim::SimConfig;
    use std::sync::Arc;

    fn sim() -> Simulator {
        let scaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
        let model = ModelProfile::from_scaling("rn50", scaling, 10, 2.0, 0.0);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15));
        Simulator::new(model, cloud).with_config(SimConfig {
            samples: 3,
            seed: 5,
            sync_overhead_secs: 1.0,
        })
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(16, 4), (8, 8), (4, 16), (2, 32), (1, 64)]).unwrap()
    }

    #[test]
    fn naive_plan_tracks_trial_count() {
        let p = naive_plan(&spec(), 2);
        assert_eq!(p.as_slice(), &[32, 16, 8, 4, 2]);
        assert!(p.is_fair(&spec()));
    }

    #[test]
    fn picks_cheapest_feasible_per_trial_allocation() {
        // The chosen plan must match a brute-force sweep over per-trial
        // sizes. (It is not necessarily g = 1: a larger share can amortize
        // minimum charges and per-stage overheads.)
        let s = sim();
        let deadline = SimDuration::from_hours(3);
        let (plan, pred) = plan_naive_elastic(&s, &spec(), deadline, 8).unwrap();
        let mut best: Option<(u32, rb_core::Cost)> = None;
        for g in 1..=8 {
            let p = s.predict(&spec(), &naive_plan(&spec(), g)).unwrap();
            if p.feasible(deadline) && best.map_or(true, |(_, c)| p.cost < c) {
                best = Some((g, p.cost));
            }
        }
        let (best_g, best_cost) = best.unwrap();
        assert_eq!(plan.as_slice(), naive_plan(&spec(), best_g).as_slice());
        assert_eq!(pred.cost, best_cost);
        assert!(pred.feasible(deadline));
    }

    #[test]
    fn tight_deadline_forces_bigger_per_trial_share() {
        let s = sim();
        let lax = plan_naive_elastic(&s, &spec(), SimDuration::from_hours(3), 8)
            .unwrap()
            .0;
        // 280 s is only satisfiable with ≥6 GPUs per trial.
        let (tight, _) = plan_naive_elastic(&s, &spec(), SimDuration::from_secs(280), 8).unwrap();
        assert!(tight.gpus(0) > lax.gpus(0), "tight {tight} vs lax {lax}");
        let impossible = plan_naive_elastic(&s, &spec(), SimDuration::from_secs(30), 8);
        assert!(matches!(impossible, Err(RbError::Infeasible { .. })));
    }
}
