//! Minimal deterministic fork/join parallelism over index ranges.
//!
//! The prediction engine fans work out across candidate plans and across
//! Monte-Carlo samples. This repo builds with **no external crates**, so
//! instead of rayon we provide one tiny primitive on top of
//! [`std::thread::scope`]: split `0..n` into contiguous chunks
//! ([`plan_chunks`]), let a pool of scoped worker threads *steal* chunks
//! off a shared atomic cursor, and re-assemble the chunk outputs in index
//! order. Because chunk boundaries depend only on `(n, threads)` and
//! outputs are re-assembled in index order, the result vector is identical
//! for every thread count and every steal interleaving — determinism is
//! pushed down to the work function, which must derive any randomness from
//! the item index alone (see [`crate::rng::mix_seed`]).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of worker threads to use when the caller asks for "auto" (0):
/// the host's available parallelism, or 1 if that cannot be determined.
/// Cached after the first query — `available_parallelism` is a syscall,
/// and this sits on the per-prediction hot path.
pub fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// How a parallel job over `0..n` is cut into chunks: contiguous,
/// deterministic (a pure function of `(n, threads)`), and — when several
/// workers run — smaller than an even `n / threads` split, so a fast
/// worker can steal the tail of a slow worker's share instead of idling
/// at the join barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Resolved worker count (`0` → [`auto_threads`], then clamped to the
    /// item count).
    pub threads: usize,
    /// Items per chunk; the last chunk may be short.
    pub chunk_size: usize,
    /// Total chunks (`ceil(n / chunk_size)`; 0 when `n == 0`).
    pub num_chunks: usize,
}

/// Chunks per worker when there is enough work to over-partition. More
/// chunks mean finer stealing granularity when item costs are skewed
/// (cache hits vs misses, small vs large plans); fewer mean better
/// scratch reuse inside `work`. Four per worker is the conventional
/// balance.
const OVERPARTITION: usize = 4;

/// Picks the chunking for `n` items on `threads` workers. With one worker
/// (or `n <= 1`) everything is a single chunk; otherwise chunks are sized
/// from the batch itself — `ceil(n / (threads × 4))`, at least one item —
/// rather than a fixed per-thread divisor, so small batches still split
/// finely enough for stealing to even out skewed item costs.
pub fn plan_chunks(n: usize, threads: usize) -> ChunkPlan {
    let threads = if threads == 0 {
        auto_threads()
    } else {
        threads
    };
    let threads = threads.min(n.max(1));
    if threads <= 1 {
        return ChunkPlan {
            threads: 1,
            chunk_size: n.max(1),
            num_chunks: usize::from(n > 0),
        };
    }
    let chunk_size = n.div_ceil(threads * OVERPARTITION).max(1);
    ChunkPlan {
        threads,
        chunk_size,
        num_chunks: n.div_ceil(chunk_size),
    }
}

/// Runs `work` over the index range `0..n` split into chunks (sized by
/// [`plan_chunks`]) and returns the concatenated per-chunk outputs, in
/// index order.
///
/// `work` receives a whole sub-range rather than a single index so that a
/// chunk can reuse scratch buffers across its items; it must return one
/// output per index in the range, in order. `threads == 0` means "auto"
/// ([`auto_threads`]). With one thread (or `n <= 1`) no threads are
/// spawned and `work` runs on the caller's stack.
///
/// Workers claim chunks off a shared atomic cursor (work stealing), so a
/// thread stuck on an expensive chunk does not strand the cheap chunks
/// behind it. Outputs are tagged with their chunk index and sorted before
/// concatenation, so the output is bit-identical for every `threads`
/// value and steal order as long as `work(range)` equals the
/// corresponding slice of `work(0..n)` — i.e. each item's output depends
/// only on its index.
///
/// # Panics
///
/// Propagates panics from `work`.
///
/// # Examples
///
/// ```
/// use rb_core::par::run_chunked;
/// let f = |r: std::ops::Range<usize>| r.map(|i| i * i).collect::<Vec<_>>();
/// assert_eq!(run_chunked(5, 1, &f), run_chunked(5, 4, &f));
/// ```
pub fn run_chunked<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let plan = plan_chunks(n, threads);
    if plan.threads <= 1 {
        let out = work(0..n);
        debug_assert_eq!(out.len(), n, "work must yield one output per index");
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::with_capacity(plan.num_chunks));
    std::thread::scope(|scope| {
        let work = &work;
        let cursor = &cursor;
        let done = &done;
        let handles: Vec<_> = (0..plan.threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= plan.num_chunks {
                            break;
                        }
                        let lo = c * plan.chunk_size;
                        let hi = (lo + plan.chunk_size).min(n);
                        local.push((c, work(lo..hi)));
                    }
                    done.lock().expect("chunk results poisoned").extend(local);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }
    });
    let mut chunks = done.into_inner().expect("chunk results poisoned");
    chunks.sort_unstable_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(n);
    for (_, part) in chunks {
        out.extend(part);
    }
    debug_assert_eq!(out.len(), n, "work must yield one output per index");
    out
}

/// Maps `work` over `0..n` item-by-item (no scratch reuse), in parallel.
/// Convenience wrapper over [`run_chunked`] for jobs whose items are
/// self-contained, e.g. planning independent Hyperband brackets.
pub fn map_indexed<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked(n, threads, |range| range.map(&work).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_preserves_index_order() {
        let square = |r: Range<usize>| r.map(|i| i * i).collect::<Vec<_>>();
        let reference: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            assert_eq!(
                run_chunked(37, threads, square),
                reference,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn empty_and_tiny_ranges_work() {
        let id = |r: Range<usize>| r.collect::<Vec<_>>();
        assert!(run_chunked(0, 4, id).is_empty());
        assert_eq!(run_chunked(1, 4, id), vec![0]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(map_indexed(3, 100, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn auto_threads_is_positive() {
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn map_indexed_matches_sequential() {
        let reference: Vec<u64> = (0..100).map(|i| crate::rng::mix_seed(9, i)).collect();
        assert_eq!(
            map_indexed(100, 7, |i| crate::rng::mix_seed(9, i as u64)),
            reference
        );
    }

    #[test]
    fn plan_chunks_is_deterministic_and_covers_n() {
        for n in [0usize, 1, 2, 7, 16, 37, 100, 1000] {
            for threads in [0usize, 1, 2, 3, 8, 64] {
                let a = plan_chunks(n, threads);
                let b = plan_chunks(n, threads);
                assert_eq!(a, b, "pure function of (n, threads)");
                assert_eq!(
                    a.num_chunks,
                    n.div_ceil(a.chunk_size.max(1)).max(usize::from(n > 0)) * usize::from(n > 0),
                    "n={n} threads={threads}: {a:?}"
                );
                // Chunks tile 0..n exactly.
                let covered: usize = (0..a.num_chunks)
                    .map(|c| (c * a.chunk_size + a.chunk_size).min(n) - c * a.chunk_size)
                    .sum();
                assert_eq!(covered, n, "n={n} threads={threads}: {a:?}");
            }
        }
    }

    #[test]
    fn plan_chunks_over_partitions_for_stealing() {
        // A multi-threaded batch must split into more chunks than workers
        // (when there is enough work), so a straggler chunk can be routed
        // around.
        let plan = plan_chunks(64, 4);
        assert!(plan.num_chunks > plan.threads, "{plan:?}");
        // Tiny batches still give every worker something when possible.
        let tiny = plan_chunks(3, 8);
        assert_eq!(tiny.chunk_size, 1);
        assert_eq!(tiny.num_chunks, 3);
    }

    #[test]
    fn stealing_matches_sequential_under_skewed_costs() {
        // Items with wildly different costs: stealing changes which worker
        // runs which chunk, never the output.
        let work = |r: Range<usize>| {
            r.map(|i| {
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                i * 3 + 1
            })
            .collect::<Vec<_>>()
        };
        let reference: Vec<usize> = (0..50).map(|i| i * 3 + 1).collect();
        for threads in [2, 3, 8] {
            assert_eq!(run_chunked(50, threads, work), reference);
        }
    }
}
