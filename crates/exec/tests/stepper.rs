//! Bit-identity suite for the steppable executor core.
//!
//! `Executor::run` / `run_hooked` / `run_observed` are thin drivers over
//! [`ExecutorCore`]: construct, step until [`StepOutcome::Finished`],
//! finish. The decomposition is pure code motion, so a manually driven
//! core must be **byte-equal** to the legacy drivers — same report, same
//! trace, same counters — in every cell: plain, hook-armed, recorded,
//! and chaos-enabled. These tests pin that contract; the multi-tenant
//! service (`rb-serve`) depends on it to interleave jobs without
//! perturbing them.

use rb_cloud::catalog::P3_8XLARGE;
use rb_cloud::{CloudPricing, FaultPlan};
use rb_core::{Prng, SimDuration, SimTime};
use rb_exec::{
    BarrierHook, BarrierSnapshot, ExecOptions, ExecutionReport, Executor, ExecutorCore, NoopHook,
    RetryPolicy, StepOutcome, WatchdogSnapshot,
};
use rb_hpo::{Config, Dim, ExperimentSpec, SearchSpace};
use rb_obs::export::export_jsonl;
use rb_obs::{MemoryRecorder, RecorderHandle};
use rb_profile::{CloudProfile, ModelProfile};
use rb_sim::AllocationPlan;
use rb_train::task::resnet101_cifar10;
use rb_train::TaskModel;
use std::sync::Arc;

fn cloud() -> CloudProfile {
    CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15))
}

fn physics(task: &TaskModel) -> ModelProfile {
    let scaling = Arc::new(rb_scaling::AnalyticScaling::for_arch(&task.arch, 1024, 4));
    let mut p =
        ModelProfile::from_scaling(task.name, scaling, task.steps_per_iter(1024), 2.0, 0.02);
    p.train_startup_secs = 2.0;
    p
}

fn configs(n: usize, seed: u64) -> Vec<Config> {
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .add("weight_decay", Dim::LogUniform { lo: 1e-5, hi: 1e-2 })
        .build()
        .unwrap();
    space.sample_n(n, &mut Prng::seed_from_u64(seed))
}

fn executor(plan: Vec<u32>, options: ExecOptions) -> Executor {
    let task = resnet101_cifar10();
    let spec = ExperimentSpec::from_stages(&[(8, 1), (4, 2), (2, 4), (1, 8)]).unwrap();
    Executor::new(
        spec,
        AllocationPlan::new(plan),
        task.clone(),
        physics(&task),
        cloud(),
    )
    .unwrap()
    .with_options(options)
}

/// Drives a core by hand, exactly as the legacy drivers do.
fn drive(
    exec: &Executor,
    configs: &[Config],
    hook: &mut dyn BarrierHook,
    recorder: RecorderHandle,
) -> ExecutionReport {
    let mut core = ExecutorCore::new(exec, configs, recorder).unwrap();
    let total = core.num_stages();
    let mut barriers = 0usize;
    while !core.is_finished() {
        let before = core.now();
        match core.step(before, &mut *hook).unwrap() {
            StepOutcome::Barrier { stage, at } => {
                assert_eq!(stage, barriers, "barriers arrive in stage order");
                assert!(at >= before, "virtual time is monotone");
                assert_eq!(core.now(), at);
                barriers += 1;
            }
            StepOutcome::Finished { at } => {
                assert!(core.is_finished());
                assert_eq!(core.now(), at);
            }
        }
    }
    assert!(barriers < total, "the final stage reports Finished");
    core.finish().unwrap()
}

#[test]
fn manual_drive_matches_run_byte_for_byte() {
    let exec = executor(
        vec![8, 8, 4, 4],
        ExecOptions {
            seed: 42,
            ..ExecOptions::default()
        },
    );
    let cfgs = configs(8, 1);
    let legacy = exec.run(&cfgs).unwrap();
    let manual = drive(&exec, &cfgs, &mut NoopHook, RecorderHandle::noop());
    assert_eq!(legacy.trace, manual.trace);
    assert_eq!(format!("{legacy:?}"), format!("{manual:?}"));
}

#[test]
fn manual_drive_matches_run_hooked_with_armed_watchdog() {
    /// Arms a generous budget on every stage: the watchdog is armed and
    /// checked but never fires — the bit-identity contract's hard case.
    struct Armed(Vec<usize>);
    impl BarrierHook for Armed {
        fn at_barrier(&mut self, _s: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
            None
        }
        fn stage_budget_secs(&mut self, stage: usize) -> Option<f64> {
            self.0.push(stage);
            Some(1e9)
        }
        fn at_watchdog(&mut self, _s: &WatchdogSnapshot<'_>) -> Option<Vec<u32>> {
            panic!("a 1e9 s budget must never fire");
        }
    }
    let exec = executor(
        vec![8, 8, 8, 8],
        ExecOptions {
            seed: 7,
            ..ExecOptions::default()
        },
    );
    let cfgs = configs(8, 2);
    let mut legacy_hook = Armed(Vec::new());
    let legacy = exec.run_hooked(&cfgs, &mut legacy_hook).unwrap();
    let mut manual_hook = Armed(Vec::new());
    let manual = drive(&exec, &cfgs, &mut manual_hook, RecorderHandle::noop());
    assert_eq!(legacy_hook.0, manual_hook.0, "same budget queries");
    assert_eq!(legacy.trace, manual.trace);
    assert_eq!(format!("{legacy:?}"), format!("{manual:?}"));
}

#[test]
fn manual_drive_matches_run_hooked_with_replanning_barrier_hook() {
    /// Re-plans the remaining stages at the first barrier (widens the
    /// tail), exercising the plan-splice path through `step`.
    struct Replan;
    impl BarrierHook for Replan {
        fn at_barrier(&mut self, s: &BarrierSnapshot<'_>) -> Option<Vec<u32>> {
            (s.stage == 0).then(|| vec![8; s.num_stages - s.stage - 1])
        }
    }
    let exec = executor(
        vec![8, 4, 4, 4],
        ExecOptions {
            seed: 11,
            ..ExecOptions::default()
        },
    );
    let cfgs = configs(8, 3);
    let legacy = exec.run_hooked(&cfgs, &mut Replan).unwrap();
    let manual = drive(&exec, &cfgs, &mut Replan, RecorderHandle::noop());
    assert_eq!(legacy.trace, manual.trace);
    assert_eq!(format!("{legacy:?}"), format!("{manual:?}"));
}

#[test]
fn manual_drive_matches_run_observed_traces_and_counters() {
    let exec = executor(
        vec![8, 8, 4, 4],
        ExecOptions {
            seed: 42,
            ..ExecOptions::default()
        },
    );
    let cfgs = configs(8, 1);

    let legacy_sink = Arc::new(MemoryRecorder::new());
    let legacy = exec
        .run_observed(
            &cfgs,
            &mut NoopHook,
            RecorderHandle::new(legacy_sink.clone()),
        )
        .unwrap();
    let manual_sink = Arc::new(MemoryRecorder::new());
    let manual = drive(
        &exec,
        &cfgs,
        &mut NoopHook,
        RecorderHandle::new(manual_sink.clone()),
    );

    assert_eq!(format!("{legacy:?}"), format!("{manual:?}"));
    // The full export — events, counters, histograms — must match byte
    // for byte, not just the reports.
    assert_eq!(
        export_jsonl(&legacy_sink.finish()),
        export_jsonl(&manual_sink.finish())
    );
}

#[test]
fn manual_drive_matches_run_under_chaos() {
    let options = ExecOptions {
        seed: 1337,
        faults: FaultPlan {
            capacity_failure_prob: 0.2,
            straggler_prob: 0.3,
            straggler_factor: 3.0,
            degraded_prob: 0.2,
            degraded_factor: 1.5,
            checkpoint_corruption_prob: 0.3,
            ..FaultPlan::none()
        },
        retry: Some(RetryPolicy {
            max_retries: 8,
            ..RetryPolicy::default()
        }),
        checkpoint_retention: 2,
        ..ExecOptions::default()
    };
    let exec = executor(vec![8, 8, 4, 4], options);
    let cfgs = configs(8, 9);
    let legacy = exec.run(&cfgs).unwrap();
    assert!(
        legacy.faults_injected > 0,
        "the chaos cell must actually inject faults"
    );
    let manual = drive(&exec, &cfgs, &mut NoopHook, RecorderHandle::noop());
    assert_eq!(legacy.trace, manual.trace);
    assert_eq!(format!("{legacy:?}"), format!("{manual:?}"));
}

#[test]
fn stepping_past_the_end_is_a_typed_error() {
    let exec = executor(
        vec![2, 2, 2, 2],
        ExecOptions {
            seed: 5,
            ..ExecOptions::default()
        },
    );
    let cfgs = configs(8, 4);
    // Finishing before the run completes is refused.
    let early = ExecutorCore::new(&exec, &cfgs, RecorderHandle::noop()).unwrap();
    assert!(early.finish().is_err());
    let mut core = ExecutorCore::new(&exec, &cfgs, RecorderHandle::noop()).unwrap();
    assert!(!core.is_finished());
    while !core.is_finished() {
        let now = core.now();
        core.step(now, &mut NoopHook).unwrap();
    }
    let err = core.step(core.now(), &mut NoopHook).unwrap_err();
    assert!(matches!(err, rb_core::RbError::Execution(_)), "{err:?}");
    core.finish().unwrap();
}

#[test]
fn interleaved_cores_share_one_pool_and_the_ledger_balances() {
    use rb_cloud::{InstancePool, PoolConfig, SharedPool};

    // Two jobs on down-up plans (instances 2/1/2/1): each parks an
    // instance at barrier 0 and scales back up at barrier 1, so with a
    // hold long enough to span a stage the scale-ups adopt parked
    // capacity — including the peer's — instead of provisioning fresh.
    let run = || {
        let pool = SharedPool::new(
            InstancePool::new(
                PoolConfig {
                    capacity: 8,
                    max_hold_secs: 1e7,
                    handoff_secs: 2.0,
                },
                CloudPricing::on_demand(P3_8XLARGE),
            )
            .unwrap(),
        );
        let execs: Vec<Executor> = (0..2u64)
            .map(|k| {
                executor(
                    vec![8, 4, 8, 4],
                    ExecOptions {
                        seed: 40 + k,
                        ..ExecOptions::default()
                    },
                )
            })
            .collect();
        let cfg_sets: Vec<Vec<Config>> = (0..2u64).map(|k| configs(8, 100 + k)).collect();
        let mut cores: Vec<ExecutorCore> = execs
            .iter()
            .zip(&cfg_sets)
            .enumerate()
            .map(|(k, (e, c))| {
                let mut core = ExecutorCore::new(e, c, RecorderHandle::noop()).unwrap();
                core.attach_shared_pool(pool.clone(), k as u64, None);
                core
            })
            .collect();
        // Interleave exactly as the service does: always step the core
        // whose clock is furthest behind (ties to the lower id), so
        // both jobs reach the contended barriers in lockstep.
        loop {
            let pick = cores
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.is_finished())
                .min_by_key(|&(i, c)| (c.now(), i))
                .map(|(i, _)| i);
            let Some(i) = pick else { break };
            let now = cores[i].now();
            cores[i].step(now, &mut NoopHook).unwrap();
        }
        let end = cores.iter().map(ExecutorCore::now).max().unwrap();
        let reports: Vec<ExecutionReport> =
            cores.into_iter().map(|c| c.finish().unwrap()).collect();
        pool.with(|p| p.drain(end));
        let stats = pool.with(|p| p.stats());
        (reports, stats)
    };

    let (reports, stats) = run();
    assert!(
        stats.handoffs > 0,
        "interleaved barriers must hand capacity across the pool: {stats:?}"
    );
    assert_eq!(stats.double_releases, 0, "{stats:?}");
    assert_eq!(stats.conflicts, 0, "{stats:?}");
    assert!(
        stats.balances(0),
        "pool ledger out of balance after drain: {stats:?}"
    );

    // The interleaving is a pure function of the workload: a second
    // run is bit-identical, reports and ledger alike.
    let (again, stats_again) = run();
    assert_eq!(format!("{reports:?}"), format!("{again:?}"));
    assert_eq!(format!("{stats:?}"), format!("{stats_again:?}"));
}

#[test]
fn admission_time_shifts_the_clock_but_not_the_outcome() {
    let mk = || {
        executor(
            vec![8, 8, 4, 4],
            ExecOptions {
                seed: 21,
                ..ExecOptions::default()
            },
        )
    };
    let cfgs = configs(8, 6);
    let base = mk().run(&cfgs).unwrap();

    let start = SimTime::from_secs(500);
    let exec = mk();
    let mut core = ExecutorCore::new_at(&exec, &cfgs, RecorderHandle::noop(), start).unwrap();
    assert_eq!(core.now(), start);
    while !core.is_finished() {
        let now = core.now();
        core.step(now, &mut NoopHook).unwrap();
    }
    let shifted = core.finish().unwrap();

    // Same randomness, same training timeline: JCT and economics are
    // unchanged; only absolute stamps move.
    assert_eq!(base.jct, shifted.jct);
    assert_eq!(base.compute_cost, shifted.compute_cost);
    assert_eq!(base.best_trial, shifted.best_trial);
    assert_eq!(base.best_accuracy, shifted.best_accuracy);
    for (b, s) in base.stages.iter().zip(&shifted.stages) {
        assert_eq!(s.train_start, b.train_start + (start - SimTime::ZERO));
        assert_eq!(s.sync_end, b.sync_end + (start - SimTime::ZERO));
    }
}
