//! ext-serve — the multi-tenant service sweep.
//!
//! Runs the same seeded workload through [`rb_serve::TuningService`]
//! across tenant counts and arrival spacings, each cell once with the
//! shared elastic instance pool and once without. The pool-on/pool-off
//! pair shares job seeds, so the cost delta is exactly what the pool's
//! barrier handoffs are worth: adopters skip dataset re-ingress and the
//! provision + init cycle, at the price of park time for instances the
//! pool holds.
//!
//! The sweep ends with a machine-checkable `ext-serve summary:` line
//! that `scripts/verify.sh` diffs against `scripts/expected_ext_serve.txt`;
//! a drift means the scheduler, the pool lifecycle, or the billing
//! accounting changed behaviour.

use crate::tables::physics_for;
use rb_cloud::catalog::P3_8XLARGE;
use rb_cloud::{CloudPricing, PoolConfig};
use rb_core::{Cost, Prng, Result, SimDuration, SimTime};
use rb_exec::{ExecOptions, Executor};
use rb_hpo::{Config, Dim, ExperimentSpec, SearchSpace};
use rb_profile::CloudProfile;
use rb_serve::{JobRequest, ServeOptions, TenantSpec, TuningService};
use rb_sim::AllocationPlan;

/// One service cell's executed outcome.
#[derive(Debug, Clone)]
pub struct ServeCell {
    /// Number of tenants sharing the service.
    pub tenants: usize,
    /// Seconds between consecutive job arrivals.
    pub gap_secs: u64,
    /// Whether the shared instance pool was enabled.
    pub pool: bool,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs rejected at admission.
    pub rejected: usize,
    /// Total billed cost in dollars (job meters + pool park time).
    pub billed: Cost,
    /// Billed cost net of the minimum-charge credit.
    pub net: Cost,
    /// Median queue wait in seconds.
    pub p50_wait_secs: f64,
    /// Virtual makespan in seconds.
    pub makespan_secs: f64,
    /// Barrier handoffs the pool brokered (0 when disabled).
    pub handoffs: u64,
    /// Parked instances the pool gave up on (0 when disabled).
    pub expirations: u64,
    /// Double releases the idempotency guard absorbed (must stay 0).
    pub double_releases: u64,
}

fn serve_cloud() -> CloudProfile {
    // Paid ingress and a real provision + init cycle: the costs a warm
    // handoff avoids, so the pool's value shows up on the bill.
    CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE).with_data_price(Cost::from_dollars(0.02)))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15))
        .with_dataset_gb(100.0)
}

fn serve_configs(n: usize, seed: u64) -> Vec<Config> {
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .build()
        .unwrap();
    space.sample_n(n, &mut Prng::seed_from_u64(seed))
}

/// Builds the cell's workload: `jobs` single-plan SHA runs arriving
/// `gap_secs` apart, round-robin across tenants. Pool-on and pool-off
/// cells call this with the same arguments, so the comparison is at
/// identical seeds.
fn serve_jobs(jobs: usize, tenants: usize, gap_secs: u64, seed: u64) -> Result<Vec<JobRequest>> {
    let task = rb_train::task::resnet101_cifar10();
    let physics = physics_for(&task, 1024, 4);
    let spec = ExperimentSpec::from_stages(&[(8, 1), (4, 2), (2, 4), (1, 8)])?;
    (0..jobs)
        .map(|k| {
            let job_seed = seed ^ ((tenants as u64) << 32) ^ (gap_secs << 16) ^ k as u64;
            let executor = Executor::new(
                spec.clone(),
                AllocationPlan::new(vec![8, 8, 8, 8]),
                task.clone(),
                physics.clone(),
                serve_cloud(),
            )?
            .with_options(ExecOptions {
                seed: job_seed,
                ..ExecOptions::default()
            });
            Ok(JobRequest::new(
                executor,
                serve_configs(8, job_seed ^ 0xC0FFEE),
                SimTime::from_secs(k as u64 * gap_secs),
                k % tenants,
            ))
        })
        .collect()
}

/// One completed service job, flattened for the fleet manifests: the
/// cell coordinates, the billing tenant, and the job's own meters.
#[derive(Debug, Clone)]
pub struct ServeJobRow {
    /// Number of tenants sharing the service.
    pub tenants: usize,
    /// Seconds between consecutive job arrivals.
    pub gap_secs: u64,
    /// Whether the shared instance pool was enabled.
    pub pool: bool,
    /// The submitting tenant's name (`tenant-{i}`).
    pub tenant: String,
    /// Job completion time (from dispatch), virtual milliseconds.
    pub jct_ms: u64,
    /// Compute + data cost in micro-dollars.
    pub cost_micros: i64,
    /// Queue wait before dispatch, virtual milliseconds.
    pub queue_wait_ms: u64,
    /// Spot preemptions the job absorbed.
    pub preemptions: u32,
    /// Faults injected into the job.
    pub faults: u64,
    /// Provisioning retry rounds.
    pub retries: u64,
    /// Checkpoint generation fallbacks.
    pub fallbacks: u64,
    /// Stages run on degraded capacity.
    pub degraded: u32,
}

/// Runs the sweep: every (tenant count × arrival gap) cell with the
/// pool off and on, four jobs per cell on a serial service so each
/// successor can adopt its predecessor's fleet.
///
/// # Errors
///
/// Propagates service and executor errors.
pub fn ext_serve(tenant_counts: &[usize], gaps: &[u64], seed: u64) -> Result<Vec<ServeCell>> {
    ext_serve_with_jobs(tenant_counts, gaps, seed).map(|(cells, _)| cells)
}

/// [`ext_serve`] also returning one [`ServeJobRow`] per completed job,
/// in completion order — the per-run records the `repro fleet`
/// artifact turns into rollup manifests.
///
/// # Errors
///
/// Propagates service and executor errors.
pub fn ext_serve_with_jobs(
    tenant_counts: &[usize],
    gaps: &[u64],
    seed: u64,
) -> Result<(Vec<ServeCell>, Vec<ServeJobRow>)> {
    let mut cells = Vec::new();
    let mut jobs = Vec::new();
    for &tenants in tenant_counts {
        for &gap in gaps {
            for pool in [false, true] {
                let service = TuningService::new(
                    (0..tenants)
                        .map(|t| TenantSpec::new(format!("tenant-{t}"), 1.0))
                        .collect(),
                    ServeOptions {
                        max_concurrent: 1,
                        max_queue: 16,
                        pool: pool.then(PoolConfig::default),
                    },
                )?;
                let report = service.run(serve_jobs(4, tenants, gap, seed)?)?;
                let stats = report.pool.clone().unwrap_or_default();
                for outcome in &report.outcomes {
                    jobs.push(ServeJobRow {
                        tenants,
                        gap_secs: gap,
                        pool,
                        tenant: format!("tenant-{}", outcome.tenant),
                        jct_ms: outcome.report.jct.as_millis(),
                        cost_micros: outcome.report.total_cost().as_micros(),
                        queue_wait_ms: outcome.queue_wait.as_millis(),
                        preemptions: outcome.report.preemptions,
                        faults: outcome.report.faults_injected,
                        retries: outcome.report.provision_retries,
                        fallbacks: outcome.report.checkpoint_fallbacks,
                        degraded: outcome.report.degraded_stages,
                    });
                }
                cells.push(ServeCell {
                    tenants,
                    gap_secs: gap,
                    pool,
                    completed: report.outcomes.len(),
                    rejected: report.rejected.len(),
                    billed: report.billed_cost,
                    net: report.net_cost,
                    p50_wait_secs: report.queue_wait_p50().as_secs_f64(),
                    makespan_secs: report
                        .makespan
                        .saturating_since(SimTime::ZERO)
                        .as_secs_f64(),
                    handoffs: stats.handoffs,
                    expirations: stats.expirations,
                    double_releases: stats.double_releases,
                });
            }
        }
    }
    Ok((cells, jobs))
}

/// Renders the sweep, ending with a machine-checkable summary line.
pub fn print_ext_serve(cells: &[ServeCell]) {
    println!("Extension — multi-tenant service with a shared elastic instance pool");
    println!("(4 jobs/cell, serial dispatch, paid ingress; pool pairs share seeds)\n");
    println!(
        "{:<8} {:>6} {:>6} {:>5} {:>4} {:>10} {:>10} {:>9} {:>11} {:>9}",
        "tenants",
        "gap_s",
        "pool",
        "done",
        "rej",
        "billed",
        "net",
        "p50_wait",
        "makespan",
        "handoffs"
    );
    for c in cells {
        println!(
            "{:<8} {:>6} {:>6} {:>5} {:>4} {:>10} {:>10} {:>8.0}s {:>10.0}s {:>9}",
            c.tenants,
            c.gap_secs,
            if c.pool { "on" } else { "off" },
            c.completed,
            c.rejected,
            format!("{}", c.billed),
            format!("{}", c.net),
            c.p50_wait_secs,
            c.makespan_secs,
            c.handoffs
        );
    }

    // Pool-off/pool-on pairs are adjacent by construction.
    let mut pairs = 0u64;
    let mut cheaper = 0u64;
    let mut wait_regressions = 0u64;
    let mut handoffs = 0u64;
    let mut expirations = 0u64;
    let mut double_releases = 0u64;
    let mut saved = Cost::ZERO;
    for pair in cells.chunks_exact(2) {
        let (off, on) = (&pair[0], &pair[1]);
        pairs += 1;
        if on.billed < off.billed {
            cheaper += 1;
            saved += off.billed - on.billed;
        }
        if on.p50_wait_secs > off.p50_wait_secs {
            wait_regressions += 1;
        }
        handoffs += on.handoffs;
        expirations += on.expirations;
        double_releases += on.double_releases + off.double_releases;
    }
    println!(
        "\next-serve summary: cells={} pairs={pairs} pool_cheaper={cheaper} \
         wait_regressions={wait_regressions} handoffs={handoffs} \
         expirations={expirations} double_releases={double_releases} saved=${:.4}",
        cells.len(),
        saved.as_dollars()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_on_is_cheaper_at_equal_or_better_wait_in_every_pair() {
        let cells = ext_serve(&[2], &[0], 1).unwrap();
        assert_eq!(cells.len(), 2);
        for pair in cells.chunks_exact(2) {
            let (off, on) = (&pair[0], &pair[1]);
            assert!(!off.pool && on.pool);
            assert_eq!(off.completed, 4);
            assert_eq!(on.completed, 4);
            assert!(on.handoffs > 0, "pool must actually broker handoffs");
            assert_eq!(on.double_releases, 0);
            assert!(
                on.billed < off.billed,
                "pool-on {} !< pool-off {}",
                on.billed,
                off.billed
            );
            assert!(on.net <= on.billed);
            assert!(on.p50_wait_secs <= off.p50_wait_secs);
        }
    }

    #[test]
    fn the_sweep_is_deterministic_per_seed() {
        let a = ext_serve(&[2], &[300], 1).unwrap();
        let b = ext_serve(&[2], &[300], 1).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
