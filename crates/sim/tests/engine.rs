//! Determinism and correctness contract of the prediction engine.
//!
//! The engine promises that every execution strategy — sequential
//! reference, cached, uncached, template-built, one thread, many threads,
//! batched — produces **bit-identical** predictions. These tests pin that
//! contract.

use rb_cloud::catalog::P3_8XLARGE;
use rb_cloud::CloudPricing;
use rb_core::{RbError, SimDuration};
use rb_hpo::ExperimentSpec;
use rb_profile::{CloudProfile, ModelProfile};
use rb_scaling::zoo::RESNET50;
use rb_scaling::AnalyticScaling;
use rb_sim::{AllocationPlan, EngineConfig, SimConfig, Simulator};
use std::sync::Arc;

/// A noisy sublinear-scaling simulator: noise makes every sample distinct,
/// so any divergence in sampling order or seed derivation shows up in the
/// aggregate.
fn sim() -> Simulator {
    let scaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
    let model = ModelProfile::from_scaling("rn50", scaling, 10, 2.0, 0.3);
    let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15));
    Simulator::new(model, cloud).with_config(SimConfig {
        samples: 17,
        seed: 0xE11,
        sync_overhead_secs: 1.0,
    })
}

fn spec() -> ExperimentSpec {
    ExperimentSpec::from_stages(&[(16, 4), (8, 8), (4, 16), (2, 32), (1, 64)]).unwrap()
}

fn plans() -> Vec<AllocationPlan> {
    vec![
        AllocationPlan::new(vec![16, 16, 16, 16, 16]),
        AllocationPlan::new(vec![32, 16, 8, 4, 4]),
        AllocationPlan::new(vec![16, 8, 4, 2, 1]),
        AllocationPlan::new(vec![48, 24, 12, 6, 3]),
    ]
}

#[test]
fn cached_predictions_are_identical_to_uncached() {
    let cached = sim(); // default engine: cache + templates on
    let uncached = sim().with_engine(EngineConfig {
        plan_cache: false,
        ..EngineConfig::default()
    });
    for plan in plans() {
        let cold = cached.predict(&spec(), &plan).unwrap();
        let warm = cached.predict(&spec(), &plan).unwrap(); // cache hit
        let raw = uncached.predict(&spec(), &plan).unwrap();
        assert_eq!(cold, warm, "{plan}: cache hit diverged from miss");
        assert_eq!(cold, raw, "{plan}: cached diverged from uncached");
    }
    assert_eq!(cached.cached_predictions(), plans().len());
    assert_eq!(uncached.cached_predictions(), 0);
}

#[test]
fn predictions_are_bit_identical_across_thread_counts() {
    let reference = sim();
    for plan in plans() {
        let expect = reference.predict_reference(&spec(), &plan).unwrap();
        for threads in [1, 2, 3, 8] {
            let s = sim().with_engine(EngineConfig::sequential_baseline().with_threads(threads));
            assert_eq!(
                s.predict(&spec(), &plan).unwrap(),
                expect,
                "{plan}: {threads} threads diverged from the sequential reference"
            );
        }
        // The full engine (templates + cache + auto threads) too.
        assert_eq!(sim().predict(&spec(), &plan).unwrap(), expect);
    }
}

#[test]
fn template_built_dags_predict_identically() {
    let with_templates = sim();
    let without = sim().with_engine(EngineConfig {
        dag_templates: false,
        ..EngineConfig::default()
    });
    for plan in plans() {
        assert_eq!(
            with_templates.predict(&spec(), &plan).unwrap(),
            without.predict(&spec(), &plan).unwrap(),
            "{plan}: template instantiation changed the prediction"
        );
    }
}

#[test]
fn batch_results_come_back_in_input_order() {
    let s = sim();
    let batch = plans();
    let preds = s.predict_batch(&spec(), &batch);
    assert_eq!(preds.len(), batch.len());
    for (plan, got) in batch.iter().zip(&preds) {
        let expect = s.predict_reference(&spec(), plan).unwrap();
        assert_eq!(
            *got.as_ref().unwrap(),
            expect,
            "{plan}: batch slot disagrees with its sequential prediction"
        );
    }
}

#[test]
fn batch_deduplicates_but_answers_every_slot() {
    let s = sim();
    let p = AllocationPlan::new(vec![16, 8, 4, 2, 1]);
    let batch = vec![p.clone(), p.clone(), p.clone()];
    let preds = s.predict_batch(&spec(), &batch);
    let expect = s.predict_reference(&spec(), &p).unwrap();
    for got in preds {
        assert_eq!(got.unwrap(), expect);
    }
    // Three identical plans, one cache entry.
    assert_eq!(s.cached_predictions(), 1);
}

#[test]
fn invalid_plans_fail_per_slot_without_poisoning_the_batch() {
    let s = sim();
    let good = AllocationPlan::new(vec![16, 8, 4, 2, 1]);
    let wrong_len = AllocationPlan::new(vec![16, 8]);
    let zero_gpus = AllocationPlan::new(vec![16, 8, 0, 2, 1]);
    let batch = vec![
        wrong_len.clone(),
        good.clone(),
        zero_gpus.clone(),
        good.clone(),
        wrong_len,
    ];
    let preds = s.predict_batch(&spec(), &batch);
    assert_eq!(preds.len(), 5);
    assert!(matches!(preds[0], Err(RbError::InvalidPlan(_))));
    assert!(matches!(preds[2], Err(RbError::InvalidPlan(_))));
    assert!(matches!(preds[4], Err(RbError::InvalidPlan(_))));
    let expect = s.predict_reference(&spec(), &good).unwrap();
    assert_eq!(*preds[1].as_ref().unwrap(), expect);
    assert_eq!(*preds[3].as_ref().unwrap(), expect);
    // Errors are never cached.
    assert_eq!(s.cached_predictions(), 1);
}

#[test]
fn batch_matches_one_at_a_time_prediction() {
    let batched = sim();
    let sequential = sim();
    let batch = plans();
    let got = batched.predict_batch(&spec(), &batch);
    for (plan, got) in batch.iter().zip(got) {
        assert_eq!(
            got.unwrap(),
            sequential.predict(&spec(), plan).unwrap(),
            "{plan}"
        );
    }
}

#[test]
fn plan_cache_generation_cap_bounds_memory_without_changing_results() {
    let capped = sim().with_engine(EngineConfig {
        plan_cache_cap: 2,
        ..EngineConfig::default()
    });
    let reference = sim();
    for plan in plans() {
        assert_eq!(
            capped.predict(&spec(), &plan).unwrap(),
            reference.predict_reference(&spec(), &plan).unwrap(),
            "{plan}: eviction changed the prediction"
        );
        assert!(
            capped.cached_predictions() <= 2,
            "cache grew past the cap: {}",
            capped.cached_predictions()
        );
    }
    // Re-predicting after eviction still agrees (recomputed, not stale).
    let p = &plans()[0];
    assert_eq!(
        capped.predict(&spec(), p).unwrap(),
        reference.predict_reference(&spec(), p).unwrap()
    );
}

#[test]
fn stage_memo_generation_cap_bounds_the_template() {
    let capped = sim().with_engine(EngineConfig {
        stage_memo_cap: 3,
        ..EngineConfig::default()
    });
    let reference = sim();
    for plan in plans() {
        assert_eq!(
            capped.predict(&spec(), &plan).unwrap(),
            reference.predict_reference(&spec(), &plan).unwrap(),
            "{plan}: memo eviction changed the prediction"
        );
    }
    let template = capped.template_for(&spec());
    assert!(
        template.cached_stage_configs() <= 3,
        "stage memo grew past the cap: {}",
        template.cached_stage_configs()
    );
}

#[test]
fn low_fidelity_simulator_shares_templates_and_prefix_samples() {
    let full = sim(); // 17 samples
    let low = full.with_samples(4);
    let plan = AllocationPlan::new(vec![16, 8, 4, 2, 1]);
    // Low fidelity equals a fresh 4-sample simulator bit-for-bit …
    let fresh = sim().with_config(SimConfig {
        samples: 4,
        ..*sim().config()
    });
    assert_eq!(
        low.predict(&spec(), &plan).unwrap(),
        fresh.predict_reference(&spec(), &plan).unwrap()
    );
    // … and does not pollute the parent's plan cache, whose prediction
    // stays at full fidelity.
    assert_eq!(full.cached_predictions(), 0);
    let p = full.predict(&spec(), &plan).unwrap();
    assert_eq!(p.samples, 17);
    assert_eq!(p, full.predict_reference(&spec(), &plan).unwrap());
}

#[test]
fn stage_quantiles_are_ordered_and_deterministic() {
    let s = sim();
    let plan = AllocationPlan::new(vec![32, 16, 8, 4, 4]);
    let qs = s.stage_quantiles(&spec(), &plan).unwrap();
    assert_eq!(qs.len(), spec().num_stages());
    for q in &qs {
        assert!(
            q.p10_secs <= q.p50_secs && q.p50_secs <= q.p90_secs,
            "{q:?}"
        );
        assert!(q.mean_secs > 0.0);
        assert_eq!(q.samples, 17);
    }
    // Same sample streams as the prediction: stage means sum to the JCT.
    let pred = s.predict(&spec(), &plan).unwrap();
    let total: f64 = qs.iter().map(|q| q.mean_secs).sum();
    assert!((total - pred.jct.as_secs_f64()).abs() < 1e-3, "{total}");
    // Deterministic across simulators and cache states.
    assert_eq!(qs, sim().stage_quantiles(&spec(), &plan).unwrap());
}

#[test]
fn clones_share_the_prediction_cache_but_with_config_detaches() {
    let a = sim();
    let b = a.clone();
    let plan = AllocationPlan::new(vec![16, 8, 4, 2, 1]);
    a.predict(&spec(), &plan).unwrap();
    assert_eq!(b.cached_predictions(), 1, "clone should see the entry");
    let detached = b.clone().with_config(SimConfig {
        samples: 17,
        seed: 0xE12, // different seed: cached values would be stale
        sync_overhead_secs: 1.0,
    });
    assert_eq!(detached.cached_predictions(), 0);
}
