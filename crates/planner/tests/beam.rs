//! Beam-frontier equivalence properties.
//!
//! The descent planners were rewritten from single-incumbent loops onto
//! the shared beam engine (`crate::beam`). Two contracts protect that
//! rewrite:
//!
//! 1. **Width-1 bit-identity** — `beam_width == 1` must reproduce the
//!    historical loops exactly. The pre-change loops are preserved here
//!    verbatim (minus observability, which does not affect outputs) as
//!    `reference_*` functions, and the new implementations are checked
//!    against them across seeds, deadlines, warm starts, and thresholds
//!    (including the δ = 0 tie-heavy regime).
//! 2. **Wider never worse** — a wider beam may only improve the
//!    objective: the chosen plan stays feasible (greedy) or within
//!    budget (budget planner) and its objective value is never worse
//!    than width 1's, at any thread count.

use rb_cloud::catalog::P3_8XLARGE;
use rb_cloud::CloudPricing;
use rb_core::{Cost, Result, SimDuration};
use rb_hpo::ExperimentSpec;
use rb_planner::{
    optimize_plan, plan_min_jct, plan_residual, plan_rubberband, plan_static_optimal,
    BudgetPlannerConfig, PlannerConfig,
};
use rb_profile::{CloudProfile, ModelProfile};
use rb_scaling::zoo::RESNET50;
use rb_scaling::AnalyticScaling;
use rb_sim::{AllocationPlan, EngineConfig, Prediction, SimConfig, Simulator};
use std::sync::Arc;

fn sim_with(seed: u64, threads: usize) -> Simulator {
    let scaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
    let model = ModelProfile::from_scaling("rn50", scaling, 10, 2.0, 0.0);
    let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15));
    Simulator::new(model, cloud)
        .with_config(SimConfig {
            samples: 3,
            seed,
            sync_overhead_secs: 1.0,
        })
        .with_engine(EngineConfig::default().with_threads(threads))
}

fn spec() -> ExperimentSpec {
    ExperimentSpec::from_stages(&[(16, 4), (8, 8), (4, 16), (2, 32), (1, 64)]).unwrap()
}

/// The pre-beam `optimize_plan` loop, kept verbatim (observability
/// stripped — it never influenced plan, prediction, or step count).
fn reference_optimize(
    sim: &Simulator,
    spec: &ExperimentSpec,
    deadline: SimDuration,
    warm_start: AllocationPlan,
    config: &PlannerConfig,
) -> Result<(AllocationPlan, Prediction, usize)> {
    let mut best_plan = warm_start;
    let mut best_pred = sim.predict(spec, &best_plan)?;
    let mut steps = 0;
    let gpg = sim.cloud().gpus_per_instance();
    while steps < config.max_steps {
        let mut cands: Vec<AllocationPlan> = Vec::with_capacity(2 * spec.num_stages());
        for i in 0..spec.num_stages() {
            let trials = spec.get_stage(i)?.0;
            let cur = best_plan.gpus(i);
            let mut nexts = Vec::with_capacity(2);
            if let Some(n) = AllocationPlan::decrement_fair(cur, trials) {
                nexts.push(n);
            }
            if config.use_instance_jump {
                if let Some(n) = AllocationPlan::decrement_to_fewer_instances(cur, trials, gpg) {
                    if !nexts.contains(&n) {
                        nexts.push(n);
                    }
                }
            }
            for next in nexts {
                let mut cand = best_plan.clone();
                cand.set_gpus(i, next);
                cands.push(cand);
            }
        }
        let mut chosen: Option<(usize, Prediction, f64)> = None;
        for (idx, pred) in sim.predict_batch(spec, &cands).into_iter().enumerate() {
            let pred = pred?;
            if !pred.feasible(deadline) {
                continue;
            }
            let saved = best_pred.cost - pred.cost;
            if saved < config.improvement_threshold {
                continue;
            }
            let dt = pred.jct.as_secs_f64() - best_pred.jct.as_secs_f64();
            let m = if dt <= 0.0 {
                f64::INFINITY
            } else {
                saved.as_dollars() / dt
            };
            let better = match &chosen {
                None => true,
                Some((_, _, best_m)) => m > *best_m,
            };
            if better {
                chosen = Some((idx, pred, m));
            }
        }
        match chosen {
            Some((idx, pred, _)) => {
                best_plan = cands.swap_remove(idx);
                best_pred = pred;
                steps += 1;
            }
            None => break,
        }
    }
    Ok((best_plan, best_pred, steps))
}

/// The pre-beam `plan_min_jct` descent loop, kept verbatim.
fn reference_min_jct(
    sim: &Simulator,
    spec: &ExperimentSpec,
    budget: Cost,
    config: &BudgetPlannerConfig,
) -> Result<(AllocationPlan, Prediction)> {
    fn increment_fair(alloc: u32, trials: u32, max_gpus_per_trial: u32) -> Option<u32> {
        let cap = trials.saturating_mul(max_gpus_per_trial);
        if alloc >= cap {
            return None;
        }
        if alloc >= trials {
            let next = ((alloc / trials) + 1) * trials;
            (next <= cap).then_some(next)
        } else {
            ((alloc + 1)..=trials).find(|d| trials % d == 0)
        }
    }
    fn increment_to_more_instances(
        alloc: u32,
        trials: u32,
        gpg: u32,
        max_gpus_per_trial: u32,
    ) -> Option<u32> {
        let current = AllocationPlan::effective_instances(alloc, trials, gpg);
        let mut a = alloc;
        while let Some(next) = increment_fair(a, trials, max_gpus_per_trial) {
            if AllocationPlan::effective_instances(next, trials, gpg) > current {
                return Some(next);
            }
            a = next;
        }
        None
    }
    let gpg = sim.cloud().gpus_per_instance();
    let mut starts = vec![AllocationPlan::flat(1, spec.num_stages())];
    starts.extend(
        rb_planner::static_planner::static_candidates(spec, config.max_gpus_per_trial)
            .into_iter()
            .map(|g| AllocationPlan::flat(g, spec.num_stages())),
    );
    let start_preds = sim.predict_batch(spec, &starts);
    let mut best_plan = starts[0].clone();
    let mut best_pred: Option<Prediction> = None;
    for (plan, pred) in starts.into_iter().zip(start_preds) {
        let pred = pred?;
        if best_pred.as_ref().map_or(true, |b| pred.cost < b.cost) {
            best_plan = plan;
            best_pred = Some(pred);
        }
    }
    let mut best_pred = best_pred.expect("starts are non-empty");
    assert!(best_pred.cost <= budget, "reference called within budget");
    let mut steps = 0;
    while steps < config.max_steps {
        let mut cands: Vec<AllocationPlan> = Vec::with_capacity(2 * spec.num_stages());
        for i in 0..spec.num_stages() {
            let trials = spec.get_stage(i)?.0;
            let cur = best_plan.gpus(i);
            let mut nexts = Vec::with_capacity(2);
            if let Some(n) = increment_fair(cur, trials, config.max_gpus_per_trial) {
                nexts.push(n);
            }
            if let Some(n) =
                increment_to_more_instances(cur, trials, gpg, config.max_gpus_per_trial)
            {
                if !nexts.contains(&n) {
                    nexts.push(n);
                }
            }
            for next in nexts {
                let mut cand = best_plan.clone();
                cand.set_gpus(i, next);
                cands.push(cand);
            }
        }
        let mut chosen: Option<(usize, Prediction, f64)> = None;
        for (idx, pred) in sim.predict_batch(spec, &cands).into_iter().enumerate() {
            let pred = pred?;
            if pred.cost > budget {
                continue;
            }
            let gained = best_pred.jct.as_secs_f64() - pred.jct.as_secs_f64();
            if gained < config.improvement_threshold_secs {
                continue;
            }
            let dc = (pred.cost - best_pred.cost).as_dollars();
            let m = if dc <= 0.0 {
                f64::INFINITY
            } else {
                gained / dc
            };
            let better = match &chosen {
                None => true,
                Some((_, _, best_m)) => m > *best_m,
            };
            if better {
                chosen = Some((idx, pred, m));
            }
        }
        match chosen {
            Some((idx, pred, _)) => {
                best_plan = cands.swap_remove(idx);
                best_pred = pred;
                steps += 1;
            }
            None => break,
        }
    }
    Ok((best_plan, best_pred))
}

#[test]
fn width_one_descent_is_bit_identical_to_the_reference_loop() {
    for seed in [0, 5, 11] {
        let s = sim_with(seed, 1);
        for deadline_secs in [270, 600, 3600] {
            let deadline = SimDuration::from_secs(deadline_secs);
            for start_gpus in [16, 32, 64] {
                for threshold in [Cost::ZERO, Cost::from_dollars(0.01)] {
                    let config = PlannerConfig {
                        improvement_threshold: threshold,
                        ..PlannerConfig::default()
                    };
                    let start = AllocationPlan::flat(start_gpus, spec().num_stages());
                    let (r_plan, r_pred, r_steps) =
                        reference_optimize(&s, &spec(), deadline, start.clone(), &config).unwrap();
                    let (plan, pred, steps) =
                        optimize_plan(&s, &spec(), deadline, start, &config).unwrap();
                    assert_eq!(plan, r_plan, "seed {seed} deadline {deadline_secs}");
                    assert_eq!(pred, r_pred, "seed {seed} deadline {deadline_secs}");
                    assert_eq!(steps, r_steps, "seed {seed} deadline {deadline_secs}");
                }
            }
        }
    }
}

#[test]
fn width_one_plan_rubberband_matches_the_reference_descent() {
    // plan_rubberband only changed through optimize_plan; rebuilding its
    // selection on top of the reference loop must land on the same plan.
    for seed in [0, 11] {
        let s = sim_with(seed, 1);
        for deadline_secs in [600, 3600] {
            let deadline = SimDuration::from_secs(deadline_secs);
            let config = PlannerConfig::default();
            let out = plan_rubberband(&s, &spec(), deadline, &config).unwrap();
            let (static_plan, static_pred) =
                plan_static_optimal(&s, &spec(), deadline, config.max_gpus_per_trial).unwrap();
            let mut best: Option<(AllocationPlan, Prediction)> = None;
            for mult in [1u32, 2, 3] {
                let start = AllocationPlan::flat(static_plan.gpus(0).saturating_mul(mult), 5);
                if !s.predict(&spec(), &start).unwrap().feasible(deadline) {
                    continue;
                }
                let (plan, pred, _) =
                    reference_optimize(&s, &spec(), deadline, start, &config).unwrap();
                if best.as_ref().map_or(true, |(_, b)| pred.cost < b.cost) {
                    best = Some((plan, pred));
                }
            }
            let (mut plan, mut pred) = best.expect("some warm start is feasible");
            if pred.cost > static_pred.cost {
                plan = static_plan;
                pred = static_pred;
            }
            assert_eq!(out.plan, plan, "seed {seed} deadline {deadline_secs}");
            assert_eq!(out.prediction, pred, "seed {seed} deadline {deadline_secs}");
        }
    }
}

#[test]
fn width_one_plan_residual_is_deterministic_and_matches_descent_winner() {
    for seed in [0, 11] {
        let s = sim_with(seed, 1);
        let warm = AllocationPlan::new(vec![64, 32, 16, 8, 4]);
        let deadline = SimDuration::from_mins(30);
        let a = plan_residual(&s, &spec(), deadline, &warm, &PlannerConfig::default()).unwrap();
        let b = plan_residual(&s, &spec(), deadline, &warm, &PlannerConfig::default()).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.prediction, b.prediction);
        assert_eq!(a.steps, b.steps);
        // The winner descends from some multiplied warm start via the
        // reference loop: replaying the descents must reproduce it.
        let config = PlannerConfig::default();
        let mut evaluated: Vec<(AllocationPlan, Prediction)> = Vec::new();
        for mult in [1u32, 2, 3] {
            let gpus: Vec<u32> = (0..5)
                .map(|st| {
                    let trials = spec().get_stage(st).unwrap().0;
                    let cap = trials.saturating_mul(config.max_gpus_per_trial);
                    warm.gpus(st).saturating_mul(mult).clamp(1, cap)
                })
                .collect();
            let start = AllocationPlan::new(gpus);
            if evaluated.iter().any(|(p, _)| *p == start) {
                continue;
            }
            let start_pred = s.predict(&spec(), &start).unwrap();
            let plan = if start_pred.feasible(deadline) {
                reference_optimize(&s, &spec(), deadline, start, &config)
                    .unwrap()
                    .0
            } else {
                start
            };
            if !evaluated.iter().any(|(p, _)| *p == plan) {
                let full = s.predict(&spec(), &plan).unwrap();
                evaluated.push((plan, full));
            }
        }
        let winner = evaluated
            .iter()
            .filter(|(_, p)| p.feasible(deadline))
            .min_by(|(_, x), (_, y)| x.cost.cmp(&y.cost))
            .or_else(|| evaluated.iter().min_by(|(_, x), (_, y)| x.jct.cmp(&y.jct)))
            .unwrap();
        assert_eq!(a.plan, winner.0, "seed {seed}");
        assert_eq!(a.prediction, winner.1, "seed {seed}");
    }
}

#[test]
fn width_one_budget_planner_is_bit_identical_to_the_reference_loop() {
    for seed in [0, 5, 11] {
        let s = sim_with(seed, 1);
        for budget_dollars in [40, 80, 200] {
            let budget = Cost::from_dollars(f64::from(budget_dollars));
            let config = BudgetPlannerConfig::default();
            let (r_plan, r_pred) = reference_min_jct(&s, &spec(), budget, &config).unwrap();
            let (plan, pred) = plan_min_jct(&s, &spec(), budget, &config).unwrap();
            assert_eq!(plan, r_plan, "seed {seed} budget {budget_dollars}");
            assert_eq!(pred, r_pred, "seed {seed} budget {budget_dollars}");
        }
    }
}

#[test]
fn wider_greedy_beams_stay_feasible_and_never_cost_more() {
    for seed in [0, 11] {
        let s = sim_with(seed, 1);
        for deadline_secs in [270, 600, 3600] {
            let deadline = SimDuration::from_secs(deadline_secs);
            let narrow = plan_rubberband(&s, &spec(), deadline, &PlannerConfig::default()).unwrap();
            for width in [2, 4] {
                let config = PlannerConfig {
                    beam_width: width,
                    ..PlannerConfig::default()
                };
                let wide = plan_rubberband(&s, &spec(), deadline, &config).unwrap();
                assert!(
                    wide.prediction.feasible(deadline),
                    "width {width} seed {seed} deadline {deadline_secs}"
                );
                assert!(
                    wide.prediction.cost <= narrow.prediction.cost,
                    "width {width} cost {} vs width 1 cost {} (seed {seed})",
                    wide.prediction.cost,
                    narrow.prediction.cost
                );
            }
        }
    }
}

#[test]
fn wider_budget_beams_respect_budget_and_never_slow_down() {
    for seed in [0, 11] {
        let s = sim_with(seed, 1);
        for budget_dollars in [40, 120] {
            let budget = Cost::from_dollars(f64::from(budget_dollars));
            let (_, narrow) =
                plan_min_jct(&s, &spec(), budget, &BudgetPlannerConfig::default()).unwrap();
            let config = BudgetPlannerConfig {
                beam_width: 4,
                ..BudgetPlannerConfig::default()
            };
            let (_, wide) = plan_min_jct(&s, &spec(), budget, &config).unwrap();
            assert!(wide.cost <= budget, "seed {seed} budget {budget_dollars}");
            assert!(
                wide.jct <= narrow.jct,
                "width 4 jct {} vs width 1 jct {} (seed {seed})",
                wide.jct,
                narrow.jct
            );
        }
    }
}

#[test]
fn beam_selection_is_independent_of_engine_thread_count() {
    let deadline = SimDuration::from_mins(30);
    for width in [1, 4] {
        let config = PlannerConfig {
            beam_width: width,
            ..PlannerConfig::default()
        };
        let a = plan_rubberband(&sim_with(11, 1), &spec(), deadline, &config).unwrap();
        let b = plan_rubberband(&sim_with(11, 4), &spec(), deadline, &config).unwrap();
        assert_eq!(a.plan, b.plan, "width {width}");
        assert_eq!(a.prediction, b.prediction, "width {width}");
        assert_eq!(a.steps, b.steps, "width {width}");
    }
}
