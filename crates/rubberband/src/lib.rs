//! # RubberBand: cost-efficient, elastic hyperparameter tuning in the cloud
//!
//! A from-scratch Rust reproduction of *RubberBand: Cloud-based
//! Hyperparameter Tuning* (EuroSys '21). Given a declarative
//! early-stopping experiment (Successive Halving / Hyperband), a profiled
//! model scaling function, and a cloud cost/latency profile, RubberBand
//!
//! 1. **models** the job's execution as a DAG of SCALE / INIT / TRAIN /
//!    SYNC tasks and predicts completion time and dollar cost by
//!    Monte-Carlo simulation ([`rb_sim`]);
//! 2. **plans** a per-stage elastic GPU allocation that minimizes
//!    predicted cost subject to a deadline ([`rb_planner`]);
//! 3. **executes** the plan over an elastic (simulated) cluster with
//!    locality-preserving worker placement, checkpoint-based migration
//!    and stage-wise early stopping ([`rb_exec`], [`rb_placement`]).
//!
//! The crate mirrors the paper's user-facing API (Fig. 6): build an
//! [`ExperimentSpec`], [`compile_plan`] it against profiles and a
//! deadline, then [`execute`] it.
//!
//! # Examples
//!
//! ```
//! use rubberband::prelude::*;
//! use std::sync::Arc;
//!
//! // An SHA(n=8, r=1, R=8, η=2) tuning job.
//! let spec = ShaParams::new(8, 1, 8).generate().unwrap();
//!
//! // Profiles: ResNet-50 physics on 4-GPU instances, profiled scaling.
//! let task = rb_train::task::resnet50_cifar10();
//! let physics = ModelProfile::exact_for_task(&task, 512, 4);
//! let cloud = CloudProfile::new(CloudPricing::on_demand(
//!     rb_cloud::catalog::P3_8XLARGE,
//! ));
//!
//! // Plan a cost-efficient elastic allocation under a 2-hour deadline.
//! let outcome = rubberband::compile_plan(
//!     &spec,
//!     &physics,
//!     &cloud,
//!     SimDuration::from_hours(2),
//! )
//! .unwrap();
//!
//! // Execute it on a random-search space.
//! let space = SearchSpace::new()
//!     .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
//!     .build()
//!     .unwrap();
//! let report =
//!     rubberband::execute(&spec, &outcome.plan, &task, &physics, &cloud, &space, 7)
//!         .unwrap();
//! assert!(report.best_accuracy > 0.1);
//! ```

pub use rb_cloud;
pub use rb_core;
pub use rb_ctrl;
pub use rb_exec;
pub use rb_hpo;
pub use rb_obs;
pub use rb_placement;
pub use rb_planner;
pub use rb_profile;
pub use rb_scaling;
pub use rb_serve;
pub use rb_sim;
pub use rb_train;

use rb_core::{Cost, Prng, Result, SimDuration};
use rb_ctrl::{AdaptationLog, AdaptiveController, ControllerConfig};
use rb_exec::{ExecOptions, ExecutionReport, Executor, NoopHook};
use rb_hpo::{ExperimentSpec, SearchSpace};
use rb_obs::{MemoryRecorder, RecorderHandle, RunSummary, TraceLog};
use rb_planner::{plan_with_policy, PlanOutcome, PlannerConfig, Policy};
use rb_profile::{CloudProfile, ModelProfile};
use rb_sim::{AllocationPlan, SimCacheStats, Simulator};
use rb_train::TaskModel;
use std::sync::Arc;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use rb_cloud::{BillingModel, CloudPricing, FaultPlan, PricingTier, ZonePlan, ZoneWindow};
    pub use rb_core::{Cost, Distribution, Prng, RbError, Result, SimDuration, SimTime};
    pub use rb_ctrl::{
        AdaptationLog, AdaptiveController, ControllerConfig, DriftConfig, MarketChoice,
        MarketConfig, RefitConfig, RefitEvent, ReplanEvent, ReplanTrigger, WatchdogConfig,
    };
    pub use rb_exec::{ExecOptions, ExecutionReport, Executor, RetryPolicy};
    pub use rb_hpo::{Config, Dim, ExperimentSpec, SearchSpace, ShaParams};
    pub use rb_obs::{CacheStats, MemoryRecorder, RecorderHandle, RunSummary, TraceLog};
    pub use rb_planner::{PlanOutcome, PlannerConfig, Policy};
    pub use rb_profile::{CloudProfile, ModelProfile};
    pub use rb_scaling::{
        AnalyticScaling, IdealScaling, InterpolatedScaling, PlacementQuality, ScalingModel,
    };
    pub use rb_serve::{JobRequest, ServeOptions, ServeReport, TenantSpec, TuningService};
    pub use rb_sim::{AllocationPlan, Prediction, SimConfig, Simulator};
    pub use rb_train::TaskModel;
}

/// Profiles a training task on a ground-truth scaling model and compiles
/// a plan in one call — the full pre-execution flow of §5 (profile →
/// fit → plan).
///
/// # Errors
///
/// Propagates profiling and planning errors.
pub fn profile_and_plan(
    spec: &ExperimentSpec,
    truth: &dyn rb_scaling::ScalingModel,
    steps_per_iter: u64,
    cloud: &CloudProfile,
    deadline: SimDuration,
) -> Result<(ModelProfile, PlanOutcome)> {
    let mut model = rb_profile::profile_training(
        truth,
        steps_per_iter,
        5.0,
        &rb_profile::ProfilerConfig::default(),
    )?
    .profile;
    model.train_startup_secs = 5.0;
    let outcome = compile_plan(spec, &model, cloud, deadline)?;
    Ok((model, outcome))
}

/// Compiles a cost-minimizing elastic allocation plan for `spec` under
/// `deadline`, using RubberBand's greedy planner with default settings
/// (the paper's `rb.compile_plan(spec, model_profile, cloud_profile,
/// deadline)`).
///
/// # Errors
///
/// Returns [`rb_core::RbError::Infeasible`] when no plan meets the
/// deadline.
pub fn compile_plan(
    spec: &ExperimentSpec,
    model: &ModelProfile,
    cloud: &CloudProfile,
    deadline: SimDuration,
) -> Result<PlanOutcome> {
    compile_plan_with(
        Policy::RubberBand,
        spec,
        model,
        cloud,
        deadline,
        &PlannerConfig::default(),
    )
}

/// [`compile_plan`] with an explicit policy (static / naive-elastic /
/// RubberBand) and planner configuration — how the paper's baselines are
/// produced.
///
/// # Errors
///
/// Returns [`rb_core::RbError::Infeasible`] when the policy cannot meet
/// the deadline.
pub fn compile_plan_with(
    policy: Policy,
    spec: &ExperimentSpec,
    model: &ModelProfile,
    cloud: &CloudProfile,
    deadline: SimDuration,
    config: &PlannerConfig,
) -> Result<PlanOutcome> {
    let sim = Simulator::new(model.clone(), cloud.clone());
    plan_with_policy(policy, &sim, spec, deadline, config)
}

/// Executes `spec` under `plan`: samples one configuration per initial
/// trial from `space` (seeded random search) and runs the full elastic
/// execution (the paper's `rb.execute(plan, trainer, search_space)`).
///
/// `physics` provides the ground-truth training latencies; `task` the
/// learning curves.
///
/// # Errors
///
/// Propagates executor errors (invalid plan, placement failure, ...).
pub fn execute(
    spec: &ExperimentSpec,
    plan: &AllocationPlan,
    task: &TaskModel,
    physics: &ModelProfile,
    cloud: &CloudProfile,
    space: &SearchSpace,
    seed: u64,
) -> Result<ExecutionReport> {
    execute_with(
        spec,
        plan,
        task,
        physics,
        cloud,
        space,
        ExecOptions {
            seed,
            ..ExecOptions::default()
        },
    )
}

/// [`execute`] with full executor options (placement ablation, sync
/// overhead, checkpoint bandwidth).
///
/// # Errors
///
/// Propagates executor errors.
pub fn execute_with(
    spec: &ExperimentSpec,
    plan: &AllocationPlan,
    task: &TaskModel,
    physics: &ModelProfile,
    cloud: &CloudProfile,
    space: &SearchSpace,
    options: ExecOptions,
) -> Result<ExecutionReport> {
    let mut rng = Prng::seed_from_u64(options.seed ^ 0x005A_3CE0_u64);
    let configs = space.sample_n(spec.initial_trials() as usize, &mut rng);
    Executor::new(
        spec.clone(),
        plan.clone(),
        task.clone(),
        physics.clone(),
        cloud.clone(),
    )?
    .with_options(options)
    .run(&configs)
}

/// The outcome of a closed-loop, adaptively executed experiment.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// The execution report (JCT, cost, winner, trace).
    pub report: ExecutionReport,
    /// Drift readings and re-planning decisions, in barrier order.
    pub adaptation: AdaptationLog,
    /// The deadline the controller defended.
    pub deadline: SimDuration,
}

impl AdaptiveReport {
    /// True when the executed JCT fit the deadline.
    pub fn deadline_met(&self) -> bool {
        self.report.jct <= self.deadline
    }
}

/// [`execute_with`] wrapped in the online adaptation loop (rb-ctrl): the
/// controller watches every stage barrier, compares observed stage spans
/// with `model`'s Monte-Carlo envelope, and re-plans the remaining stages
/// — through the executor's checkpoint-safe barrier splice — when drift
/// or spot preemptions threaten `deadline`.
///
/// `physics` is ground truth (what the executor runs); `model` is the
/// planner's fitted view (what the plan and the drift envelope are
/// computed from). With `physics == model`, no spot churn, and a sane
/// deadline the controller never intervenes and the result equals
/// [`execute_with`] bit for bit.
///
/// # Errors
///
/// Propagates controller construction errors (a plan that does not match
/// the spec) and executor errors.
#[allow(clippy::too_many_arguments)] // Mirrors `execute_with` plus the control-loop inputs.
pub fn execute_adaptive(
    spec: &ExperimentSpec,
    plan: &AllocationPlan,
    task: &TaskModel,
    physics: &ModelProfile,
    model: &ModelProfile,
    cloud: &CloudProfile,
    space: &SearchSpace,
    deadline: SimDuration,
    options: ExecOptions,
    config: &ControllerConfig,
) -> Result<AdaptiveReport> {
    let sim = Simulator::new(model.clone(), cloud.clone());
    let mut controller =
        AdaptiveController::new(sim, spec.clone(), plan, deadline, config.clone())?;
    // Identical config sampling to `execute_with`: the adaptive and
    // open-loop runs of one seed tune the same trials.
    let mut rng = Prng::seed_from_u64(options.seed ^ 0x005A_3CE0_u64);
    let configs = space.sample_n(spec.initial_trials() as usize, &mut rng);
    let report = Executor::new(
        spec.clone(),
        plan.clone(),
        task.clone(),
        physics.clone(),
        cloud.clone(),
    )?
    .with_options(options)
    .run_hooked(&configs, &mut controller)?;
    Ok(AdaptiveReport {
        report,
        adaptation: controller.into_log(),
        deadline,
    })
}

/// An execution report bundled with the run's observability artifacts:
/// the [`RunSummary`] rollup and the full structured [`TraceLog`]
/// (exportable as JSONL or a Chrome/Perfetto trace via [`rb_obs::export`]).
#[derive(Debug, Clone)]
pub struct ObservedReport {
    /// The execution report (JCT, cost, winner, trace).
    pub report: ExecutionReport,
    /// Drift readings and re-planning decisions (adaptive runs only).
    pub adaptation: Option<AdaptationLog>,
    /// The end-of-run rollup (byte-stable `render()` for CI diffing).
    pub summary: RunSummary,
    /// Every structured event, counter, and histogram the run emitted.
    pub log: TraceLog,
}

/// Builds the [`RunSummary`] rollup from an execution report, the
/// simulator's cache counters, and (for adaptive runs) the adaptation
/// log. Public so the `repro`/`bench` binaries can roll up runs they
/// drive through lower-level APIs.
pub fn summarize_run(
    report: &ExecutionReport,
    caches: SimCacheStats,
    adaptation: Option<&AdaptationLog>,
    trace_events: usize,
) -> RunSummary {
    let gpu_busy_secs = report.trace.busy_gpu_seconds();
    // The report keeps utilization = busy / held; invert it to recover
    // held GPU-seconds (0 when nothing was held or utilization is
    // unknown).
    let gpu_held_secs = match report.utilization {
        Some(u) if u > 0.0 => gpu_busy_secs / u,
        _ => 0.0,
    };
    RunSummary {
        jct: report.jct,
        compute_cost: report.compute_cost,
        data_cost: report.data_cost,
        best_accuracy: report.best_accuracy,
        stages: report.stages.len(),
        migrations: report.migrations as usize,
        preemptions: report.preemptions as usize,
        instances_provisioned: report.instances_provisioned,
        gpu_busy_secs,
        gpu_held_secs,
        plan_cache: caches.plan,
        stage_memo: caches.stage_memo,
        replans_applied: adaptation.map_or(0, AdaptationLog::applied),
        replans_rejected: adaptation.map_or(0, |log| log.events.len() - log.applied()),
        faults_injected: report.faults_injected,
        provision_retries: report.provision_retries,
        checkpoint_fallbacks: report.checkpoint_fallbacks,
        degraded_stages: report.degraded_stages,
        trace_events,
    }
}

/// [`execute_with`] with a recording observability sink: the executor
/// and cloud provider emit structured events into an in-memory bus, and
/// the result bundles the report with its [`RunSummary`] and
/// [`TraceLog`]. The execution itself is bit-identical to
/// [`execute_with`] — the recorder only ever receives values.
///
/// # Errors
///
/// Propagates executor errors.
pub fn execute_observed(
    spec: &ExperimentSpec,
    plan: &AllocationPlan,
    task: &TaskModel,
    physics: &ModelProfile,
    cloud: &CloudProfile,
    space: &SearchSpace,
    options: ExecOptions,
) -> Result<ObservedReport> {
    let sink = Arc::new(MemoryRecorder::new());
    let recorder = RecorderHandle::new(sink.clone());
    let mut rng = Prng::seed_from_u64(options.seed ^ 0x005A_3CE0_u64);
    let configs = space.sample_n(spec.initial_trials() as usize, &mut rng);
    let report = Executor::new(
        spec.clone(),
        plan.clone(),
        task.clone(),
        physics.clone(),
        cloud.clone(),
    )?
    .with_options(options)
    .run_observed(&configs, &mut NoopHook, recorder)?;
    let log = sink.finish();
    let summary = summarize_run(&report, SimCacheStats::default(), None, log.events.len());
    Ok(ObservedReport {
        report,
        adaptation: None,
        summary,
        log,
    })
}

/// [`execute_adaptive`] with a recording observability sink. The same
/// recorder is attached to the executor, the cloud provider, and the
/// controller's simulator, so planner re-scoring, drift gauges, replan
/// decisions, cloud lifecycle events, and the execution timeline all
/// land on one bus stamped in virtual time. Execution is bit-identical
/// to [`execute_adaptive`].
///
/// # Errors
///
/// Propagates controller construction errors and executor errors.
#[allow(clippy::too_many_arguments)] // Mirrors `execute_adaptive`.
pub fn execute_adaptive_observed(
    spec: &ExperimentSpec,
    plan: &AllocationPlan,
    task: &TaskModel,
    physics: &ModelProfile,
    model: &ModelProfile,
    cloud: &CloudProfile,
    space: &SearchSpace,
    deadline: SimDuration,
    options: ExecOptions,
    config: &ControllerConfig,
) -> Result<ObservedReport> {
    let sink = Arc::new(MemoryRecorder::new());
    let recorder = RecorderHandle::new(sink.clone());
    let sim = Simulator::new(model.clone(), cloud.clone()).with_recorder(recorder.clone());
    // Clones share the cache counters; keep one to read totals after the
    // controller consumes `sim`.
    let cache_view = sim.clone();
    let mut controller =
        AdaptiveController::new(sim, spec.clone(), plan, deadline, config.clone())?;
    let mut rng = Prng::seed_from_u64(options.seed ^ 0x005A_3CE0_u64);
    let configs = space.sample_n(spec.initial_trials() as usize, &mut rng);
    let report = Executor::new(
        spec.clone(),
        plan.clone(),
        task.clone(),
        physics.clone(),
        cloud.clone(),
    )?
    .with_options(options)
    .run_observed(&configs, &mut controller, recorder.clone())?;
    let adaptation = controller.into_log();
    let caches = cache_view.cache_stats();
    // Mirror the passive cache tallies onto the bus so exported traces
    // carry them without a side channel.
    recorder.counter_add("sim", "plan_cache_hits", caches.plan.hits);
    recorder.counter_add("sim", "plan_cache_misses", caches.plan.misses);
    recorder.counter_add("sim", "plan_cache_evictions", caches.plan.evictions);
    recorder.counter_add("sim", "stage_memo_hits", caches.stage_memo.hits);
    recorder.counter_add("sim", "stage_memo_misses", caches.stage_memo.misses);
    recorder.counter_add("sim", "stage_memo_evictions", caches.stage_memo.evictions);
    let log = sink.finish();
    let summary = summarize_run(&report, caches, Some(&adaptation), log.events.len());
    Ok(ObservedReport {
        report,
        adaptation: Some(adaptation),
        summary,
        log,
    })
}

/// The outcome of executing a Hyperband-style multi-job.
#[derive(Debug, Clone)]
pub struct MultiJobReport {
    /// Per-bracket execution reports, in bracket order.
    pub reports: Vec<ExecutionReport>,
    /// Total spend across brackets.
    pub total_cost: Cost,
    /// End-to-end completion time (max of brackets when concurrent, sum
    /// when sequential).
    pub jct: SimDuration,
    /// The best accuracy found across brackets.
    pub best_accuracy: f64,
    /// Its configuration.
    pub best_config: rb_hpo::Config,
}

/// Plans and executes a Hyperband-style multi-job: every bracket is
/// planned under the shared deadline (per the discipline) and executed on
/// its own elastic cluster.
///
/// # Errors
///
/// Propagates planning and execution errors (a bracket that cannot meet
/// its deadline share fails the multi-job).
#[allow(clippy::too_many_arguments)] // Mirrors `execute` plus the multi-job knobs.
pub fn execute_multi_job(
    brackets: &[ExperimentSpec],
    task: &TaskModel,
    physics: &ModelProfile,
    cloud: &CloudProfile,
    space: &SearchSpace,
    deadline: SimDuration,
    discipline: rb_planner::MultiJobDiscipline,
    seed: u64,
) -> Result<MultiJobReport> {
    let sim = Simulator::new(physics.clone(), cloud.clone());
    let plan = rb_planner::plan_multi_job(
        &sim,
        brackets,
        deadline,
        discipline,
        &PlannerConfig::default(),
    )?;
    let mut reports = Vec::with_capacity(brackets.len());
    let mut total_cost = Cost::ZERO;
    let mut jct = SimDuration::ZERO;
    let mut best: Option<(f64, rb_hpo::Config)> = None;
    for (i, (spec, out)) in brackets.iter().zip(&plan.brackets).enumerate() {
        let report = execute(
            spec,
            &out.plan,
            task,
            physics,
            cloud,
            space,
            seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9),
        )?;
        total_cost += report.total_cost();
        jct = match discipline {
            rb_planner::MultiJobDiscipline::Concurrent => jct.max(report.jct),
            rb_planner::MultiJobDiscipline::Sequential => jct + report.jct,
        };
        if best
            .as_ref()
            .map_or(true, |(a, _)| report.best_accuracy > *a)
        {
            best = Some((report.best_accuracy, report.best_config.clone()));
        }
        reports.push(report);
    }
    let (best_accuracy, best_config) = best.expect("at least one bracket");
    Ok(MultiJobReport {
        reports,
        total_cost,
        jct,
        best_accuracy,
        best_config,
    })
}

/// The outcome of an observed Hyperband multi-job: the report plus one
/// shared trace where every bracket has its own lane.
#[derive(Debug, Clone)]
pub struct MultiJobObservedReport {
    /// The multi-job report (per-bracket reports, totals, winner).
    pub multi: MultiJobReport,
    /// The shared trace: a `bracket` span on [`rb_obs::Lane::Bracket`]
    /// per bracket, with each bracket's executor events scoped to a
    /// disjoint job-lane range by [`rb_obs::JobScopedRecorder`].
    pub log: TraceLog,
}

/// [`execute_multi_job`] with a recording observability sink. Every
/// bracket gets its own lane: the facade brackets the bracket's whole
/// execution in a `bracket` span pair on `Lane::Bracket(i)`, and the
/// bracket's executor reports through a [`rb_obs::JobScopedRecorder`]
/// (job `i + 1`) so trial/node/stage lanes and span ids from different
/// brackets never collide in the shared stream. Execution is
/// bit-identical to [`execute_multi_job`] — the recorder only ever
/// receives values.
///
/// # Errors
///
/// Propagates planning and execution errors.
#[allow(clippy::too_many_arguments)] // Mirrors `execute_multi_job`.
pub fn execute_multi_job_observed(
    brackets: &[ExperimentSpec],
    task: &TaskModel,
    physics: &ModelProfile,
    cloud: &CloudProfile,
    space: &SearchSpace,
    deadline: SimDuration,
    discipline: rb_planner::MultiJobDiscipline,
    seed: u64,
) -> Result<MultiJobObservedReport> {
    use rb_obs::Recorder as _;
    let sim = Simulator::new(physics.clone(), cloud.clone());
    let plan = rb_planner::plan_multi_job(
        &sim,
        brackets,
        deadline,
        discipline,
        &PlannerConfig::default(),
    )?;
    let sink = Arc::new(MemoryRecorder::new());
    // The facade's own spans use the raw sink (job-0 id range); bracket
    // executors are scoped to jobs 1..=n, so ids stay disjoint.
    let mut spans = rb_obs::SpanTracker::new();
    let mut reports = Vec::with_capacity(brackets.len());
    let mut total_cost = Cost::ZERO;
    let mut jct = SimDuration::ZERO;
    let mut best: Option<(f64, rb_hpo::Config)> = None;
    for (i, (spec, out)) in brackets.iter().zip(&plan.brackets).enumerate() {
        let lane = rb_obs::Lane::Bracket(i as u32);
        let (bracket_span, parent) = spans.open();
        sink.span_start(
            rb_core::SimTime::ZERO,
            "exec",
            "bracket",
            lane,
            bracket_span,
            parent,
            vec![
                ("bracket", (i as u64).into()),
                ("trials", spec.initial_trials().into()),
            ],
        );
        let scoped = RecorderHandle::new(Arc::new(rb_obs::JobScopedRecorder::new(
            sink.clone(),
            i as u64 + 1,
        )));
        let bracket_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9);
        // Identical config sampling to `execute` so the observed and
        // open-loop multi-jobs of one seed tune the same trials.
        let mut rng = Prng::seed_from_u64(bracket_seed ^ 0x005A_3CE0_u64);
        let configs = space.sample_n(spec.initial_trials() as usize, &mut rng);
        let report = Executor::new(
            spec.clone(),
            out.plan.clone(),
            task.clone(),
            physics.clone(),
            cloud.clone(),
        )?
        .with_options(ExecOptions {
            seed: bracket_seed,
            ..ExecOptions::default()
        })
        .run_observed(&configs, &mut NoopHook, scoped)?;
        sink.span_end(
            rb_core::SimTime::ZERO + report.jct,
            "exec",
            "bracket",
            lane,
            spans.close(),
            vec![
                ("bracket", (i as u64).into()),
                ("jct_ms", report.jct.as_millis().into()),
                ("cost_micros", report.total_cost().as_micros().into()),
                ("best_accuracy", report.best_accuracy.into()),
            ],
        );
        total_cost += report.total_cost();
        jct = match discipline {
            rb_planner::MultiJobDiscipline::Concurrent => jct.max(report.jct),
            rb_planner::MultiJobDiscipline::Sequential => jct + report.jct,
        };
        if best
            .as_ref()
            .map_or(true, |(a, _)| report.best_accuracy > *a)
        {
            best = Some((report.best_accuracy, report.best_config.clone()));
        }
        reports.push(report);
    }
    let (best_accuracy, best_config) = best.expect("at least one bracket");
    let log = sink.finish();
    Ok(MultiJobObservedReport {
        multi: MultiJobReport {
            reports,
            total_cost,
            jct,
            best_accuracy,
            best_config,
        },
        log,
    })
}

/// Builds one tenant's Hyperband **job group** for the tuning service:
/// one bracket-tagged [`rb_serve::JobRequest`] per bracket of
/// [`rb_hpo::hyperband_brackets`]`(r, R, eta)`, planned together under
/// the shared deadline ([`rb_planner::plan_multi_job`], concurrent
/// discipline) and all arriving at `arrival`.
///
/// Bracket-tagged jobs get a [`rb_obs::Lane::Bracket`] span each in the
/// service trace, and under a shared pool the group keeps affinity for
/// its own barrier-released capacity: instances parked by one bracket
/// flow to sibling brackets of the same tenant before being offered
/// cross-tenant. Per-bracket seeds match [`execute_multi_job`]'s, so a
/// group run through the service tunes the same trials as the
/// standalone multi-job of the same seed.
///
/// # Errors
///
/// Propagates bracket-generation, planning, and executor-construction
/// errors.
#[allow(clippy::too_many_arguments)] // Mirrors `execute_multi_job` plus the service coordinates.
pub fn hyperband_group_jobs(
    r: u64,
    big_r: u64,
    eta: u32,
    task: &TaskModel,
    physics: &ModelProfile,
    cloud: &CloudProfile,
    space: &SearchSpace,
    deadline: SimDuration,
    tenant: usize,
    arrival: rb_core::SimTime,
    seed: u64,
) -> Result<Vec<rb_serve::JobRequest>> {
    let brackets = rb_hpo::hyperband_brackets(r, big_r, eta)?;
    let specs: Vec<ExperimentSpec> = brackets.into_iter().map(|(_, s)| s).collect();
    let sim = Simulator::new(physics.clone(), cloud.clone());
    let plan = rb_planner::plan_multi_job(
        &sim,
        &specs,
        deadline,
        rb_planner::MultiJobDiscipline::Concurrent,
        &PlannerConfig::default(),
    )?;
    specs
        .iter()
        .zip(&plan.brackets)
        .enumerate()
        .map(|(i, (spec, out))| {
            let bracket_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9);
            let mut rng = Prng::seed_from_u64(bracket_seed ^ 0x005A_3CE0_u64);
            let configs = space.sample_n(spec.initial_trials() as usize, &mut rng);
            let executor = Executor::new(
                spec.clone(),
                out.plan.clone(),
                task.clone(),
                physics.clone(),
                cloud.clone(),
            )?
            .with_options(ExecOptions {
                seed: bracket_seed,
                ..ExecOptions::default()
            });
            Ok(rb_serve::JobRequest::new(executor, configs, arrival, tenant).with_bracket(i as u32))
        })
        .collect()
}

/// A synthetic multi-tenant workload for [`serve`]: each tenant submits
/// `jobs_per_tenant` copies of the experiment, arriving round-robin
/// with seeded exponential inter-arrival gaps. Every job gets its own
/// derived seed, so trials across jobs draw independent noise while the
/// whole workload stays reproducible from `seed`.
#[derive(Debug, Clone)]
pub struct ServeWorkload {
    /// The tenants (weights and budgets).
    pub tenants: Vec<rb_serve::TenantSpec>,
    /// Jobs each tenant submits.
    pub jobs_per_tenant: usize,
    /// Mean gap between consecutive arrivals, in virtual seconds; must
    /// be finite and positive.
    pub mean_interarrival_secs: f64,
    /// Root seed for arrivals and per-job execution noise.
    pub seed: u64,
}

/// Builds the [`rb_serve::JobRequest`] list for a [`ServeWorkload`]:
/// one plan compiled under `deadline` (all jobs share the spec, so they
/// share the plan), per-job configs sampled from `space`, arrivals from
/// the workload's seeded Poisson process.
///
/// Exposed so callers can inspect or perturb the workload before
/// running it; [`serve`] is the one-call path.
///
/// # Errors
///
/// Returns [`rb_core::RbError::InvalidConfig`] for a non-positive mean
/// inter-arrival gap; propagates planning and executor-construction
/// errors.
#[allow(clippy::too_many_arguments)] // Mirrors `execute` plus the service knobs.
pub fn serve_workload_jobs(
    workload: &ServeWorkload,
    spec: &ExperimentSpec,
    task: &TaskModel,
    physics: &ModelProfile,
    cloud: &CloudProfile,
    space: &SearchSpace,
    deadline: SimDuration,
) -> Result<Vec<rb_serve::JobRequest>> {
    if !workload.mean_interarrival_secs.is_finite() || workload.mean_interarrival_secs <= 0.0 {
        return Err(rb_core::RbError::InvalidConfig(format!(
            "serve workload: mean_interarrival_secs must be finite and > 0, got {}",
            workload.mean_interarrival_secs
        )));
    }
    let outcome = compile_plan(spec, physics, cloud, deadline)?;
    let total = workload.tenants.len() * workload.jobs_per_tenant;
    let mut arrivals = Prng::seed_from_u64(workload.seed ^ 0x5E87_E0FF);
    let gap = rb_core::Distribution::Exponential {
        rate: 1.0 / workload.mean_interarrival_secs,
    };
    let mut at = rb_core::SimTime::ZERO;
    let mut jobs = Vec::with_capacity(total);
    for k in 0..total {
        let tenant = k % workload.tenants.len();
        let job_seed = workload.seed ^ (k as u64 + 1).wrapping_mul(0x9E37_79B9);
        let mut rng = Prng::seed_from_u64(job_seed ^ 0x005A_3CE0_u64);
        let configs = space.sample_n(spec.initial_trials() as usize, &mut rng);
        let executor = Executor::new(
            spec.clone(),
            outcome.plan.clone(),
            task.clone(),
            physics.clone(),
            cloud.clone(),
        )?
        .with_options(ExecOptions {
            seed: job_seed,
            ..ExecOptions::default()
        });
        jobs.push(rb_serve::JobRequest::new(executor, configs, at, tenant));
        at += SimDuration::from_secs_f64(gap.sample(&mut arrivals));
    }
    Ok(jobs)
}

/// Runs a seeded multi-tenant workload through the tuning service: many
/// concurrent jobs interleaved in one discrete-event loop, fair-share
/// scheduled, optionally sharing an elastic instance pool
/// ([`rb_serve::ServeOptions::pool`]). Per-job results ride inside the
/// returned [`rb_serve::ServeReport`].
///
/// # Errors
///
/// Propagates workload-construction ([`serve_workload_jobs`]), service
/// validation, and execution errors.
#[allow(clippy::too_many_arguments)] // Mirrors `execute` plus the service knobs.
pub fn serve(
    workload: &ServeWorkload,
    spec: &ExperimentSpec,
    task: &TaskModel,
    physics: &ModelProfile,
    cloud: &CloudProfile,
    space: &SearchSpace,
    deadline: SimDuration,
    options: &rb_serve::ServeOptions,
) -> Result<rb_serve::ServeReport> {
    let jobs = serve_workload_jobs(workload, spec, task, physics, cloud, space, deadline)?;
    rb_serve::TuningService::new(workload.tenants.clone(), options.clone())?.run(jobs)
}

/// [`serve`] with observability: service admission/dispatch events and
/// every job's executor trace land in one [`TraceLog`], jobs lane-scoped
/// so their timelines stay separable (`job:<n>` lanes in the exports).
///
/// # Errors
///
/// As [`serve`].
#[allow(clippy::too_many_arguments)] // Mirrors `serve`.
pub fn serve_observed(
    workload: &ServeWorkload,
    spec: &ExperimentSpec,
    task: &TaskModel,
    physics: &ModelProfile,
    cloud: &CloudProfile,
    space: &SearchSpace,
    deadline: SimDuration,
    options: &rb_serve::ServeOptions,
) -> Result<(rb_serve::ServeReport, TraceLog)> {
    let jobs = serve_workload_jobs(workload, spec, task, physics, cloud, space, deadline)?;
    let sink = Arc::new(MemoryRecorder::new());
    let recorder = RecorderHandle::new(sink.clone());
    let report = rb_serve::TuningService::new(workload.tenants.clone(), options.clone())?
        .run_with_recorder(jobs, &recorder)?;
    Ok((report, sink.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;
    use rb_cloud::CloudPricing;
    use rb_hpo::{Dim, ShaParams};

    #[test]
    fn compile_then_execute_round_trip() {
        let spec = ShaParams::new(8, 1, 8).generate().unwrap();
        let task = rb_train::task::resnet50_cifar10();
        let physics = ModelProfile::exact_for_task(&task, 512, 4);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let outcome = compile_plan(&spec, &physics, &cloud, SimDuration::from_hours(2)).unwrap();
        assert!(outcome.prediction.feasible(SimDuration::from_hours(2)));
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .build()
            .unwrap();
        let report = execute(&spec, &outcome.plan, &task, &physics, &cloud, &space, 3).unwrap();
        assert!(report.jct > SimDuration::ZERO);
        assert_eq!(report.stages.len(), spec.num_stages());
    }

    #[test]
    fn profile_and_plan_composes() {
        let spec = ShaParams::new(8, 1, 8).generate().unwrap();
        let task = rb_train::task::resnet50_cifar10();
        let truth = rb_scaling::AnalyticScaling::for_arch(&task.arch, 512, 4);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let (model, outcome) = profile_and_plan(
            &spec,
            &truth,
            task.steps_per_iter(512),
            &cloud,
            SimDuration::from_hours(2),
        )
        .unwrap();
        assert!(model.steps_per_iter > 0);
        assert!(outcome.prediction.feasible(SimDuration::from_hours(2)));
    }

    #[test]
    fn multi_job_executes_all_brackets() {
        use rb_planner::MultiJobDiscipline;
        let task = rb_train::task::resnet50_cifar10();
        let physics = ModelProfile::exact_for_task(&task, 512, 4);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .build()
            .unwrap();
        let brackets: Vec<_> = rb_hpo::hyperband_brackets(1, 9, 3)
            .unwrap()
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        let deadline = SimDuration::from_hours(2);
        let report = execute_multi_job(
            &brackets,
            &task,
            &physics,
            &cloud,
            &space,
            deadline,
            MultiJobDiscipline::Concurrent,
            1,
        )
        .unwrap();
        assert_eq!(report.reports.len(), brackets.len());
        assert!(report.jct <= deadline);
        assert!(report.best_accuracy > 0.1);
        let sum: Cost = report.reports.iter().map(|r| r.total_cost()).sum();
        assert_eq!(report.total_cost, sum);
    }

    #[test]
    fn execute_adaptive_matches_execute_when_calibrated() {
        let spec = ShaParams::new(8, 1, 8).generate().unwrap();
        let task = rb_train::task::resnet50_cifar10();
        let physics = ModelProfile::exact_for_task(&task, 512, 4);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let deadline = SimDuration::from_hours(2);
        let outcome = compile_plan(&spec, &physics, &cloud, deadline).unwrap();
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .build()
            .unwrap();
        let open = execute(&spec, &outcome.plan, &task, &physics, &cloud, &space, 3).unwrap();
        let adaptive = execute_adaptive(
            &spec,
            &outcome.plan,
            &task,
            &physics,
            &physics, // model == physics: calibrated
            &cloud,
            &space,
            deadline,
            ExecOptions {
                seed: 3,
                ..ExecOptions::default()
            },
            &ControllerConfig::default(),
        )
        .unwrap();
        assert!(adaptive.deadline_met());
        assert_eq!(adaptive.adaptation.applied(), 0);
        assert_eq!(adaptive.report.jct, open.jct);
        assert_eq!(adaptive.report.compute_cost, open.compute_cost);
        assert_eq!(adaptive.report.best_accuracy, open.best_accuracy);
    }

    #[test]
    fn observed_run_matches_plain_execute() {
        let spec = ShaParams::new(8, 1, 8).generate().unwrap();
        let task = rb_train::task::resnet50_cifar10();
        let physics = ModelProfile::exact_for_task(&task, 512, 4);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let outcome = compile_plan(&spec, &physics, &cloud, SimDuration::from_hours(2)).unwrap();
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .build()
            .unwrap();
        let plain = execute(&spec, &outcome.plan, &task, &physics, &cloud, &space, 11).unwrap();
        let observed = execute_observed(
            &spec,
            &outcome.plan,
            &task,
            &physics,
            &cloud,
            &space,
            ExecOptions {
                seed: 11,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        // Recording must not perturb execution in any way.
        assert_eq!(observed.report.jct, plain.jct);
        assert_eq!(observed.report.compute_cost, plain.compute_cost);
        assert_eq!(observed.report.data_cost, plain.data_cost);
        assert_eq!(observed.report.best_accuracy, plain.best_accuracy);
        assert_eq!(observed.report.trace, plain.trace);
        // The summary is a faithful rollup of the report.
        assert_eq!(observed.summary.jct, plain.jct);
        assert_eq!(observed.summary.total_cost(), plain.total_cost());
        assert_eq!(observed.summary.stages, plain.stages.len());
        assert_eq!(observed.summary.trace_events, observed.log.events.len());
        assert!(!observed.log.events.is_empty());
        assert!(observed.summary.gpu_busy_secs > 0.0);
    }

    #[test]
    fn disabled_fault_injector_is_bit_identical() {
        use rb_cloud::FaultPlan;
        use rb_exec::RetryPolicy;
        let spec = ShaParams::new(8, 1, 8).generate().unwrap();
        let task = rb_train::task::resnet50_cifar10();
        let physics = ModelProfile::exact_for_task(&task, 512, 4);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let outcome = compile_plan(&spec, &physics, &cloud, SimDuration::from_hours(2)).unwrap();
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .build()
            .unwrap();
        let plain = execute_observed(
            &spec,
            &outcome.plan,
            &task,
            &physics,
            &cloud,
            &space,
            ExecOptions {
                seed: 7,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        // Hardening knobs set but the injector disabled: the run must be
        // indistinguishable from today's, down to the exported bytes.
        let armed = execute_observed(
            &spec,
            &outcome.plan,
            &task,
            &physics,
            &cloud,
            &space,
            ExecOptions {
                seed: 7,
                faults: FaultPlan::none(),
                retry: Some(RetryPolicy::default()),
                checkpoint_retention: 1,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(armed.report.jct, plain.report.jct);
        assert_eq!(armed.report.compute_cost, plain.report.compute_cost);
        assert_eq!(armed.report.best_accuracy, plain.report.best_accuracy);
        assert_eq!(armed.report.trace, plain.report.trace);
        assert_eq!(armed.report.faults_injected, 0);
        assert_eq!(armed.summary.render(), plain.summary.render());
        assert_eq!(
            rb_obs::export::export_jsonl(&armed.log),
            rb_obs::export::export_jsonl(&plain.log),
            "disabled injector leaves the trace byte-identical"
        );
    }

    #[test]
    fn windowless_zone_plan_is_bit_identical() {
        // A multi-zone topology with no brownout or outage window is an
        // inactive injector: open-loop and adaptive runs must match the
        // zoneless run down to the exported bytes (the cardinal
        // invariant extended to correlated failure domains).
        use rb_cloud::{FaultPlan, ZonePlan};
        use rb_exec::RetryPolicy;
        let spec = ShaParams::new(8, 1, 8).generate().unwrap();
        let task = rb_train::task::resnet50_cifar10();
        let physics = ModelProfile::exact_for_task(&task, 512, 4);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let outcome = compile_plan(&spec, &physics, &cloud, SimDuration::from_hours(2)).unwrap();
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .build()
            .unwrap();
        let zoned = || ExecOptions {
            seed: 7,
            faults: FaultPlan {
                zones: ZonePlan {
                    zones: 3,
                    ..ZonePlan::none()
                },
                ..FaultPlan::none()
            },
            retry: Some(RetryPolicy::default()),
            ..ExecOptions::default()
        };
        let plain = execute_observed(
            &spec,
            &outcome.plan,
            &task,
            &physics,
            &cloud,
            &space,
            ExecOptions {
                seed: 7,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        let armed = execute_observed(
            &spec,
            &outcome.plan,
            &task,
            &physics,
            &cloud,
            &space,
            zoned(),
        )
        .unwrap();
        assert_eq!(armed.report.jct, plain.report.jct);
        assert_eq!(armed.report.compute_cost, plain.report.compute_cost);
        assert_eq!(armed.report.trace, plain.report.trace);
        assert_eq!(armed.report.faults_injected, 0);
        assert_eq!(
            rb_obs::export::export_jsonl(&armed.log),
            rb_obs::export::export_jsonl(&plain.log),
            "windowless zones leave the open-loop trace byte-identical"
        );
        // Adaptive, with execute-mode switching armed: the market probe
        // may well drain the fleet onto cheaper capacity, but the
        // inactive zone plan must not change a single decision or byte
        // relative to the zoneless run.
        let config = ControllerConfig {
            market: rb_ctrl::MarketConfig {
                execute: true,
                ..rb_ctrl::MarketConfig::default()
            },
            ..ControllerConfig::default()
        };
        let deadline = SimDuration::from_hours(2);
        let base = execute_adaptive_observed(
            &spec,
            &outcome.plan,
            &task,
            &physics,
            &physics,
            &cloud,
            &space,
            deadline,
            ExecOptions {
                seed: 7,
                ..ExecOptions::default()
            },
            &config,
        )
        .unwrap();
        let zoned_run = execute_adaptive_observed(
            &spec,
            &outcome.plan,
            &task,
            &physics,
            &physics,
            &cloud,
            &space,
            deadline,
            zoned(),
            &config,
        )
        .unwrap();
        assert_eq!(zoned_run.report.jct, base.report.jct);
        assert_eq!(zoned_run.report.compute_cost, base.report.compute_cost);
        assert_eq!(
            zoned_run.adaptation.as_ref().unwrap().executed_switches(),
            base.adaptation.as_ref().unwrap().executed_switches(),
            "inactive zone plan changed the controller's drain decisions"
        );
        assert_eq!(
            rb_obs::export::export_jsonl(&zoned_run.log),
            rb_obs::export::export_jsonl(&base.log),
            "windowless zones leave the adaptive trace byte-identical"
        );
    }

    #[test]
    fn hardened_run_survives_injected_faults() {
        use rb_cloud::FaultPlan;
        use rb_exec::RetryPolicy;
        let spec = ShaParams::new(8, 1, 8).generate().unwrap();
        let task = rb_train::task::resnet50_cifar10();
        let physics = ModelProfile::exact_for_task(&task, 512, 4);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let outcome = compile_plan(&spec, &physics, &cloud, SimDuration::from_hours(2)).unwrap();
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .build()
            .unwrap();
        let faults = FaultPlan {
            capacity_failure_prob: 0.8,
            straggler_prob: 0.2,
            straggler_factor: 25.0,
            degraded_prob: 0.25,
            degraded_factor: 1.5,
            checkpoint_corruption_prob: 0.1,
            ..FaultPlan::none()
        };
        let run = execute_observed(
            &spec,
            &outcome.plan,
            &task,
            &physics,
            &cloud,
            &space,
            ExecOptions {
                seed: 5,
                faults,
                retry: Some(RetryPolicy {
                    max_retries: 12,
                    ..RetryPolicy::default()
                }),
                checkpoint_retention: 3,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert!(run.summary.faults_injected > 0, "the injector fired");
        assert_eq!(run.summary.faults_injected, run.report.faults_injected);
        assert!(
            run.summary.provision_retries > 0,
            "capacity denials forced retries"
        );
        assert!(run.report.best_accuracy > 0.1, "the run still finished");
        // Recovery counters surface on the bus only for faulty runs.
        assert_eq!(
            run.log.counter("exec", "faults_injected"),
            run.report.faults_injected
        );
    }

    #[test]
    fn adaptive_observed_is_bit_identical_and_exports_deterministically() {
        let spec = ShaParams::new(8, 1, 8).generate().unwrap();
        let task = rb_train::task::resnet50_cifar10();
        let physics = ModelProfile::exact_for_task(&task, 512, 4);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let deadline = SimDuration::from_hours(2);
        let outcome = compile_plan(&spec, &physics, &cloud, deadline).unwrap();
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .build()
            .unwrap();
        let opts = || ExecOptions {
            seed: 5,
            ..ExecOptions::default()
        };
        let run = || {
            execute_adaptive_observed(
                &spec,
                &outcome.plan,
                &task,
                &physics,
                &physics,
                &cloud,
                &space,
                deadline,
                opts(),
                &ControllerConfig::default(),
            )
            .unwrap()
        };
        let a = run();
        // The no-op-recorder adaptive run is the baseline; the recording
        // run must match it bit for bit.
        let noop = execute_adaptive(
            &spec,
            &outcome.plan,
            &task,
            &physics,
            &physics,
            &cloud,
            &space,
            deadline,
            opts(),
            &ControllerConfig::default(),
        )
        .unwrap();
        assert_eq!(a.report.jct, noop.report.jct);
        assert_eq!(a.report.compute_cost, noop.report.compute_cost);
        assert_eq!(a.report.trace, noop.report.trace);
        assert_eq!(
            a.adaptation.as_ref().unwrap().events.len(),
            noop.adaptation.events.len()
        );
        // Same seed -> byte-identical exports, and the JSONL passes the
        // schema validator.
        let b = run();
        let jsonl_a = rb_obs::export::export_jsonl(&a.log);
        let jsonl_b = rb_obs::export::export_jsonl(&b.log);
        assert_eq!(jsonl_a, jsonl_b);
        assert_eq!(
            rb_obs::export::export_chrome(&a.log),
            rb_obs::export::export_chrome(&b.log)
        );
        rb_obs::schema::validate_jsonl(&jsonl_a).expect("exported trace validates");
        assert_eq!(a.summary.render(), b.summary.render());
        // Building the drift envelope exercised the stage-sample memo
        // (the plan cache is only consulted when a replan is scored).
        assert!(a.summary.stage_memo.hits + a.summary.stage_memo.misses > 0);
        assert_eq!(
            a.log.counter("sim", "stage_memo_misses"),
            a.summary.stage_memo.misses
        );
        // Drift gauges flow from the controller onto the same bus.
        assert!(a.log.events_named("ctrl", "drift_factor").count() > 0);
    }

    #[test]
    fn policies_are_selectable() {
        let spec = ShaParams::new(8, 1, 8).generate().unwrap();
        let task = rb_train::task::resnet50_cifar10();
        let physics = ModelProfile::exact_for_task(&task, 512, 4);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        for policy in [Policy::Static, Policy::NaiveElastic, Policy::RubberBand] {
            let out = compile_plan_with(
                policy,
                &spec,
                &physics,
                &cloud,
                SimDuration::from_hours(2),
                &PlannerConfig::default(),
            )
            .unwrap();
            assert_eq!(out.policy, policy);
        }
    }

    #[test]
    fn serve_runs_a_multi_tenant_workload() {
        let spec = ShaParams::new(8, 1, 8).generate().unwrap();
        let task = rb_train::task::resnet50_cifar10();
        let physics = ModelProfile::exact_for_task(&task, 512, 4);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .build()
            .unwrap();
        let workload = ServeWorkload {
            tenants: vec![
                rb_serve::TenantSpec::new("research", 2.0),
                rb_serve::TenantSpec::new("prod", 1.0),
            ],
            jobs_per_tenant: 2,
            mean_interarrival_secs: 600.0,
            seed: 17,
        };
        let options = rb_serve::ServeOptions {
            max_concurrent: 2,
            max_queue: 8,
            pool: Some(rb_cloud::PoolConfig::default()),
            pool_admission: false,
        };
        let (report, log) = serve_observed(
            &workload,
            &spec,
            &task,
            &physics,
            &cloud,
            &space,
            SimDuration::from_hours(2),
            &options,
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 4);
        assert!(report.rejected.is_empty());
        assert!(report.billed_cost > Cost::ZERO);
        assert!(report.net_cost <= report.billed_cost);
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.tenants.iter().map(|t| t.completed).sum::<usize>(), 4);
        // Per-job lanes land in the unified trace, and the export still
        // validates against the schema.
        assert_eq!(log.counter("serve", "jobs_completed"), 4);
        let jsonl = rb_obs::export::export_jsonl(&log);
        rb_obs::schema::validate_jsonl(&jsonl).expect("serve trace validates");
        assert!(jsonl.contains("\"lane\":\"job:0\""));
        assert!(jsonl.contains("job.dispatch"));
        // Same workload, same seed: byte-identical report.
        let again = serve(
            &workload,
            &spec,
            &task,
            &physics,
            &cloud,
            &space,
            SimDuration::from_hours(2),
            &options,
        )
        .unwrap();
        assert_eq!(report.render(), again.render());
    }
}
