//! Execution reports: what the paper's tables read off a run.

use rb_core::{Cost, SimDuration, SimTime, TrialId};
use rb_hpo::Config;
use std::collections::BTreeMap;

/// One observable event during execution, in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A node finished initialization and joined the cluster.
    NodeUp {
        /// The node.
        node: rb_core::NodeId,
        /// When it became usable.
        at: SimTime,
    },
    /// A node left the cluster.
    NodeDown {
        /// The node.
        node: rb_core::NodeId,
        /// When it was released or reclaimed.
        at: SimTime,
        /// True when the spot market reclaimed it (vs a planned release).
        preempted: bool,
    },
    /// A contiguous interval of one trial training on one allocation.
    TrialSegment {
        /// The trial.
        trial: TrialId,
        /// Stage index.
        stage: usize,
        /// Segment start.
        start: SimTime,
        /// Segment end.
        end: SimTime,
        /// GPUs used.
        gpus: u32,
    },
    /// A trial's workers were torn down and recreated elsewhere.
    Migration {
        /// The trial.
        trial: TrialId,
        /// When the migration was initiated.
        at: SimTime,
    },
    /// A stage's synchronization barrier completed.
    Barrier {
        /// Stage index.
        stage: usize,
        /// Barrier completion time.
        at: SimTime,
    },
}

/// The ordered event log of one execution (useful for visualization and
/// for asserting runtime invariants in tests).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    /// Events in emission order (non-decreasing per entity; globally the
    /// stage structure orders them).
    pub events: Vec<TraceEvent>,
}

impl ExecutionTrace {
    /// All training segments, in emission order.
    pub fn segments(&self) -> impl Iterator<Item = (&TrialId, usize, SimTime, SimTime, u32)> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::TrialSegment {
                trial,
                stage,
                start,
                end,
                gpus,
            } => Some((trial, *stage, *start, *end, *gpus)),
            _ => None,
        })
    }

    /// Total trained GPU-seconds across segments.
    pub fn busy_gpu_seconds(&self) -> f64 {
        self.segments()
            .map(|(_, _, s, e, g)| (e - s).as_secs_f64() * f64::from(g))
            .sum()
    }

    /// Barrier completion times, by stage order of emission.
    pub fn barriers(&self) -> Vec<(usize, SimTime)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Barrier { stage, at } => Some((*stage, *at)),
                _ => None,
            })
            .collect()
    }
}

/// Timeline record for one executed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage index.
    pub stage: usize,
    /// When the stage's trials actually began training (after any
    /// scale-up barrier and migrations).
    pub train_start: SimTime,
    /// When the stage's synchronization barrier completed.
    pub sync_end: SimTime,
    /// Trials that ran.
    pub trials: u32,
    /// GPUs each trial received.
    pub gpus_per_trial: u32,
    /// Instances held during the stage.
    pub instances: u32,
    /// Trials whose workers had to be migrated at stage entry.
    pub migrations: u32,
}

/// The outcome of one executed experiment.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Job completion time (the final barrier's finish).
    pub jct: SimDuration,
    /// Compute bill under the configured billing model.
    pub compute_cost: Cost,
    /// Data-ingress bill.
    pub data_cost: Cost,
    /// The winning trial.
    pub best_trial: TrialId,
    /// Its hyperparameter configuration.
    pub best_config: Config,
    /// Its final observed validation accuracy.
    pub best_accuracy: f64,
    /// Per-stage timeline.
    pub stages: Vec<StageRecord>,
    /// Total worker migrations performed.
    pub migrations: u32,
    /// Spot interruptions absorbed during execution (zero on on-demand
    /// capacity).
    pub preemptions: u32,
    /// Instances provisioned over the job's lifetime.
    pub instances_provisioned: usize,
    /// Cluster GPU utilization over the run (busy / held), if anything
    /// was held.
    pub utilization: Option<f64>,
    /// Mean training throughput per trial, in samples per second.
    pub trial_throughput: BTreeMap<TrialId, f64>,
    /// The ordered event log of the run.
    pub trace: ExecutionTrace,
}

impl ExecutionReport {
    /// Compute plus data cost.
    pub fn total_cost(&self) -> Cost {
        self.compute_cost + self.data_cost
    }

    /// Mean throughput across trials (Table 1's metric), if any trial
    /// trained.
    pub fn mean_throughput(&self) -> Option<f64> {
        if self.trial_throughput.is_empty() {
            return None;
        }
        Some(self.trial_throughput.values().sum::<f64>() / self.trial_throughput.len() as f64)
    }
}

/// Renders the execution timeline as a text Gantt chart: one row per
/// stage, bar length proportional to wall-clock duration, bar height
/// (the digit) showing the instances held — a quick visual of the
/// front-loaded shape elastic plans produce.
///
/// # Examples
///
/// ```text
/// stage 0 |■■■■■■■■■■■■■■■■| 8 inst × 32 trials × 1 GPU   (00:58)
/// stage 1 |■■■■■■■■■■|       5 inst × 10 trials × 2 GPUs  (02:31)
/// ```
pub fn render_timeline(report: &ExecutionReport, width: usize) -> String {
    use std::fmt::Write as _;
    let total = report.jct.as_secs_f64().max(1e-9);
    let width = width.max(10);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline ({} total, {} instances provisioned, {} migrations)",
        report.jct, report.instances_provisioned, report.migrations
    );
    let mut prev_end = 0.0_f64;
    for s in &report.stages {
        let start = s.train_start.as_millis() as f64 / 1000.0;
        let end = s.sync_end.as_millis() as f64 / 1000.0;
        let lead = (((start - prev_end).max(0.0) / total) * width as f64).round() as usize;
        let bar = ((((end - start) / total) * width as f64).round() as usize).max(1);
        prev_end = end;
        let _ = writeln!(
            out,
            "stage {:<2} {}{} {} inst x {} trials x {} GPU{} ({})",
            s.stage,
            " ".repeat(lead),
            "#".repeat(bar),
            s.instances,
            s.trials,
            s.gpus_per_trial,
            if s.gpus_per_trial == 1 { "" } else { "s" },
            rb_core::SimDuration::from_secs_f64(end - start),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_means() {
        let mut tp = BTreeMap::new();
        tp.insert(TrialId::new(0), 100.0);
        tp.insert(TrialId::new(1), 300.0);
        let r = ExecutionReport {
            jct: SimDuration::from_secs(10),
            compute_cost: Cost::from_dollars(2.0),
            data_cost: Cost::from_dollars(0.5),
            best_trial: TrialId::new(0),
            best_config: Config::new(),
            best_accuracy: 0.9,
            stages: vec![],
            migrations: 0,
            preemptions: 0,
            instances_provisioned: 1,
            utilization: None,
            trial_throughput: tp,
            trace: ExecutionTrace::default(),
        };
        assert_eq!(r.total_cost(), Cost::from_dollars(2.5));
        assert_eq!(r.mean_throughput(), Some(200.0));
    }

    #[test]
    fn timeline_renders_one_row_per_stage() {
        let r = ExecutionReport {
            jct: SimDuration::from_secs(100),
            compute_cost: Cost::ZERO,
            data_cost: Cost::ZERO,
            best_trial: TrialId::new(0),
            best_config: Config::new(),
            best_accuracy: 0.5,
            stages: vec![
                StageRecord {
                    stage: 0,
                    train_start: SimTime::from_secs(10),
                    sync_end: SimTime::from_secs(50),
                    trials: 8,
                    gpus_per_trial: 1,
                    instances: 2,
                    migrations: 0,
                },
                StageRecord {
                    stage: 1,
                    train_start: SimTime::from_secs(50),
                    sync_end: SimTime::from_secs(100),
                    trials: 4,
                    gpus_per_trial: 2,
                    instances: 2,
                    migrations: 4,
                },
            ],
            migrations: 4,
            preemptions: 0,
            instances_provisioned: 2,
            utilization: None,
            trial_throughput: BTreeMap::new(),
            trace: ExecutionTrace::default(),
        };
        let text = render_timeline(&r, 40);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 stages");
        assert!(lines[1].contains("stage 0"));
        assert!(lines[1].contains("8 trials"));
        assert!(lines[2].contains("2 GPUs"));
        // Stage 1 covers half the job: its bar is about half the width.
        let bar1 = lines[2].matches('#').count();
        assert!((15..=25).contains(&bar1), "bar {bar1}");
    }
}
