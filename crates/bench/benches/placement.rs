//! Criterion benches for the placement controller under churn: fresh
//! placement, stage-to-stage reallocation, and scale-down bin-packing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rb_core::TrialId;
use rb_placement::{ClusterState, PlacementController};
use std::collections::BTreeMap;

fn allocs(n: u64, gpus: u32) -> BTreeMap<TrialId, u32> {
    (0..n).map(|i| (TrialId::new(i), gpus)).collect()
}

fn bench_fresh_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("place_fresh");
    for n in [32u64, 128, 512] {
        let cluster = ClusterState::with_n_nodes(n as u32 / 4 + 1, 4);
        let map = allocs(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut pc = PlacementController::new();
                pc.update(&map, &cluster).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_reallocation(c: &mut Criterion) {
    // Stage transition: 128 one-GPU trials shrink to 64 two-GPU trials.
    let cluster = ClusterState::with_n_nodes(33, 4);
    let before = allocs(128, 1);
    let after = allocs(64, 2);
    c.bench_function("reallocate_128_to_64", |b| {
        b.iter(|| {
            let mut pc = PlacementController::new();
            pc.update(&before, &cluster).unwrap();
            pc.update(&after, &cluster).unwrap()
        })
    });
}

fn bench_scale_down(c: &mut Criterion) {
    let cluster = ClusterState::with_n_nodes(32, 4);
    let map = allocs(64, 1); // half-full cluster
    c.bench_function("bin_pack_scale_down_16_nodes", |b| {
        b.iter(|| {
            let mut pc = PlacementController::new();
            pc.update(&map, &cluster).unwrap();
            pc.plan_scale_down(&cluster, 16).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_fresh_placement,
    bench_reallocation,
    bench_scale_down
);
criterion_main!(benches);
