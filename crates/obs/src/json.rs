//! Minimal JSON writing and parsing, so the exporters and the schema
//! validator need no external crates.
//!
//! The writer emits deterministic output: strings are escaped the same
//! way every time and floats use Rust's shortest-roundtrip formatting
//! (stable across platforms). Non-finite floats serialize as `null` —
//! JSON has no representation for them and the recorders drop them
//! before they get here anyway.
//!
//! The parser is a small recursive-descent JSON reader sufficient to
//! validate our own exports (objects, arrays, strings with `\uXXXX`
//! escapes, numbers, booleans, null).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in document order (duplicate keys preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` as a JSON token: shortest-roundtrip decimal, or
/// `null` for non-finite values.
pub fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parses a complete JSON document. Trailing whitespace is allowed;
/// trailing garbage is an error.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(input, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_obj(input, bytes, pos),
        Some(b'[') => parse_arr(input, bytes, pos),
        Some(b'"') => parse_str(input, bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(input, bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    input[start..*pos]
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_str(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_owned());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_owned());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = input
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Consume one UTF-8 character.
                let s = &input[*pos..];
                let c = s.chars().next().ok_or_else(|| "bad utf8".to_owned())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(input, bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(input, bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(input, bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escaped_strings() {
        let mut out = String::new();
        write_json_str(&mut out, "a\"b\\c\nd\te\u{1}");
        let parsed = parse_json(&out).unwrap();
        assert_eq!(parsed, Json::Str("a\"b\\c\nd\te\u{1}".to_owned()));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"abc").is_err());
    }

    #[test]
    fn u64_extraction_is_exact() {
        assert_eq!(parse_json("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse_json("42.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let mut out = String::new();
        write_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        write_json_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
    }
}
