//! ext-serve — the multi-tenant service sweep.
//!
//! Runs the same seeded workload through [`rb_serve::TuningService`]
//! across tenant counts and arrival spacings, each cell once with the
//! shared elastic instance pool and once without. The pool-on/pool-off
//! pair shares job seeds, so the cost delta is exactly what the pool's
//! barrier handoffs are worth: adopters skip dataset re-ingress and the
//! provision + init cycle, at the price of park time for instances the
//! pool holds.
//!
//! Three sub-sweeps exercise the service at increasing concurrency:
//!
//! * **serial** — `max_concurrent = 1`, the original pairwise
//!   comparison (each successor adopts its predecessor's whole fleet);
//! * **contended** — `max_concurrent = 2` with a downscaling plan, so
//!   two running jobs race for the same parked instances at
//!   interleaved barriers and pool-aware admission can dispatch queued
//!   jobs against parked capacity;
//! * **hyperband** — one tenant's Hyperband bracket set submitted as a
//!   bracket-tagged job group ([`rubberband::hyperband_group_jobs`]),
//!   so barrier-released capacity flows between sibling brackets.
//!
//! Each sub-sweep ends with a machine-checkable `ext-serve … summary:`
//! line that `scripts/verify.sh` diffs against
//! `scripts/expected_ext_serve.txt`; a drift means the scheduler, the
//! pool lifecycle, or the billing accounting changed behaviour.

use crate::tables::physics_for;
use rb_cloud::catalog::P3_8XLARGE;
use rb_cloud::{CloudPricing, PoolConfig};
use rb_core::{Cost, Prng, Result, SimDuration, SimTime};
use rb_exec::{ExecOptions, Executor};
use rb_hpo::{Config, Dim, ExperimentSpec, SearchSpace};
use rb_profile::CloudProfile;
use rb_serve::{JobRequest, ServeOptions, ServeReport, TenantSpec, TuningService};
use rb_sim::AllocationPlan;

/// One service cell's executed outcome.
#[derive(Debug, Clone)]
pub struct ServeCell {
    /// Number of tenants sharing the service.
    pub tenants: usize,
    /// Seconds between consecutive job arrivals.
    pub gap_secs: u64,
    /// Whether the shared instance pool was enabled.
    pub pool: bool,
    /// Concurrent job slots the cell ran with.
    pub max_concurrent: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs rejected at admission.
    pub rejected: usize,
    /// Total billed cost in dollars (job meters + pool park time).
    pub billed: Cost,
    /// Billed cost net of the minimum-charge credit.
    pub net: Cost,
    /// Median queue wait in seconds.
    pub p50_wait_secs: f64,
    /// Virtual makespan in seconds.
    pub makespan_secs: f64,
    /// Barrier handoffs the pool brokered (0 when disabled).
    pub handoffs: u64,
    /// Parked instances the pool gave up on (0 when disabled).
    pub expirations: u64,
    /// Instances still parked at the end-of-run drain.
    pub drained: u64,
    /// Double releases the idempotency guard absorbed (must stay 0).
    pub double_releases: u64,
    /// Cross-job ownership conflicts the pool rejected (must stay 0).
    pub conflicts: u64,
    /// Jobs dispatched early by pool-aware admission.
    pub pool_admits: u64,
}

fn serve_cloud() -> CloudProfile {
    // Paid ingress and a real provision + init cycle: the costs a warm
    // handoff avoids, so the pool's value shows up on the bill.
    CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE).with_data_price(Cost::from_dollars(0.02)))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15))
        .with_dataset_gb(100.0)
}

fn serve_configs(n: usize, seed: u64) -> Vec<Config> {
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .build()
        .unwrap();
    space.sample_n(n, &mut Prng::seed_from_u64(seed))
}

/// Builds a cell's workload: `jobs` single-plan SHA runs arriving
/// `gap_secs` apart, round-robin across tenants. Pool-on and pool-off
/// cells call this with the same arguments, so the comparison is at
/// identical seeds. `gpus_per_stage` sets the allocation shape: the
/// serial sweep holds a flat fleet, the contended sweep downsizes at
/// barriers so instances park mid-run.
fn serve_jobs_with_plan(
    jobs: usize,
    tenants: usize,
    gap_secs: u64,
    seed: u64,
    gpus_per_stage: &[u32],
) -> Result<Vec<JobRequest>> {
    let task = rb_train::task::resnet101_cifar10();
    let physics = physics_for(&task, 1024, 4);
    let spec = ExperimentSpec::from_stages(&[(8, 1), (4, 2), (2, 4), (1, 8)])?;
    (0..jobs)
        .map(|k| {
            let job_seed = seed ^ ((tenants as u64) << 32) ^ (gap_secs << 16) ^ k as u64;
            let executor = Executor::new(
                spec.clone(),
                AllocationPlan::new(gpus_per_stage.to_vec()),
                task.clone(),
                physics.clone(),
                serve_cloud(),
            )?
            .with_options(ExecOptions {
                seed: job_seed,
                ..ExecOptions::default()
            });
            Ok(JobRequest::new(
                executor,
                serve_configs(8, job_seed ^ 0xC0FFEE),
                SimTime::from_secs(k as u64 * gap_secs),
                k % tenants,
            ))
        })
        .collect()
}

fn serve_jobs(jobs: usize, tenants: usize, gap_secs: u64, seed: u64) -> Result<Vec<JobRequest>> {
    serve_jobs_with_plan(jobs, tenants, gap_secs, seed, &[8, 8, 8, 8])
}

/// One completed service job, flattened for the fleet manifests: the
/// cell coordinates, the billing tenant, and the job's own meters.
#[derive(Debug, Clone)]
pub struct ServeJobRow {
    /// Number of tenants sharing the service.
    pub tenants: usize,
    /// Seconds between consecutive job arrivals.
    pub gap_secs: u64,
    /// Whether the shared instance pool was enabled.
    pub pool: bool,
    /// Concurrent job slots the cell ran with.
    pub max_concurrent: usize,
    /// The submitting tenant's name (`tenant-{i}`).
    pub tenant: String,
    /// Job completion time (from dispatch), virtual milliseconds.
    pub jct_ms: u64,
    /// Compute + data cost in micro-dollars.
    pub cost_micros: i64,
    /// Queue wait before dispatch, virtual milliseconds.
    pub queue_wait_ms: u64,
    /// Whether pool-aware admission dispatched this job early.
    pub pool_admitted: bool,
    /// Spot preemptions the job absorbed.
    pub preemptions: u32,
    /// Faults injected into the job.
    pub faults: u64,
    /// Provisioning retry rounds.
    pub retries: u64,
    /// Checkpoint generation fallbacks.
    pub fallbacks: u64,
    /// Stages run on degraded capacity.
    pub degraded: u32,
}

/// Flattens one executed report into its [`ServeCell`] and per-job
/// [`ServeJobRow`]s (pushed onto `jobs`).
fn flatten_report(
    tenants: usize,
    gap: u64,
    pool: bool,
    max_concurrent: usize,
    report: &ServeReport,
    jobs: &mut Vec<ServeJobRow>,
) -> ServeCell {
    let stats = report.pool.clone().unwrap_or_default();
    for outcome in &report.outcomes {
        jobs.push(ServeJobRow {
            tenants,
            gap_secs: gap,
            pool,
            max_concurrent,
            tenant: format!("tenant-{}", outcome.tenant),
            jct_ms: outcome.report.jct.as_millis(),
            cost_micros: outcome.report.total_cost().as_micros(),
            queue_wait_ms: outcome.queue_wait.as_millis(),
            pool_admitted: outcome.pool_admitted,
            preemptions: outcome.report.preemptions,
            faults: outcome.report.faults_injected,
            retries: outcome.report.provision_retries,
            fallbacks: outcome.report.checkpoint_fallbacks,
            degraded: outcome.report.degraded_stages,
        });
    }
    ServeCell {
        tenants,
        gap_secs: gap,
        pool,
        max_concurrent,
        completed: report.outcomes.len(),
        rejected: report.rejected.len(),
        billed: report.billed_cost,
        net: report.net_cost,
        p50_wait_secs: report.queue_wait_p50().as_secs_f64(),
        makespan_secs: report
            .makespan
            .saturating_since(SimTime::ZERO)
            .as_secs_f64(),
        handoffs: stats.handoffs,
        expirations: stats.expirations,
        drained: stats.drained,
        double_releases: stats.double_releases,
        conflicts: stats.conflicts,
        pool_admits: report.pool_admits,
    }
}

/// Runs the serial sweep: every (tenant count × arrival gap) cell with
/// the pool off and on, four jobs per cell on a serial service so each
/// successor can adopt its predecessor's fleet.
///
/// # Errors
///
/// Propagates service and executor errors.
pub fn ext_serve(tenant_counts: &[usize], gaps: &[u64], seed: u64) -> Result<Vec<ServeCell>> {
    ext_serve_with_jobs(tenant_counts, gaps, seed).map(|(cells, _)| cells)
}

/// [`ext_serve`] also returning one [`ServeJobRow`] per completed job,
/// in completion order — the per-run records the `repro fleet`
/// artifact turns into rollup manifests.
///
/// # Errors
///
/// Propagates service and executor errors.
pub fn ext_serve_with_jobs(
    tenant_counts: &[usize],
    gaps: &[u64],
    seed: u64,
) -> Result<(Vec<ServeCell>, Vec<ServeJobRow>)> {
    let mut cells = Vec::new();
    let mut jobs = Vec::new();
    for &tenants in tenant_counts {
        for &gap in gaps {
            for pool in [false, true] {
                let service = TuningService::new(
                    (0..tenants)
                        .map(|t| TenantSpec::new(format!("tenant-{t}"), 1.0))
                        .collect(),
                    ServeOptions {
                        max_concurrent: 1,
                        max_queue: 16,
                        pool: pool.then(PoolConfig::default),
                        pool_admission: false,
                    },
                )?;
                let report = service.run(serve_jobs(4, tenants, gap, seed)?)?;
                cells.push(flatten_report(tenants, gap, pool, 1, &report, &mut jobs));
            }
        }
    }
    Ok((cells, jobs))
}

/// Runs the contended sweep: two concurrent slots, six jobs per cell on
/// a downscaling plan (instances park at every barrier), pool-aware
/// admission on when the pool is. Two running jobs race for the same
/// parked instances at interleaved barriers, and queued jobs whose
/// first stage fits inside parked capacity dispatch past the slot
/// limit.
///
/// # Errors
///
/// Propagates service and executor errors.
pub fn ext_serve_contended(
    tenant_counts: &[usize],
    gaps: &[u64],
    seed: u64,
) -> Result<Vec<ServeCell>> {
    ext_serve_contended_with_jobs(tenant_counts, gaps, seed).map(|(cells, _)| cells)
}

/// [`ext_serve_contended`] also returning the per-job rows for the
/// fleet manifests.
///
/// # Errors
///
/// Propagates service and executor errors.
pub fn ext_serve_contended_with_jobs(
    tenant_counts: &[usize],
    gaps: &[u64],
    seed: u64,
) -> Result<(Vec<ServeCell>, Vec<ServeJobRow>)> {
    let mut cells = Vec::new();
    let mut jobs = Vec::new();
    for &tenants in tenant_counts {
        for &gap in gaps {
            for pool in [false, true] {
                let service = TuningService::new(
                    (0..tenants)
                        .map(|t| TenantSpec::new(format!("tenant-{t}"), 1.0))
                        .collect(),
                    ServeOptions {
                        max_concurrent: 2,
                        max_queue: 16,
                        pool: pool.then(PoolConfig::default),
                        pool_admission: pool,
                    },
                )?;
                // A downscaling plan (16→8→4→4 GPUs over the 8/4/2/1
                // trial ladder) releases instances at barriers 0 and 1,
                // so parked capacity exists *while* other jobs run —
                // the contention the serial sweep's flat fleet never
                // creates.
                let report =
                    service.run(serve_jobs_with_plan(6, tenants, gap, seed, &[16, 8, 4, 4])?)?;
                cells.push(flatten_report(tenants, gap, pool, 2, &report, &mut jobs));
            }
        }
    }
    Ok((cells, jobs))
}

/// Runs the Hyperband job-group pair: one tenant submits the brackets
/// of `hyperband(r=1, R=4, η=2)` as bracket-tagged jobs, once without
/// and once with the pool (plus pool-aware admission). Bracket-tagged
/// jobs share a pool-affinity group, so capacity a bracket releases at
/// a barrier flows to sibling brackets before expiring.
///
/// # Errors
///
/// Propagates bracket-generation, planning, service, and executor
/// errors.
/// Hyperband shape `(r, R, η)` shared by the sweep runner and its
/// header line.
const HYPERBAND_SHAPE: (u64, u64, u32) = (1, 4, 2);

pub fn ext_serve_hyperband(seed: u64) -> Result<Vec<ServeCell>> {
    let (r, big_r, eta) = HYPERBAND_SHAPE;
    let task = rb_train::task::resnet101_cifar10();
    let physics = physics_for(&task, 1024, 4);
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .build()?;
    let mut cells = Vec::new();
    let mut jobs_sink = Vec::new();
    for pool in [false, true] {
        let jobs = rubberband::hyperband_group_jobs(
            r,
            big_r,
            eta,
            &task,
            &physics,
            &serve_cloud(),
            &space,
            SimDuration::from_hours(2),
            0,
            SimTime::ZERO,
            seed,
        )?;
        let brackets = jobs.len();
        let service = TuningService::new(
            vec![TenantSpec::new("hyperband", 1.0)],
            ServeOptions {
                max_concurrent: 2,
                max_queue: 16,
                pool: pool.then(PoolConfig::default),
                pool_admission: pool,
            },
        )?;
        let report = service.run(jobs)?;
        cells.push(flatten_report(1, 0, pool, 2, &report, &mut jobs_sink));
        debug_assert_eq!(cells.last().map(|c| c.completed), Some(brackets));
    }
    Ok(cells)
}

/// Renders the serial sweep, ending with a machine-checkable summary
/// line.
pub fn print_ext_serve(cells: &[ServeCell]) {
    println!("Extension — multi-tenant service with a shared elastic instance pool");
    println!("(4 jobs/cell, serial dispatch, paid ingress; pool pairs share seeds)\n");
    print_cells(cells);
    let s = PairSummary::over(cells);
    println!(
        "\next-serve summary: cells={} pairs={} pool_cheaper={} \
         wait_regressions={} handoffs={} \
         expirations={} double_releases={} saved=${:.4}",
        cells.len(),
        s.pairs,
        s.cheaper,
        s.wait_regressions,
        s.handoffs,
        s.expirations,
        s.double_releases,
        s.saved.as_dollars()
    );
}

/// Renders the contended sweep, ending with a machine-checkable
/// summary line.
pub fn print_ext_serve_contended(cells: &[ServeCell]) {
    println!("\nExtension — contended pools: 2 slots, downscaling plans, pool admission");
    println!("(6 jobs/cell; running jobs race for parked instances at barriers)\n");
    print_cells(cells);
    let s = PairSummary::over(cells);
    println!(
        "\next-serve contended summary: cells={} pairs={} pool_cheaper={} \
         wait_regressions={} handoffs={} pool_admits={} \
         conflicts={} double_releases={} saved=${:.4}",
        cells.len(),
        s.pairs,
        s.cheaper,
        s.wait_regressions,
        s.handoffs,
        s.pool_admits,
        s.conflicts,
        s.double_releases,
        s.saved.as_dollars()
    );
}

/// Renders the Hyperband job-group pair, ending with a
/// machine-checkable summary line.
pub fn print_ext_serve_hyperband(cells: &[ServeCell]) {
    let (r, big_r, eta) = HYPERBAND_SHAPE;
    let ladder = rb_hpo::hyperband_brackets(r, big_r, eta)
        .map(|brackets| {
            brackets
                .iter()
                .map(|(params, _)| params.describe())
                .collect::<Vec<_>>()
                .join(" · ")
        })
        .unwrap_or_default();
    println!("\nExtension — Hyperband bracket group through the service");
    println!("(one tenant, brackets {ladder}, group pool affinity)\n");
    print_cells(cells);
    let s = PairSummary::over(cells);
    println!(
        "\next-serve hyperband summary: cells={} brackets={} pool_cheaper={} \
         wait_regressions={} handoffs={} pool_admits={} \
         conflicts={} saved=${:.4}",
        cells.len(),
        cells.first().map_or(0, |c| c.completed),
        s.cheaper,
        s.wait_regressions,
        s.handoffs,
        s.pool_admits,
        s.conflicts,
        s.saved.as_dollars()
    );
}

fn print_cells(cells: &[ServeCell]) {
    println!(
        "{:<8} {:>6} {:>6} {:>5} {:>4} {:>10} {:>10} {:>9} {:>11} {:>9} {:>7}",
        "tenants",
        "gap_s",
        "pool",
        "done",
        "rej",
        "billed",
        "net",
        "p50_wait",
        "makespan",
        "handoffs",
        "admits"
    );
    for c in cells {
        println!(
            "{:<8} {:>6} {:>6} {:>5} {:>4} {:>10} {:>10} {:>8.0}s {:>10.0}s {:>9} {:>7}",
            c.tenants,
            c.gap_secs,
            if c.pool { "on" } else { "off" },
            c.completed,
            c.rejected,
            format!("{}", c.billed),
            format!("{}", c.net),
            c.p50_wait_secs,
            c.makespan_secs,
            c.handoffs,
            c.pool_admits
        );
    }
}

/// Pairwise aggregates over adjacent pool-off/pool-on cells.
struct PairSummary {
    pairs: u64,
    cheaper: u64,
    wait_regressions: u64,
    handoffs: u64,
    expirations: u64,
    double_releases: u64,
    conflicts: u64,
    pool_admits: u64,
    saved: Cost,
}

impl PairSummary {
    fn over(cells: &[ServeCell]) -> PairSummary {
        let mut s = PairSummary {
            pairs: 0,
            cheaper: 0,
            wait_regressions: 0,
            handoffs: 0,
            expirations: 0,
            double_releases: 0,
            conflicts: 0,
            pool_admits: 0,
            saved: Cost::ZERO,
        };
        // Pool-off/pool-on pairs are adjacent by construction.
        for pair in cells.chunks_exact(2) {
            let (off, on) = (&pair[0], &pair[1]);
            s.pairs += 1;
            if on.billed < off.billed {
                s.cheaper += 1;
                s.saved += off.billed - on.billed;
            }
            if on.p50_wait_secs > off.p50_wait_secs {
                s.wait_regressions += 1;
            }
            s.handoffs += on.handoffs;
            s.expirations += on.expirations;
            s.double_releases += on.double_releases + off.double_releases;
            s.conflicts += on.conflicts + off.conflicts;
            s.pool_admits += on.pool_admits + off.pool_admits;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_on_is_cheaper_at_equal_or_better_wait_in_every_pair() {
        let cells = ext_serve(&[2], &[0], 1).unwrap();
        assert_eq!(cells.len(), 2);
        for pair in cells.chunks_exact(2) {
            let (off, on) = (&pair[0], &pair[1]);
            assert!(!off.pool && on.pool);
            assert_eq!(off.completed, 4);
            assert_eq!(on.completed, 4);
            assert!(on.handoffs > 0, "pool must actually broker handoffs");
            assert_eq!(on.double_releases, 0);
            assert_eq!(on.conflicts, 0);
            assert!(
                on.billed < off.billed,
                "pool-on {} !< pool-off {}",
                on.billed,
                off.billed
            );
            assert!(on.net <= on.billed);
            assert!(on.p50_wait_secs <= off.p50_wait_secs);
        }
    }

    #[test]
    fn contended_pool_wins_every_pair_and_admits_from_the_pool() {
        let cells = ext_serve_contended(&[2], &[0], 1).unwrap();
        assert_eq!(cells.len(), 2);
        for pair in cells.chunks_exact(2) {
            let (off, on) = (&pair[0], &pair[1]);
            assert!(!off.pool && on.pool);
            assert_eq!(off.completed, 6);
            assert_eq!(on.completed, 6);
            assert!(on.handoffs > 0, "contended pool must broker handoffs");
            assert!(
                on.pool_admits > 0,
                "pool-aware admission must fire: parked capacity exists while slots are full"
            );
            assert_eq!(on.conflicts, 0, "no spurious ownership conflicts");
            assert_eq!(on.double_releases, 0);
            assert!(
                on.billed < off.billed,
                "pool-on {} !< pool-off {}",
                on.billed,
                off.billed
            );
            assert!(on.p50_wait_secs <= off.p50_wait_secs);
        }
    }

    #[test]
    fn hyperband_group_pair_prefers_the_pool() {
        let cells = ext_serve_hyperband(1).unwrap();
        assert_eq!(cells.len(), 2);
        let (off, on) = (&cells[0], &cells[1]);
        assert!(!off.pool && on.pool);
        assert_eq!(off.completed, on.completed, "same bracket count");
        assert!(on.completed >= 2, "hyperband(1,4,2) has multiple brackets");
        assert!(on.handoffs > 0, "group affinity must broker handoffs");
        assert_eq!(on.conflicts, 0);
        assert_eq!(on.double_releases, 0);
        assert!(
            on.billed <= off.billed,
            "pool-on {} > pool-off {}",
            on.billed,
            off.billed
        );
    }

    #[test]
    fn the_sweep_is_deterministic_per_seed() {
        let a = ext_serve(&[2], &[300], 1).unwrap();
        let b = ext_serve(&[2], &[300], 1).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let a = ext_serve_contended(&[2], &[0], 1).unwrap();
        let b = ext_serve_contended(&[2], &[0], 1).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
