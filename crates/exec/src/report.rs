//! Execution reports: what the paper's tables read off a run.

use rb_core::{Cost, NodeId, SimDuration, SimTime, TrialId};
use rb_hpo::Config;
use rb_obs::{Event, EventKind, Lane, Value};
use std::collections::BTreeMap;

/// One observable event during execution, in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A node finished initialization and joined the cluster.
    NodeUp {
        /// The node.
        node: rb_core::NodeId,
        /// When it became usable.
        at: SimTime,
    },
    /// A node left the cluster.
    NodeDown {
        /// The node.
        node: rb_core::NodeId,
        /// When it was released or reclaimed.
        at: SimTime,
        /// True when the spot market reclaimed it (vs a planned release).
        preempted: bool,
    },
    /// A contiguous interval of one trial training on one allocation.
    TrialSegment {
        /// The trial.
        trial: TrialId,
        /// Stage index.
        stage: usize,
        /// Segment start.
        start: SimTime,
        /// Segment end.
        end: SimTime,
        /// GPUs used.
        gpus: u32,
    },
    /// A trial's workers were torn down and recreated elsewhere.
    Migration {
        /// The trial.
        trial: TrialId,
        /// When the migration was initiated.
        at: SimTime,
    },
    /// A stage's synchronization barrier completed.
    Barrier {
        /// Stage index.
        stage: usize,
        /// Barrier completion time.
        at: SimTime,
    },
}

impl TraceEvent {
    /// The unified-bus form of this event (scope `"exec"`). The mapping
    /// is lossless: [`ExecutionTrace::from_events`] inverts it, which is
    /// what lets `ExecutionTrace` live on as a *derived view* of the
    /// recorder stream.
    pub fn to_obs(&self) -> Event {
        match *self {
            TraceEvent::NodeUp { node, at } => Event {
                at,
                scope: "exec",
                name: "node.up",
                lane: Lane::Node(node.raw()),
                kind: EventKind::Instant,
                fields: Vec::new(),
            },
            TraceEvent::NodeDown {
                node,
                at,
                preempted,
            } => Event {
                at,
                scope: "exec",
                name: "node.down",
                lane: Lane::Node(node.raw()),
                kind: EventKind::Instant,
                fields: vec![("preempted", Value::Bool(preempted))],
            },
            TraceEvent::TrialSegment {
                trial,
                stage,
                start,
                end,
                gpus,
            } => Event {
                at: start,
                scope: "exec",
                name: "trial.segment",
                lane: Lane::Trial(trial.raw()),
                kind: EventKind::Span { end },
                fields: vec![
                    ("stage", Value::U64(stage as u64)),
                    ("gpus", Value::U64(u64::from(gpus))),
                ],
            },
            TraceEvent::Migration { trial, at } => Event {
                at,
                scope: "exec",
                name: "migration",
                lane: Lane::Trial(trial.raw()),
                kind: EventKind::Instant,
                fields: Vec::new(),
            },
            TraceEvent::Barrier { stage, at } => Event {
                at,
                scope: "exec",
                name: "barrier",
                lane: Lane::Global,
                kind: EventKind::Instant,
                fields: vec![("stage", Value::U64(stage as u64))],
            },
        }
    }
}

/// The ordered event log of one execution (useful for visualization and
/// for asserting runtime invariants in tests).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    /// Events in emission order (non-decreasing per entity; globally the
    /// stage structure orders them).
    pub events: Vec<TraceEvent>,
}

impl ExecutionTrace {
    /// All training segments, in emission order.
    pub fn segments(&self) -> impl Iterator<Item = (&TrialId, usize, SimTime, SimTime, u32)> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::TrialSegment {
                trial,
                stage,
                start,
                end,
                gpus,
            } => Some((trial, *stage, *start, *end, *gpus)),
            _ => None,
        })
    }

    /// Total trained GPU-seconds across segments.
    pub fn busy_gpu_seconds(&self) -> f64 {
        self.segments()
            .map(|(_, _, s, e, g)| (e - s).as_secs_f64() * f64::from(g))
            .sum()
    }

    /// Barrier completion times, by stage order of emission.
    pub fn barriers(&self) -> Vec<(usize, SimTime)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Barrier { stage, at } => Some((*stage, *at)),
                _ => None,
            })
            .collect()
    }

    /// Reconstructs the execution trace from a unified-bus event stream
    /// (the inverse of [`TraceEvent::to_obs`]). Events from other scopes
    /// or with unrecognized names are ignored, so the same stream can
    /// carry planner, controller and cloud lanes alongside the
    /// executor's.
    pub fn from_events(events: &[Event]) -> ExecutionTrace {
        fn field_u64(e: &Event, key: &str) -> Option<u64> {
            e.fields
                .iter()
                .find(|(k, _)| *k == key)
                .and_then(|(_, v)| match v {
                    Value::U64(n) => Some(*n),
                    Value::I64(n) => u64::try_from(*n).ok(),
                    _ => None,
                })
        }
        fn field_bool(e: &Event, key: &str) -> Option<bool> {
            e.fields
                .iter()
                .find(|(k, _)| *k == key)
                .and_then(|(_, v)| match v {
                    Value::Bool(b) => Some(*b),
                    _ => None,
                })
        }
        let mut out = ExecutionTrace::default();
        for e in events {
            if e.scope != "exec" {
                continue;
            }
            let ev = match (e.name, e.lane, e.kind) {
                ("node.up", Lane::Node(id), EventKind::Instant) => Some(TraceEvent::NodeUp {
                    node: NodeId::new(id),
                    at: e.at,
                }),
                ("node.down", Lane::Node(id), EventKind::Instant) => Some(TraceEvent::NodeDown {
                    node: NodeId::new(id),
                    at: e.at,
                    preempted: field_bool(e, "preempted").unwrap_or(false),
                }),
                ("trial.segment", Lane::Trial(id), EventKind::Span { end }) => {
                    Some(TraceEvent::TrialSegment {
                        trial: TrialId::new(id),
                        stage: field_u64(e, "stage").unwrap_or(0) as usize,
                        start: e.at,
                        end,
                        gpus: field_u64(e, "gpus").unwrap_or(0) as u32,
                    })
                }
                ("migration", Lane::Trial(id), EventKind::Instant) => Some(TraceEvent::Migration {
                    trial: TrialId::new(id),
                    at: e.at,
                }),
                ("barrier", Lane::Global, EventKind::Instant) => Some(TraceEvent::Barrier {
                    stage: field_u64(e, "stage").unwrap_or(0) as usize,
                    at: e.at,
                }),
                _ => None,
            };
            if let Some(ev) = ev {
                out.events.push(ev);
            }
        }
        out
    }

    /// Checks the trace's ordering contract:
    ///
    /// * per-entity timestamps are non-decreasing in emission order
    ///   (per node, per trial, and across barriers);
    /// * every `NodeDown` matches a node that is currently up, and no
    ///   node comes up twice without going down in between;
    /// * trial segments do not overlap (each starts no earlier than the
    ///   previous segment of the same trial ended);
    /// * barrier stages strictly increase.
    ///
    /// Returns the first violation found, described for humans.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        use std::collections::BTreeSet;
        let mut up: BTreeSet<NodeId> = BTreeSet::new();
        let mut node_last: BTreeMap<NodeId, SimTime> = BTreeMap::new();
        let mut trial_last: BTreeMap<TrialId, SimTime> = BTreeMap::new();
        let mut last_barrier: Option<(usize, SimTime)> = None;
        for (i, e) in self.events.iter().enumerate() {
            match e {
                TraceEvent::NodeUp { node, at } => {
                    if !up.insert(*node) {
                        return Err(format!("event {i}: {node} came up while already up"));
                    }
                    let last = node_last.entry(*node).or_insert(SimTime::ZERO);
                    if *at < *last {
                        return Err(format!(
                            "event {i}: {node} up at {at} before its last event at {last}"
                        ));
                    }
                    *last = *at;
                }
                TraceEvent::NodeDown { node, at, .. } => {
                    if !up.remove(node) {
                        return Err(format!("event {i}: {node} went down without a prior up"));
                    }
                    let last = node_last.entry(*node).or_insert(SimTime::ZERO);
                    if *at < *last {
                        return Err(format!(
                            "event {i}: {node} down at {at} before its last event at {last}"
                        ));
                    }
                    *last = *at;
                }
                TraceEvent::TrialSegment {
                    trial, start, end, ..
                } => {
                    if end < start {
                        return Err(format!("event {i}: {trial} segment ends before it starts"));
                    }
                    let last = trial_last.entry(*trial).or_insert(SimTime::ZERO);
                    if *start < *last {
                        return Err(format!(
                            "event {i}: {trial} segment starts at {start} before its last \
                             event at {last}"
                        ));
                    }
                    *last = *end;
                }
                TraceEvent::Migration { trial, at } => {
                    let last = trial_last.entry(*trial).or_insert(SimTime::ZERO);
                    if *at < *last {
                        return Err(format!(
                            "event {i}: {trial} migration at {at} before its last event at {last}"
                        ));
                    }
                    *last = *at;
                }
                TraceEvent::Barrier { stage, at } => {
                    if let Some((ps, pt)) = last_barrier {
                        if *stage <= ps {
                            return Err(format!(
                                "event {i}: barrier stage {stage} after stage {ps}"
                            ));
                        }
                        if *at < pt {
                            return Err(format!(
                                "event {i}: barrier at {at} before previous barrier at {pt}"
                            ));
                        }
                    }
                    last_barrier = Some((*stage, *at));
                }
            }
        }
        Ok(())
    }
}

/// Timeline record for one executed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage index.
    pub stage: usize,
    /// When the stage's trials actually began training (after any
    /// scale-up barrier and migrations).
    pub train_start: SimTime,
    /// When the stage's synchronization barrier completed.
    pub sync_end: SimTime,
    /// Trials that ran.
    pub trials: u32,
    /// GPUs each trial received.
    pub gpus_per_trial: u32,
    /// Instances held during the stage.
    pub instances: u32,
    /// Trials whose workers had to be migrated at stage entry.
    pub migrations: u32,
}

/// The outcome of one executed experiment.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Job completion time (the final barrier's finish).
    pub jct: SimDuration,
    /// Compute bill under the configured billing model.
    pub compute_cost: Cost,
    /// Data-ingress bill.
    pub data_cost: Cost,
    /// The winning trial.
    pub best_trial: TrialId,
    /// Its hyperparameter configuration.
    pub best_config: Config,
    /// Its final observed validation accuracy.
    pub best_accuracy: f64,
    /// Per-stage timeline.
    pub stages: Vec<StageRecord>,
    /// Total worker migrations performed.
    pub migrations: u32,
    /// Spot interruptions absorbed during execution (zero on on-demand
    /// capacity).
    pub preemptions: u32,
    /// Instances provisioned over the job's lifetime.
    pub instances_provisioned: usize,
    /// Cluster GPU utilization over the run (busy / held), if anything
    /// was held.
    pub utilization: Option<f64>,
    /// Mean training throughput per trial, in samples per second.
    pub trial_throughput: BTreeMap<TrialId, f64>,
    /// Faults injected by the chaos layer over the run (capacity
    /// denials, stragglers, hardware failures, degraded nodes, and
    /// corrupted checkpoint writes). Zero without a fault plan.
    pub faults_injected: u64,
    /// Provisioning retry rounds issued under the configured
    /// [`RetryPolicy`](crate::cluster::RetryPolicy).
    pub provision_retries: u64,
    /// Checkpoint fetches that fell back to an older generation after
    /// the newest failed verification.
    pub checkpoint_fallbacks: u64,
    /// Stages that ran on a reduced allocation because capacity stayed
    /// short after retries.
    pub degraded_stages: u32,
    /// The ordered event log of the run.
    pub trace: ExecutionTrace,
}

impl ExecutionReport {
    /// Compute plus data cost.
    pub fn total_cost(&self) -> Cost {
        self.compute_cost + self.data_cost
    }

    /// Mean throughput across trials (Table 1's metric), if any trial
    /// trained.
    pub fn mean_throughput(&self) -> Option<f64> {
        if self.trial_throughput.is_empty() {
            return None;
        }
        Some(self.trial_throughput.values().sum::<f64>() / self.trial_throughput.len() as f64)
    }
}

/// Renders the execution timeline as a text Gantt chart: one row per
/// stage, bar length proportional to wall-clock duration, bar height
/// (the digit) showing the instances held — a quick visual of the
/// front-loaded shape elastic plans produce.
///
/// # Examples
///
/// ```text
/// stage 0 |■■■■■■■■■■■■■■■■| 8 inst × 32 trials × 1 GPU   (00:58)
/// stage 1 |■■■■■■■■■■|       5 inst × 10 trials × 2 GPUs  (02:31)
/// ```
pub fn render_timeline(report: &ExecutionReport, width: usize) -> String {
    use std::fmt::Write as _;
    let total = report.jct.as_secs_f64().max(1e-9);
    let width = width.max(10);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline ({} total, {} instances provisioned, {} migrations)",
        report.jct, report.instances_provisioned, report.migrations
    );
    let mut prev_end = 0.0_f64;
    for s in &report.stages {
        let start = s.train_start.as_millis() as f64 / 1000.0;
        let end = s.sync_end.as_millis() as f64 / 1000.0;
        let lead = (((start - prev_end).max(0.0) / total) * width as f64).round() as usize;
        let bar = ((((end - start) / total) * width as f64).round() as usize).max(1);
        prev_end = end;
        let _ = writeln!(
            out,
            "stage {:<2} {}{} {} inst x {} trials x {} GPU{} ({})",
            s.stage,
            " ".repeat(lead),
            "#".repeat(bar),
            s.instances,
            s.trials,
            s.gpus_per_trial,
            if s.gpus_per_trial == 1 { "" } else { "s" },
            rb_core::SimDuration::from_secs_f64(end - start),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_means() {
        let mut tp = BTreeMap::new();
        tp.insert(TrialId::new(0), 100.0);
        tp.insert(TrialId::new(1), 300.0);
        let r = ExecutionReport {
            jct: SimDuration::from_secs(10),
            compute_cost: Cost::from_dollars(2.0),
            data_cost: Cost::from_dollars(0.5),
            best_trial: TrialId::new(0),
            best_config: Config::new(),
            best_accuracy: 0.9,
            stages: vec![],
            migrations: 0,
            preemptions: 0,
            instances_provisioned: 1,
            utilization: None,
            trial_throughput: tp,
            faults_injected: 0,
            provision_retries: 0,
            checkpoint_fallbacks: 0,
            degraded_stages: 0,
            trace: ExecutionTrace::default(),
        };
        assert_eq!(r.total_cost(), Cost::from_dollars(2.5));
        assert_eq!(r.mean_throughput(), Some(200.0));
    }

    #[test]
    fn timeline_renders_one_row_per_stage() {
        let r = ExecutionReport {
            jct: SimDuration::from_secs(100),
            compute_cost: Cost::ZERO,
            data_cost: Cost::ZERO,
            best_trial: TrialId::new(0),
            best_config: Config::new(),
            best_accuracy: 0.5,
            stages: vec![
                StageRecord {
                    stage: 0,
                    train_start: SimTime::from_secs(10),
                    sync_end: SimTime::from_secs(50),
                    trials: 8,
                    gpus_per_trial: 1,
                    instances: 2,
                    migrations: 0,
                },
                StageRecord {
                    stage: 1,
                    train_start: SimTime::from_secs(50),
                    sync_end: SimTime::from_secs(100),
                    trials: 4,
                    gpus_per_trial: 2,
                    instances: 2,
                    migrations: 4,
                },
            ],
            migrations: 4,
            preemptions: 0,
            instances_provisioned: 2,
            utilization: None,
            trial_throughput: BTreeMap::new(),
            faults_injected: 0,
            provision_retries: 0,
            checkpoint_fallbacks: 0,
            degraded_stages: 0,
            trace: ExecutionTrace::default(),
        };
        let text = render_timeline(&r, 40);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 stages");
        assert!(lines[1].contains("stage 0"));
        assert!(lines[1].contains("8 trials"));
        assert!(lines[2].contains("2 GPUs"));
        // Stage 1 covers half the job: its bar is about half the width.
        let bar1 = lines[2].matches('#').count();
        assert!((15..=25).contains(&bar1), "bar {bar1}");
    }
}
