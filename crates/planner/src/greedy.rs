//! The RubberBand greedy elastic planner (Algorithm 2, §4.3).
//!
//! Starting from a feasible warm-start plan, each step generates one
//! candidate per stage by decrementing that stage's allocation to the next
//! fair value, predicts each candidate's JCT and cost with the simulator,
//! and keeps the candidate with the largest *cost-marginal benefit*
//!
//! ```text
//! m_i = (C(a*) − C(a_i)) / (T(a_i) − T(a*))          (Eq. 1)
//! ```
//!
//! until no candidate improves cost by at least δ or all candidates
//! violate the deadline. Because steps only ever decrement, the warm start
//! caps each stage's allocation; the search is therefore re-run from 1×,
//! 2×, 3× the optimal static size and the cheapest result returned.

use crate::beam::{beam_descent, Descent};
use crate::static_planner::plan_static_optimal;
use rb_core::{Cost, RbError, Result, SimDuration, SimTime};
use rb_hpo::ExperimentSpec;
use rb_obs::Lane;
use rb_sim::{AllocationPlan, Prediction, Simulator};

/// Tunables of the greedy planner.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Cap on GPUs per trial when sizing the static warm start.
    pub max_gpus_per_trial: u32,
    /// Warm-start multipliers applied to the optimal static size
    /// ("e.g. 1x, 2x, 3x", §4.3).
    pub warm_start_multipliers: Vec<u32>,
    /// Minimum cost improvement per greedy step (δ).
    pub improvement_threshold: Cost,
    /// Also generate, per stage, the jump candidate that lands on the
    /// next *instance boundary* (where per-instance cost actually
    /// changes). Without it the ladder can stall on fragmentation
    /// plateaus — ablated by `repro ablations`.
    pub use_instance_jump: bool,
    /// Hard cap on greedy iterations (defence against pathological
    /// simulator outputs; generous relative to any fair ladder's length).
    pub max_steps: usize,
    /// Adaptive sample counts: when `Some(k)` (with `k` below the
    /// simulator's configured fidelity), warm-start screening and greedy
    /// descent predict with only `k` Monte-Carlo samples — sharing the
    /// full-fidelity simulator's stage-sample memo, since sample sets are
    /// prefix-consistent per seed — and only the plans that survive the
    /// pruning (each descent's result) are re-scored at full fidelity.
    /// The prediction returned to the caller is always full fidelity.
    /// `None` (the default) predicts everything at full fidelity.
    pub exploration_samples: Option<u32>,
    /// Beam width of the descent frontier. `1` (the default) reproduces
    /// the classic single-incumbent greedy loop bit-for-bit; wider beams
    /// keep the top-`k` scoring candidates each step — batched into one
    /// prediction call per iteration — and return the best plan retired
    /// from any lineage, which is never worse than width 1.
    pub beam_width: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            max_gpus_per_trial: 16,
            warm_start_multipliers: vec![1, 2, 3],
            improvement_threshold: Cost::from_dollars(0.01),
            use_instance_jump: true,
            max_steps: 10_000,
            exploration_samples: None,
            beam_width: 1,
        }
    }
}

/// The planner's result: the chosen plan, its prediction, and the static
/// baseline it improved upon.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// The selected elastic plan.
    pub plan: AllocationPlan,
    /// Its predicted JCT/cost.
    pub prediction: Prediction,
    /// The optimal static plan used as the 1× warm start.
    pub static_plan: AllocationPlan,
    /// The static plan's prediction (the baseline cost).
    pub static_prediction: Prediction,
    /// Greedy steps actually taken across all warm starts.
    pub steps: usize,
}

/// Runs greedy (beam) descent from one warm start. Returns the improved
/// plan, its prediction, and the steps taken.
///
/// With `config.beam_width == 1` this is the classic single-incumbent
/// greedy loop; wider beams explore `beam_width` lineages per step with
/// one batched prediction per iteration (see [`crate::beam`]).
///
/// # Errors
///
/// Propagates simulator errors. The warm start itself must be feasible;
/// if it is not, it is returned unchanged (the caller decides what to do
/// with an infeasible start).
pub fn optimize_plan(
    sim: &Simulator,
    spec: &ExperimentSpec,
    deadline: SimDuration,
    warm_start: AllocationPlan,
    config: &PlannerConfig,
) -> Result<(AllocationPlan, Prediction, usize)> {
    let start_pred = sim.predict(spec, &warm_start)?;
    let gpg = sim.cloud().gpus_per_instance();
    let descent = Descent {
        sim,
        spec,
        width: config.beam_width,
        max_steps: config.max_steps,
        accept_event: "step.accept",
    };
    beam_descent(
        &descent,
        warm_start,
        start_pred,
        |plan, out| {
            // Generate candidates per stage: the next fair decrement
            // (§4.3) and, where different, the jump to the next instance
            // boundary (where per-instance cost actually changes).
            for i in 0..spec.num_stages() {
                let trials = spec.get_stage(i)?.0;
                let cur = plan.gpus(i);
                let mut nexts = Vec::with_capacity(2);
                if let Some(n) = AllocationPlan::decrement_fair(cur, trials) {
                    nexts.push(n);
                }
                if config.use_instance_jump {
                    if let Some(n) = AllocationPlan::decrement_to_fewer_instances(cur, trials, gpg)
                    {
                        if !nexts.contains(&n) {
                            nexts.push(n);
                        }
                    }
                }
                for next in nexts {
                    let mut cand = plan.clone();
                    cand.set_gpus(i, next);
                    out.push(cand);
                }
            }
            Ok(())
        },
        |parent, pred| {
            if !pred.feasible(deadline) {
                return None;
            }
            let saved = parent.cost - pred.cost;
            if saved < config.improvement_threshold {
                return None;
            }
            // Marginal benefit: cost saved per second of JCT given up.
            // A candidate that saves cost without slowing the job down is
            // infinitely good.
            let dt = pred.jct.as_secs_f64() - parent.jct.as_secs_f64();
            Some(if dt <= 0.0 {
                f64::INFINITY
            } else {
                saved.as_dollars() / dt
            })
        },
        |a, b| a.cost < b.cost,
    )
}

/// The full RubberBand planning procedure: optimal static warm start,
/// greedy descent from several warm-start scales, cheapest feasible result.
///
/// # Examples
///
/// ```
/// use rb_planner::{plan_rubberband, PlannerConfig};
/// use rb_sim::Simulator;
/// use rb_profile::{CloudProfile, ModelProfile};
/// use rb_cloud::{catalog::P3_8XLARGE, CloudPricing};
/// use rb_core::SimDuration;
/// use rb_hpo::ShaParams;
/// use rb_scaling::{AnalyticScaling, zoo::RESNET50};
/// use std::sync::Arc;
///
/// let spec = ShaParams::new(16, 2, 30).generate().unwrap();
/// let model = ModelProfile::from_scaling(
///     "rn50",
///     Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4)),
///     5,
///     2.0,
///     0.0,
/// );
/// let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
/// let sim = Simulator::new(model, cloud);
/// let out =
///     plan_rubberband(&sim, &spec, SimDuration::from_hours(1), &PlannerConfig::default())
///         .unwrap();
/// // Never worse than the optimal static allocation (§4.3).
/// assert!(out.prediction.cost <= out.static_prediction.cost);
/// ```
///
/// # Errors
///
/// Returns [`RbError::Infeasible`] when even the fastest static cluster
/// misses the deadline; propagates simulator errors.
pub fn plan_rubberband(
    sim: &Simulator,
    spec: &ExperimentSpec,
    deadline: SimDuration,
    config: &PlannerConfig,
) -> Result<GreedyOutcome> {
    let (static_plan, static_pred) =
        plan_static_optimal(sim, spec, deadline, config.max_gpus_per_trial)?;
    let recorder = sim.recorder().clone();
    // Adaptive sample counts: screen and descend at reduced fidelity,
    // re-score survivors at full fidelity below.
    let explore = exploration_sim(sim, config);
    let search_sim = explore.as_ref().unwrap_or(sim);
    let mut best: Option<(AllocationPlan, Prediction, u32)> = None;
    let mut total_steps = 0;
    // Predict every warm start in one batch before descending from any of
    // them (duplicates are deduplicated inside the engine).
    let mults: Vec<u32> = config
        .warm_start_multipliers
        .iter()
        .copied()
        .filter(|&mult| mult > 0)
        .collect();
    let starts: Vec<AllocationPlan> = mults
        .iter()
        .map(|&mult| {
            AllocationPlan::flat(static_plan.gpus(0).saturating_mul(mult), spec.num_stages())
        })
        .collect();
    let start_preds = search_sim.predict_batch(spec, &starts);
    for ((mult, start), start_pred) in mults.into_iter().zip(starts).zip(start_preds) {
        if !start_pred?.feasible(deadline) {
            // A bigger static cluster that *misses* the deadline (e.g.
            // overheads grow with size) is not a usable warm start.
            continue;
        }
        let (plan, pred, steps) = optimize_plan(search_sim, spec, deadline, start, config)?;
        total_steps += steps;
        // The survivor of this descent is re-scored at full fidelity; a
        // plan that only looked feasible at exploration fidelity is
        // dropped here.
        let pred = if explore.is_some() {
            recorder.counter_add("planner", "rescored_full_fidelity", 1);
            let full = sim.predict(spec, &plan)?;
            if !full.feasible(deadline) {
                continue;
            }
            full
        } else {
            pred
        };
        let better = match &best {
            None => true,
            Some((_, b, _)) => pred.cost < b.cost,
        };
        if better {
            best = Some((plan, pred, mult));
        }
    }
    let (plan, prediction, winning_mult) = best.ok_or_else(|| RbError::Infeasible {
        reason: "no feasible warm start".to_string(),
    })?;
    debug_assert_eq!(
        prediction.samples,
        sim.config().samples.max(1),
        "selected plan must be scored at full fidelity"
    );
    // Guarantee (§4.3): never worse than the optimal static allocation.
    let elastic_won = prediction.cost <= static_pred.cost;
    let (plan, prediction) = if elastic_won {
        (plan, prediction)
    } else {
        (static_plan.clone(), static_pred)
    };
    if elastic_won {
        // The warm start whose descent produced the winning plan.
        recorder.counter_add("planner", "warm_start_wins", 1);
    } else {
        recorder.counter_add("planner", "static_fallbacks", 1);
    }
    if recorder.enabled() {
        recorder.instant(
            SimTime::ZERO,
            "planner",
            "plan.selected",
            Lane::Planner,
            vec![
                ("warm_start_multiplier", winning_mult.into()),
                ("elastic_won", elastic_won.into()),
                ("steps", total_steps.into()),
                ("cost_usd", prediction.cost.as_dollars().into()),
                ("jct_secs", prediction.jct.as_secs_f64().into()),
            ],
        );
    }
    Ok(GreedyOutcome {
        plan,
        prediction,
        static_plan,
        static_prediction: static_pred,
        steps: total_steps,
    })
}

/// The reduced-fidelity simulator for candidate exploration, when the
/// config enables one that is actually cheaper than `sim` itself.
fn exploration_sim(sim: &Simulator, config: &PlannerConfig) -> Option<Simulator> {
    config
        .exploration_samples
        .filter(|&k| k > 0 && k < sim.config().samples.max(1))
        .map(|k| sim.with_samples(k))
}

/// A mid-job re-plan of the *residual* experiment: the stages that have
/// not yet executed, under whatever deadline remains.
#[derive(Debug, Clone)]
pub struct ResidualOutcome {
    /// The chosen allocation for the remaining stages.
    pub plan: AllocationPlan,
    /// Its full-fidelity prediction.
    pub prediction: Prediction,
    /// Whether that prediction fits the residual deadline. Unlike
    /// offline planning, an infeasible residual is not an error — the
    /// controller must still apply *some* plan, and the minimum-JCT one
    /// loses the least.
    pub feasible: bool,
    /// Greedy steps taken across all warm starts.
    pub steps: usize,
}

/// Re-plans the remaining stages of a job from the plan currently being
/// executed.
///
/// `warm_start` is the current plan's suffix for the residual stages
/// (same length as `residual_spec`). Candidates are that suffix scaled by
/// the configured warm-start multipliers — capped per stage at
/// `trials × max_gpus_per_trial` — each screened and descended exactly
/// like [`plan_rubberband`] (honouring
/// [`PlannerConfig::exploration_samples`]), then re-scored at full
/// fidelity. The cheapest plan that fits `residual_deadline` wins; when
/// none fits, the minimum-JCT candidate is returned with
/// [`ResidualOutcome::feasible`] `== false` instead of an error, because
/// a controller mid-job has no choice but to keep executing.
///
/// There is deliberately no static-plan fallback here: the residual
/// spec's stage 0 already has survivors and held instances, and the warm
/// start (the incumbent plan) is always among the candidates, so the
/// result is never worse *under the model* than not re-planning.
///
/// # Errors
///
/// Returns [`rb_core::RbError::InvalidPlan`] when `warm_start` and
/// `residual_spec` disagree on stage count; propagates simulator errors.
pub fn plan_residual(
    sim: &Simulator,
    residual_spec: &ExperimentSpec,
    residual_deadline: SimDuration,
    warm_start: &AllocationPlan,
    config: &PlannerConfig,
) -> Result<ResidualOutcome> {
    if warm_start.num_stages() != residual_spec.num_stages() {
        return Err(RbError::InvalidPlan(format!(
            "warm start has {} stages, residual spec has {}",
            warm_start.num_stages(),
            residual_spec.num_stages()
        )));
    }
    let explore = exploration_sim(sim, config);
    let search_sim = explore.as_ref().unwrap_or(sim);
    let mut starts: Vec<AllocationPlan> = Vec::new();
    for &mult in config.warm_start_multipliers.iter().filter(|&&m| m > 0) {
        let gpus = (0..residual_spec.num_stages())
            .map(|s| {
                let trials = residual_spec.get_stage(s)?.0;
                let cap = trials.saturating_mul(config.max_gpus_per_trial.max(1));
                Ok(warm_start.gpus(s).saturating_mul(mult).clamp(1, cap))
            })
            .collect::<Result<Vec<u32>>>()?;
        let start = AllocationPlan::new(gpus);
        if !starts.contains(&start) {
            starts.push(start);
        }
    }
    let start_preds = search_sim.predict_batch(residual_spec, &starts);
    let mut total_steps = 0;
    let mut evaluated: Vec<(AllocationPlan, Prediction)> = Vec::new();
    for (start, start_pred) in starts.into_iter().zip(start_preds) {
        let start_pred = start_pred?;
        let plan = if start_pred.feasible(residual_deadline) {
            let (plan, _, steps) =
                optimize_plan(search_sim, residual_spec, residual_deadline, start, config)?;
            total_steps += steps;
            plan
        } else {
            // Even an infeasible start is kept as a candidate: at full
            // fidelity it may fit, and if nothing fits we want the
            // fastest option on the table.
            start
        };
        if !evaluated.iter().any(|(p, _)| *p == plan) {
            let full = sim.predict(residual_spec, &plan)?;
            evaluated.push((plan, full));
        }
    }
    let winner = evaluated
        .iter()
        .filter(|(_, p)| p.feasible(residual_deadline))
        .min_by(|(_, a), (_, b)| a.cost.cmp(&b.cost))
        .or_else(|| evaluated.iter().min_by(|(_, a), (_, b)| a.jct.cmp(&b.jct)))
        .cloned()
        .ok_or_else(|| RbError::Infeasible {
            reason: "no warm-start candidates".to_string(),
        })?;
    let feasible = winner.1.feasible(residual_deadline);
    let recorder = sim.recorder();
    recorder.counter_add("planner", "residual_replans", 1);
    if recorder.enabled() {
        recorder.instant(
            SimTime::ZERO,
            "planner",
            "residual.selected",
            Lane::Planner,
            vec![
                ("feasible", feasible.into()),
                ("steps", total_steps.into()),
                ("cost_usd", winner.1.cost.as_dollars().into()),
                ("jct_secs", winner.1.jct.as_secs_f64().into()),
            ],
        );
    }
    Ok(ResidualOutcome {
        plan: winner.0,
        prediction: winner.1,
        feasible,
        steps: total_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;
    use rb_cloud::CloudPricing;
    use rb_profile::{CloudProfile, ModelProfile};
    use rb_scaling::zoo::RESNET50;
    use rb_scaling::AnalyticScaling;
    use rb_sim::SimConfig;
    use std::sync::Arc;

    /// A sublinear-scaling workload on 4-GPU instances — the regime where
    /// elasticity pays.
    fn sublinear_sim() -> Simulator {
        let scaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
        let model = ModelProfile::from_scaling("rn50", scaling, 10, 2.0, 0.0);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15));
        Simulator::new(model, cloud).with_config(SimConfig {
            samples: 3,
            seed: 11,
            sync_overhead_secs: 1.0,
        })
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(16, 4), (8, 8), (4, 16), (2, 32), (1, 64)]).unwrap()
    }

    #[test]
    fn warm_replanning_is_served_from_the_plan_cache() {
        // The warm-path speedup the benchmarks report must be
        // attributable to real cache hits, not an artifact: replanning
        // the same job on a shared simulator has to hit both the plan
        // cache and the stage-sample memo, and return the same plan.
        let sim = sublinear_sim();
        let deadline = SimDuration::from_mins(60);
        let cold = plan_rubberband(&sim, &spec(), deadline, &PlannerConfig::default()).unwrap();
        let after_cold = sim.cache_stats();
        assert!(
            after_cold.plan.misses > 0,
            "cold planning must populate the plan cache"
        );
        assert!(
            after_cold.stage_memo.misses > 0,
            "cold planning must populate the stage memo"
        );
        let warm = plan_rubberband(&sim, &spec(), deadline, &PlannerConfig::default()).unwrap();
        let after_warm = sim.cache_stats();
        assert!(
            after_warm.plan.hits > after_cold.plan.hits,
            "warm planning must be served from the plan cache \
             (cold: {after_cold:?}, warm: {after_warm:?})"
        );
        // A cached replan is byte-for-byte the cold plan.
        assert_eq!(warm.plan, cold.plan);
        assert_eq!(warm.prediction, cold.prediction);
    }

    #[test]
    fn rubberband_never_beaten_by_static() {
        let sim = sublinear_sim();
        for deadline_mins in [30u64, 60, 120] {
            let out = plan_rubberband(
                &sim,
                &spec(),
                SimDuration::from_mins(deadline_mins),
                &PlannerConfig::default(),
            )
            .unwrap();
            assert!(
                out.prediction.cost <= out.static_prediction.cost,
                "deadline {deadline_mins}m: {} > static {}",
                out.prediction.cost,
                out.static_prediction.cost
            );
            assert!(out
                .prediction
                .feasible(SimDuration::from_mins(deadline_mins)));
        }
    }

    #[test]
    fn elastic_plan_shrinks_over_stages_for_sublinear_models() {
        // A tight deadline (static optimum ≈ 4:13 at 16 GPUs) forces a
        // large early cluster; the greedy planner should shed it in the
        // late, low-parallelism stages.
        let sim = sublinear_sim();
        let out = plan_rubberband(
            &sim,
            &spec(),
            SimDuration::from_secs(270),
            &PlannerConfig::default(),
        )
        .unwrap();
        let first = out.plan.gpus(0);
        let last = out.plan.gpus(spec().num_stages() - 1);
        assert!(last < first, "expected front-loaded plan, got {}", out.plan);
        // And it should genuinely beat the static baseline.
        assert!(
            out.prediction.cost < out.static_prediction.cost,
            "{} !< {}",
            out.prediction.cost,
            out.static_prediction.cost
        );
    }

    #[test]
    fn greedy_steps_respect_fairness_ladder() {
        let sim = sublinear_sim();
        let s = spec();
        let out = plan_rubberband(
            &sim,
            &s,
            SimDuration::from_mins(60),
            &PlannerConfig::default(),
        )
        .unwrap();
        assert!(out.plan.is_fair(&s), "{} is unfair", out.plan);
    }

    #[test]
    fn optimize_never_increases_allocations() {
        let sim = sublinear_sim();
        let s = spec();
        let start = AllocationPlan::flat(32, s.num_stages());
        let (plan, _, _) = optimize_plan(
            &sim,
            &s,
            SimDuration::from_hours(4),
            start.clone(),
            &PlannerConfig::default(),
        )
        .unwrap();
        for i in 0..s.num_stages() {
            assert!(plan.gpus(i) <= start.gpus(i));
        }
    }

    #[test]
    fn infeasible_deadline_propagates() {
        let sim = sublinear_sim();
        let err = plan_rubberband(
            &sim,
            &spec(),
            SimDuration::from_secs(10),
            &PlannerConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RbError::Infeasible { .. }));
    }

    #[test]
    fn tighter_deadlines_cost_more() {
        let sim = sublinear_sim();
        let cfg = PlannerConfig::default();
        let loose = plan_rubberband(&sim, &spec(), SimDuration::from_mins(180), &cfg)
            .unwrap()
            .prediction
            .cost;
        let tight = plan_rubberband(&sim, &spec(), SimDuration::from_mins(25), &cfg)
            .unwrap()
            .prediction
            .cost;
        assert!(tight >= loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn adaptive_samples_rescore_the_winner_at_full_fidelity() {
        let sim = sublinear_sim().with_config(SimConfig {
            samples: 24,
            seed: 11,
            sync_overhead_secs: 1.0,
        });
        let cfg = PlannerConfig {
            exploration_samples: Some(3),
            ..PlannerConfig::default()
        };
        let out = plan_rubberband(&sim, &spec(), SimDuration::from_mins(60), &cfg).unwrap();
        // The returned prediction is the full-fidelity score of the plan,
        // bit-identical to predicting it directly.
        assert_eq!(out.prediction.samples, 24);
        assert_eq!(out.prediction, sim.predict(&spec(), &out.plan).unwrap());
        assert!(out.prediction.feasible(SimDuration::from_mins(60)));
        // And never worse than static, as always.
        assert!(out.prediction.cost <= out.static_prediction.cost);
    }

    #[test]
    fn residual_replanning_grows_allocations_under_a_shrunken_deadline() {
        let sim = sublinear_sim();
        let s = spec();
        let cfg = PlannerConfig::default();
        let out = plan_rubberband(&sim, &s, SimDuration::from_mins(60), &cfg).unwrap();
        // Pretend stage 0 just finished: plan the 4-stage residual.
        let residual = s.suffix(1).unwrap();
        let warm: AllocationPlan =
            AllocationPlan::new((1..s.num_stages()).map(|i| out.plan.gpus(i)).collect());
        // Generous residual deadline: the incumbent suffix must stay
        // acceptable (re-planning without drift never hurts under the
        // model).
        let loose =
            plan_residual(&sim, &residual, SimDuration::from_mins(55), &warm, &cfg).unwrap();
        assert!(loose.feasible);
        let warm_pred = sim.predict(&residual, &warm).unwrap();
        assert!(loose.prediction.cost <= warm_pred.cost);
        // Tight residual deadline: the re-planner must spend more to go
        // faster than the incumbent suffix would.
        let tight_deadline = SimDuration::from_secs_f64(warm_pred.jct.as_secs_f64() * 0.7);
        let tight = plan_residual(&sim, &residual, tight_deadline, &warm, &cfg).unwrap();
        assert!(
            tight.prediction.jct < warm_pred.jct,
            "residual re-plan {} not faster than incumbent {}",
            tight.prediction.jct,
            warm_pred.jct
        );
        // Feasible or not, it returns a plan rather than erroring.
        assert_eq!(tight.plan.num_stages(), residual.num_stages());
    }

    #[test]
    fn residual_replanning_rejects_mismatched_warm_start() {
        let sim = sublinear_sim();
        let residual = spec().suffix(2).unwrap();
        let warm = AllocationPlan::new(vec![4, 2]); // 2 stages vs 3
        assert!(matches!(
            plan_residual(
                &sim,
                &residual,
                SimDuration::from_mins(30),
                &warm,
                &PlannerConfig::default()
            ),
            Err(RbError::InvalidPlan(_))
        ));
    }

    #[test]
    fn planning_is_deterministic() {
        let sim = sublinear_sim();
        let cfg = PlannerConfig::default();
        let a = plan_rubberband(&sim, &spec(), SimDuration::from_mins(60), &cfg).unwrap();
        let b = plan_rubberband(&sim, &spec(), SimDuration::from_mins(60), &cfg).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.prediction, b.prediction);
    }
}
