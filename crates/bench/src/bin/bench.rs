//! Std-only micro-benchmark harness (`cargo run -p rb-bench --release
//! --bin bench`).
//!
//! Replaces the former external-framework benches with plain
//! `std::time::Instant` timings over the four hot subsystems — planner,
//! simulator, placement, executor — and writes two machine-readable
//! reports into the working directory:
//!
//! * `BENCH_planner.json` — `plan_rubberband` wall time under the
//!   sequential baseline engine vs the parallel, memoized engine (cold
//!   and warm caches) plus the speedup ratios, and the sustained-churn
//!   section: `plans_per_sec` over a churning multi-job workload (mixed
//!   specs, warm/cold cache ratio sweep, 1 and N worker threads);
//! * `BENCH_sim.json` — raw prediction throughput at 1 thread and at the
//!   host's available parallelism, the adaptive-execution overhead, the
//!   multi-tenant service throughput (jobs/sec through `rb-serve` with
//!   pool handoffs), and the tracing overhead (no-op recorder vs
//!   recording + JSONL export).
//!
//! Pass `--smoke` to run every section once with tiny workloads (used by
//! `scripts/verify.sh` to keep the harness honest without burning CI
//! time), and `--churn` to run only the planner + churn sections (writes
//! only `BENCH_planner.json`). Built with `--features alloc-counter`,
//! the binary installs a counting global allocator and asserts the arena
//! engine's zero-allocation warm prediction path before benchmarking.

use rb_cloud::catalog::P3_8XLARGE;
use rb_cloud::CloudPricing;
use rb_core::par::auto_threads;
use rb_core::{Prng, SimDuration, TrialId};
use rb_hpo::{Dim, ExperimentSpec, SearchSpace, ShaParams};
use rb_placement::{ClusterState, PlacementController};
use rb_planner::{plan_rubberband, PlannerConfig};
use rb_profile::{CloudProfile, ModelProfile};
use rb_scaling::zoo::RESNET50;
use rb_scaling::AnalyticScaling;
use rb_sim::{AllocationPlan, EngineConfig, Simulator};
use rb_train::task::resnet101_cifar10;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

#[cfg(feature = "alloc-counter")]
#[global_allocator]
static ALLOC: rb_sim::alloc_counter::CountingAlloc = rb_sim::alloc_counter::CountingAlloc;

/// The planner benchmark workload: the greedy-planner test spec (five
/// shrinking SHA stages) on sublinear ResNet-50 scaling.
fn bench_sim() -> Simulator {
    let scaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
    let model = ModelProfile::from_scaling("rn50", scaling, 10, 2.0, 0.0);
    let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15));
    Simulator::new(model, cloud)
}

fn bench_spec() -> ExperimentSpec {
    ExperimentSpec::from_stages(&[(16, 4), (8, 8), (4, 16), (2, 32), (1, 64)]).unwrap()
}

/// Times `f` over `iters` runs (after one untimed warm-up) and returns the
/// median milliseconds per run. The median is the usual robust estimator
/// for wall-clock microbenchmarks on a shared host, where a single
/// scheduler hiccup can skew a mean badly.
fn time_ms<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f(); // warm-up: page faults, allocator state, branch predictors
    let mut runs: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    runs.sort_by(f64::total_cmp);
    runs[runs.len() / 2]
}

/// plan_rubberband under the sequential baseline vs the engine.
fn bench_planner(smoke: bool) -> String {
    let spec = bench_spec();
    let deadline = SimDuration::from_mins(60);
    let config = PlannerConfig::default();
    let iters = if smoke { 1 } else { 9 };

    // Sequential reference: one thread, no caches, fresh DAG per predict.
    let baseline_ms = time_ms(iters, || {
        let sim = bench_sim().with_engine(EngineConfig::sequential_baseline());
        plan_rubberband(&sim, &spec, deadline, &config).unwrap();
    });

    // Engine, cold: fresh caches every iteration (what a new planning
    // problem pays).
    let cold_ms = time_ms(iters, || {
        let sim = bench_sim();
        plan_rubberband(&sim, &spec, deadline, &config).unwrap();
    });

    // Engine, warm: caches shared across iterations (what re-planning
    // during execution pays).
    let warm_sim = bench_sim();
    plan_rubberband(&warm_sim, &spec, deadline, &config).unwrap();
    let warm_ms = time_ms(iters, || {
        plan_rubberband(&warm_sim, &spec, deadline, &config).unwrap();
    });

    // The determinism contract, re-checked where it matters most.
    let a = plan_rubberband(
        &bench_sim().with_engine(EngineConfig::sequential_baseline()),
        &spec,
        deadline,
        &config,
    )
    .unwrap();
    let b = plan_rubberband(&bench_sim(), &spec, deadline, &config).unwrap();
    let identical = a.plan == b.plan && a.prediction == b.prediction;
    assert!(identical, "engine diverged from the sequential baseline");

    let speedup_cold = baseline_ms / cold_ms.max(1e-9);
    let speedup_warm = baseline_ms / warm_ms.max(1e-9);
    println!("planner: plan_rubberband (5-stage spec, default config)");
    println!("  sequential baseline : {baseline_ms:9.2} ms");
    println!("  engine, cold caches : {cold_ms:9.2} ms   ({speedup_cold:5.1}x)");
    println!("  engine, warm caches : {warm_ms:9.2} ms   ({speedup_warm:5.1}x)");

    format!(
        "{{\n  \"benchmark\": \"plan_rubberband\",\n  \"spec_stages\": {},\n  \"deadline_mins\": 60,\n  \"iters\": {},\n  \"threads\": {},\n  \"sequential_baseline_ms\": {:.3},\n  \"engine_cold_ms\": {:.3},\n  \"engine_warm_ms\": {:.3},\n  \"speedup_cold\": {:.2},\n  \"speedup_warm\": {:.2},\n  \"bit_identical_to_baseline\": {}\n}}\n",
        bench_spec().num_stages(),
        iters,
        auto_threads(),
        baseline_ms,
        cold_ms,
        warm_ms,
        speedup_cold,
        speedup_warm,
        identical
    )
}

/// The churn workload: four SHA jobs of different shapes and deadlines,
/// cycled round-robin so the planner keeps switching specs.
fn churn_specs() -> Vec<(ExperimentSpec, SimDuration)> {
    vec![
        (
            ExperimentSpec::from_stages(&[(16, 4), (8, 8), (4, 16), (2, 32), (1, 64)]).unwrap(),
            SimDuration::from_mins(60),
        ),
        (
            ExperimentSpec::from_stages(&[(27, 3), (9, 9), (3, 27), (1, 81)]).unwrap(),
            SimDuration::from_mins(90),
        ),
        (
            ExperimentSpec::from_stages(&[(8, 6), (4, 12), (2, 24), (1, 48)]).unwrap(),
            SimDuration::from_mins(75),
        ),
        (
            ExperimentSpec::from_stages(&[(32, 2), (16, 4), (8, 8), (4, 16)]).unwrap(),
            SimDuration::from_mins(45),
        ),
    ]
}

/// Plans `jobs` churning jobs on `threads` workers. Job `i` reuses the
/// shared (warm) simulator when `i % 10 < warm_pct / 10`, otherwise it
/// pays a cold simulator — fresh plan cache, DAG templates, and stage
/// memos — modelling a tuning service where only some arrivals repeat a
/// recently planned shape. Returns elapsed seconds and the selected
/// plans in job order.
fn run_churn_cell(
    threads: usize,
    warm_pct: usize,
    jobs: usize,
    specs: &[(ExperimentSpec, SimDuration)],
    config: &PlannerConfig,
) -> (f64, Vec<Vec<u32>>) {
    let shared = bench_sim().with_engine(EngineConfig::default().with_threads(threads));
    let mut selections = Vec::with_capacity(jobs);
    let start = Instant::now();
    for i in 0..jobs {
        let (spec, deadline) = &specs[i % specs.len()];
        let out = if i % 10 < warm_pct / 10 {
            plan_rubberband(&shared, spec, *deadline, config).unwrap()
        } else {
            let cold = bench_sim().with_engine(EngineConfig::default().with_threads(threads));
            plan_rubberband(&cold, spec, *deadline, config).unwrap()
        };
        selections.push(out.plan.as_slice().to_vec());
    }
    (start.elapsed().as_secs_f64(), selections)
}

/// Sustained planner throughput over a churning multi-job workload: the
/// plans/second figure, swept over warm/cold ratios at 1 thread and at
/// the host's parallelism, asserting thread count never changes which
/// plans get selected.
fn bench_churn(smoke: bool) -> String {
    let specs = churn_specs();
    let config = PlannerConfig {
        beam_width: 4,
        ..PlannerConfig::default()
    };
    let jobs = if smoke { 8 } else { 120 };
    let auto = auto_threads();
    println!(
        "churn    : {jobs} jobs/cell over {} specs, beam width {}",
        specs.len(),
        config.beam_width
    );
    let mut cells = Vec::new();
    let mut all_identical = true;
    for warm_pct in [0usize, 50, 90] {
        let (el_1, sel_1) = run_churn_cell(1, warm_pct, jobs, &specs, &config);
        let (el_n, sel_n) = run_churn_cell(auto, warm_pct, jobs, &specs, &config);
        let pps_1 = jobs as f64 / el_1.max(1e-9);
        let pps_n = jobs as f64 / el_n.max(1e-9);
        all_identical &= sel_1 == sel_n;
        println!(
            "  warm {warm_pct:2}% : 1 thread {pps_1:8.1} plans/s | {auto} threads {pps_n:8.1} plans/s"
        );
        for (threads, el, pps) in [(1, el_1, pps_1), (auto, el_n, pps_n)] {
            cells.push(format!(
                "    {{ \"warm_pct\": {warm_pct}, \"threads\": {threads}, \"elapsed_ms\": {:.1}, \"plans_per_sec\": {pps:.2} }}",
                el * 1e3
            ));
        }
    }
    println!("  plan selection identical across thread counts: {all_identical}");
    assert!(
        all_identical,
        "churn plan selection diverged across thread counts"
    );
    format!(
        "{{\n  \"benchmark\": \"churn_plans_per_sec\",\n  \"jobs_per_cell\": {jobs},\n  \"specs\": {},\n  \"beam_width\": {},\n  \"threads_auto\": {auto},\n  \"selection_identical_across_threads\": {all_identical},\n  \"cells\": [\n{}\n  ]\n}}",
        specs.len(),
        config.beam_width,
        cells.join(",\n")
    )
}

/// Asserts the arena engine's allocation contract under the counting
/// global allocator: a warmed-up sequential `predict` never touches the
/// allocator, and an all-hit `predict_batch` allocates at most its
/// output vector.
#[cfg(feature = "alloc-counter")]
fn assert_warm_path_zero_alloc() {
    use rb_sim::alloc_counter::allocations;
    let spec = bench_spec();
    let plan = AllocationPlan::new(vec![32, 16, 8, 4, 4]);
    // Cache off so every predict exercises the full simulation path.
    let sim = bench_sim().with_engine(EngineConfig {
        threads: 1,
        plan_cache: false,
        dag_templates: true,
        ..EngineConfig::default()
    });
    // Warm up: arena high-water marks, the DAG template, stage memos.
    sim.predict(&spec, &plan).unwrap();
    sim.predict(&spec, &plan).unwrap();
    let before = allocations();
    for _ in 0..32 {
        std::hint::black_box(sim.predict(&spec, &plan).unwrap());
    }
    let delta = allocations() - before;
    println!("alloc-counter: warm predict allocations over 32 calls: {delta}");
    assert_eq!(delta, 0, "warm sequential predict must not allocate");

    let sim = bench_sim().with_engine(EngineConfig::default().with_threads(1));
    let plans: Vec<AllocationPlan> = (0..8)
        .map(|i| AllocationPlan::new(vec![32 - 2 * i, 16, 8, 4, 4]))
        .collect();
    for warmup in [0, 1] {
        let _ = warmup;
        for pred in sim.predict_batch(&spec, &plans) {
            pred.unwrap();
        }
    }
    let before = allocations();
    let calls = 16u64;
    for _ in 0..calls {
        for pred in std::hint::black_box(sim.predict_batch(&spec, &plans)) {
            pred.unwrap();
        }
    }
    let delta = allocations() - before;
    println!(
        "alloc-counter: warm all-hit predict_batch allocations over {calls} calls: {delta} (output vector only)"
    );
    assert!(
        delta <= calls,
        "all-hit predict_batch must allocate at most its output vector"
    );
}

#[cfg(not(feature = "alloc-counter"))]
fn assert_warm_path_zero_alloc() {
    println!("alloc-counter: disabled (rebuild with --features alloc-counter to assert)");
}

/// Raw prediction throughput (cache off: every prediction simulates).
fn bench_simulator(smoke: bool) -> String {
    let spec = bench_spec();
    let plan = AllocationPlan::new(vec![32, 16, 8, 4, 4]);
    let n = if smoke { 5 } else { 200 };
    let run = |threads: usize| {
        let sim = bench_sim().with_engine(EngineConfig {
            threads,
            plan_cache: false,
            dag_templates: true,
            ..EngineConfig::default()
        });
        let ms = time_ms(n, || {
            sim.predict(&spec, &plan).unwrap();
        });
        (ms, 1e3 / ms.max(1e-9))
    };
    let (ms_1, per_sec_1) = run(1);
    let auto = auto_threads();
    let (ms_n, per_sec_n) = run(0);
    println!(
        "simulator: predict (uncached, {} samples)",
        bench_sim().config().samples
    );
    println!("  1 thread   : {ms_1:7.3} ms/prediction ({per_sec_1:8.0}/s)");
    println!("  {auto} thread(s): {ms_n:7.3} ms/prediction ({per_sec_n:8.0}/s)");

    format!(
        "{{\n  \"benchmark\": \"predict_uncached\",\n  \"samples\": {},\n  \"predictions\": {},\n  \"threads_1\": {{ \"ms_per_prediction\": {:.4}, \"predictions_per_sec\": {:.0} }},\n  \"threads_auto\": {{ \"threads\": {}, \"ms_per_prediction\": {:.4}, \"predictions_per_sec\": {:.0} }}\n}}\n",
        bench_sim().config().samples,
        n,
        ms_1,
        per_sec_1,
        auto,
        ms_n,
        per_sec_n
    )
}

/// Placement-controller churn (the former placement bench).
fn bench_placement(smoke: bool) {
    let iters = if smoke { 2 } else { 200 };
    let gpn = 4;
    let cluster = ClusterState::with_n_nodes(64, gpn);
    let mut rng = Prng::seed_from_u64(0xBE9C);
    let ms = time_ms(iters, || {
        let mut pc = PlacementController::new();
        for _ in 0..8 {
            let n = 1 + rng.next_below(12) as usize;
            let allocs: BTreeMap<TrialId, u32> = (0..n)
                .map(|i| (TrialId::new(i as u64), 1 + rng.next_below(8) as u32))
                .collect();
            pc.update(&allocs, &cluster).unwrap();
        }
    });
    println!("placement: 8 reallocation rounds : {ms:7.3} ms");
}

/// The executor bench workload: a 16-trial SHA job on exact ResNet-101
/// physics (shared by the executor and tracing-overhead sections).
fn exec_workload() -> (
    rb_hpo::ExperimentSpec,
    AllocationPlan,
    rb_train::TaskModel,
    ModelProfile,
    CloudProfile,
    SearchSpace,
) {
    let task = resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15));
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .build()
        .unwrap();
    let spec = ShaParams::new(16, 1, 20).with_eta(2).generate().unwrap();
    let plan = AllocationPlan::new(vec![16, 8, 4, 4, 4]);
    (spec, plan, task, physics, cloud, space)
}

/// End-to-end event-driven execution (the former executor bench).
fn bench_executor(smoke: bool) {
    let iters = if smoke { 1 } else { 10 };
    let (spec, plan, task, physics, cloud, space) = exec_workload();
    let ms = time_ms(iters, || {
        rubberband::execute(&spec, &plan, &task, &physics, &cloud, &space, 7).unwrap();
    });
    println!("executor : 16-trial SHA run        : {ms:7.3} ms");
}

/// Wall-clock service throughput: a four-job two-tenant workload with
/// the shared instance pool enabled, measured end to end — admission,
/// fair-share dispatch, interleaved stepping, and pool handoffs.
fn bench_serve(smoke: bool) -> String {
    use rb_cloud::PoolConfig;
    use rb_serve::{JobRequest, ServeOptions, TenantSpec, TuningService};

    let iters = if smoke { 1 } else { 10 };
    let jobs = 4usize;
    let (spec, plan, task, physics, cloud, space) = exec_workload();
    let service = TuningService::new(
        vec![TenantSpec::new("alpha", 2.0), TenantSpec::new("beta", 1.0)],
        ServeOptions {
            max_concurrent: 2,
            max_queue: 16,
            pool: Some(PoolConfig::default()),
            pool_admission: false,
        },
    )
    .unwrap();
    let mut handoffs = 0u64;
    let ms = time_ms(iters, || {
        let workload: Vec<JobRequest> = (0..jobs)
            .map(|k| {
                let executor = rb_exec::Executor::new(
                    spec.clone(),
                    plan.clone(),
                    task.clone(),
                    physics.clone(),
                    cloud.clone(),
                )
                .unwrap()
                .with_options(rb_exec::ExecOptions {
                    seed: 7 + k as u64,
                    ..rb_exec::ExecOptions::default()
                });
                JobRequest::new(
                    executor,
                    space.sample_n(16, &mut Prng::seed_from_u64(7 + k as u64)),
                    rb_core::SimTime::ZERO,
                    k % 2,
                )
            })
            .collect();
        let report = service.run(workload).unwrap();
        assert_eq!(report.outcomes.len(), jobs);
        handoffs = report.pool.as_ref().map_or(0, |p| p.handoffs);
    });
    let jobs_per_sec = jobs as f64 / (ms / 1e3).max(1e-9);
    println!("serve    : 4-job multi-tenant run  : {ms:7.3} ms   ({jobs_per_sec:7.1} jobs/s, {handoffs} handoffs)");
    format!(
        "{{\n  \"benchmark\": \"serve_throughput\",\n  \"iters\": {iters},\n  \"jobs\": {jobs},\n  \"tenants\": 2,\n  \"ms_per_run\": {ms:.3},\n  \"jobs_per_sec\": {jobs_per_sec:.1},\n  \"handoffs\": {handoffs}\n}}"
    )
}

/// What recording costs: the executor workload with the default no-op
/// recorder vs a `MemoryRecorder` sink *including* the JSONL export.
/// The no-op path must stay free; the recording path bounds what a user
/// pays for a full trace.
fn bench_tracing(smoke: bool) -> String {
    let iters = if smoke { 1 } else { 10 };
    let (spec, plan, task, physics, cloud, space) = exec_workload();
    let noop_ms = time_ms(iters, || {
        rubberband::execute(&spec, &plan, &task, &physics, &cloud, &space, 7).unwrap();
    });
    let mut events = 0usize;
    let recorded_ms = time_ms(iters, || {
        let obs = rubberband::execute_observed(
            &spec,
            &plan,
            &task,
            &physics,
            &cloud,
            &space,
            rb_exec::ExecOptions {
                seed: 7,
                ..rb_exec::ExecOptions::default()
            },
        )
        .unwrap();
        events = obs.log.events.len();
        std::hint::black_box(rb_obs::export::export_jsonl(&obs.log));
    });
    let overhead = recorded_ms / noop_ms.max(1e-9);
    println!(
        "tracing  : record + JSONL export   : {recorded_ms:7.3} ms   ({overhead:5.2}x no-op, {events} events)"
    );
    format!(
        "{{\n  \"benchmark\": \"tracing_overhead\",\n  \"iters\": {iters},\n  \"noop_recorder_ms\": {noop_ms:.3},\n  \"recording_plus_export_ms\": {recorded_ms:.3},\n  \"overhead_ratio\": {overhead:.3},\n  \"events\": {events}\n}}"
    )
}

/// Closed-loop adaptive execution vs open loop: what the rb-ctrl barrier
/// hook (drift monitoring + mid-job residual re-planning) costs on a run
/// that actually re-plans.
fn bench_exec_adaptive(smoke: bool) -> String {
    let iters = if smoke { 1 } else { 10 };
    let task = resnet101_cifar10();
    let model = ModelProfile::exact_for_task(&task, 1024, 4);
    // Ground truth runs 1.5x slower than the model: drift is guaranteed.
    let mut physics = model.clone();
    physics.scaling = Arc::new(rb_scaling::RescaledScaling::new(
        physics.scaling.clone(),
        1.5,
    ));
    let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15));
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .build()
        .unwrap();
    let spec = ShaParams::new(16, 1, 20).with_eta(2).generate().unwrap();
    let plan = AllocationPlan::new(vec![16, 8, 4, 4, 4]);

    let open_ms = time_ms(iters, || {
        rubberband::execute(&spec, &plan, &task, &physics, &cloud, &space, 7).unwrap();
    });
    // A deadline the slowed open loop misses, so the controller re-plans.
    let open = rubberband::execute(&spec, &plan, &task, &physics, &cloud, &space, 7).unwrap();
    let deadline = SimDuration::from_secs_f64(open.jct.as_secs_f64() * 0.8);
    let config = rb_ctrl::ControllerConfig::default();
    let mut replans = 0usize;
    let adaptive_ms = time_ms(iters, || {
        let r = rubberband::execute_adaptive(
            &spec,
            &plan,
            &task,
            &physics,
            &model,
            &cloud,
            &space,
            deadline,
            rb_exec::ExecOptions {
                seed: 7,
                ..rb_exec::ExecOptions::default()
            },
            &config,
        )
        .unwrap();
        replans = r.adaptation.applied();
    });
    let overhead = adaptive_ms / open_ms.max(1e-9);
    println!("executor : adaptive (rb-ctrl)      : {adaptive_ms:7.3} ms   ({overhead:5.2}x open loop, {replans} replans)");

    format!(
        "{{\n  \"benchmark\": \"execute_adaptive\",\n  \"iters\": {iters},\n  \"open_loop_ms\": {open_ms:.3},\n  \"adaptive_ms\": {adaptive_ms:.3},\n  \"overhead_ratio\": {overhead:.3},\n  \"applied_replans\": {replans}\n}}"
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let churn_only = std::env::args().any(|a| a == "--churn");
    if smoke {
        println!("bench: smoke mode (1 iteration, tiny workloads)");
    }
    assert_warm_path_zero_alloc();
    let planner_json = bench_planner(smoke);
    let churn_json = bench_churn(smoke);
    let planner_file = format!(
        "{{\n\"plan_rubberband\": {},\n\"churn\": {}\n}}\n",
        planner_json.trim_end(),
        churn_json
    );
    std::fs::write("BENCH_planner.json", &planner_file).expect("write BENCH_planner.json");
    if churn_only {
        println!("wrote BENCH_planner.json");
        return;
    }
    let sim_json = bench_simulator(smoke);
    bench_placement(smoke);
    bench_executor(smoke);
    let adaptive_json = bench_exec_adaptive(smoke);
    let serve_json = bench_serve(smoke);
    let tracing_json = bench_tracing(smoke);
    let sim_file = format!(
        "{{\n\"predict_uncached\": {},\n\"exec_adaptive\": {},\n\"serve\": {},\n\"tracing_overhead\": {}\n}}\n",
        sim_json.trim_end(),
        adaptive_json,
        serve_json,
        tracing_json
    );
    std::fs::write("BENCH_sim.json", &sim_file).expect("write BENCH_sim.json");
    println!("wrote BENCH_planner.json, BENCH_sim.json");
}
