//! The shared error type.
//!
//! RubberBand is a library first: fallible operations return [`Result`]
//! rather than panicking, per the Rust API guidelines. Variants are grouped
//! by subsystem so callers can match on the class of failure without parsing
//! strings.

use std::fmt;

/// Convenience alias used across all RubberBand crates.
pub type Result<T, E = RbError> = std::result::Result<T, E>;

/// Errors produced by RubberBand components.
#[derive(Debug, Clone, PartialEq)]
pub enum RbError {
    /// An experiment specification is malformed (empty, non-monotonic
    /// trial counts, zero iterations, ...).
    InvalidSpec(String),
    /// A search-space definition or sampled configuration is invalid.
    InvalidConfig(String),
    /// An allocation plan is structurally invalid for its specification
    /// (wrong length, zero allocation, unfair division, ...).
    InvalidPlan(String),
    /// No feasible plan exists within the time constraint.
    Infeasible {
        /// Human-readable description of the binding constraint.
        reason: String,
    },
    /// The cloud provider could not satisfy a request.
    Provider(String),
    /// The provider had no capacity for a provisioning request. Unlike
    /// [`RbError::Provider`] this is transient: the same request may
    /// succeed on retry.
    Capacity(String),
    /// The placement controller could not place a trial.
    Placement(String),
    /// A runtime invariant was violated during execution.
    Execution(String),
    /// Two jobs disagreed about the ownership of a shared-pool
    /// instance: an instance id already parked by one donor was
    /// offered again by a different job. Accepting it would park one
    /// physical release twice and double-credit the savings ledger.
    PoolConflict(String),
    /// Profiling produced insufficient or inconsistent data.
    Profiling(String),
}

impl fmt::Display for RbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbError::InvalidSpec(m) => write!(f, "invalid experiment spec: {m}"),
            RbError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            RbError::InvalidPlan(m) => write!(f, "invalid allocation plan: {m}"),
            RbError::Infeasible { reason } => write!(f, "no feasible plan: {reason}"),
            RbError::Provider(m) => write!(f, "cloud provider error: {m}"),
            RbError::Capacity(m) => write!(f, "insufficient capacity: {m}"),
            RbError::Placement(m) => write!(f, "placement error: {m}"),
            RbError::Execution(m) => write!(f, "execution error: {m}"),
            RbError::PoolConflict(m) => write!(f, "pool ownership conflict: {m}"),
            RbError::Profiling(m) => write!(f, "profiling error: {m}"),
        }
    }
}

impl std::error::Error for RbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_subsystem_and_message() {
        let e = RbError::InvalidSpec("no stages".into());
        assert_eq!(e.to_string(), "invalid experiment spec: no stages");
        let e = RbError::Infeasible {
            reason: "deadline 1s".into(),
        };
        assert!(e.to_string().contains("deadline 1s"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RbError::Provider("quota".into()));
    }
}
