//! Shared construction helpers for the simulated experiments (§6.1).

use rb_cloud::catalog::P3_8XLARGE;
use rb_cloud::CloudPricing;
use rb_core::{Result, SimDuration};
use rb_hpo::ExperimentSpec;
use rb_planner::{plan_with_policy, PlannerConfig, Policy};
use rb_profile::{CloudProfile, ModelProfile};
use rb_scaling::zoo::RESNET50;
use rb_scaling::AnalyticScaling;
use rb_sim::{Prediction, SimConfig, Simulator};
use std::sync::Arc;

/// The simulated experiments' cloud: on-demand p3.8xlarge with a 15 s
/// provisioning delay and a configurable instance-initialization latency.
pub fn fig_cloud(init_secs: f64) -> CloudProfile {
    CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs_f64(init_secs))
}

/// The "scaling performance of a ResNet-50 model with a batch size of
/// `batch`" (§6.1) with the per-iteration latency pinned to
/// `mean_unit_secs` and straggler noise `noise_std_secs` — how Figs. 9–12
/// define their workloads.
pub fn synthetic_rn50(batch: u32, mean_unit_secs: f64, noise_std_secs: f64) -> ModelProfile {
    let reference = Arc::new(AnalyticScaling::for_arch(&RESNET50, batch, 4));
    ModelProfile::synthetic(
        format!("ResNet-50 bs={batch} sim"),
        reference,
        mean_unit_secs,
        noise_std_secs,
    )
}

/// Plans `spec` under `policy` and returns its prediction, with a
/// benchmark-friendly Monte-Carlo configuration.
///
/// # Errors
///
/// Propagates planner errors (including infeasibility).
pub fn policy_prediction(
    policy: Policy,
    spec: &ExperimentSpec,
    model: &ModelProfile,
    cloud: &CloudProfile,
    deadline: SimDuration,
) -> Result<Prediction> {
    let sim = Simulator::new(model.clone(), cloud.clone()).with_config(SimConfig {
        samples: 10,
        seed: 0xF16,
        sync_overhead_secs: 1.0,
    });
    Ok(plan_with_policy(policy, &sim, spec, deadline, &PlannerConfig::default())?.prediction)
}

/// Formats a mean ± std pair of seconds as `MM:SS ± MM:SS`.
pub fn fmt_time_pm(mean_secs: f64, std_secs: f64) -> String {
    format!(
        "{} ± {}",
        SimDuration::from_secs_f64(mean_secs),
        SimDuration::from_secs_f64(std_secs)
    )
}

/// Formats a mean ± std pair of dollars.
pub fn fmt_cost_pm(mean: f64, std: f64) -> String {
    format!("${mean:.2} ± ${std:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_hpo::ShaParams;
    use rb_scaling::PlacementQuality;

    #[test]
    fn synthetic_model_pins_latency() {
        let m = synthetic_rn50(512, 4.0, 1.0);
        assert!((m.unit_mean_secs(1, PlacementQuality::Packed) - 4.0).abs() < 1e-9);
        assert_eq!(m.scaling.batch_size(), 512);
    }

    #[test]
    fn policy_prediction_runs_for_all_policies() {
        let spec = ShaParams::new(16, 4, 124).generate().unwrap();
        let m = synthetic_rn50(512, 4.0, 1.0);
        let c = fig_cloud(15.0);
        for p in [Policy::Static, Policy::NaiveElastic, Policy::RubberBand] {
            let pred = policy_prediction(p, &spec, &m, &c, SimDuration::from_mins(60)).unwrap();
            assert!(pred.jct > SimDuration::ZERO);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_time_pm(61.0, 1.5), "01:01.000 ± 00:01.500");
        assert_eq!(fmt_cost_pm(15.678, 0.021), "$15.68 ± $0.02");
    }
}
