//! Hyperparameter search: spaces, configurations, and early-stopping
//! experiment specifications.
//!
//! RubberBand optimizes the *execution* of declaratively-specified
//! early-stopping algorithms (§3.1). This crate provides:
//!
//! * [`space`] — search-space definitions and configuration sampling (the
//!   user supplies these; RubberBand is agnostic to how the space is
//!   designed, §2),
//! * [`spec`] — the experiment specification API of Fig. 6: an ordered list
//!   of `(num_trials, iters)` stages, known fully before runtime,
//! * [`sha`] — Successive Halving and Hyperband generators that produce
//!   those specifications, plus the end-of-stage promotion rule.

pub mod grid;
pub mod sha;
pub mod space;
pub mod spec;

pub use grid::{enumerate_grid, linspace, logspace};
pub use sha::{hyperband_brackets, select_survivors, ShaParams};
pub use space::{Config, ConfigValue, Dim, SearchSpace};
pub use spec::{ExperimentSpec, StageSpec};
