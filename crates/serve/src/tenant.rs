//! Tenants and the jobs they submit.

use rb_core::{Cost, RbError, Result, SimTime};
use rb_exec::Executor;
use rb_hpo::Config;

/// One tenant of the tuning service.
///
/// The scheduler divides capacity by **fair share**: when a slot frees,
/// the queued job whose tenant has the lowest `spend ÷ weight` ratio
/// dispatches first. A tenant with weight 2 therefore converges to
/// twice the spend of a tenant with weight 1 under contention. The
/// optional budget is an admission bound: once a tenant's completed
/// spend reaches it, further arrivals are rejected (running jobs are
/// never killed — the sunk cost of a half-finished sweep exceeds the
/// marginal cost of letting it finish).
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (also the key in [`crate::TenantUsage`]).
    pub name: String,
    /// Fair-share weight; must be finite and strictly positive.
    pub weight: f64,
    /// Admission budget: arrivals are rejected once completed spend
    /// reaches this. `None` means unlimited.
    pub budget: Option<Cost>,
}

impl TenantSpec {
    /// A tenant with the given fair-share weight and no budget.
    pub fn new(name: impl Into<String>, weight: f64) -> Self {
        TenantSpec {
            name: name.into(),
            weight,
            budget: None,
        }
    }

    /// Caps the tenant's admitted spend.
    pub fn with_budget(mut self, budget: Cost) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] for a zero, negative, or
    /// non-finite weight (a zero-weight tenant would silently starve:
    /// its share ratio is infinite, so it never wins a dispatch), or a
    /// non-positive budget.
    pub fn validate(&self) -> Result<()> {
        if !self.weight.is_finite() || self.weight <= 0.0 {
            return Err(RbError::InvalidConfig(format!(
                "tenant `{}`: weight must be finite and > 0, got {}",
                self.name, self.weight
            )));
        }
        if let Some(b) = self.budget {
            if b <= Cost::ZERO {
                return Err(RbError::InvalidConfig(format!(
                    "tenant `{}`: budget must be positive, got {b}",
                    self.name
                )));
            }
        }
        Ok(())
    }
}

/// One tuning job submitted to the service: a fully prepared executor
/// (spec + plan + options, seed included), its sampled configurations,
/// the virtual time it arrives, and the tenant submitting it.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The prepared executor (consumed when the job dispatches).
    pub executor: Executor,
    /// Hyperparameter configurations for the initial trials.
    pub configs: Vec<Config>,
    /// Virtual arrival time.
    pub arrival: SimTime,
    /// Index into the service's tenant list.
    pub tenant: usize,
    /// Hyperband bracket index, for jobs submitted as one tenant's
    /// bracket set. Bracket-tagged jobs form a *job group*: their
    /// timelines get a [`rb_obs::Lane::Bracket`] span each, and under
    /// a shared pool the group has affinity for its own barrier-released
    /// capacity — it flows between brackets of the same tenant before
    /// being offered cross-tenant.
    pub bracket: Option<u32>,
}

impl JobRequest {
    /// Bundles a prepared executor into a service submission.
    pub fn new(executor: Executor, configs: Vec<Config>, arrival: SimTime, tenant: usize) -> Self {
        JobRequest {
            executor,
            configs,
            arrival,
            tenant,
            bracket: None,
        }
    }

    /// Tags the job as bracket `bracket` of its tenant's Hyperband job
    /// group.
    pub fn with_bracket(mut self, bracket: u32) -> Self {
        self.bracket = Some(bracket);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_weight_is_a_typed_error() {
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = TenantSpec::new("t", w).validate().unwrap_err();
            assert!(matches!(err, RbError::InvalidConfig(_)), "{w}: {err:?}");
        }
        assert!(TenantSpec::new("t", 0.5).validate().is_ok());
    }

    #[test]
    fn non_positive_budget_is_a_typed_error() {
        let err = TenantSpec::new("t", 1.0)
            .with_budget(Cost::ZERO)
            .validate()
            .unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)), "{err:?}");
        assert!(TenantSpec::new("t", 1.0)
            .with_budget(Cost::from_dollars(5.0))
            .validate()
            .is_ok());
    }
}
