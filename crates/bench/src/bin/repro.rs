//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! Usage:
//!
//! ```text
//! repro <artifact>...        # trace fig4 fig9 fig10 fig11 fig12 table1 table2 table3 table4
//! repro all                  # everything (several minutes in release mode)
//! repro quick                # reduced sweeps for a fast smoke run
//! repro replay               # replay repro_out/trace.jsonl, assert bit-equality
//! repro fleet                # write per-run manifests for the rollup CLI
//! ```

use rb_bench::csv;
use rb_bench::ext;
use rb_bench::figures::{self};
use rb_bench::tables::{self};
use rb_core::SimDuration;
use std::path::{Path, PathBuf};

fn fig4(csv_dir: Option<&Path>) {
    let rows = figures::fig4(&[1, 2, 4, 8, 16]);
    figures::print_fig4(&rows);
    if let Some(dir) = csv_dir {
        csv::export_fig4(dir, &rows).unwrap_or_else(|e| rb_obs::log_error!("repro", "{e}"));
    }
}

fn fig9(quick: bool, csv_dir: Option<&Path>) {
    let sigmas: Vec<f64> = if quick {
        vec![1.0, 4.0, 10.0]
    } else {
        (1..=10).map(f64::from).collect()
    };
    let rows = figures::fig9(&sigmas, SimDuration::from_mins(20));
    figures::print_fig9(&rows);
    if let Some(dir) = csv_dir {
        csv::export_fig9(dir, &rows).unwrap_or_else(|e| rb_obs::log_error!("repro", "{e}"));
    }
}

fn fig10(quick: bool, csv_dir: Option<&Path>) {
    let prices: &[f64] = if quick {
        &[0.0, 0.04, 0.16]
    } else {
        &[0.0, 0.01, 0.02, 0.04, 0.08, 0.16]
    };
    for (name, gb) in [("ImageNet", 150.0), ("CIFAR-10", 0.15)] {
        let rows = figures::fig10(gb, prices, SimDuration::from_mins(20));
        figures::print_fig10(name, gb, &rows);
        if let Some(dir) = csv_dir {
            csv::export_fig10(dir, name, &rows)
                .unwrap_or_else(|e| rb_obs::log_error!("repro", "{e}"));
        }
        println!();
    }
}

fn fig11(quick: bool, csv_dir: Option<&Path>) {
    let ks: &[u32] = if quick {
        &[16, 64, 256]
    } else {
        &[16, 32, 64, 128, 256, 512]
    };
    for (name, key, per_function) in [
        ("pay-per-instance", "per_instance", false),
        ("pay-per-function", "per_function", true),
    ] {
        let rows = figures::fig11(ks, per_function, SimDuration::from_mins(20));
        figures::print_fig11(name, &rows);
        if let Some(dir) = csv_dir {
            csv::export_fig11(dir, key, &rows)
                .unwrap_or_else(|e| rb_obs::log_error!("repro", "{e}"));
        }
        println!();
    }
}

fn fig12(quick: bool, csv_dir: Option<&Path>) {
    let deadlines: Vec<u64> = if quick {
        vec![90, 120, 160]
    } else {
        (9..=16).map(|d| d * 10).collect()
    };
    for init in [1.0, 10.0, 100.0] {
        let rows = figures::fig12(init, &deadlines);
        figures::print_fig12(init, &rows);
        if let Some(dir) = csv_dir {
            csv::export_fig12(dir, init, &rows)
                .unwrap_or_else(|e| rb_obs::log_error!("repro", "{e}"));
        }
        println!();
    }
}

fn seeds(quick: bool) -> Vec<u64> {
    if quick {
        vec![1]
    } else {
        vec![1, 2, 3]
    }
}

fn table1(quick: bool) {
    match tables::table1(&seeds(quick)) {
        Ok(rows) => tables::print_table1(&rows),
        Err(e) => rb_obs::log_error!("repro", "table1 failed: {e}"),
    }
}

fn table2_and_3(quick: bool) {
    let deadlines: &[u64] = &[20, 30, 40];
    match tables::table2(deadlines, &seeds(quick)) {
        Ok(rows) => {
            tables::print_table2(&rows);
            println!();
            match tables::table3(&rows) {
                Some(schedule) => tables::print_table3(&schedule),
                None => rb_obs::log_warn!("repro", "table3: no feasible RubberBand plan"),
            }
        }
        Err(e) => rb_obs::log_error!("repro", "table2 failed: {e}"),
    }
}

fn table4(quick: bool) {
    match tables::table4(&seeds(quick)) {
        Ok(rows) => tables::print_table4(&rows),
        Err(e) => rb_obs::log_error!("repro", "table4 failed: {e}"),
    }
}

fn ext_spot(quick: bool) {
    let rates: &[f64] = if quick {
        &[0.2, 2.0]
    } else {
        &[0.1, 0.2, 0.5, 1.0, 2.0, 4.0]
    };
    match ext::ext_spot(rates, 1) {
        Ok((od, rows)) => ext::print_ext_spot(&od, &rows),
        Err(e) => rb_obs::log_error!("repro", "ext-spot failed: {e}"),
    }
}

fn ext_adapt(quick: bool) {
    use rb_bench::adapt::DriftScenario;
    let (scenarios, rates, thresholds, watchdogs): (Vec<DriftScenario>, &[f64], &[f64], &[bool]) =
        if quick {
            (
                vec![
                    DriftScenario::calm(),
                    DriftScenario::uniform(1.5),
                    DriftScenario::straggler(4, 6.0),
                ],
                &[0.0, 1.0],
                &[1.15],
                &[false, true],
            )
        } else {
            (
                vec![
                    DriftScenario::calm(),
                    DriftScenario::uniform(1.25),
                    DriftScenario::uniform(1.5),
                    DriftScenario::contention(6.0),
                    DriftScenario::straggler(4, 3.0),
                    DriftScenario::straggler(4, 6.0),
                ],
                &[0.0, 0.5, 2.0],
                &[1.1, 1.25],
                &[false, true],
            )
        };
    match rb_bench::adapt::ext_adapt(&scenarios, rates, thresholds, watchdogs, 1) {
        Ok((deadline, rows)) => rb_bench::adapt::print_ext_adapt(deadline, &rows),
        Err(e) => rb_obs::log_error!("repro", "ext-adapt failed: {e}"),
    }
}

fn ext_chaos(_quick: bool) {
    // The default sweep is already one execution pair per fault class;
    // quick and full runs share it.
    let scenarios = rb_bench::chaos::ChaosScenario::default_sweep();
    match rb_bench::chaos::ext_chaos(&scenarios, 1) {
        Ok((deadline, rows)) => rb_bench::chaos::print_ext_chaos(deadline, &rows),
        Err(e) => rb_obs::log_error!("repro", "ext-chaos failed: {e}"),
    }
    // Correlated failure domains ride along: zone outage timing × the
    // controller's executed switch (0 = auto planner threads; rows are
    // thread-count invariant).
    match rb_bench::chaos::ext_chaos_zones(1, 0) {
        Ok((deadline, rows)) => rb_bench::chaos::print_ext_chaos_zones(deadline, &rows),
        Err(e) => rb_obs::log_error!("repro", "ext-chaos zones failed: {e}"),
    }
}

fn ext_serve(quick: bool) {
    let (tenant_counts, gaps): (&[usize], &[u64]) = if quick {
        (&[2], &[0, 300])
    } else {
        (&[1, 2, 3], &[0, 300])
    };
    match rb_bench::serve::ext_serve(tenant_counts, gaps, 1) {
        Ok(cells) => rb_bench::serve::print_ext_serve(&cells),
        Err(e) => rb_obs::log_error!("repro", "ext-serve failed: {e}"),
    }
    match rb_bench::serve::ext_serve_contended(tenant_counts, &[0], 1) {
        Ok(cells) => rb_bench::serve::print_ext_serve_contended(&cells),
        Err(e) => rb_obs::log_error!("repro", "ext-serve contended failed: {e}"),
    }
    match rb_bench::serve::ext_serve_hyperband(1) {
        Ok(cells) => rb_bench::serve::print_ext_serve_hyperband(&cells),
        Err(e) => rb_obs::log_error!("repro", "ext-serve hyperband failed: {e}"),
    }
}

fn ext_budget(quick: bool) {
    let budgets: &[f64] = if quick {
        &[7.0, 20.0]
    } else {
        &[6.5, 7.0, 8.0, 10.0, 15.0, 25.0, 50.0]
    };
    match ext::ext_budget(budgets) {
        Ok(rows) => ext::print_ext_budget(&rows),
        Err(e) => rb_obs::log_error!("repro", "ext-budget failed: {e}"),
    }
}

fn ext_asha(_quick: bool) {
    match ext::ext_asha(20, 1) {
        Ok(rows) => ext::print_ext_asha(20, &rows),
        Err(e) => rb_obs::log_error!("repro", "ext-asha failed: {e}"),
    }
}

fn ext_instances(_quick: bool) {
    match ext::ext_instances(30) {
        Ok(rows) => ext::print_ext_instances(30, &rows),
        Err(e) => rb_obs::log_error!("repro", "ext-instances failed: {e}"),
    }
}

fn ablations() {
    let d = rb_core::SimDuration::from_mins(20);
    match ext::ablation_warm_starts(d) {
        Ok(rows) => ext::print_ablation("warm-start multipliers (SHA(64,4,508), 20 min)", &rows),
        Err(e) => rb_obs::log_error!("repro", "ablation failed: {e}"),
    }
    println!();
    match ext::ablation_instance_jump(d) {
        Ok(rows) => ext::print_ablation(
            "instance-boundary jump candidate (SHA(512,4,508), 20 min)",
            &rows,
        ),
        Err(e) => rb_obs::log_error!("repro", "ablation failed: {e}"),
    }
    println!();
    match ext::ablation_mc_samples(d) {
        Ok(rows) => ext::print_ablation(
            "Monte-Carlo samples vs plan quality (scored at 200 samples)",
            &rows,
        ),
        Err(e) => rb_obs::log_error!("repro", "ablation failed: {e}"),
    }
    println!();
    match ext::ablation_warm_pool(1) {
        Ok(rows) => ext::print_warm_pool(&rows),
        Err(e) => rb_obs::log_error!("repro", "ablation failed: {e}"),
    }
}

fn replay_artifact() {
    // Replay closure: rebuild the run from repro_out/trace.jsonl ALONE
    // (no planner, no simulator), then check bit-equality against a
    // fresh live run at the trace seed.
    let path = Path::new("repro_out").join("trace.jsonl");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            rb_obs::log_error!("repro", "replay: cannot read {}: {e}", path.display());
            rb_obs::log_error!("repro", "replay: run `repro trace` first");
            std::process::exit(1);
        }
    };
    let replayed = match rb_replay::replay_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            rb_obs::log_error!("repro", "replay: {e}");
            std::process::exit(1);
        }
    };
    let live = match rb_bench::trace::run_trace(1) {
        Ok(art) => art,
        Err(e) => {
            rb_obs::log_error!("repro", "replay: live reference run failed: {e}");
            std::process::exit(1);
        }
    };
    let report_ok = format!("{:?}", replayed.report) == format!("{:?}", live.report);
    let summary_ok = replayed.summary.render() == live.summary.render();
    if !report_ok || !summary_ok {
        rb_obs::log_error!(
            "repro",
            "replay: MISMATCH vs live run (report {}, summary {})",
            if report_ok { "ok" } else { "differs" },
            if summary_ok { "ok" } else { "differs" }
        );
        std::process::exit(1);
    }
    println!(
        "replay: repro_out/trace.jsonl reproduces the live run bit-for-bit \
         ({} stages, {} trace events; report ok, summary ok)\n",
        replayed.report.stages.len(),
        replayed.report.trace.events.len()
    );
    // The summary goes last, mirroring `repro trace`: scripts/verify.sh
    // diffs `run summary:` to end-of-output for both artifacts.
    print!("{}", replayed.summary.render());
}

fn fleet_artifact(seed: u64) {
    match rb_bench::fleet::build_fleet(seed) {
        Ok(records) => {
            let dir = Path::new("repro_out").join("fleet");
            match rb_bench::fleet::write_fleet(&dir, &records) {
                Ok(n) => {
                    let sweeps: std::collections::BTreeSet<&str> =
                        records.iter().map(|r| r.sweep.as_str()).collect();
                    println!(
                        "fleet: wrote {n} run manifests across {} sweeps under repro_out/fleet/",
                        sweeps.len()
                    );
                    println!("fleet: aggregate with `rollup repro_out/fleet`");
                }
                Err(e) => rb_obs::log_error!("repro", "fleet: writing manifests failed: {e}"),
            }
        }
        Err(e) => rb_obs::log_error!("repro", "fleet failed: {e}"),
    }
}

fn trace_artifact() {
    match rb_bench::trace::run_trace(1) {
        Ok(art) => {
            let dir = Path::new("repro_out");
            match rb_bench::trace::write_artifacts(dir, &art) {
                Ok(()) => {
                    println!(
                        "trace: wrote repro_out/trace.jsonl ({} events, {} counters, {} histograms; schema ok)",
                        art.jsonl_stats.events, art.jsonl_stats.counters, art.jsonl_stats.histograms
                    );
                    println!(
                        "trace: wrote repro_out/trace.chrome.json (load in Perfetto or chrome://tracing)"
                    );
                }
                Err(e) => rb_obs::log_error!("repro", "trace: writing artifacts failed: {e}"),
            }
            println!(
                "trace: {} preemptions absorbed, {} replans applied\n",
                art.report.preemptions, art.replans
            );
            // The summary goes last: scripts/verify.sh extracts it from
            // `run summary:` to end-of-output and diffs it against
            // scripts/expected_summary.txt.
            print!("{}", art.summary.render());
        }
        Err(e) => rb_obs::log_error!("repro", "trace failed: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: repro [quick] [--csv] <trace|replay|fleet|fig4|fig9|fig10|fig11|fig12|table1|table2|table3|table4|ext-spot|ext-budget|ext-asha|ext-instances|ext-adapt|ext-chaos|ext-serve|ablations|all>..."
        );
        std::process::exit(2);
    }
    let quick = args.iter().any(|a| a == "quick");
    let csv_dir: Option<PathBuf> = args
        .iter()
        .any(|a| a == "--csv")
        .then(|| PathBuf::from("repro_out"));
    let mut artifacts: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|&a| a != "quick" && a != "--csv")
        .collect();
    if artifacts.is_empty() || artifacts.contains(&"all") {
        artifacts = vec![
            "fig4",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "table1",
            "table2",
            "table4",
            "ext-spot",
            "ext-budget",
            "ext-asha",
            "ext-instances",
            "ext-adapt",
            "ext-chaos",
            "ext-serve",
            "ablations",
            "trace",
        ];
    }
    for (i, artifact) in artifacts.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(72));
        }
        match *artifact {
            "fig4" => fig4(csv_dir.as_deref()),
            "fig9" => fig9(quick, csv_dir.as_deref()),
            "fig10" => fig10(quick, csv_dir.as_deref()),
            "fig11" => fig11(quick, csv_dir.as_deref()),
            "fig12" => fig12(quick, csv_dir.as_deref()),
            "table1" => table1(quick),
            "table2" | "table3" => table2_and_3(quick),
            "table4" => table4(quick),
            "ext-spot" => ext_spot(quick),
            "ext-budget" => ext_budget(quick),
            "ext-asha" => ext_asha(quick),
            "ext-instances" => ext_instances(quick),
            "ext-adapt" => ext_adapt(quick),
            "ext-chaos" => ext_chaos(quick),
            "ext-serve" => ext_serve(quick),
            "ablations" => ablations(),
            "trace" => trace_artifact(),
            "replay" => replay_artifact(),
            "fleet" => fleet_artifact(1),
            other => {
                eprintln!("unknown artifact `{other}`");
                std::process::exit(2);
            }
        }
    }
}
