//! Deterministic fault injection for the cloud/executor stack.
//!
//! The paper assumes the cloud behaves (§3): provisioning always
//! succeeds, instances only die through the spot market, and storage is
//! infallible. Real tuning frameworks treat worker loss and resource
//! shortfall as first-class failures, so this module injects them — in
//! virtual time, seeded exactly like the spot-interruption stream, so a
//! chaotic run is as bit-reproducible as a calm one.
//!
//! A [`FaultPlan`] declares *what* can go wrong; a [`FaultInjector`]
//! decides *when*, using counter-based streams ([`Prng::for_stream`])
//! keyed by request index or instance id, so every decision is a pure
//! function of `(seed, entity index)` and never of polling cadence.
//! The cardinal invariant: with no plan attached (or an inactive one)
//! the injector draws **zero** samples and the run is bit-identical to
//! an uninjected run.
//!
//! Fault taxonomy (each independently configurable):
//!
//! * **insufficient capacity** — a provisioning request is denied
//!   outright ([`rb_core::RbError::Capacity`]); retryable;
//! * **provisioning stragglers** — an instance's hand-over delay is
//!   multiplied by a large factor (a hung request, bounded only by the
//!   caller's patience);
//! * **hardware failure** — a running instance dies at a sampled
//!   instant even on on-demand capacity (non-spot);
//! * **degraded node** — an instance runs, but slower than its shape
//!   promises;
//! * **checkpoint corruption** — consumed by `rb-train`'s checkpoint
//!   store: a saved generation fails verification on the next read.

use rb_core::{mix_seed, Distribution, InstanceId, Prng, RbError, Result};

/// Declarative fault model: probabilities and severities for each fault
/// class. [`FaultPlan::none`] (also `Default`) disables everything.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability that an entire provisioning request is denied with
    /// an insufficient-capacity error.
    pub capacity_failure_prob: f64,
    /// Probability that a provisioned instance straggles: its hand-over
    /// delay is multiplied by [`FaultPlan::straggler_factor`].
    pub straggler_prob: f64,
    /// Hand-over delay multiplier for stragglers (≥ 1).
    pub straggler_factor: f64,
    /// Non-spot hardware failure rate per instance-hour on running
    /// instances (Poisson, like spot interruptions but independent of
    /// the market).
    pub hw_failure_rate_per_hour: f64,
    /// Probability that a provisioned instance is degraded (slow).
    pub degraded_prob: f64,
    /// Work-unit latency multiplier on a degraded node (≥ 1).
    pub degraded_factor: f64,
    /// Probability that a saved checkpoint generation is corrupted in
    /// storage and fails verification on the next read. Consumed by the
    /// checkpoint store, not the provider.
    pub checkpoint_corruption_prob: f64,
}

impl FaultPlan {
    /// The empty plan: no faults, and — by the injector's contract —
    /// zero random draws.
    pub fn none() -> Self {
        FaultPlan {
            capacity_failure_prob: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
            hw_failure_rate_per_hour: 0.0,
            degraded_prob: 0.0,
            degraded_factor: 1.0,
            checkpoint_corruption_prob: 0.0,
        }
    }

    /// Whether any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.capacity_failure_prob > 0.0
            || self.straggler_prob > 0.0
            || self.hw_failure_rate_per_hour > 0.0
            || self.degraded_prob > 0.0
            || self.checkpoint_corruption_prob > 0.0
    }

    /// Checks the plan's parameters: probabilities in `[0, 1]`, factors
    /// at least 1, rates finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidConfig`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<()> {
        let prob = |name: &str, p: f64| -> Result<()> {
            if !(0.0..=1.0).contains(&p) {
                return Err(RbError::InvalidConfig(format!(
                    "fault plan: {name} must be a probability in [0, 1], got {p}"
                )));
            }
            Ok(())
        };
        prob("capacity_failure_prob", self.capacity_failure_prob)?;
        prob("straggler_prob", self.straggler_prob)?;
        prob("degraded_prob", self.degraded_prob)?;
        prob(
            "checkpoint_corruption_prob",
            self.checkpoint_corruption_prob,
        )?;
        if !self.straggler_factor.is_finite() || self.straggler_factor < 1.0 {
            return Err(RbError::InvalidConfig(format!(
                "fault plan: straggler_factor must be finite and >= 1, got {}",
                self.straggler_factor
            )));
        }
        if !self.degraded_factor.is_finite() || self.degraded_factor < 1.0 {
            return Err(RbError::InvalidConfig(format!(
                "fault plan: degraded_factor must be finite and >= 1, got {}",
                self.degraded_factor
            )));
        }
        if !self.hw_failure_rate_per_hour.is_finite() || self.hw_failure_rate_per_hour < 0.0 {
            return Err(RbError::InvalidConfig(format!(
                "fault plan: hw_failure_rate_per_hour must be finite and non-negative, got {}",
                self.hw_failure_rate_per_hour
            )));
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Per-instance fault assignment decided at provisioning time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceFaults {
    /// Hand-over delay multiplier (1.0 = healthy).
    pub delay_factor: f64,
    /// Work-unit latency multiplier (1.0 = healthy).
    pub slowdown: f64,
    /// Hours of running time until a hardware failure, if one is
    /// scheduled.
    pub fail_after_hours: Option<f64>,
}

impl InstanceFaults {
    /// A healthy instance: no delay inflation, no slowdown, no failure.
    pub fn healthy() -> Self {
        InstanceFaults {
            delay_factor: 1.0,
            slowdown: 1.0,
            fail_after_hours: None,
        }
    }
}

/// Running totals of faults actually injected, for the recovery rollup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Provisioning requests denied for capacity.
    pub capacity_failures: u64,
    /// Instances whose hand-over was straggler-inflated.
    pub stragglers: u64,
    /// Hardware failures that actually struck a running instance.
    pub hw_failures: u64,
    /// Instances provisioned degraded.
    pub degraded_nodes: u64,
}

impl FaultCounts {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.capacity_failures + self.stragglers + self.hw_failures + self.degraded_nodes
    }
}

/// The runtime half of the fault layer: seeded decision streams plus
/// injection tallies. Owned by the provider (and, for checkpoint
/// corruption, mirrored into the checkpoint store's seed).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-request capacity decisions: stream index = request counter.
    capacity_seed: u64,
    /// Per-instance straggler/degraded decisions: stream index =
    /// instance id.
    node_seed: u64,
    /// Per-instance hardware-failure instants: stream index = instance
    /// id (a separate family so enabling one fault class never shifts
    /// another's draws).
    hw_seed: u64,
    requests: u64,
    counts: FaultCounts,
}

impl FaultInjector {
    /// Creates an injector for `plan`, deriving independent stream
    /// families from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        FaultInjector {
            plan,
            capacity_seed: mix_seed(seed, 0xCAFA_C171),
            node_seed: mix_seed(seed, 0x0DE6_4ADE),
            hw_seed: mix_seed(seed, 0x4A4D_FA11),
            requests: 0,
            counts: FaultCounts::default(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides whether the next provisioning request is denied for
    /// capacity. Consumes one request index either way, so a denied
    /// request and its retry see independent draws regardless of what
    /// happens in between.
    pub fn capacity_fault(&mut self) -> bool {
        let k = self.requests;
        self.requests += 1;
        if self.plan.capacity_failure_prob <= 0.0 {
            return false;
        }
        let denied =
            Prng::for_stream(self.capacity_seed, k).next_f64() < self.plan.capacity_failure_prob;
        if denied {
            self.counts.capacity_failures += 1;
        }
        denied
    }

    /// Decides the fault assignment of a freshly provisioned instance.
    /// Pure in `(seed, id)`: the same instance index gets the same
    /// faults in every run, independent of request batching.
    pub fn instance_faults(&mut self, id: InstanceId) -> InstanceFaults {
        let mut out = InstanceFaults::healthy();
        if self.plan.straggler_prob > 0.0 || self.plan.degraded_prob > 0.0 {
            let mut rng = Prng::for_stream(self.node_seed, id.raw());
            // Fixed draw order (straggler, then degraded) keeps each
            // class's decisions stable when the other is toggled off —
            // both draws happen whenever either class is active.
            let s = rng.next_f64();
            let d = rng.next_f64();
            if s < self.plan.straggler_prob {
                out.delay_factor = self.plan.straggler_factor;
                self.counts.stragglers += 1;
            }
            if d < self.plan.degraded_prob {
                out.slowdown = self.plan.degraded_factor;
                self.counts.degraded_nodes += 1;
            }
        }
        if self.plan.hw_failure_rate_per_hour > 0.0 {
            let mut rng = Prng::for_stream(self.hw_seed, id.raw());
            out.fail_after_hours = Some(
                Distribution::Exponential {
                    rate: self.plan.hw_failure_rate_per_hour,
                }
                .sample(&mut rng),
            );
        }
        out
    }

    /// Records that a scheduled hardware failure actually struck.
    pub fn note_hw_failure(&mut self) {
        self.counts.hw_failures += 1;
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stormy() -> FaultPlan {
        FaultPlan {
            capacity_failure_prob: 0.5,
            straggler_prob: 0.3,
            straggler_factor: 40.0,
            hw_failure_rate_per_hour: 2.0,
            degraded_prob: 0.25,
            degraded_factor: 1.8,
            checkpoint_corruption_prob: 0.2,
        }
    }

    #[test]
    fn empty_plan_is_inactive_and_draws_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert_eq!(plan, FaultPlan::default());
        let mut inj = FaultInjector::new(plan, 7);
        for _ in 0..100 {
            assert!(!inj.capacity_fault());
        }
        for i in 0..100 {
            assert_eq!(
                inj.instance_faults(InstanceId::new(i)),
                InstanceFaults::healthy()
            );
        }
        assert_eq!(inj.counts(), FaultCounts::default());
    }

    #[test]
    fn plan_validation_rejects_garbage() {
        let cases: Vec<(&str, FaultPlan)> = vec![
            (
                "prob > 1",
                FaultPlan {
                    capacity_failure_prob: 1.5,
                    ..FaultPlan::none()
                },
            ),
            (
                "negative prob",
                FaultPlan {
                    straggler_prob: -0.1,
                    ..FaultPlan::none()
                },
            ),
            (
                "nan prob",
                FaultPlan {
                    checkpoint_corruption_prob: f64::NAN,
                    ..FaultPlan::none()
                },
            ),
            (
                "factor < 1",
                FaultPlan {
                    straggler_factor: 0.5,
                    ..FaultPlan::none()
                },
            ),
            (
                "infinite factor",
                FaultPlan {
                    degraded_factor: f64::INFINITY,
                    ..FaultPlan::none()
                },
            ),
            (
                "negative rate",
                FaultPlan {
                    hw_failure_rate_per_hour: -2.0,
                    ..FaultPlan::none()
                },
            ),
        ];
        for (what, plan) in cases {
            let err = plan.validate().expect_err(what);
            assert!(matches!(err, RbError::InvalidConfig(_)), "{what}: {err:?}");
        }
        assert!(stormy().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn injector_rejects_invalid_plans() {
        let _ = FaultInjector::new(
            FaultPlan {
                capacity_failure_prob: 2.0,
                ..FaultPlan::none()
            },
            1,
        );
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_entity() {
        let mut a = FaultInjector::new(stormy(), 42);
        let mut b = FaultInjector::new(stormy(), 42);
        for _ in 0..50 {
            assert_eq!(a.capacity_fault(), b.capacity_fault());
        }
        for i in 0..50 {
            assert_eq!(
                a.instance_faults(InstanceId::new(i)),
                b.instance_faults(InstanceId::new(i))
            );
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0, "a stormy plan injects something");
    }

    #[test]
    fn instance_decisions_are_independent_of_query_order() {
        // Instance 5's faults are the same whether or not instances
        // 0..4 were asked about first — the counter-based seeding the
        // spot stream already uses.
        let mut ordered = FaultInjector::new(stormy(), 9);
        for i in 0..5 {
            let _ = ordered.instance_faults(InstanceId::new(i));
        }
        let via_order = ordered.instance_faults(InstanceId::new(5));
        let mut direct = FaultInjector::new(stormy(), 9);
        assert_eq!(direct.instance_faults(InstanceId::new(5)), via_order);
    }

    #[test]
    fn toggling_one_class_does_not_shift_another() {
        // Disabling hardware failures must not change which instances
        // straggle: the families are seeded independently.
        let mut with_hw = FaultInjector::new(stormy(), 11);
        let mut without_hw = FaultInjector::new(
            FaultPlan {
                hw_failure_rate_per_hour: 0.0,
                ..stormy()
            },
            11,
        );
        for i in 0..64 {
            let a = with_hw.instance_faults(InstanceId::new(i));
            let b = without_hw.instance_faults(InstanceId::new(i));
            assert_eq!(a.delay_factor, b.delay_factor, "instance {i}");
            assert_eq!(a.slowdown, b.slowdown, "instance {i}");
            assert!(b.fail_after_hours.is_none());
        }
    }

    #[test]
    fn fault_rates_roughly_match_probabilities() {
        let mut inj = FaultInjector::new(stormy(), 3);
        let n = 2000u64;
        for _ in 0..n {
            let _ = inj.capacity_fault();
        }
        for i in 0..n {
            let _ = inj.instance_faults(InstanceId::new(i));
        }
        let c = inj.counts();
        let frac = |x: u64| x as f64 / n as f64;
        assert!((frac(c.capacity_failures) - 0.5).abs() < 0.05);
        assert!((frac(c.stragglers) - 0.3).abs() < 0.05);
        assert!((frac(c.degraded_nodes) - 0.25).abs() < 0.05);
    }
}
