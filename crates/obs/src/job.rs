//! Job-scoped lane remapping for multi-job traces.
//!
//! A multi-tenant service (`rb-serve`) interleaves many executors in
//! one discrete-event loop, all reporting into one recorder. Without
//! remapping their traces collide: every job has a trial 0, a node 0,
//! a stage 0, and a `Global` run span. [`JobScopedRecorder`] wraps the
//! shared sink and rewrites lanes so each job's timeline stays
//! separable:
//!
//! * `Global` → `Job(j)` — the job's own lane (pid 5 in the Chrome
//!   export), so run spans and barriers from different jobs sit on
//!   different rows;
//! * `Trial(t)` → `Trial(j·stride + t)` and `Node(n)` →
//!   `Node(j·stride + n)` — disjoint id ranges per job;
//! * `Stage(s)` → `Stage(j·stride + s)` and `Bracket(b)` →
//!   `Bracket(j·stride + b)` — likewise;
//! * `Cloud`, `Controller`, `Planner` stay shared: they are genuinely
//!   global subsystems (the pool handoff events on the cloud lane are
//!   exactly the cross-job story the trace should show in one place).
//!
//! Explicit span ids get the same treatment: each job numbers its spans
//! from 0 with its own [`crate::recorder::SpanTracker`], so ids are
//! offset by `j·stride` to stay unique in the shared stream (the JSONL
//! schema rejects reused span ids).
//!
//! Counters and histograms pass through unscoped — they are already
//! order-insensitive aggregates.
//!
//! Like every recorder, this wrapper only *receives* data; it consumes
//! no randomness and cannot perturb the run it observes.

use crate::recorder::{Event, EventKind, Lane, Recorder, SpanId};
use std::fmt;
use std::sync::Arc;

/// Default id stride between jobs' trial/node/stage lanes. Wide enough
/// that no realistic job overflows into its neighbor's range.
pub const JOB_LANE_STRIDE: u64 = 1_000_000;

/// A [`Recorder`] adapter that prefixes every lane with a job identity.
pub struct JobScopedRecorder {
    inner: Arc<dyn Recorder>,
    job: u64,
    stride: u64,
}

impl JobScopedRecorder {
    /// Wraps `inner`, scoping lanes to `job` with the default stride.
    pub fn new(inner: Arc<dyn Recorder>, job: u64) -> Self {
        JobScopedRecorder {
            inner,
            job,
            stride: JOB_LANE_STRIDE,
        }
    }

    /// Overrides the id stride (tests use small strides for readable
    /// assertions).
    pub fn with_stride(mut self, stride: u64) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// The job this recorder scopes to.
    pub fn job(&self) -> u64 {
        self.job
    }

    fn remap(&self, lane: Lane) -> Lane {
        let base = self.job * self.stride;
        match lane {
            Lane::Global => Lane::Job(self.job),
            Lane::Trial(t) => Lane::Trial(base + t),
            Lane::Node(n) => Lane::Node(base + n),
            Lane::Stage(s) => Lane::Stage((base as u32).saturating_add(s)),
            Lane::Bracket(b) => Lane::Bracket((base as u32).saturating_add(b)),
            shared => shared,
        }
    }

    fn remap_span(&self, span: SpanId) -> SpanId {
        SpanId(self.job * self.stride + span.0)
    }
}

impl fmt::Debug for JobScopedRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JobScopedRecorder(job {})", self.job)
    }
}

impl Recorder for JobScopedRecorder {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&self, mut event: Event) {
        event.lane = self.remap(event.lane);
        match &mut event.kind {
            EventKind::SpanStart { span, parent } => {
                *span = self.remap_span(*span);
                *parent = parent.map(|p| self.remap_span(p));
            }
            EventKind::SpanEnd { span } => *span = self.remap_span(*span),
            _ => {}
        }
        self.inner.record(event);
    }

    fn counter_add(&self, scope: &'static str, name: &'static str, delta: u64) {
        self.inner.counter_add(scope, name, delta);
    }

    fn histogram(&self, scope: &'static str, name: &'static str, value: f64) {
        self.inner.histogram(scope, name, value);
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryRecorder;
    use rb_core::SimTime;

    #[test]
    fn lanes_are_scoped_per_job() {
        let shared = Arc::new(MemoryRecorder::new());
        let j0 = JobScopedRecorder::new(shared.clone(), 0).with_stride(100);
        let j3 = JobScopedRecorder::new(shared.clone(), 3).with_stride(100);
        j0.instant(SimTime::ZERO, "exec", "e", Lane::Global, Vec::new());
        j0.instant(SimTime::ZERO, "exec", "e", Lane::Trial(7), Vec::new());
        j3.instant(SimTime::ZERO, "exec", "e", Lane::Global, Vec::new());
        j3.instant(SimTime::ZERO, "exec", "e", Lane::Trial(7), Vec::new());
        j3.instant(SimTime::ZERO, "exec", "e", Lane::Node(2), Vec::new());
        j3.instant(SimTime::ZERO, "exec", "e", Lane::Stage(1), Vec::new());
        j3.instant(SimTime::ZERO, "cloud", "e", Lane::Cloud, Vec::new());
        let log = shared.finish();
        let lanes: Vec<Lane> = log.events.iter().map(|e| e.lane).collect();
        assert_eq!(
            lanes,
            vec![
                Lane::Job(0),
                Lane::Trial(7),
                Lane::Job(3),
                Lane::Trial(307),
                Lane::Node(302),
                Lane::Stage(301),
                Lane::Cloud,
            ]
        );
    }

    #[test]
    fn span_ids_are_scoped_per_job() {
        use crate::recorder::SpanTracker;
        let shared = Arc::new(MemoryRecorder::new());
        let j0 = JobScopedRecorder::new(shared.clone(), 0).with_stride(100);
        let j3 = JobScopedRecorder::new(shared.clone(), 3).with_stride(100);
        for rec in [&j0, &j3] {
            let mut spans = SpanTracker::new();
            let (run, _) = spans.open();
            rec.span_start(
                SimTime::ZERO,
                "exec",
                "run",
                Lane::Global,
                run,
                None,
                vec![],
            );
            let (stage, parent) = spans.open();
            rec.span_start(
                SimTime::ZERO,
                "exec",
                "stage",
                Lane::Stage(0),
                stage,
                parent,
                vec![],
            );
        }
        let log = shared.finish();
        let ids: Vec<_> = log
            .events
            .iter()
            .map(|e| match e.kind {
                crate::recorder::EventKind::SpanStart { span, parent } => (span, parent),
                _ => panic!("span starts only"),
            })
            .collect();
        assert_eq!(
            ids,
            vec![
                (SpanId(0), None),
                (SpanId(1), Some(SpanId(0))),
                (SpanId(300), None),
                (SpanId(301), Some(SpanId(300))),
            ]
        );
    }

    #[test]
    fn counters_pass_through_unscoped() {
        let shared = Arc::new(MemoryRecorder::new());
        let j1 = JobScopedRecorder::new(shared.clone(), 1);
        let j2 = JobScopedRecorder::new(shared.clone(), 2);
        j1.counter_add("exec", "migrations", 2);
        j2.counter_add("exec", "migrations", 3);
        let log = shared.finish();
        let c = log
            .counters
            .iter()
            .find(|c| c.name == "migrations")
            .unwrap();
        assert_eq!(c.value, 5);
    }

    #[test]
    fn disabled_inner_stays_disabled() {
        let rec = JobScopedRecorder::new(Arc::new(crate::recorder::NoopRecorder), 4);
        assert!(!rec.enabled());
        assert_eq!(format!("{rec:?}"), "JobScopedRecorder(job 4)");
    }
}
