//! A multi-tenant tuning service: two teams share one cluster budget,
//! their jobs interleaved by the fair-share scheduler, with a shared
//! elastic instance pool handing capacity released at one job's barrier
//! straight to the next job — and the same workload re-run with the
//! pool disabled to show what the handoffs are worth.
//!
//! Run with: `cargo run --release --example multi_tenant_serve`

use rubberband::prelude::*;
use rubberband::rb_cloud::catalog::P3_8XLARGE;
use rubberband::rb_cloud::PoolConfig;
use rubberband::rb_hpo::{Dim, ShaParams};
use rubberband::rb_serve;
use rubberband::rb_train::task::resnet50_cifar10;
use rubberband::ServeWorkload;

fn main() {
    // An SHA(n=8, r=1, R=8) sweep per job, ResNet-50 physics, paid
    // ingress (100 GB dataset at $0.02/GB) so warm handoffs have real
    // dollar value.
    let spec = ShaParams::new(8, 1, 8).generate().unwrap();
    let task = resnet50_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 512, 4);
    let cloud = CloudProfile::new(
        CloudPricing::on_demand(P3_8XLARGE).with_data_price(Cost::from_dollars(0.02)),
    )
    .with_provision_delay(SimDuration::from_secs(15))
    .with_init_latency(SimDuration::from_secs(15))
    .with_dataset_gb(100.0);
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .build()
        .unwrap();

    // Research gets twice prod's fair share; prod has a hard budget.
    let workload = ServeWorkload {
        tenants: vec![
            rb_serve::TenantSpec::new("research", 2.0),
            rb_serve::TenantSpec::new("prod", 1.0).with_budget(Cost::from_dollars(500.0)),
        ],
        jobs_per_tenant: 3,
        mean_interarrival_secs: 300.0,
        seed: 42,
    };
    let deadline = SimDuration::from_hours(2);

    for (label, pool) in [
        ("pool off", None),
        ("pool on ", Some(PoolConfig::default())),
    ] {
        let options = rb_serve::ServeOptions {
            max_concurrent: 2,
            max_queue: 16,
            pool,
            pool_admission: false,
        };
        let report = rubberband::serve(
            &workload, &spec, &task, &physics, &cloud, &space, deadline, &options,
        )
        .unwrap();
        println!("=== {label} ===");
        print!("{}", report.render());
        println!();
    }
}
