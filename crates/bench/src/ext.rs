//! Extension experiments and design-choice ablations.
//!
//! These go beyond the paper's evaluation:
//!
//! * [`ext_spot`] — pre-emptible (spot) capacity, which §2.2 identifies
//!   and defers: how interruption rates trade the 70% price discount
//!   against lost work and re-provisioning.
//! * [`ext_budget`] — the dual problem of §2's footnote 1: minimum JCT
//!   under a cost budget.
//! * [`ablation_warm_starts`] — how many warm-start multipliers the
//!   greedy planner needs (§4.3 suggests "1x, 2x, 3x").
//! * [`ablation_instance_jump`] — the instance-boundary jump candidate
//!   that keeps the fair ladder from stalling on fragmentation plateaus.
//! * [`ablation_mc_samples`] — Monte-Carlo sample count versus plan
//!   quality, the planning-speed/accuracy trade-off §5 describes.

use crate::common::{fig_cloud, synthetic_rn50};
use crate::tables::{e2e_cloud, physics_for, profiled_model, search_space};
use rb_core::{Cost, Prng, Result, SimDuration};
use rb_exec::{run_asha, AshaConfig, ExecOptions, Executor};
use rb_hpo::ShaParams;
use rb_planner::{plan_min_jct, plan_rubberband, BudgetPlannerConfig, PlannerConfig};
use rb_sim::{SimConfig, Simulator};

/// One spot-rate setting's executed outcome.
#[derive(Debug, Clone)]
pub struct SpotRow {
    /// Interruptions per instance-hour (0 = on-demand reliability).
    pub rate_per_hour: f64,
    /// Executed cost in dollars.
    pub cost: f64,
    /// Executed JCT in seconds.
    pub jct_secs: f64,
    /// Interruptions absorbed.
    pub preemptions: u32,
}

/// Spot extension: execute the Table 2 RubberBand plan on spot capacity
/// across interruption rates, plus the on-demand reference.
///
/// # Errors
///
/// Propagates planner/executor errors.
pub fn ext_spot(rates: &[f64], seed: u64) -> Result<(SpotRow, Vec<SpotRow>)> {
    let task = rb_train::task::resnet101_cifar10();
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate()?;
    let model = profiled_model(&task, 1024, 4, 32);
    let physics = physics_for(&task, 1024, 4);
    let space = search_space();
    let sim = Simulator::new(model, e2e_cloud());
    let out = plan_rubberband(
        &sim,
        &spec,
        SimDuration::from_mins(30),
        &PlannerConfig::default(),
    )?;
    let run = |spot: bool, rate: f64| -> Result<SpotRow> {
        let mut cloud = e2e_cloud().with_spot_interruptions(rate);
        if spot {
            cloud.pricing = cloud.pricing.with_spot();
        }
        let report = Executor::new(
            spec.clone(),
            out.plan.clone(),
            task.clone(),
            physics.clone(),
            cloud,
        )?
        .with_options(ExecOptions {
            seed,
            ..ExecOptions::default()
        })
        .run(&space.sample_n(32, &mut Prng::seed_from_u64(seed)))?;
        Ok(SpotRow {
            rate_per_hour: rate,
            cost: report.total_cost().as_dollars(),
            jct_secs: report.jct.as_secs_f64(),
            preemptions: report.preemptions,
        })
    };
    let on_demand = run(false, 0.0)?;
    let spot_rows = rates
        .iter()
        .map(|&r| run(true, r))
        .collect::<Result<Vec<_>>>()?;
    Ok((on_demand, spot_rows))
}

/// Renders the spot extension.
pub fn print_ext_spot(on_demand: &SpotRow, rows: &[SpotRow]) {
    println!("Extension — spot capacity under interruptions");
    println!("(Table 2 workload, RubberBand plan, spot = 30% of on-demand price)\n");
    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "capacity", "JCT", "cost", "preemptions"
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "on-demand",
        SimDuration::from_secs_f64(on_demand.jct_secs).to_string(),
        format!("${:.2}", on_demand.cost),
        on_demand.preemptions
    );
    for r in rows {
        println!(
            "{:<22} {:>10} {:>12} {:>12}",
            format!("spot @ {:.1}/h", r.rate_per_hour),
            SimDuration::from_secs_f64(r.jct_secs).to_string(),
            format!("${:.2}", r.cost),
            r.preemptions
        );
    }
}

/// One budget setting's outcome for the dual problem.
#[derive(Debug, Clone)]
pub struct BudgetRow {
    /// The cost budget in dollars.
    pub budget: f64,
    /// Predicted JCT in seconds of the min-JCT plan.
    pub jct_secs: f64,
    /// Predicted cost of the chosen plan.
    pub cost: f64,
}

/// The dual problem: minimum JCT across a sweep of cost budgets, on the
/// Fig. 9 workload.
///
/// # Errors
///
/// Propagates planner errors (budgets below the cheapest plan skip the
/// row).
pub fn ext_budget(budgets: &[f64]) -> Result<Vec<BudgetRow>> {
    let spec = ShaParams::new(64, 4, 508).generate()?;
    let model = synthetic_rn50(512, 4.0, 1.0);
    let sim = Simulator::new(model, fig_cloud(15.0)).with_config(SimConfig {
        samples: 10,
        seed: 0xF16,
        sync_overhead_secs: 1.0,
    });
    let mut rows = Vec::new();
    for &b in budgets {
        match plan_min_jct(
            &sim,
            &spec,
            Cost::from_dollars(b),
            &BudgetPlannerConfig::default(),
        ) {
            Ok((_, pred)) => rows.push(BudgetRow {
                budget: b,
                jct_secs: pred.jct.as_secs_f64(),
                cost: pred.cost.as_dollars(),
            }),
            Err(_) => continue,
        }
    }
    Ok(rows)
}

/// Renders the budget extension.
pub fn print_ext_budget(rows: &[BudgetRow]) {
    println!("Extension — minimum JCT subject to a cost budget (§2 footnote 1)");
    println!("(SHA(64, 4, 508), ResNet-50 bs=512, μ = 4 s/iter)\n");
    println!("{:>10} {:>12} {:>12}", "budget", "JCT", "cost");
    for r in rows {
        println!(
            "{:>10} {:>12} {:>12}",
            format!("${:.2}", r.budget),
            SimDuration::from_secs_f64(r.jct_secs).to_string(),
            format!("${:.2}", r.cost)
        );
    }
}

/// One row of the ASHA-vs-RubberBand comparison.
#[derive(Debug, Clone)]
pub struct AshaVsRbRow {
    /// System label.
    pub system: String,
    /// Executed cost in dollars.
    pub cost: f64,
    /// Best accuracy at the deadline (percent).
    pub accuracy: f64,
    /// Configurations evaluated.
    pub trials: u32,
    /// GPU busy fraction (utilization proxy).
    pub busy_fraction: Option<f64>,
}

/// ASHA baseline comparison (§7): RubberBand's planned elastic run versus
/// ASHA on fixed clusters of 1× and 2× the optimal static size, same
/// task, search space, and deadline.
///
/// # Errors
///
/// Propagates planner/executor errors.
pub fn ext_asha(deadline_mins: u64, seed: u64) -> Result<Vec<AshaVsRbRow>> {
    let task = rb_train::task::resnet101_cifar10();
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate()?;
    let model = profiled_model(&task, 1024, 4, 32);
    let physics = physics_for(&task, 1024, 4);
    let cloud = e2e_cloud();
    let space = search_space();
    let deadline = SimDuration::from_mins(deadline_mins);
    let sim = Simulator::new(model, cloud.clone());
    let out = plan_rubberband(&sim, &spec, deadline, &PlannerConfig::default())?;

    let mut rows = Vec::new();
    let report = Executor::new(
        spec.clone(),
        out.plan.clone(),
        task.clone(),
        physics.clone(),
        cloud.clone(),
    )?
    .with_options(ExecOptions {
        seed,
        ..ExecOptions::default()
    })
    .run(&space.sample_n(32, &mut Prng::seed_from_u64(seed)))?;
    rows.push(AshaVsRbRow {
        system: "RubberBand (elastic)".into(),
        cost: report.total_cost().as_dollars(),
        accuracy: report.best_accuracy * 100.0,
        trials: 32,
        busy_fraction: report.utilization,
    });

    let static_gpus = out.static_plan.gpus(0);
    for (gpt, mult) in [(1u32, 1u32), (4, 1), (4, 2)] {
        let cluster_gpus = static_gpus * mult;
        let cfg = AshaConfig {
            eta: 3,
            r: 1,
            big_r: 50,
            gpus_per_trial: gpt,
            cluster_gpus,
            deadline,
            initial_trials: 32,
            sample_new_on_free: true,
            seed,
        };
        let asha = run_asha(&task, &physics, &cloud, &space, &cfg)?;
        rows.push(AshaVsRbRow {
            system: format!("ASHA ({cluster_gpus} GPUs, {gpt}/trial)"),
            cost: asha.cost.as_dollars(),
            accuracy: asha.best_accuracy * 100.0,
            trials: asha.trials_sampled,
            busy_fraction: Some(asha.busy_fraction),
        });
    }
    Ok(rows)
}

/// Renders the ASHA comparison.
pub fn print_ext_asha(deadline_mins: u64, rows: &[AshaVsRbRow]) {
    println!("Extension — ASHA baseline comparison (§7)");
    println!(
        "(ResNet-101 / CIFAR-10, {deadline_mins}-minute budget, same search space and seeds)
"
    );
    println!(
        "{:<24} {:>10} {:>10} {:>8} {:>8}",
        "system", "cost", "accuracy", "trials", "busy"
    );
    for r in rows {
        println!(
            "{:<24} {:>10} {:>9.1}% {:>8} {:>8}",
            r.system,
            format!("${:.2}", r.cost),
            r.accuracy,
            r.trials,
            r.busy_fraction
                .map(|b| format!("{:.0}%", b * 100.0))
                .unwrap_or_else(|| "—".into())
        );
    }
}

/// One candidate's row in the instance-selection extension.
#[derive(Debug, Clone)]
pub struct InstanceRow {
    /// SKU name.
    pub name: String,
    /// Predicted plan cost (`None` = infeasible under the deadline).
    pub cost: Option<f64>,
    /// Predicted JCT in seconds.
    pub jct_secs: Option<f64>,
    /// Whether this candidate won.
    pub chosen: bool,
}

/// Instance-type selection (§7's Ernest/CherryPick direction): plan the
/// Table 2 workload on several machine shapes and pick the cheapest
/// feasible one. The g4dn (T4) candidate runs at ~40% of V100 per-GPU
/// throughput, trading a lower price for slower epochs.
///
/// # Errors
///
/// Propagates planner errors other than per-candidate infeasibility.
pub fn ext_instances(deadline_mins: u64) -> Result<Vec<InstanceRow>> {
    use rb_cloud::catalog::{G4DN_12XLARGE, P3_16XLARGE, P3_2XLARGE, P3_8XLARGE};
    use rb_cloud::CloudPricing;
    use rb_planner::{select_instance_type, InstanceCandidate};
    use rb_profile::ModelProfile;
    use rb_scaling::{AnalyticScaling, RescaledScaling, SharedScaling};
    use std::sync::Arc;

    let task = rb_train::task::resnet101_cifar10();
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate()?;
    let mk = |name: &str, ty: rb_cloud::InstanceType, node_gpus: u32, slowdown: f64| {
        let base: SharedScaling = Arc::new(AnalyticScaling::for_arch(&task.arch, 1024, node_gpus));
        let scaling: SharedScaling = if slowdown != 1.0 {
            Arc::new(RescaledScaling::new(base, slowdown))
        } else {
            base
        };
        InstanceCandidate {
            name: name.into(),
            model: ModelProfile::from_scaling(name, scaling, task.steps_per_iter(1024), 5.0, 0.03),
            cloud: rb_profile::CloudProfile::new(CloudPricing::on_demand(ty))
                .with_provision_delay(SimDuration::from_secs(15))
                .with_init_latency(SimDuration::from_secs(15)),
        }
    };
    let candidates = vec![
        mk("p3.2xlarge", P3_2XLARGE, 1, 1.0),
        mk("p3.8xlarge", P3_8XLARGE, 4, 1.0),
        mk("p3.16xlarge", P3_16XLARGE, 8, 1.0),
        // T4s run the model ~2.5x slower per GPU.
        mk("g4dn.12xlarge", G4DN_12XLARGE, 4, 2.5),
    ];
    let sel = select_instance_type(
        &candidates,
        &spec,
        SimDuration::from_mins(deadline_mins),
        &PlannerConfig::default(),
        &SimConfig {
            samples: 10,
            seed: 0xF16,
            sync_overhead_secs: 1.0,
        },
    )?;
    Ok(candidates
        .iter()
        .zip(sel.outcomes.iter())
        .enumerate()
        .map(|(i, (c, o))| InstanceRow {
            name: c.name.clone(),
            cost: o.as_ref().map(|g| g.prediction.cost.as_dollars()),
            jct_secs: o.as_ref().map(|g| g.prediction.jct.as_secs_f64()),
            chosen: i == sel.winner,
        })
        .collect())
}

/// Renders the instance-selection extension.
pub fn print_ext_instances(deadline_mins: u64, rows: &[InstanceRow]) {
    println!("Extension — instance-type selection (§7, Ernest/CherryPick direction)");
    println!(
        "(Table 2 workload under a {deadline_mins}-minute deadline)
"
    );
    println!(
        "{:<16} {:>12} {:>12} {:>8}",
        "instance", "cost", "JCT", "chosen"
    );
    for r in rows {
        println!(
            "{:<16} {:>12} {:>12} {:>8}",
            r.name,
            r.cost
                .map(|c| format!("${c:.2}"))
                .unwrap_or_else(|| "infeasible".into()),
            r.jct_secs
                .map(|j| SimDuration::from_secs_f64(j).to_string())
                .unwrap_or_else(|| "—".into()),
            if r.chosen { "✓" } else { "" }
        );
    }
}

/// One planner-ablation cell.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The variant's label.
    pub variant: String,
    /// Predicted plan cost in dollars.
    pub cost: f64,
    /// Greedy steps taken.
    pub steps: usize,
}

fn fig_sim(samples: u32) -> Simulator {
    Simulator::new(synthetic_rn50(512, 4.0, 1.0), fig_cloud(15.0)).with_config(SimConfig {
        samples,
        seed: 0xF16,
        sync_overhead_secs: 1.0,
    })
}

/// Ablation: warm-start multiplier sets (§4.3's "1x, 2x, 3x").
///
/// # Errors
///
/// Propagates planner errors.
pub fn ablation_warm_starts(deadline: SimDuration) -> Result<Vec<AblationRow>> {
    let spec = ShaParams::new(64, 4, 508).generate()?;
    let sim = fig_sim(10);
    let mut rows = Vec::new();
    for (label, mults) in [
        ("1x only", vec![1]),
        ("1x-3x (paper)", vec![1, 2, 3]),
        ("1x-6x", vec![1, 2, 3, 4, 6]),
    ] {
        let cfg = PlannerConfig {
            warm_start_multipliers: mults,
            ..PlannerConfig::default()
        };
        let out = plan_rubberband(&sim, &spec, deadline, &cfg)?;
        rows.push(AblationRow {
            variant: label.to_string(),
            cost: out.prediction.cost.as_dollars(),
            steps: out.steps,
        });
    }
    Ok(rows)
}

/// Ablation: the instance-boundary jump candidate on/off.
///
/// # Errors
///
/// Propagates planner errors.
pub fn ablation_instance_jump(deadline: SimDuration) -> Result<Vec<AblationRow>> {
    let spec = ShaParams::new(512, 4, 508).generate()?;
    let sim = fig_sim(10);
    let mut rows = Vec::new();
    for (label, jump) in [("ladder only", false), ("ladder + jump", true)] {
        let cfg = PlannerConfig {
            use_instance_jump: jump,
            ..PlannerConfig::default()
        };
        let out = plan_rubberband(&sim, &spec, deadline, &cfg)?;
        rows.push(AblationRow {
            variant: label.to_string(),
            cost: out.prediction.cost.as_dollars(),
            steps: out.steps,
        });
    }
    Ok(rows)
}

/// Ablation: Monte-Carlo sample count versus plan quality. Plan quality
/// is scored by re-predicting the chosen plan with a high-sample
/// reference simulator.
///
/// # Errors
///
/// Propagates planner errors.
pub fn ablation_mc_samples(deadline: SimDuration) -> Result<Vec<AblationRow>> {
    let spec = ShaParams::new(64, 4, 508).generate()?;
    let reference = fig_sim(200);
    let mut rows = Vec::new();
    for samples in [1u32, 5, 20, 100] {
        let sim = fig_sim(samples);
        let out = plan_rubberband(&sim, &spec, deadline, &PlannerConfig::default())?;
        let scored = reference.predict(&spec, &out.plan)?;
        rows.push(AblationRow {
            variant: format!("{samples} samples"),
            cost: scored.cost.as_dollars(),
            steps: out.steps,
        });
    }
    Ok(rows)
}

/// One warm-pool ablation row.
#[derive(Debug, Clone)]
pub struct WarmPoolRow {
    /// Pool capacity (0 = disabled).
    pub capacity: usize,
    /// Executed JCT seconds.
    pub jct_secs: f64,
    /// Executed cost dollars.
    pub cost: f64,
    /// Instances provisioned from the provider (reattaches don't count).
    pub instances: usize,
}

/// Warm-pool ablation: execute a plan that releases capacity mid-job and
/// re-grows later (the §6.3.1 "warm pool of instances" device), with the
/// pool disabled and enabled. Reattaching skips the provision + init
/// cycle at the price of holding parked instances.
///
/// # Errors
///
/// Propagates executor errors.
pub fn ablation_warm_pool(seed: u64) -> Result<Vec<WarmPoolRow>> {
    use rb_hpo::ExperimentSpec;
    use rb_sim::AllocationPlan;

    let task = rb_train::task::resnet101_cifar10();
    let physics = physics_for(&task, 1024, 4);
    // A zig-zag allocation: shed 3 instances after stage 0, re-grow for
    // stage 2 — the shape sequential multi-jobs and re-expanding plans
    // produce.
    let spec = ExperimentSpec::from_stages(&[(16, 2), (8, 1), (4, 8), (2, 16)])?;
    let plan = AllocationPlan::new(vec![16, 4, 16, 4]);
    let space = search_space();
    let mut rows = Vec::new();
    for capacity in [0usize, 4] {
        let cloud = e2e_cloud()
            .with_provision_delay(SimDuration::from_secs(30))
            .with_init_latency(SimDuration::from_secs(60));
        let report = Executor::new(
            spec.clone(),
            plan.clone(),
            task.clone(),
            physics.clone(),
            cloud,
        )?
        .with_options(ExecOptions {
            seed,
            warm_pool: capacity,
            warm_hold_secs: 300.0,
            ..ExecOptions::default()
        })
        .run(&space.sample_n(16, &mut Prng::seed_from_u64(seed)))?;
        rows.push(WarmPoolRow {
            capacity,
            jct_secs: report.jct.as_secs_f64(),
            cost: report.total_cost().as_dollars(),
            instances: report.instances_provisioned,
        });
    }
    Ok(rows)
}

/// Renders the warm-pool ablation.
pub fn print_warm_pool(rows: &[WarmPoolRow]) {
    println!("Ablation — warm instance pool (zig-zag allocation, 90 s scale-up)\n");
    println!(
        "{:<14} {:>10} {:>10} {:>12}",
        "pool", "JCT", "cost", "provisioned"
    );
    for r in rows {
        println!(
            "{:<14} {:>10} {:>10} {:>12}",
            if r.capacity == 0 {
                "disabled".to_string()
            } else {
                format!("{} instances", r.capacity)
            },
            SimDuration::from_secs_f64(r.jct_secs).to_string(),
            format!("${:.2}", r.cost),
            r.instances
        );
    }
}

/// Renders one ablation table.
pub fn print_ablation(title: &str, rows: &[AblationRow]) {
    println!("Ablation — {title}\n");
    println!("{:<18} {:>12} {:>8}", "variant", "plan cost", "steps");
    for r in rows {
        println!(
            "{:<18} {:>12} {:>8}",
            r.variant,
            format!("${:.2}", r.cost),
            r.steps
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spot_is_cheaper_at_low_interruption_rates() {
        let (od, rows) = ext_spot(&[0.2], 1).unwrap();
        assert_eq!(od.preemptions, 0);
        let calm_spot = &rows[0];
        assert!(
            calm_spot.cost < od.cost * 0.6,
            "spot {} not clearly cheaper than on-demand {}",
            calm_spot.cost,
            od.cost
        );
    }

    #[test]
    fn heavy_interruptions_erode_spot_and_slow_the_job() {
        let (_, rows) = ext_spot(&[0.2, 20.0], 1).unwrap();
        let calm = &rows[0];
        let stormy = &rows[1];
        assert!(stormy.preemptions > calm.preemptions);
        assert!(stormy.jct_secs > calm.jct_secs);
        assert!(stormy.cost > calm.cost);
    }

    #[test]
    fn budget_rows_trade_money_for_time() {
        let rows = ext_budget(&[8.0, 30.0]).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[1].jct_secs <= rows[0].jct_secs);
        for r in &rows {
            assert!(r.cost <= r.budget + 1e-9);
        }
    }

    #[test]
    fn rubberband_beats_asha_on_cost_at_comparable_accuracy() {
        let rows = ext_asha(20, 1).unwrap();
        let rb = &rows[0];
        // RubberBand is cheaper than every fixed-cluster ASHA variant.
        for asha in &rows[1..] {
            assert!(
                rb.cost < asha.cost,
                "rubberband {} !< {} at {}",
                rb.cost,
                asha.system,
                asha.cost
            );
            // ASHA keeps sampling beyond the initial cohort.
            assert!(asha.trials >= 32, "{}", asha.system);
        }
        // And at least matches the best ASHA variant's accuracy.
        let best_asha = rows[1..]
            .iter()
            .map(|r| r.accuracy)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            rb.accuracy >= best_asha - 2.0,
            "rb {} vs best asha {best_asha}",
            rb.accuracy
        );
    }

    #[test]
    fn warm_pool_cuts_regrowth_latency() {
        let rows = ablation_warm_pool(3).unwrap();
        let (off, on) = (&rows[0], &rows[1]);
        // Reattaching skips the 90 s scale-up at stage 2.
        assert!(
            on.jct_secs < off.jct_secs - 60.0,
            "warm {} !<< cold {}",
            on.jct_secs,
            off.jct_secs
        );
        // And avoids re-provisioning.
        assert!(on.instances < off.instances);
    }

    #[test]
    fn instance_selection_picks_the_cheapest_feasible_type() {
        let rows = ext_instances(30).unwrap();
        assert_eq!(rows.len(), 4);
        let winner = rows.iter().find(|r| r.chosen).unwrap();
        for r in &rows {
            if let Some(c) = r.cost {
                assert!(
                    winner.cost.unwrap() <= c + 1e-9,
                    "{} beat the winner",
                    r.name
                );
            }
        }
    }

    #[test]
    fn instance_jump_never_hurts() {
        let rows = ablation_instance_jump(SimDuration::from_mins(20)).unwrap();
        let (off, on) = (&rows[0], &rows[1]);
        assert!(
            on.cost <= off.cost + 1e-9,
            "jump {} > ladder {}",
            on.cost,
            off.cost
        );
    }

    #[test]
    fn more_warm_starts_never_hurt() {
        let rows = ablation_warm_starts(SimDuration::from_mins(20)).unwrap();
        assert!(rows[1].cost <= rows[0].cost + 1e-9);
        assert!(rows[2].cost <= rows[1].cost + 1e-9);
    }
}
