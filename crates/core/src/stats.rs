//! Small statistics helpers used by the profiler and the benchmark harness.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use rb_core::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; zero if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; zero with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Computes the sample mean of a slice; zero if empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Computes the unbiased sample standard deviation; zero if fewer than two
/// observations.
pub fn std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Linearly interpolates `y` at `x` over sorted `(x, y)` knots, clamping
/// outside the knot range to the nearest endpoint value.
///
/// # Panics
///
/// Panics if `knots` is empty or not sorted by `x`.
pub fn lerp_clamped(knots: &[(f64, f64)], x: f64) -> f64 {
    assert!(!knots.is_empty(), "need at least one knot");
    debug_assert!(
        knots.windows(2).all(|w| w[0].0 <= w[1].0),
        "knots must be sorted by x"
    );
    if x <= knots[0].0 {
        return knots[0].1;
    }
    if x >= knots[knots.len() - 1].0 {
        return knots[knots.len() - 1].1;
    }
    let idx = knots.partition_point(|&(kx, _)| kx <= x);
    let (x0, y0) = knots[idx - 1];
    let (x1, y1) = knots[idx];
    if x1 == x0 {
        return y0;
    }
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - mean(&xs)).abs() < 1e-12);
        assert!((s.std() - std(&xs)).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_and_singleton_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s = OnlineStats::new();
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std(&[2.0]), 0.0);
    }

    #[test]
    fn lerp_interpolates_and_clamps() {
        let knots = [(1.0, 10.0), (2.0, 20.0), (4.0, 40.0)];
        assert_eq!(lerp_clamped(&knots, 1.5), 15.0);
        assert_eq!(lerp_clamped(&knots, 3.0), 30.0);
        assert_eq!(lerp_clamped(&knots, 0.0), 10.0);
        assert_eq!(lerp_clamped(&knots, 9.0), 40.0);
        assert_eq!(lerp_clamped(&knots, 2.0), 20.0);
    }

    #[test]
    fn lerp_single_knot_is_constant() {
        assert_eq!(lerp_clamped(&[(2.0, 7.0)], -1.0), 7.0);
        assert_eq!(lerp_clamped(&[(2.0, 7.0)], 99.0), 7.0);
    }
}
