//! Property-based tests for the foundation types.

use proptest::prelude::*;
use rb_core::{Cost, Distribution, Prng, SimDuration, SimTime};

proptest! {
    /// Per-second billing is (approximately) additive in duration: billing
    /// two spans separately differs from billing their union by at most
    /// rounding (1 μ$ per charge).
    #[test]
    fn per_hour_billing_is_additive(
        hourly_cents in 1i64..100_000,
        a_ms in 0u64..10_000_000,
        b_ms in 0u64..10_000_000,
    ) {
        let price = Cost::from_micros(hourly_cents * 10_000);
        let split = price.per_hour_for(SimDuration::from_millis(a_ms))
            + price.per_hour_for(SimDuration::from_millis(b_ms));
        let joint = price.per_hour_for(SimDuration::from_millis(a_ms + b_ms));
        prop_assert!((split - joint).as_micros().abs() <= 1);
    }

    /// Billing is monotone in duration and zero for zero time.
    #[test]
    fn per_hour_billing_is_monotone(
        hourly_cents in 1i64..100_000,
        a_ms in 0u64..10_000_000,
        extra_ms in 0u64..10_000_000,
    ) {
        let price = Cost::from_micros(hourly_cents * 10_000);
        let small = price.per_hour_for(SimDuration::from_millis(a_ms));
        let big = price.per_hour_for(SimDuration::from_millis(a_ms + extra_ms));
        prop_assert!(big >= small);
        prop_assert_eq!(price.per_hour_for(SimDuration::ZERO), Cost::ZERO);
    }

    /// Dollars round-trip through micro-dollars at micro precision.
    #[test]
    fn cost_dollar_roundtrip(d in -1e7f64..1e7) {
        let c = Cost::from_dollars(d);
        prop_assert!((c.as_dollars() - d).abs() < 1e-6);
    }

    /// Time arithmetic round-trips.
    #[test]
    fn time_roundtrip(base_ms in 0u64..u64::MAX / 4, delta_ms in 0u64..u64::MAX / 4) {
        let t = SimTime::from_millis(base_ms);
        let d = SimDuration::from_millis(delta_ms);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        prop_assert_eq!((t + d).saturating_since(t), d);
    }

    /// Latency distributions used by the execution model never produce
    /// negative samples, and sampling is deterministic per seed.
    #[test]
    fn latency_distributions_are_nonnegative_and_deterministic(
        seed in 0u64..10_000,
        mean in 0.001f64..1000.0,
        spread in 0.0f64..3.0,
    ) {
        for d in [
            Distribution::Constant(mean),
            Distribution::Uniform { lo: 0.0, hi: mean },
            Distribution::normal(mean, spread * mean),
            Distribution::lognormal_from_moments(mean, spread.max(1e-6) * mean),
            Distribution::Exponential { rate: 1.0 / mean },
            Distribution::ShiftedExponential { base: mean, rate: 1.0 / mean },
        ] {
            let mut a = Prng::seed_from_u64(seed);
            let mut b = Prng::seed_from_u64(seed);
            for _ in 0..32 {
                let xa = d.sample(&mut a);
                let xb = d.sample(&mut b);
                prop_assert_eq!(xa, xb);
                prop_assert!(xa >= 0.0, "{:?} sampled {}", d, xa);
                prop_assert!(xa.is_finite());
            }
        }
    }

    /// `scaled(k)` scales samples of constant/uniform/normal families by
    /// exactly k (same underlying uniforms).
    #[test]
    fn scaled_distribution_scales_samples(
        seed in 0u64..10_000,
        mean in 0.01f64..100.0,
        k in 0.01f64..100.0,
    ) {
        for d in [
            Distribution::Constant(mean),
            Distribution::Uniform { lo: 0.0, hi: mean },
            Distribution::normal(mean, mean / 10.0),
        ] {
            let s = d.scaled(k);
            let mut a = Prng::seed_from_u64(seed);
            let mut b = Prng::seed_from_u64(seed);
            for _ in 0..16 {
                let base = d.sample(&mut a);
                let scaled = s.sample(&mut b);
                prop_assert!((scaled - base * k).abs() <= 1e-9 * (1.0 + scaled.abs()));
            }
        }
    }
}
