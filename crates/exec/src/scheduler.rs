//! The stage scheduler: the decision core of the driver's control loop.
//!
//! Fig. 8 shows the driver as a scheduler + placement controller + cluster
//! manager. This module is the scheduler's *policy*, kept pure so it can
//! be tested exhaustively: given the specification, the allocation plan,
//! the stage index and the live trials, it decides the target cluster
//! size, each trial's GPU share, and whether the stage runs all-parallel
//! or in waves ("if the cluster size is too small … each resource is
//! assigned to a single trial until it is completed, queuing unscheduled
//! trials until resources are freed", §5). The executor merely carries
//! these decisions out against the cluster manager and placement
//! controller.

use rb_core::{RbError, Result, TrialId};
use rb_hpo::ExperimentSpec;
use rb_sim::AllocationPlan;
use std::collections::BTreeMap;

/// The scheduler's decisions for one stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSchedule {
    /// Stage index.
    pub stage: usize,
    /// Instances the cluster must hold (placement-fragmentation aware).
    pub target_instances: u32,
    /// GPUs assigned to each live trial while it runs.
    pub allocations: BTreeMap<TrialId, u32>,
    /// True when trials outnumber GPUs and run in rotating waves of
    /// single-GPU workers.
    pub waves: bool,
    /// Concurrent execution slots (equals the trial count when fully
    /// parallel; the GPU count when waved).
    pub slots: u32,
}

impl StageSchedule {
    /// Total GPUs in use when every slot is busy.
    pub fn busy_gpus(&self) -> u32 {
        if self.waves {
            self.slots
        } else {
            self.allocations.values().sum()
        }
    }
}

/// Computes the schedule for `stage` with the given `live` trials.
///
/// # Errors
///
/// Returns [`RbError::Execution`] when the live-trial count does not
/// match the specification (the barrier must promote exactly the spec's
/// next-stage count), and [`RbError::InvalidPlan`] for out-of-range
/// stages.
pub fn schedule_stage(
    spec: &ExperimentSpec,
    plan: &AllocationPlan,
    stage: usize,
    live: &[TrialId],
    gpus_per_instance: u32,
) -> Result<StageSchedule> {
    if stage >= spec.num_stages() || stage >= plan.num_stages() {
        return Err(RbError::InvalidPlan(format!("stage {stage} out of range")));
    }
    let (trials, _) = spec.get_stage(stage)?;
    if live.len() != trials as usize {
        return Err(RbError::Execution(format!(
            "stage {stage} expects {trials} live trials, scheduler saw {}",
            live.len()
        )));
    }
    let alloc = plan.gpus(stage);
    let waves = alloc < trials;
    let gpt = if waves {
        1
    } else {
        plan.gpus_per_trial(stage, spec)
    };
    let allocations = live.iter().map(|&t| (t, gpt)).collect();
    Ok(StageSchedule {
        stage,
        target_instances: plan.instances_for_stage(stage, spec, gpus_per_instance),
        allocations,
        waves,
        slots: if waves { alloc } else { trials },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(32, 1), (10, 3), (3, 9), (1, 37)]).unwrap()
    }

    fn trials(n: u64) -> Vec<TrialId> {
        (0..n).map(TrialId::new).collect()
    }

    #[test]
    fn parallel_stage_divides_fairly() {
        let plan = AllocationPlan::new(vec![32, 20, 12, 8]);
        let s = schedule_stage(&spec(), &plan, 1, &trials(10), 4).unwrap();
        assert!(!s.waves);
        assert_eq!(s.slots, 10);
        assert_eq!(s.target_instances, 5);
        assert!(s.allocations.values().all(|&g| g == 2));
        assert_eq!(s.busy_gpus(), 20);
    }

    #[test]
    fn scarce_gpus_trigger_waves() {
        let plan = AllocationPlan::new(vec![8, 5, 3, 1]);
        let s = schedule_stage(&spec(), &plan, 0, &trials(32), 4).unwrap();
        assert!(s.waves);
        assert_eq!(s.slots, 8);
        assert_eq!(s.target_instances, 2);
        assert!(s.allocations.values().all(|&g| g == 1));
        assert_eq!(s.busy_gpus(), 8);
    }

    #[test]
    fn fragmentation_inflates_target_instances() {
        // 3-GPU trials on 4-GPU machines: one machine each.
        let spec = ExperimentSpec::from_stages(&[(8, 4)]).unwrap();
        let plan = AllocationPlan::new(vec![24]);
        let s = schedule_stage(&spec, &plan, 0, &trials(8), 4).unwrap();
        assert_eq!(s.allocations[&TrialId::new(0)], 3);
        assert_eq!(s.target_instances, 8, "3-GPU trials cannot share nodes");
    }

    #[test]
    fn mismatched_live_count_is_an_execution_error() {
        let plan = AllocationPlan::new(vec![32, 20, 12, 8]);
        let err = schedule_stage(&spec(), &plan, 1, &trials(9), 4).unwrap_err();
        assert!(matches!(err, RbError::Execution(_)));
    }

    #[test]
    fn out_of_range_stage_is_rejected() {
        let plan = AllocationPlan::new(vec![32, 20, 12, 8]);
        assert!(matches!(
            schedule_stage(&spec(), &plan, 4, &trials(1), 4),
            Err(RbError::InvalidPlan(_))
        ));
    }

    #[test]
    fn final_stage_single_trial_gets_everything() {
        let plan = AllocationPlan::new(vec![32, 20, 12, 8]);
        let s = schedule_stage(&spec(), &plan, 3, &trials(1), 4).unwrap();
        assert_eq!(s.allocations[&TrialId::new(0)], 8);
        assert_eq!(s.target_instances, 2);
        assert!(!s.waves);
    }
}
