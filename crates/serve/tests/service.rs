//! End-to-end service tests: fair-share scheduling, admission control,
//! pool economics, and byte-stable determinism across planner threads.

use rb_cloud::catalog::P3_8XLARGE;
use rb_cloud::{CloudPricing, PoolConfig};
use rb_core::{Cost, Prng, SimDuration, SimTime};
use rb_exec::{ExecOptions, Executor};
use rb_hpo::{Config, Dim, ExperimentSpec, SearchSpace};
use rb_planner::{plan_with_policy, PlannerConfig, Policy};
use rb_profile::{CloudProfile, ModelProfile};
use rb_serve::{JobRequest, RejectReason, ServeOptions, TenantSpec, TuningService};
use rb_sim::{AllocationPlan, EngineConfig, Simulator};
use rb_train::task::resnet101_cifar10;
use rb_train::TaskModel;
use std::sync::Arc;

fn cloud() -> CloudProfile {
    // Paid ingress and a real provision + init cycle: exactly the costs
    // a shared pool exists to avoid.
    CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE).with_data_price(Cost::from_dollars(0.02)))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15))
        .with_dataset_gb(100.0)
}

fn physics(task: &TaskModel) -> ModelProfile {
    let scaling = Arc::new(rb_scaling::AnalyticScaling::for_arch(&task.arch, 1024, 4));
    let mut p =
        ModelProfile::from_scaling(task.name, scaling, task.steps_per_iter(1024), 2.0, 0.02);
    p.train_startup_secs = 2.0;
    p
}

fn configs(n: usize, seed: u64) -> Vec<Config> {
    let space = SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .build()
        .unwrap();
    space.sample_n(n, &mut Prng::seed_from_u64(seed))
}

fn spec() -> ExperimentSpec {
    ExperimentSpec::from_stages(&[(8, 1), (4, 2), (2, 4), (1, 8)]).unwrap()
}

/// A job running the fixture spec on a fixed plan, arriving at `arrival`.
fn job(plan: &[u32], seed: u64, arrival: SimTime, tenant: usize) -> JobRequest {
    let task = resnet101_cifar10();
    let executor = Executor::new(
        spec(),
        AllocationPlan::new(plan.to_vec()),
        task.clone(),
        physics(&task),
        cloud(),
    )
    .unwrap()
    .with_options(ExecOptions {
        seed,
        ..ExecOptions::default()
    });
    JobRequest::new(executor, configs(8, seed ^ 0xC0FFEE), arrival, tenant)
}

fn serial_service(pool: Option<PoolConfig>) -> TuningService {
    TuningService::new(
        vec![TenantSpec::new("alpha", 1.0), TenantSpec::new("beta", 1.0)],
        ServeOptions {
            max_concurrent: 1,
            max_queue: 16,
            pool,
            pool_admission: false,
        },
    )
    .unwrap()
}

/// Four alternating-tenant jobs arriving at t=0, forced serial so each
/// successor can adopt its predecessor's entire fleet.
fn back_to_back_jobs() -> Vec<JobRequest> {
    (0u64..4)
        .map(|k| job(&[8, 8, 8, 8], 100 + k, SimTime::ZERO, (k % 2) as usize))
        .collect()
}

#[test]
fn shared_pool_saves_cost_at_equal_or_better_queue_wait() {
    let off = serial_service(None).run(back_to_back_jobs()).unwrap();
    let on = serial_service(Some(PoolConfig::default()))
        .run(back_to_back_jobs())
        .unwrap();

    assert_eq!(off.outcomes.len(), 4);
    assert_eq!(on.outcomes.len(), 4);
    assert!(off.pool.is_none());
    let stats = on.pool.as_ref().expect("pool stats present");
    assert!(
        stats.handoffs > 0,
        "handoffs must actually happen: {stats:?}"
    );
    assert_eq!(stats.double_releases, 0);
    assert!(stats.ingress_gb_saved > 0.0, "adopters skip re-ingress");

    // The headline acceptance: pool-on costs less than pool-off on the
    // same seed, both on the raw bill (ingress + shorter startups) and
    // net of the minimum-charge credit.
    assert_eq!(off.net_cost, off.billed_cost, "no pool, no credit");
    assert!(
        on.billed_cost < off.billed_cost,
        "pool-on billed {} >= pool-off {}",
        on.billed_cost,
        off.billed_cost
    );
    assert!(on.net_cost <= on.billed_cost);
    assert!(on.net_cost < off.billed_cost);

    // ... and the queue does not pay for it: adopted instances come up
    // faster, so waits can only improve.
    assert!(on.queue_wait_p50() <= off.queue_wait_p50());
    assert!(on.makespan <= off.makespan);
}

/// Six jobs on a down-scaling plan racing for two slots: both running
/// jobs park capacity at their barriers while the queue is non-empty,
/// so cross-job handoffs and pool-aware admission both fire.
fn contended_jobs() -> Vec<JobRequest> {
    (0u64..6)
        .map(|k| job(&[16, 8, 4, 4], 500 + k, SimTime::ZERO, (k % 2) as usize))
        .collect()
}

fn contended_service(pool_admission: bool) -> TuningService {
    TuningService::new(
        vec![TenantSpec::new("alpha", 1.0), TenantSpec::new("beta", 1.0)],
        ServeOptions {
            max_concurrent: 2,
            max_queue: 16,
            pool: Some(PoolConfig::default()),
            pool_admission,
        },
    )
    .unwrap()
}

#[test]
fn contended_cell_conserves_the_pool_ledger_and_admits_from_it() {
    let report = contended_service(true).run(contended_jobs()).unwrap();
    assert_eq!(report.outcomes.len(), 6);

    let stats = report.pool.as_ref().expect("pool stats present");
    assert!(stats.handoffs > 0, "{stats:?}");
    assert_eq!(stats.double_releases, 0, "{stats:?}");
    assert_eq!(stats.conflicts, 0, "{stats:?}");
    // The pool was drained at wind-down: every offer and every parked
    // instance is accounted for exactly once.
    assert!(stats.balances(0), "pool ledger out of balance: {stats:?}");

    // Billing invariant: the service bill is the job meters plus the
    // park bill — nothing double-counted, nothing dropped.
    let job_cost: Cost = report
        .outcomes
        .iter()
        .fold(Cost::ZERO, |acc, o| acc + o.report.total_cost());
    assert_eq!(report.billed_cost, job_cost + stats.park_cost);
    assert_eq!(report.net_cost, report.billed_cost - stats.min_charge_saved);

    // Pool-aware admission actually fired, and the flags agree with
    // the counter.
    assert!(report.pool_admits > 0, "no job was admitted from the pool");
    let flagged = report.outcomes.iter().filter(|o| o.pool_admitted).count();
    assert_eq!(flagged as u64, report.pool_admits);

    // Admission must help, not hurt: same cell without it queues jobs
    // at least as long at the median.
    let plain = contended_service(false).run(contended_jobs()).unwrap();
    assert_eq!(plain.pool_admits, 0);
    assert!(report.queue_wait_p50() <= plain.queue_wait_p50());
}

#[test]
fn same_seed_is_byte_identical_and_planner_threads_do_not_leak() {
    // Plan with the real planner at 1 and 4 worker threads: the engine's
    // determinism contract says the plans are identical, and the service
    // must preserve that all the way to the rendered report.
    let task = resnet101_cifar10();
    let physics = physics(&task);
    let deadline = SimDuration::from_hours(2);
    let plan_at = |threads: usize| {
        let sim = Simulator::new(physics.clone(), cloud())
            .with_engine(EngineConfig::default().with_threads(threads));
        plan_with_policy(
            Policy::RubberBand,
            &sim,
            &spec(),
            deadline,
            &PlannerConfig::default(),
        )
        .unwrap()
        .plan
    };
    let p1 = plan_at(1);
    let p4 = plan_at(4);
    assert_eq!(p1, p4, "planner threads must not change the plan");

    let run = |plan: &AllocationPlan| {
        let jobs: Vec<JobRequest> = (0u64..4)
            .map(|k| {
                let mut j = job(
                    &[8, 8, 8, 8],
                    300 + k,
                    SimTime::from_secs(k * 180),
                    (k % 2) as usize,
                );
                j.executor = Executor::new(
                    spec(),
                    plan.clone(),
                    task.clone(),
                    self::physics(&task),
                    cloud(),
                )
                .unwrap()
                .with_options(ExecOptions {
                    seed: 300 + k,
                    ..ExecOptions::default()
                });
                j
            })
            .collect();
        TuningService::new(
            vec![TenantSpec::new("alpha", 2.0), TenantSpec::new("beta", 1.0)],
            ServeOptions {
                max_concurrent: 2,
                max_queue: 8,
                pool: Some(PoolConfig::default()),
                pool_admission: false,
            },
        )
        .unwrap()
        .run(jobs)
        .unwrap()
        .render()
    };
    let a = run(&p1);
    let b = run(&p4);
    let c = run(&p1);
    assert_eq!(a, b, "ServeReport must not depend on planner threads");
    assert_eq!(a, c, "ServeReport must be reproducible from the seed");

    // The contended + pool-admission path holds to the same contract:
    // jobs racing for parked capacity at interleaved barriers, two of
    // them on the planner's plan so a thread leak there would surface
    // in the render.
    let run_contended = |plan: &AllocationPlan| {
        let mut jobs = contended_jobs();
        for (k, j) in jobs.iter_mut().take(2).enumerate() {
            j.executor = Executor::new(
                spec(),
                plan.clone(),
                task.clone(),
                self::physics(&task),
                cloud(),
            )
            .unwrap()
            .with_options(ExecOptions {
                seed: 500 + k as u64,
                ..ExecOptions::default()
            });
        }
        contended_service(true).run(jobs).unwrap().render()
    };
    let a = run_contended(&p1);
    let b = run_contended(&p4);
    let c = run_contended(&p1);
    assert_eq!(a, b, "contended render must not depend on planner threads");
    assert_eq!(a, c, "contended render must be reproducible from the seed");
}

#[test]
fn fair_share_dispatches_the_underweighted_tenant_first() {
    // Serial service; alpha's first job runs immediately. While it runs,
    // alpha queues a second job (earlier arrival) and beta queues its
    // first. Beta has zero spend when the slot frees, so beta's job
    // dispatches before alpha's earlier-arrived one.
    let jobs = vec![
        job(&[8, 8, 8, 8], 1, SimTime::ZERO, 0),
        job(&[8, 8, 8, 8], 2, SimTime::from_secs(10), 0),
        job(&[8, 8, 8, 8], 3, SimTime::from_secs(20), 1),
    ];
    let report = serial_service(None).run(jobs).unwrap();
    let order: Vec<u64> = report.outcomes.iter().map(|o| o.job).collect();
    assert_eq!(order, vec![0, 2, 1], "spend/weight beats arrival order");
    assert_eq!(report.tenants[0].completed, 2);
    assert_eq!(report.tenants[1].completed, 1);
}

#[test]
fn queue_overflow_rejects_with_a_typed_reason() {
    let jobs: Vec<JobRequest> = (0u64..4)
        .map(|k| job(&[2, 2, 2, 2], 10 + k, SimTime::ZERO, 0))
        .collect();
    let svc = TuningService::new(
        vec![TenantSpec::new("alpha", 1.0)],
        ServeOptions {
            max_concurrent: 1,
            max_queue: 1,
            pool: None,
            pool_admission: false,
        },
    )
    .unwrap();
    let report = svc.run(jobs).unwrap();
    // All four arrive at t=0 before anything dispatches: one queues,
    // the rest bounce off the full queue; the queued one then runs.
    assert_eq!(report.outcomes.len(), 1);
    assert_eq!(report.rejected.len(), 3);
    assert!(report
        .rejected
        .iter()
        .all(|r| r.reason == RejectReason::QueueFull));
    assert_eq!(report.tenants[0].rejected, 3);
}

#[test]
fn budget_exhaustion_rejects_later_arrivals() {
    // A budget below one job's cost: the first job is admitted (spend is
    // zero at its arrival) and runs; by the time the second arrives the
    // tenant is over budget and it is rejected.
    let jobs = vec![
        job(&[2, 2, 2, 2], 50, SimTime::ZERO, 0),
        job(&[2, 2, 2, 2], 51, SimTime::from_secs(72_000), 0),
    ];
    let svc = TuningService::new(
        vec![TenantSpec::new("alpha", 1.0).with_budget(Cost::from_dollars(0.01))],
        ServeOptions::default(),
    )
    .unwrap();
    let report = svc.run(jobs).unwrap();
    assert_eq!(report.outcomes.len(), 1);
    assert_eq!(report.rejected.len(), 1);
    assert_eq!(report.rejected[0].reason, RejectReason::BudgetExhausted);
    assert!(report.tenants[0].spend > Cost::from_dollars(0.01));
}

#[test]
fn unknown_tenant_is_a_typed_error() {
    let svc = serial_service(None);
    let err = svc
        .run(vec![job(&[2, 2, 2, 2], 1, SimTime::ZERO, 9)])
        .unwrap_err();
    assert!(matches!(err, rb_core::RbError::InvalidConfig(_)), "{err:?}");
}

#[test]
fn queue_waits_and_timelines_are_consistent() {
    let report = serial_service(None).run(back_to_back_jobs()).unwrap();
    assert_eq!(report.outcomes.len(), 4);
    let mut finishes = Vec::new();
    for o in &report.outcomes {
        assert_eq!(o.queue_wait, o.dispatched.saturating_since(o.arrival));
        assert!(o.finished >= o.dispatched);
        assert_eq!(
            o.finished.saturating_since(o.dispatched),
            o.report.jct,
            "JCT is measured from dispatch"
        );
        finishes.push(o.finished);
    }
    // Serial service: completions are ordered and the last one is the
    // makespan.
    assert!(finishes.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(report.makespan, *finishes.last().unwrap());
    assert!(report.queue_wait_p90() >= report.queue_wait_p50());
    // First job never waits under an empty service.
    assert_eq!(report.outcomes[0].queue_wait, SimDuration::ZERO);
    let billed: Cost = report
        .outcomes
        .iter()
        .fold(Cost::ZERO, |acc, o| acc + o.report.total_cost());
    assert_eq!(report.billed_cost, billed, "no pool, no park cost");
}
