//! Online refitting of a scaling model from observed iteration latencies.
//!
//! The planner's model is fitted once, before the job starts; when
//! reality diverges, rb-ctrl originally scaled the whole model by one
//! drift factor. That cannot distinguish *uniform* compute slowdown
//! (every allocation slows equally) from *parallelism-dependent*
//! contention (many-GPU allocations slow far more, because the
//! communication share grows with the gang). [`RefitScaling`] keeps the
//! analytic model's shape but rescales its compute and communication
//! components independently:
//!
//! ```text
//! L'(g) = α · compute(g) + β · comm(g)
//! ```
//!
//! [`refit_least_squares`] estimates `(α, β)` from observed per-stage,
//! per-allocation mean iteration latencies by ordinary least squares
//! over the model's own component predictions (the 2×2 normal
//! equations, solved in closed form). With observations at a single GPU
//! count the system is rank-deficient; the fit then falls back to a
//! scalar factor (`α = β`), which reproduces the old drift behaviour.

use crate::{PlacementQuality, ScalingModel, SharedScaling};

/// One observed allocation: mean seconds per iteration at a GPU count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyObservation {
    /// GPUs per trial the latency was observed at.
    pub gpus: u32,
    /// Placement quality the gang actually ran under.
    pub placement: PlacementQuality,
    /// Observed mean wall-clock seconds per iteration.
    pub observed_iter_secs: f64,
    /// Relative weight (e.g. number of work units averaged over).
    pub weight: f64,
}

/// A scaling model with independently rescaled compute and
/// communication components.
#[derive(Debug, Clone)]
pub struct RefitScaling {
    inner: SharedScaling,
    compute_factor: f64,
    comm_factor: f64,
}

/// Factors are clamped into this band: a fit asking for less than 0.05×
/// or more than 20× the modelled component is treated as misfit noise.
pub const FACTOR_CLAMP: (f64, f64) = (0.05, 20.0);

impl RefitScaling {
    /// Wraps `inner`, scaling its compute share by `compute_factor` and
    /// its communication share by `comm_factor`. Factors are clamped to
    /// [`FACTOR_CLAMP`].
    ///
    /// # Panics
    ///
    /// Panics if either factor is not finite.
    pub fn new(inner: SharedScaling, compute_factor: f64, comm_factor: f64) -> Self {
        assert!(
            compute_factor.is_finite() && comm_factor.is_finite(),
            "refit factors must be finite"
        );
        let (lo, hi) = FACTOR_CLAMP;
        RefitScaling {
            inner,
            compute_factor: compute_factor.clamp(lo, hi),
            comm_factor: comm_factor.clamp(lo, hi),
        }
    }

    /// The compute-share factor α.
    pub fn compute_factor(&self) -> f64 {
        self.compute_factor
    }

    /// The communication-share factor β.
    pub fn comm_factor(&self) -> f64 {
        self.comm_factor
    }
}

impl ScalingModel for RefitScaling {
    fn iter_latency_secs(&self, gpus: u32, placement: PlacementQuality) -> f64 {
        let (compute, comm) = self.inner.latency_components(gpus, placement);
        self.compute_factor * compute + self.comm_factor * comm
    }

    fn batch_size(&self) -> u32 {
        self.inner.batch_size()
    }

    fn latency_components(&self, gpus: u32, placement: PlacementQuality) -> (f64, f64) {
        let (compute, comm) = self.inner.latency_components(gpus, placement);
        (self.compute_factor * compute, self.comm_factor * comm)
    }
}

/// Weighted least-squares fit of `(α, β)` such that
/// `α·compute(g) + β·comm(g) ≈ observed(g)` over `observations`.
///
/// Returns `None` when there are no usable observations (non-finite or
/// non-positive latencies and weights are skipped). When the
/// observations span fewer than two distinct GPU counts — or the design
/// matrix is otherwise near-singular, e.g. a model whose communication
/// share is everywhere zero — the system cannot separate the two
/// factors and the fit degenerates to the scalar weighted ratio
/// `α = β = Σ w·observed·model / Σ w·model²`.
pub fn refit_least_squares(
    model: &dyn ScalingModel,
    observations: &[LatencyObservation],
) -> Option<(f64, f64)> {
    // Normal equations for min Σ w(α·c + β·m − y)²:
    //   [Σw·c²  Σw·c·m] [α]   [Σw·c·y]
    //   [Σw·c·m Σw·m² ] [β] = [Σw·m·y]
    let (mut scc, mut scm, mut smm, mut scy, mut smy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    let mut gpu_counts: Vec<u32> = Vec::new();
    for obs in observations {
        if !(obs.observed_iter_secs.is_finite() && obs.observed_iter_secs > 0.0) {
            continue;
        }
        let w = if obs.weight.is_finite() && obs.weight > 0.0 {
            obs.weight
        } else {
            continue;
        };
        let (c, m) = model.latency_components(obs.gpus, obs.placement);
        let y = obs.observed_iter_secs;
        scc += w * c * c;
        scm += w * c * m;
        smm += w * m * m;
        scy += w * c * y;
        smy += w * m * y;
        if !gpu_counts.contains(&obs.gpus) {
            gpu_counts.push(obs.gpus);
        }
    }
    if scc + smm <= 0.0 {
        return None;
    }
    let det = scc * smm - scm * scm;
    // Relative determinant test: a rank-1 design (single GPU count, or a
    // comm-free model) has det ≈ 0 at the scale of its diagonal product.
    let well_conditioned = gpu_counts.len() >= 2 && det > 1e-9 * scc * smm.max(1e-300);
    if well_conditioned {
        let alpha = (smm * scy - scm * smy) / det;
        let beta = (scc * smy - scm * scy) / det;
        if alpha.is_finite() && beta.is_finite() {
            let (lo, hi) = FACTOR_CLAMP;
            return Some((alpha.clamp(lo, hi), beta.clamp(lo, hi)));
        }
    }
    // Scalar fallback: α = β minimizing Σ w(α(c+m) − y)².
    let denom = scc + 2.0 * scm + smm;
    if denom <= 0.0 {
        return None;
    }
    let scalar = (scy + smy) / denom;
    if !scalar.is_finite() {
        return None;
    }
    let (lo, hi) = FACTOR_CLAMP;
    let scalar = scalar.clamp(lo, hi);
    Some((scalar, scalar))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::AnalyticScaling;
    use crate::zoo::RESNET50;
    use std::sync::Arc;

    fn base() -> SharedScaling {
        Arc::new(AnalyticScaling::for_arch(&RESNET50, 1024, 4))
    }

    fn observe(model: &dyn ScalingModel, gpus: &[u32]) -> Vec<LatencyObservation> {
        gpus.iter()
            .map(|&g| LatencyObservation {
                gpus: g,
                placement: PlacementQuality::Packed,
                observed_iter_secs: model.iter_latency_secs(g, PlacementQuality::Packed),
                weight: 1.0,
            })
            .collect()
    }

    #[test]
    fn components_sum_to_latency() {
        let m = base();
        for g in [1, 2, 4, 8, 16] {
            for p in [PlacementQuality::Packed, PlacementQuality::Scattered] {
                let (c, comm) = m.latency_components(g, p);
                let l = m.iter_latency_secs(g, p);
                assert!((c + comm - l).abs() < 1e-12 * l, "g={g} {p:?}");
                assert!(c > 0.0 && comm >= 0.0);
            }
        }
        // Communication share grows with the gang.
        let (_, comm2) = m.latency_components(2, PlacementQuality::Packed);
        let (_, comm16) = m.latency_components(16, PlacementQuality::Packed);
        assert!(comm16 > comm2);
    }

    #[test]
    fn recovers_injected_component_factors() {
        let truth = RefitScaling::new(base(), 1.0, 3.0);
        let obs = observe(&truth, &[1, 2, 4, 8, 16]);
        let (alpha, beta) = refit_least_squares(base().as_ref(), &obs).unwrap();
        assert!((alpha - 1.0).abs() < 1e-6, "alpha={alpha}");
        assert!((beta - 3.0).abs() < 1e-6, "beta={beta}");
    }

    #[test]
    fn uniform_slowdown_fits_both_factors_equally() {
        let truth = RefitScaling::new(base(), 2.0, 2.0);
        let obs = observe(&truth, &[1, 4, 16]);
        let (alpha, beta) = refit_least_squares(base().as_ref(), &obs).unwrap();
        assert!((alpha - 2.0).abs() < 1e-6);
        assert!((beta - 2.0).abs() < 1e-6);
    }

    #[test]
    fn single_gpu_count_falls_back_to_scalar() {
        let truth = RefitScaling::new(base(), 1.5, 1.5);
        let obs = observe(&truth, &[4]);
        let (alpha, beta) = refit_least_squares(base().as_ref(), &obs).unwrap();
        assert_eq!(alpha, beta, "rank-deficient fit must be scalar");
        assert!((alpha - 1.5).abs() < 1e-6);
    }

    #[test]
    fn comm_free_model_degenerates_to_scalar() {
        // IdealScaling has no comm term, so the default components put
        // everything in compute; the fit must not blow up.
        let ideal: SharedScaling = Arc::new(crate::rescale::IdealScaling::new(8.0, 512));
        let obs: Vec<LatencyObservation> = [1u32, 2, 4]
            .iter()
            .map(|&g| LatencyObservation {
                gpus: g,
                placement: PlacementQuality::Packed,
                observed_iter_secs: 2.0 * ideal.iter_latency_secs(g, PlacementQuality::Packed),
                weight: 1.0,
            })
            .collect();
        let (alpha, beta) = refit_least_squares(ideal.as_ref(), &obs).unwrap();
        assert_eq!(alpha, beta);
        assert!((alpha - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_observations_are_skipped() {
        let obs = vec![
            LatencyObservation {
                gpus: 2,
                placement: PlacementQuality::Packed,
                observed_iter_secs: f64::NAN,
                weight: 1.0,
            },
            LatencyObservation {
                gpus: 2,
                placement: PlacementQuality::Packed,
                observed_iter_secs: 1.0,
                weight: f64::INFINITY,
            },
        ];
        assert!(refit_least_squares(base().as_ref(), &obs).is_none());
    }

    #[test]
    fn factors_are_clamped() {
        let refit = RefitScaling::new(base(), 1e6, 1e-9);
        assert_eq!(refit.compute_factor(), FACTOR_CLAMP.1);
        assert_eq!(refit.comm_factor(), FACTOR_CLAMP.0);
    }

    #[test]
    fn refit_preserves_batch_size_and_shape() {
        let refit = RefitScaling::new(base(), 1.0, 1.0);
        for g in [1, 2, 8] {
            let a = refit.iter_latency_secs(g, PlacementQuality::Packed);
            let b = base().iter_latency_secs(g, PlacementQuality::Packed);
            assert!((a - b).abs() < 1e-12 * b, "identity refit changes nothing");
        }
        assert_eq!(refit.batch_size(), base().batch_size());
    }
}
