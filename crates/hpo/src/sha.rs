//! Successive Halving and Hyperband specification generators.
//!
//! Successive Halving (SHA, Jamieson & Talwalkar) runs `n` trials in
//! stages; after each stage the best `1/η` survive and the per-trial work
//! grows by `η`. Hyperband hedges over SHA's aggressiveness by running a
//! collection of SHA *brackets* with different trade-offs — expressed here,
//! as in the paper (Fig. 6), as a multi-job: one [`ExperimentSpec`] per
//! bracket.

use crate::spec::ExperimentSpec;
use rb_core::{RbError, Result, TrialId};

/// Parameters of a Successive Halving job, matching the paper's notation
/// (§6): `n` initial trials, `r` minimum iterations, `R` maximum (total)
/// iterations for the surviving trial, and termination rate `eta`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShaParams {
    /// Initial number of trials (`n`).
    pub n: u32,
    /// Iterations assigned to every trial in the first stage (`r`).
    pub r: u64,
    /// Total iterations the final survivor reaches (`R`).
    pub big_r: u64,
    /// Fraction kept per stage is `1/eta` (`η`, fixed to 2 in most paper
    /// experiments).
    pub eta: u32,
    /// Optional cap on the number of stages. Hyperband bracket `s` runs
    /// exactly `s + 1` stages; plain SHA leaves this `None` and halves
    /// until one trial remains.
    pub max_stages: Option<usize>,
}

impl ShaParams {
    /// Convenience constructor using the paper's `SHA(n, r, R)` notation
    /// with the default `η = 2`.
    pub fn new(n: u32, r: u64, big_r: u64) -> Self {
        ShaParams {
            n,
            r,
            big_r,
            eta: 2,
            max_stages: None,
        }
    }

    /// Sets the termination rate `η`.
    pub fn with_eta(mut self, eta: u32) -> Self {
        self.eta = eta;
        self
    }

    /// Caps the number of stages (see [`ShaParams::max_stages`]).
    pub fn with_max_stages(mut self, max_stages: usize) -> Self {
        self.max_stages = Some(max_stages);
        self
    }

    /// Stable one-line description in the paper's notation, for tables
    /// and trace fields: `SHA(n=32, r=1, R=50, eta=3)`, with `/s` for a
    /// stage-capped Hyperband bracket.
    pub fn describe(&self) -> String {
        match self.max_stages {
            Some(s) => format!(
                "SHA(n={}, r={}, R={}, eta={})/{}",
                self.n, self.r, self.big_r, self.eta, s
            ),
            None => format!(
                "SHA(n={}, r={}, R={}, eta={})",
                self.n, self.r, self.big_r, self.eta
            ),
        }
    }

    /// Generates the stage-by-stage [`ExperimentSpec`].
    ///
    /// The ladder is *work-driven*: stage `k` assigns `r·η^k` additional
    /// iterations (the final stage absorbs whatever remains so the
    /// survivor ends at exactly `R` total iterations — e.g. Table 3's
    /// `13→50` final stage for `SHA(n=32, r=1, R=50, η=3)`), while the
    /// trial count `⌊n/η^k⌋` floors at one. Ladders whose trial count hits
    /// one early merge the single-trial tail into one final stage; ladders
    /// with many trials may finish with more than one survivor (`R` is the
    /// work given "to at least 1 trial", §6).
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidSpec`] if `n` or `r` is zero, `η < 2`,
    /// `R < r`, or `max_stages` is zero.
    pub fn generate(&self) -> Result<ExperimentSpec> {
        if self.n == 0 {
            return Err(RbError::InvalidSpec("SHA needs n >= 1".into()));
        }
        if self.r == 0 {
            return Err(RbError::InvalidSpec("SHA needs r >= 1".into()));
        }
        if self.eta < 2 {
            return Err(RbError::InvalidSpec(format!(
                "SHA needs eta >= 2, got {}",
                self.eta
            )));
        }
        if self.big_r < self.r {
            return Err(RbError::InvalidSpec(format!(
                "SHA needs R >= r, got R = {} < r = {}",
                self.big_r, self.r
            )));
        }
        if self.max_stages == Some(0) {
            return Err(RbError::InvalidSpec("max_stages must be >= 1".into()));
        }
        let mut stages: Vec<(u32, u64)> = Vec::new();
        let mut trials = self.n;
        let mut planned = self.r;
        let mut cumulative = 0u64;
        loop {
            let remaining = self.big_r - cumulative;
            let is_last = planned >= remaining || self.max_stages == Some(stages.len() + 1);
            let add = if is_last { remaining } else { planned };
            // Merge a single-trial rung into a preceding single-trial stage.
            match stages.last_mut() {
                Some(last) if last.0 == 1 && trials == 1 => last.1 += add,
                _ => stages.push((trials, add)),
            }
            cumulative += add;
            if is_last {
                break;
            }
            trials = (trials / self.eta).max(1);
            planned = planned.saturating_mul(u64::from(self.eta));
        }
        ExperimentSpec::from_stages(&stages)
    }
}

/// Generates the Hyperband bracket collection for a maximum resource `R`,
/// minimum resource `r`, and rate `η`: bracket `s` runs
/// `SHA(n_s, R/η^s, R, η)` with `n_s = ⌈(s_max+1)·η^s / (s+1)⌉`.
///
/// Returns the brackets most-aggressive first (most trials, least initial
/// work). A Hyperband job is executed as a multi-job: each bracket is an
/// independent spec whose plans can be optimized separately.
///
/// # Errors
///
/// Returns [`RbError::InvalidSpec`] for zero `r`/`R`, `η < 2`, or `R < r`.
pub fn hyperband_brackets(
    r: u64,
    big_r: u64,
    eta: u32,
) -> Result<Vec<(ShaParams, ExperimentSpec)>> {
    if r == 0 || big_r < r {
        return Err(RbError::InvalidSpec(format!(
            "hyperband needs 0 < r <= R, got r={r}, R={big_r}"
        )));
    }
    if eta < 2 {
        return Err(RbError::InvalidSpec(format!("eta must be >= 2, got {eta}")));
    }
    let s_max = ((big_r as f64 / r as f64).ln() / f64::from(eta).ln()).floor() as u32;
    let mut brackets = Vec::new();
    for s in (0..=s_max).rev() {
        let eta_s = f64::from(eta).powi(s as i32);
        let n = (f64::from(s_max + 1) * eta_s / f64::from(s + 1)).ceil() as u32;
        // The bracket's first-stage work is R/η^s (at least r).
        let r0 = ((big_r as f64 / eta_s).floor() as u64).max(r);
        let params = ShaParams {
            n,
            r: r0,
            big_r,
            eta,
            max_stages: Some(s as usize + 1),
        };
        brackets.push((params, params.generate()?));
    }
    Ok(brackets)
}

/// Ranks stage results and returns the ids of the `keep` best trials
/// (highest metric first). Ties break toward the lower trial id so that
/// promotion is deterministic.
///
/// This is the synchronization-barrier step of Fig. 3: the top `1/η`
/// fraction survives into the next stage.
pub fn select_survivors(results: &[(TrialId, f64)], keep: usize) -> Vec<TrialId> {
    let mut ranked: Vec<(TrialId, f64)> = results.to_vec();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    ranked.truncate(keep);
    ranked.into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_uses_the_paper_notation() {
        let params = ShaParams::new(32, 1, 50).with_eta(3);
        assert_eq!(params.describe(), "SHA(n=32, r=1, R=50, eta=3)");
        assert_eq!(
            params.with_max_stages(2).describe(),
            "SHA(n=32, r=1, R=50, eta=3)/2"
        );
    }

    #[test]
    fn table3_spec_from_paper_params() {
        // SHA(n=32, r=1, R=50, η=3) → stages (32,1), (10,3), (3,9), (1,37);
        // epoch boundaries 0-1, 1-4, 4-13, 13-50 (Table 3).
        let spec = ShaParams::new(32, 1, 50).with_eta(3).generate().unwrap();
        let stages: Vec<(u32, u64)> = (0..spec.num_stages())
            .map(|i| spec.get_stage(i).unwrap())
            .collect();
        assert_eq!(stages, vec![(32, 1), (10, 3), (3, 9), (1, 37)]);
        assert_eq!(spec.cumulative_iters(), vec![1, 4, 13, 50]);
    }

    #[test]
    fn fig9_spec_from_paper_params() {
        // SHA(n=64, r=4, R=508, η=2) → 7 stages, trials 64..1, additional
        // work 4, 8, …, 256; survivor ends at 4·(2⁷−1) = 508.
        let spec = ShaParams::new(64, 4, 508).generate().unwrap();
        assert_eq!(spec.num_stages(), 7);
        let stages: Vec<(u32, u64)> = (0..7).map(|i| spec.get_stage(i).unwrap()).collect();
        assert_eq!(
            stages,
            vec![
                (64, 4),
                (32, 8),
                (16, 16),
                (8, 32),
                (4, 64),
                (2, 128),
                (1, 256)
            ]
        );
        assert_eq!(spec.max_iters(), 508);
    }

    #[test]
    fn fig12_spec_survivor_reaches_r() {
        // SHA(n=512, r=4, R=4096, η=2).
        let spec = ShaParams::new(512, 4, 4096).generate().unwrap();
        assert_eq!(spec.num_stages(), 10);
        assert_eq!(spec.initial_trials(), 512);
        assert_eq!(spec.max_iters(), 4096);
    }

    #[test]
    fn non_power_of_eta_trial_counts_floor() {
        let spec = ShaParams::new(100, 1, 1000).with_eta(3).generate().unwrap();
        let trials: Vec<u32> = spec.stages().map(|s| s.num_trials).collect();
        assert_eq!(trials, vec![100, 33, 11, 3, 1]);
    }

    #[test]
    fn invalid_params_are_rejected() {
        assert!(ShaParams::new(0, 1, 10).generate().is_err());
        assert!(ShaParams::new(8, 0, 10).generate().is_err());
        assert!(ShaParams::new(8, 1, 10).with_eta(1).generate().is_err());
        assert!(ShaParams::new(8, 10, 5).generate().is_err(), "R < r");
    }

    #[test]
    fn small_r_clips_the_ladder_with_multiple_survivors() {
        // SHA(n=64, r=4, R=100, η=2): the work budget runs out while four
        // trials remain — "R is assigned to at least 1 trial" (§6).
        let spec = ShaParams::new(64, 4, 100).generate().unwrap();
        let stages: Vec<(u32, u64)> = spec.stages().map(|s| (s.num_trials, s.iters)).collect();
        assert_eq!(stages, vec![(64, 4), (32, 8), (16, 16), (8, 32), (4, 40)]);
        assert_eq!(spec.max_iters(), 100);
    }

    #[test]
    fn single_trial_tail_is_merged() {
        // n=100, η=3: trials floor to 1 at rung 4; rungs 4–6 (work 81,
        // 243, and the 636 remainder) merge into one 960-iteration final
        // stage rather than three barriers around a lone trial.
        let spec = ShaParams::new(100, 1, 1000).with_eta(3).generate().unwrap();
        assert_eq!(spec.num_stages(), 5);
        assert_eq!(spec.get_stage(4).unwrap(), (1, 960));
        assert_eq!(spec.max_iters(), 1000);
    }

    #[test]
    fn single_trial_sha_is_one_stage() {
        let spec = ShaParams::new(1, 4, 100).generate().unwrap();
        assert_eq!(spec.num_stages(), 1);
        assert_eq!(spec.get_stage(0).unwrap(), (1, 100));
    }

    #[test]
    fn hyperband_brackets_cover_aggressiveness_spectrum() {
        let brackets = hyperband_brackets(1, 81, 3).unwrap();
        // s_max = 4 → 5 brackets.
        assert_eq!(brackets.len(), 5);
        // First bracket: most trials, minimal initial work.
        let (p0, s0) = &brackets[0];
        assert_eq!(p0.n, 81);
        assert_eq!(s0.get_stage(0).unwrap().1, 1);
        // Last bracket: a single stage running few trials to completion.
        let (pl, sl) = &brackets[brackets.len() - 1];
        assert_eq!(pl.n, 5);
        assert_eq!(sl.num_stages(), 1);
        assert_eq!(sl.get_stage(0).unwrap(), (5, 81));
        // Every bracket's survivor reaches R.
        for (_, s) in &brackets {
            assert_eq!(s.max_iters(), 81);
        }
    }

    #[test]
    fn hyperband_rejects_bad_params() {
        assert!(hyperband_brackets(0, 81, 3).is_err());
        assert!(hyperband_brackets(10, 5, 3).is_err());
        assert!(hyperband_brackets(1, 81, 1).is_err());
    }

    #[test]
    fn survivors_are_top_k_by_metric() {
        let results = vec![
            (TrialId::new(0), 0.70),
            (TrialId::new(1), 0.90),
            (TrialId::new(2), 0.80),
            (TrialId::new(3), 0.60),
        ];
        assert_eq!(
            select_survivors(&results, 2),
            vec![TrialId::new(1), TrialId::new(2)]
        );
    }

    #[test]
    fn survivor_ties_break_by_id() {
        let results = vec![
            (TrialId::new(5), 0.8),
            (TrialId::new(2), 0.8),
            (TrialId::new(9), 0.8),
        ];
        assert_eq!(
            select_survivors(&results, 2),
            vec![TrialId::new(2), TrialId::new(5)]
        );
    }

    #[test]
    fn survivors_handles_nan_and_overflow_keep() {
        let results = vec![(TrialId::new(0), f64::NAN), (TrialId::new(1), 0.5)];
        // NaN ranks as equal; selection still returns `keep` items
        // deterministically and never panics.
        let s = select_survivors(&results, 5);
        assert_eq!(s.len(), 2);
    }
}
