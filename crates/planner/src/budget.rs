//! The dual planning problem: minimize JCT subject to a cost budget.
//!
//! The paper focuses on minimizing cost under a time constraint but notes
//! that "many of the techniques presented extend naturally to the related
//! problem of minimizing job completion time subject to cost" (§2,
//! footnote 1). This module is that extension: the same simulator and
//! fair-allocation ladder, with the greedy direction reversed — start
//! from the *cheapest* plan and repeatedly buy the increment with the
//! best JCT-marginal benefit
//!
//! ```text
//! m_i = (T(a*) − T(a_i)) / (C(a_i) − C(a*))
//! ```
//!
//! until no candidate both fits the budget and improves completion time.

use crate::beam::{batch_select, beam_descent, Descent};
use rb_core::{Cost, RbError, Result};
use rb_hpo::ExperimentSpec;
use rb_sim::{AllocationPlan, Prediction, Simulator};

/// Tunables for the budget-constrained planner.
#[derive(Debug, Clone)]
pub struct BudgetPlannerConfig {
    /// Cap on GPUs per trial when growing allocations.
    pub max_gpus_per_trial: u32,
    /// Minimum JCT improvement per greedy step, in seconds.
    pub improvement_threshold_secs: f64,
    /// Hard cap on greedy iterations.
    pub max_steps: usize,
    /// Beam width of the ascent frontier; `1` (the default) is the
    /// classic single-incumbent loop (see [`crate::beam`]).
    pub beam_width: usize,
}

impl Default for BudgetPlannerConfig {
    fn default() -> Self {
        BudgetPlannerConfig {
            max_gpus_per_trial: 16,
            improvement_threshold_secs: 1.0,
            max_steps: 10_000,
            beam_width: 1,
        }
    }
}

/// The next fair allocation strictly above `alloc` for `trials`, if one
/// exists below the per-trial cap (the mirror image of
/// [`AllocationPlan::decrement_fair`]).
fn increment_fair(alloc: u32, trials: u32, max_gpus_per_trial: u32) -> Option<u32> {
    let cap = trials.saturating_mul(max_gpus_per_trial);
    if alloc >= cap {
        return None;
    }
    // Smallest fair value strictly above `alloc`.
    if alloc >= trials {
        // Multiples of the trial count.
        let next = ((alloc / trials) + 1) * trials;
        (next <= cap).then_some(next)
    } else {
        // Divisors of the trial count (or jump up to `trials` itself).
        ((alloc + 1)..=trials).find(|d| trials % d == 0)
    }
}

/// Jump to the next fair allocation that needs strictly more instances —
/// where per-instance spending (and meaningful speedup) actually changes.
fn increment_to_more_instances(
    alloc: u32,
    trials: u32,
    gpus_per_instance: u32,
    max_gpus_per_trial: u32,
) -> Option<u32> {
    let current = AllocationPlan::effective_instances(alloc, trials, gpus_per_instance);
    let mut a = alloc;
    while let Some(next) = increment_fair(a, trials, max_gpus_per_trial) {
        if AllocationPlan::effective_instances(next, trials, gpus_per_instance) > current {
            return Some(next);
        }
        a = next;
    }
    None
}

/// Finds an allocation plan minimizing predicted JCT subject to
/// `budget`.
///
/// The warm start is the all-ones plan (cheapest possible execution);
/// greedy steps grow one stage at a time along the fair ladder, keeping
/// the candidate with the largest JCT reduction per dollar.
///
/// # Errors
///
/// Returns [`RbError::Infeasible`] if even the cheapest plan exceeds the
/// budget; propagates simulator errors.
pub fn plan_min_jct(
    sim: &Simulator,
    spec: &ExperimentSpec,
    budget: Cost,
    config: &BudgetPlannerConfig,
) -> Result<(AllocationPlan, Prediction)> {
    let gpg = sim.cloud().gpus_per_instance();
    // Warm start: the cheapest static plan, ignoring time entirely. (The
    // all-ones plan is *not* cheapest — a tiny cluster holds its
    // instances for the whole serialized job.)
    let mut starts = vec![AllocationPlan::flat(1, spec.num_stages())];
    starts.extend(
        crate::static_planner::static_candidates(spec, config.max_gpus_per_trial)
            .into_iter()
            .map(|g| AllocationPlan::flat(g, spec.num_stages())),
    );
    // Batched warm-start screening: cheapest start wins, earlier index
    // breaking ties (the classic scan's strict `<`).
    let (start_idx, start_pred) =
        batch_select(sim, spec, &starts, |_| true, |a, b| a.cost < b.cost)?
            .expect("at least the all-ones start was predicted");
    let start_plan = starts.swap_remove(start_idx);
    if start_pred.cost > budget {
        return Err(RbError::Infeasible {
            reason: format!(
                "cheapest plan costs {}, budget is {budget}",
                start_pred.cost
            ),
        });
    }
    let descent = Descent {
        sim,
        spec,
        width: config.beam_width,
        max_steps: config.max_steps,
        accept_event: "budget.accept",
    };
    let (plan, pred, _steps) = beam_descent(
        &descent,
        start_plan,
        start_pred,
        |plan, out| {
            for i in 0..spec.num_stages() {
                let trials = spec.get_stage(i)?.0;
                let cur = plan.gpus(i);
                let mut nexts = Vec::with_capacity(2);
                if let Some(n) = increment_fair(cur, trials, config.max_gpus_per_trial) {
                    nexts.push(n);
                }
                if let Some(n) =
                    increment_to_more_instances(cur, trials, gpg, config.max_gpus_per_trial)
                {
                    if !nexts.contains(&n) {
                        nexts.push(n);
                    }
                }
                for next in nexts {
                    let mut cand = plan.clone();
                    cand.set_gpus(i, next);
                    out.push(cand);
                }
            }
            Ok(())
        },
        |parent, pred| {
            if pred.cost > budget {
                return None;
            }
            let gained = parent.jct.as_secs_f64() - pred.jct.as_secs_f64();
            if gained < config.improvement_threshold_secs {
                return None;
            }
            let dc = (pred.cost - parent.cost).as_dollars();
            Some(if dc <= 0.0 {
                f64::INFINITY
            } else {
                gained / dc
            })
        },
        |a, b| a.jct < b.jct,
    )?;
    Ok((plan, pred))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;
    use rb_cloud::CloudPricing;
    use rb_core::SimDuration;
    use rb_profile::{CloudProfile, ModelProfile};
    use rb_scaling::zoo::RESNET50;
    use rb_scaling::AnalyticScaling;
    use rb_sim::SimConfig;
    use std::sync::Arc;

    fn sim() -> Simulator {
        let scaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));
        let model = ModelProfile::from_scaling("rn50", scaling, 10, 2.0, 0.0);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15));
        Simulator::new(model, cloud).with_config(SimConfig {
            samples: 3,
            seed: 5,
            sync_overhead_secs: 1.0,
        })
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(16, 4), (8, 8), (4, 16), (2, 32), (1, 64)]).unwrap()
    }

    #[test]
    fn increment_fair_mirrors_decrement() {
        // Above the trial count: multiples.
        assert_eq!(increment_fair(10, 10, 16), Some(20));
        assert_eq!(increment_fair(20, 10, 16), Some(30));
        // Below: divisors.
        assert_eq!(increment_fair(2, 10, 16), Some(5));
        assert_eq!(increment_fair(5, 10, 16), Some(10));
        assert_eq!(increment_fair(1, 7, 16), Some(7), "prime counts jump to n");
        // Capped.
        assert_eq!(increment_fair(160, 10, 16), None);
    }

    #[test]
    fn bigger_budget_buys_smaller_jct() {
        let s = sim();
        let tight = plan_min_jct(
            &s,
            &spec(),
            Cost::from_dollars(3.0),
            &BudgetPlannerConfig::default(),
        )
        .unwrap();
        let roomy = plan_min_jct(
            &s,
            &spec(),
            Cost::from_dollars(8.0),
            &BudgetPlannerConfig::default(),
        )
        .unwrap();
        assert!(tight.1.cost <= Cost::from_dollars(3.0));
        assert!(roomy.1.cost <= Cost::from_dollars(8.0));
        assert!(
            roomy.1.jct <= tight.1.jct,
            "more budget should not slow the job: {} vs {}",
            roomy.1.jct,
            tight.1.jct
        );
        assert!(roomy.1.jct < tight.1.jct, "budget should buy speed here");
    }

    #[test]
    fn budget_is_respected() {
        let s = sim();
        for dollars in [2.5, 4.0, 10.0] {
            let budget = Cost::from_dollars(dollars);
            let (_, pred) =
                plan_min_jct(&s, &spec(), budget, &BudgetPlannerConfig::default()).unwrap();
            assert!(pred.cost <= budget, "{} > {budget}", pred.cost);
        }
    }

    #[test]
    fn impossible_budget_is_infeasible() {
        let s = sim();
        let err = plan_min_jct(
            &s,
            &spec(),
            Cost::from_dollars(0.01),
            &BudgetPlannerConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RbError::Infeasible { .. }));
    }

    #[test]
    fn grown_plans_stay_fair() {
        let s = sim();
        let (plan, _) = plan_min_jct(
            &s,
            &spec(),
            Cost::from_dollars(8.0),
            &BudgetPlannerConfig::default(),
        )
        .unwrap();
        assert!(plan.is_fair(&spec()), "{plan} is unfair");
    }
}
