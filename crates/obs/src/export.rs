//! Trace exporters: a JSONL event stream and a Chrome `trace_event`
//! JSON document.
//!
//! **JSONL** — one JSON object per line. Event lines first, in
//! emission order, each carrying a strictly increasing `seq` and a
//! virtual timestamp `t_ms`; then one `metric` line per counter and
//! histogram (sorted by name). The format is documented and enforced by
//! [`crate::schema::validate_jsonl`].
//!
//! **Chrome trace** — a `{"traceEvents": [...]}` document loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>. Lanes map to
//! process/thread rows:
//!
//! | pid | process      | tid                    |
//! |-----|--------------|------------------------|
//! | 1   | trials       | trial id + 1           |
//! | 2   | nodes        | node id + 1            |
//! | 3   | control      | 1 ctrl, 2 planner, 3 cloud, 4 global |
//! | 4   | stages       | stage index + 1        |
//! | 5   | jobs         | job id + 1             |
//! | 6   | brackets     | bracket index + 1      |
//!
//! Closed spans become `ph:"X"` complete events, explicit
//! `span_start`/`span_end` pairs become `ph:"B"`/`ph:"E"` begin/end
//! events, instants `ph:"i"`, gauges `ph:"C"` counter tracks.
//! Timestamps are microseconds of virtual time.

use crate::json::{write_json_f64, write_json_str};
use crate::memory::{CounterEntry, HistogramEntry, TraceLog};
use crate::recorder::{Event, EventKind, Lane, Value};
use std::fmt::Write as _;

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => write_json_f64(out, *v),
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => write_json_str(out, s),
    }
}

fn write_fields(out: &mut String, fields: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_str(out, key);
        out.push(':');
        write_value(out, value);
    }
    out.push('}');
}

/// Renders one event as its JSONL line (no trailing newline). Shared by
/// the batch exporter and [`crate::streaming::StreamingRecorder`], so
/// both produce identical bytes for the same event stream.
pub(crate) fn write_event_line(out: &mut String, seq: usize, event: &Event) {
    let _ = write!(out, "{{\"seq\":{seq},\"t_ms\":{}", event.at.as_millis());
    out.push_str(",\"scope\":");
    write_json_str(out, event.scope);
    out.push_str(",\"name\":");
    write_json_str(out, event.name);
    out.push_str(",\"lane\":");
    write_json_str(out, &event.lane.label());
    match &event.kind {
        EventKind::Instant => out.push_str(",\"kind\":\"instant\""),
        EventKind::Span { end } => {
            let _ = write!(out, ",\"kind\":\"span\",\"end_ms\":{}", end.as_millis());
        }
        EventKind::Gauge { value } => {
            out.push_str(",\"kind\":\"gauge\",\"value\":");
            write_json_f64(out, *value);
        }
        EventKind::SpanStart { span, parent } => {
            let _ = write!(out, ",\"kind\":\"span_start\",\"span_id\":{}", span.0);
            if let Some(parent) = parent {
                let _ = write!(out, ",\"parent_id\":{}", parent.0);
            }
        }
        EventKind::SpanEnd { span } => {
            let _ = write!(out, ",\"kind\":\"span_end\",\"span_id\":{}", span.0);
        }
    }
    out.push_str(",\"fields\":");
    write_fields(out, &event.fields);
    out.push('}');
}

/// Exports a [`TraceLog`] as a JSONL document: event lines stamped in
/// virtual time followed by final `metric` lines. Byte-deterministic
/// for a given log.
pub fn export_jsonl(log: &TraceLog) -> String {
    let mut out = String::new();
    for (seq, event) in log.events.iter().enumerate() {
        write_event_line(&mut out, seq, event);
        out.push('\n');
    }
    write_metric_lines(&mut out, &log.counters, &log.histograms, log.dropped_events);
    out
}

/// Renders the trailing metric lines (counters sorted, then histograms,
/// then the dropped-events note). Shared by [`export_jsonl`] and the
/// streaming sink's `finish`, so the metric tail is byte-identical
/// regardless of which sink produced the stream.
pub(crate) fn write_metric_lines(
    out: &mut String,
    counters: &[CounterEntry],
    histograms: &[HistogramEntry],
    dropped_events: u64,
) {
    for counter in counters {
        let _ = write!(out, "{{\"metric\":\"counter\",\"scope\":");
        write_json_str(out, counter.scope);
        out.push_str(",\"name\":");
        write_json_str(out, counter.name);
        let _ = write!(out, ",\"value\":{}}}", counter.value);
        out.push('\n');
    }
    for hist in histograms {
        out.push_str("{\"metric\":\"histogram\",\"scope\":");
        write_json_str(out, hist.scope);
        out.push_str(",\"name\":");
        write_json_str(out, hist.name);
        let _ = write!(out, ",\"count\":{}", hist.count);
        out.push_str(",\"min\":");
        write_json_f64(out, hist.min);
        out.push_str(",\"max\":");
        write_json_f64(out, hist.max);
        out.push_str(",\"p50\":");
        write_json_f64(out, hist.p50);
        out.push_str(",\"p90\":");
        write_json_f64(out, hist.p90);
        out.push_str("}\n");
    }
    if dropped_events > 0 {
        // A bounded recorder evicted events; note the count as a
        // synthetic counter so readers know the stream is a tail.
        let _ = writeln!(
            out,
            "{{\"metric\":\"counter\",\"scope\":\"obs\",\"name\":\"dropped_events\",\"value\":{dropped_events}}}",
        );
    }
}

/// (pid, tid) placement of a lane in the Chrome trace.
fn lane_track(lane: &Lane) -> (u64, u64) {
    match lane {
        Lane::Trial(id) => (1, id + 1),
        Lane::Node(id) => (2, id + 1),
        Lane::Controller => (3, 1),
        Lane::Planner => (3, 2),
        Lane::Cloud => (3, 3),
        Lane::Global => (3, 4),
        Lane::Stage(s) => (4, u64::from(*s) + 1),
        Lane::Job(id) => (5, id + 1),
        Lane::Bracket(b) => (6, u64::from(*b) + 1),
    }
}

fn lane_thread_name(lane: &Lane) -> String {
    match lane {
        Lane::Trial(id) => format!("trial {id}"),
        Lane::Node(id) => format!("node {id}"),
        Lane::Controller => "controller".to_owned(),
        Lane::Planner => "planner".to_owned(),
        Lane::Cloud => "cloud".to_owned(),
        Lane::Global => "run".to_owned(),
        Lane::Stage(s) => format!("stage {s}"),
        Lane::Job(id) => format!("job {id}"),
        Lane::Bracket(b) => format!("bracket {b}"),
    }
}

fn push_metadata(events: &mut Vec<String>, name: &str, pid: u64, tid: Option<u64>, label: &str) {
    let mut line = String::new();
    let _ = write!(line, "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid}");
    if let Some(tid) = tid {
        let _ = write!(line, ",\"tid\":{tid}");
    }
    line.push_str(",\"args\":{\"name\":");
    write_json_str(&mut line, label);
    line.push_str("}}");
    events.push(line);
}

/// Exports a [`TraceLog`] as a Chrome `trace_event` JSON document with
/// one lane per node, trial, stage, and control subsystem.
pub fn export_chrome(log: &TraceLog) -> String {
    let mut entries: Vec<String> = Vec::new();

    // Process names, then one thread_name per lane actually used
    // (sorted for determinism).
    for (pid, name) in [
        (1, "trials"),
        (2, "nodes"),
        (3, "control"),
        (4, "stages"),
        (5, "jobs"),
        (6, "brackets"),
    ] {
        push_metadata(&mut entries, "process_name", pid, None, name);
    }
    if log.dropped_events > 0 {
        // Flag truncated streams from a bounded recorder ring.
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"name\":\"dropped_events\",\"ph\":\"M\",\"pid\":3,\"args\":{{\"count\":{}}}}}",
            log.dropped_events
        );
        entries.push(line);
    }
    let mut lanes: Vec<Lane> = log.events.iter().map(|e| e.lane).collect();
    lanes.sort();
    lanes.dedup();
    for lane in &lanes {
        let (pid, tid) = lane_track(lane);
        push_metadata(
            &mut entries,
            "thread_name",
            pid,
            Some(tid),
            &lane_thread_name(lane),
        );
    }

    for event in &log.events {
        let (pid, tid) = lane_track(&event.lane);
        let ts_us = event.at.as_millis() * 1000;
        let mut line = String::new();
        line.push_str("{\"name\":");
        let full = format!("{}.{}", event.scope, event.name);
        match &event.kind {
            EventKind::Gauge { value } => {
                // Counter tracks chart the time series per (name, pid).
                write_json_str(&mut line, &full);
                let _ = write!(
                    line,
                    ",\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{ts_us},\"pid\":{pid}",
                    event.scope
                );
                line.push_str(",\"args\":{\"value\":");
                write_json_f64(&mut line, *value);
                line.push_str("}}");
            }
            EventKind::Span { end } => {
                write_json_str(&mut line, &full);
                let dur_us = end.saturating_since(event.at).as_millis() * 1000;
                let _ = write!(
                    line,
                    ",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us},\"dur\":{dur_us},\"pid\":{pid},\"tid\":{tid},\"args\":",
                    event.scope
                );
                write_fields(&mut line, &event.fields);
                line.push('}');
            }
            EventKind::Instant => {
                write_json_str(&mut line, &full);
                let _ = write!(
                    line,
                    ",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\"pid\":{pid},\"tid\":{tid},\"args\":",
                    event.scope
                );
                write_fields(&mut line, &event.fields);
                line.push('}');
            }
            EventKind::SpanStart { span, parent } => {
                write_json_str(&mut line, &full);
                let _ = write!(
                    line,
                    ",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{ts_us},\"pid\":{pid},\"tid\":{tid},\"args\":",
                    event.scope
                );
                let mut args = event.fields.clone();
                args.push(("span_id", Value::U64(span.0)));
                if let Some(parent) = parent {
                    args.push(("parent_id", Value::U64(parent.0)));
                }
                write_fields(&mut line, &args);
                line.push('}');
            }
            EventKind::SpanEnd { span } => {
                write_json_str(&mut line, &full);
                let _ = write!(
                    line,
                    ",\"cat\":\"{}\",\"ph\":\"E\",\"ts\":{ts_us},\"pid\":{pid},\"tid\":{tid},\"args\":",
                    event.scope
                );
                let mut args = event.fields.clone();
                args.push(("span_id", Value::U64(span.0)));
                write_fields(&mut line, &args);
                line.push('}');
            }
        }
        entries.push(line);
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, entry) in entries.iter().enumerate() {
        out.push_str(entry);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;
    use crate::memory::MemoryRecorder;
    use crate::recorder::Recorder;
    use rb_core::SimTime;

    fn sample_log() -> TraceLog {
        let rec = MemoryRecorder::new();
        rec.instant(
            SimTime::from_millis(10),
            "exec",
            "node.up",
            Lane::Node(0),
            vec![("preempted", false.into())],
        );
        rec.span(
            SimTime::from_millis(10),
            SimTime::from_millis(510),
            "exec",
            "trial.segment",
            Lane::Trial(3),
            vec![("stage", 0u64.into()), ("gpus", 8u64.into())],
        );
        rec.gauge(
            SimTime::from_millis(510),
            "ctrl",
            "drift",
            Lane::Controller,
            1.25,
        );
        rec.counter_add("sim", "plan_cache.hits", 7);
        rec.histogram("sim", "sample_jct_secs", 12.5);
        rec.finish()
    }

    #[test]
    fn jsonl_lines_parse_and_count() {
        let text = export_jsonl(&sample_log());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "3 events + 1 counter + 1 histogram");
        for line in &lines {
            parse_json(line).expect("every JSONL line is valid JSON");
        }
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[1].contains("\"end_ms\":510"));
        assert!(lines[3].contains("\"metric\":\"counter\""));
    }

    #[test]
    fn chrome_export_is_valid_json_with_lanes() {
        let doc = export_chrome(&sample_log());
        let parsed = parse_json(&doc).expect("chrome export parses");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 6 process_name + 3 thread_name + 3 events
        assert_eq!(events.len(), 12);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("span event present");
        assert_eq!(span.get("ts").unwrap().as_u64(), Some(10_000));
        assert_eq!(span.get("dur").unwrap().as_u64(), Some(500_000));
        assert_eq!(span.get("pid").unwrap().as_u64(), Some(1), "trials process");
        let counter = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .expect("gauge becomes counter track");
        assert_eq!(
            counter.get("args").unwrap().get("value").unwrap().as_f64(),
            Some(1.25)
        );
    }

    #[test]
    fn bounded_ring_exports_note_dropped_events() {
        let rec = MemoryRecorder::new().with_capacity(1);
        for i in 0..3u64 {
            rec.instant(SimTime::from_millis(i), "t", "e", Lane::Global, Vec::new());
        }
        let log = rec.finish();
        let jsonl = export_jsonl(&log);
        let note = jsonl.lines().last().expect("export has lines");
        assert_eq!(
            note,
            "{\"metric\":\"counter\",\"scope\":\"obs\",\"name\":\"dropped_events\",\"value\":2}"
        );
        crate::schema::validate_jsonl(&jsonl).expect("noted export still validates");
        let chrome = export_chrome(&log);
        let parsed = parse_json(&chrome).expect("chrome export parses");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let meta = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("dropped_events"))
            .expect("chrome export carries a dropped_events metadata entry");
        assert_eq!(
            meta.get("args").unwrap().get("count").unwrap().as_u64(),
            Some(2)
        );
        // Unbounded logs carry no note (existing exact-count tests
        // double as the regression guard).
        assert!(!export_jsonl(&sample_log()).contains("dropped_events"));
        assert!(!export_chrome(&sample_log()).contains("dropped_events"));
    }

    #[test]
    fn drops_after_a_snapshot_still_reach_both_exports_consistently() {
        // Regression: eviction bookkeeping is live state, not snapshot
        // state. Drops that happen *after* an earlier finish() (e.g. a
        // mid-run flush for progress reporting) must still be counted
        // in later exports, and JSONL and Chrome must agree on the
        // number.
        let rec = MemoryRecorder::new().with_capacity(2);
        for i in 0..3u64 {
            rec.instant(SimTime::from_millis(i), "t", "e", Lane::Global, Vec::new());
        }
        let early = rec.finish();
        assert_eq!(early.dropped_events, 1);
        // Two more events after the snapshot, both evicting.
        for i in 3..5u64 {
            rec.instant(SimTime::from_millis(i), "t", "e", Lane::Global, Vec::new());
        }
        let log = rec.finish();
        assert_eq!(log.dropped_events, 3, "post-snapshot drops accumulate");
        let jsonl = export_jsonl(&log);
        let note = jsonl.lines().last().unwrap();
        assert_eq!(
            note,
            "{\"metric\":\"counter\",\"scope\":\"obs\",\"name\":\"dropped_events\",\"value\":3}"
        );
        crate::schema::validate_jsonl(&jsonl).expect("tail export validates");
        let chrome = export_chrome(&log);
        let parsed = parse_json(&chrome).expect("chrome export parses");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let meta = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("dropped_events"))
            .expect("chrome carries the drop note");
        assert_eq!(
            meta.get("args").unwrap().get("count").unwrap().as_u64(),
            Some(3),
            "JSONL and Chrome agree on dropped_count"
        );
    }

    #[test]
    fn explicit_span_pairs_export_to_both_formats() {
        use crate::recorder::{SpanId, SpanTracker};
        let rec = MemoryRecorder::new();
        let mut spans = SpanTracker::new();
        let (run, _) = spans.open();
        rec.span_start(
            SimTime::ZERO,
            "exec",
            "run",
            Lane::Global,
            run,
            None,
            Vec::new(),
        );
        let (stage, parent) = spans.open();
        rec.span_start(
            SimTime::from_millis(5),
            "exec",
            "stage",
            Lane::Stage(0),
            stage,
            parent,
            vec![("stage", 0u64.into())],
        );
        rec.span_end(
            SimTime::from_millis(9),
            "exec",
            "stage",
            Lane::Stage(0),
            spans.close(),
            Vec::new(),
        );
        rec.span_end(
            SimTime::from_millis(10),
            "exec",
            "run",
            Lane::Global,
            spans.close(),
            Vec::new(),
        );
        assert_eq!(stage, SpanId(1));
        let log = rec.finish();
        let jsonl = export_jsonl(&log);
        assert!(jsonl.contains("\"kind\":\"span_start\",\"span_id\":1,\"parent_id\":0"));
        assert!(jsonl.contains("\"kind\":\"span_end\",\"span_id\":1"));
        crate::schema::validate_jsonl(&jsonl).expect("span pairs validate");
        let chrome = export_chrome(&log);
        let parsed = parse_json(&chrome).expect("chrome export parses");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let begins: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
            .collect();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("E"))
            .collect();
        assert_eq!(begins.len(), 2);
        assert_eq!(ends.len(), 2);
        assert_eq!(
            begins[1]
                .get("args")
                .unwrap()
                .get("parent_id")
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }

    #[test]
    fn export_is_deterministic() {
        let log = sample_log();
        assert_eq!(export_jsonl(&log), export_jsonl(&log));
        assert_eq!(export_chrome(&log), export_chrome(&log));
    }
}
