//! Billing-model study (the Fig. 9 mechanism, §4.1): the same job priced
//! under per-instance vs per-function billing, on-demand vs spot, with
//! and without straggler variance.
//!
//! Run with: `cargo run --release --example billing_models`

use rubberband::prelude::*;
use rubberband::rb_cloud::catalog::P3_8XLARGE;
use rubberband::rb_hpo::ShaParams;
use rubberband::rb_scaling::zoo::RESNET50;
use std::sync::Arc;

fn main() {
    let spec = ShaParams::new(64, 4, 508).generate().unwrap();
    let deadline = SimDuration::from_hours(3);
    let reference: SharedRef = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4));

    println!(
        "{:<12} {:<13} {:>10} {:>12} {:>12}",
        "tier", "billing", "stragglers", "JCT", "cost"
    );
    for (tier_name, spot) in [("on-demand", false), ("spot", true)] {
        for (billing_name, per_function) in [("per-instance", false), ("per-function", true)] {
            for noise in [0.5_f64, 8.0] {
                let model = ModelProfile::synthetic("rn50-sim", reference.clone(), 4.0, noise);
                let mut cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
                    .with_provision_delay(SimDuration::from_secs(15))
                    .with_init_latency(SimDuration::from_secs(0));
                if spot {
                    cloud.pricing = cloud.pricing.with_spot();
                }
                if per_function {
                    cloud.pricing = cloud.pricing.with_per_function_billing();
                }
                let out = rubberband::compile_plan(&spec, &model, &cloud, deadline).unwrap();
                println!(
                    "{:<12} {:<13} {:>9.1}s {:>12} {:>12}",
                    tier_name,
                    billing_name,
                    noise,
                    out.prediction.jct.to_string(),
                    out.prediction.cost.to_string()
                );
            }
        }
    }
    println!("\nStragglers barely move per-function bills (resources release on");
    println!("completion) but inflate per-instance bills, which hold nodes at");
    println!("each synchronization barrier until the slowest trial arrives.");
}

type SharedRef = rubberband::rb_scaling::SharedScaling;
