//! ASHA: asynchronous successive halving on a fixed cluster (§7).
//!
//! ASHA (Li et al., "Massively parallel hyperparameter tuning") is the
//! elastically-deployed baseline the paper argues against: it removes
//! SHA's synchronization barriers by promoting trials *asynchronously* —
//! whenever a worker frees up, it either continues a trial that is in the
//! top `1/η` of its rung, or samples a brand-new configuration. The paper
//! observes that on a time budget, sampling new configurations is an
//! ineffective use of resources (§7, citing HyperSched), and that ASHA's
//! fixed-cluster deployment cannot shed capacity as parallelism decays.
//!
//! This executor reproduces ASHA faithfully enough to measure both
//! effects: an event-driven loop over a fixed pool of worker slots, rung
//! bookkeeping with top-`1/η` promotion, optional new-configuration
//! sampling, and the same billing/physics substrate as the RubberBand
//! executor — so cost and accuracy-at-deadline are directly comparable.

use crate::cluster::ClusterManager;
use rb_core::{Cost, Distribution, Prng, RbError, Result, SimDuration, SimTime, TrialId};
use rb_hpo::{Config, SearchSpace};
use rb_profile::{CloudProfile, ModelProfile};
use rb_scaling::PlacementQuality;
use rb_train::{TaskModel, Trial};
use std::collections::BTreeMap;

/// ASHA configuration.
#[derive(Debug, Clone)]
pub struct AshaConfig {
    /// Reduction factor η.
    pub eta: u32,
    /// Work units per trial at rung 0 (`r`).
    pub r: u64,
    /// Maximum cumulative units (`R`); reaching it completes a trial.
    pub big_r: u64,
    /// GPUs allocated to every trial (fixed, as in ASHA deployments).
    pub gpus_per_trial: u32,
    /// Total GPUs in the fixed cluster.
    pub cluster_gpus: u32,
    /// Wall-clock budget; the experiment stops at this deadline.
    pub deadline: SimDuration,
    /// Configurations sampled up-front as the initial cohort.
    pub initial_trials: u32,
    /// Sample a new configuration when no trial is promotable and the
    /// initial cohort is exhausted (true is ASHA's behaviour; false
    /// leaves the worker idle, isolating the promotion rule from the
    /// sampling policy).
    pub sample_new_on_free: bool,
    /// Root seed.
    pub seed: u64,
}

/// Outcome of an ASHA run.
#[derive(Debug, Clone)]
pub struct AshaReport {
    /// Best observed accuracy when the deadline hit.
    pub best_accuracy: f64,
    /// The best configuration.
    pub best_config: Config,
    /// Units completed by the best trial.
    pub best_trial_units: u64,
    /// Configurations sampled over the run.
    pub trials_sampled: u32,
    /// Rung promotions performed.
    pub promotions: u32,
    /// Compute + data bill for the fixed cluster over the run.
    pub cost: Cost,
    /// Wall-clock time used (the deadline, or earlier if work ran out).
    pub elapsed: SimDuration,
    /// Fraction of slot-time spent training (idle slots decay this when
    /// `sample_new_on_free` is off).
    pub busy_fraction: f64,
}

/// One rung's records: `(trial, accuracy)` of everyone who completed it.
type Rung = Vec<(TrialId, f64)>;

struct AshaState {
    rungs: Vec<Rung>,
    /// Highest rung each trial has completed.
    completed_rung: BTreeMap<TrialId, usize>,
    /// Trials currently running or already promoted out of a rung.
    promoted: BTreeMap<TrialId, usize>,
}

impl AshaState {
    fn new() -> Self {
        AshaState {
            rungs: Vec::new(),
            completed_rung: BTreeMap::new(),
            promoted: BTreeMap::new(),
        }
    }

    fn record(&mut self, rung: usize, trial: TrialId, acc: f64) {
        while self.rungs.len() <= rung {
            self.rungs.push(Vec::new());
        }
        self.rungs[rung].push((trial, acc));
        self.completed_rung.insert(trial, rung);
    }

    /// ASHA's `get_job`: scan rungs top-down for a trial in the top `1/η`
    /// of its rung that has not been promoted yet.
    fn promotable(&mut self, eta: u32) -> Option<(TrialId, usize)> {
        for rung in (0..self.rungs.len()).rev() {
            let records = &self.rungs[rung];
            let k = records.len() / eta as usize;
            if k == 0 {
                continue;
            }
            let mut ranked: Vec<(TrialId, f64)> = records.clone();
            ranked.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            for &(trial, _) in ranked.iter().take(k) {
                let already = self.promoted.get(&trial).copied().unwrap_or(0);
                if already <= rung {
                    self.promoted.insert(trial, rung + 1);
                    return Some((trial, rung + 1));
                }
            }
        }
        None
    }
}

/// Runs ASHA on a fixed cluster until the deadline.
///
/// # Errors
///
/// Returns [`RbError::InvalidConfig`] for degenerate configurations
/// (zero GPUs, η < 2, cluster smaller than one trial); provider errors
/// propagate.
pub fn run_asha(
    task: &TaskModel,
    physics: &ModelProfile,
    cloud: &CloudProfile,
    space: &SearchSpace,
    cfg: &AshaConfig,
) -> Result<AshaReport> {
    if cfg.eta < 2 {
        return Err(RbError::InvalidConfig("ASHA needs eta >= 2".into()));
    }
    if cfg.gpus_per_trial == 0 || cfg.cluster_gpus < cfg.gpus_per_trial {
        return Err(RbError::InvalidConfig(format!(
            "cluster of {} GPUs cannot run {}-GPU trials",
            cfg.cluster_gpus, cfg.gpus_per_trial
        )));
    }
    if cfg.r == 0 || cfg.big_r < cfg.r {
        return Err(RbError::InvalidConfig("ASHA needs 0 < r <= R".into()));
    }
    let gpg = cloud.gpus_per_instance().max(1);
    let slots = (cfg.cluster_gpus / cfg.gpus_per_trial) as usize;
    let instances =
        rb_sim::AllocationPlan::effective_instances(cfg.cluster_gpus, slots as u32, gpg);

    let mut cm = ClusterManager::new(cloud.clone(), cfg.seed);
    cm.request_nodes(instances as usize, SimTime::ZERO)?;
    let start = cm.pending_ready_time().unwrap_or(SimTime::ZERO);
    cm.absorb_ready(start);
    let end_at = SimTime::ZERO + cfg.deadline;

    let mut rng = Prng::seed_from_u64(cfg.seed ^ 0xA5AA_0001);
    let mut state = AshaState::new();
    let mut trials: BTreeMap<TrialId, Trial> = BTreeMap::new();
    let mut trial_rngs: BTreeMap<TrialId, Prng> = BTreeMap::new();
    let mut next_id = 0u64;
    let mut promotions = 0u32;
    let mut busy_secs = 0.0_f64;
    // The initial cohort, waiting for a free worker.
    let mut pending: Vec<TrialId> = Vec::new();
    for _ in 0..cfg.initial_trials {
        let id = TrialId::new(next_id);
        next_id += 1;
        let config = space.sample(&mut rng);
        let seed = cfg.seed ^ id.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        trials.insert(id, Trial::new(id, config, seed));
        trial_rngs.insert(id, Prng::seed_from_u64(seed ^ 0x7A1A_11CE));
        pending.push(id);
    }
    pending.reverse(); // pop() takes the lowest id first

    let unit_mean = physics.unit_mean_secs(cfg.gpus_per_trial, PlacementQuality::Packed);
    let dist = if physics.unit_noise_frac > 0.0 {
        Distribution::Normal {
            mean: unit_mean,
            std: physics.unit_noise_frac * unit_mean,
            floor: 0.05 * unit_mean,
        }
    } else {
        Distribution::Constant(unit_mean)
    };

    // Cumulative units a trial must reach to complete rung `k`.
    let rung_target =
        |k: usize| -> u64 { (cfg.r * u64::from(cfg.eta).pow(k as u32)).min(cfg.big_r) };

    // Assign work to a freed slot: promote if possible, else start the
    // next cohort member, else sample a new configuration (if allowed).
    let assign = |state: &mut AshaState,
                  trials: &mut BTreeMap<TrialId, Trial>,
                  trial_rngs: &mut BTreeMap<TrialId, Prng>,
                  pending: &mut Vec<TrialId>,
                  rng: &mut Prng,
                  next_id: &mut u64,
                  promotions: &mut u32|
     -> Option<(TrialId, usize)> {
        if let Some((trial, rung)) = state.promotable(cfg.eta) {
            if rung_target(rung) > rung_target(rung - 1) {
                *promotions += 1;
                return Some((trial, rung));
            }
            // The trial already hit R; it is complete.
            return None;
        }
        if let Some(id) = pending.pop() {
            return Some((id, 0));
        }
        if cfg.sample_new_on_free {
            let id = TrialId::new(*next_id);
            *next_id += 1;
            let config = space.sample(rng);
            let seed = cfg.seed ^ id.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
            trials.insert(id, Trial::new(id, config, seed));
            trial_rngs.insert(id, Prng::seed_from_u64(seed ^ 0x7A1A_11CE));
            Some((id, 0))
        } else {
            None
        }
    };

    // Event loop: a min-heap of (finish_time, slot) would do, but with a
    // fixed slot count a simple vector scan per event is just as clear.
    let mut slot_state: Vec<Option<(TrialId, usize, SimTime)>> = vec![None; slots];
    // Prime every slot at the cluster-ready instant.
    for slot in slot_state.iter_mut() {
        if let Some((trial, rung)) = assign(
            &mut state,
            &mut trials,
            &mut trial_rngs,
            &mut pending,
            &mut rng,
            &mut next_id,
            &mut promotions,
        ) {
            let t = trials.get_mut(&trial).expect("assigned trial exists");
            t.start()?;
            *slot = Some((trial, rung, start));
        }
    }

    // Event loop: repeatedly take the earliest-finishing slot. Ends when
    // everything idles (no promotable work and sampling off) or the
    // deadline hits.
    while let Some((slot, (trial, rung, seg_start))) = slot_state
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.map(|v| (i, v)))
        .min_by_key(|&(_, (_, _, t))| t)
    {
        // Train the segment: from the trial's current units to the rung
        // target.
        let t = trials.get_mut(&trial).expect("assigned trial exists");
        let target = rung_target(rung);
        let units = target.saturating_sub(t.iters_done());
        let trng = trial_rngs.get_mut(&trial).expect("trial rng exists");
        let mut work = physics.train_startup_secs;
        for _ in 0..units {
            work += dist.sample(trng);
        }
        let finish = seg_start + SimDuration::from_secs_f64(work);
        if finish > end_at {
            // Deadline hits mid-segment: the partial work is paid for but
            // yields no rung record (ASHA evaluates at rung boundaries).
            let paid = end_at.saturating_since(seg_start);
            busy_secs += paid.as_secs_f64();
            cm.record_usage(cfg.gpus_per_trial, paid);
            slot_state[slot] = None;
            // Other in-flight slots also run out the clock.
            for other in slot_state.iter_mut() {
                if let Some((tid, _, s0)) = *other {
                    let paid = end_at.saturating_since(s0);
                    busy_secs += paid.as_secs_f64();
                    cm.record_usage(cfg.gpus_per_trial, paid);
                    let _ = tid;
                    *other = None;
                }
            }
            break;
        }
        busy_secs += work;
        cm.record_usage(cfg.gpus_per_trial, SimDuration::from_secs_f64(work));
        for _ in 0..units {
            t.advance(task, 1)?;
        }
        let acc = t.latest_accuracy().unwrap_or(0.0);
        state.record(rung, trial, acc);
        if t.iters_done() < cfg.big_r {
            t.pause()?;
        }
        // Refill this slot.
        slot_state[slot] = assign(
            &mut state,
            &mut trials,
            &mut trial_rngs,
            &mut pending,
            &mut rng,
            &mut next_id,
            &mut promotions,
        )
        .map(|(tid, rg)| {
            let tr = trials.get_mut(&tid).expect("assigned trial exists");
            if tr.is_live() && tr.status() != rb_train::TrialStatus::Running {
                tr.start().expect("paused/pending trial can start");
            }
            (tid, rg, finish)
        });
    }

    let elapsed = {
        // The cluster is held until the deadline (ASHA holds its fixed
        // pool) unless every slot drained early.
        let last = end_at;
        cm.terminate_all(last);
        last - SimTime::ZERO
    };
    let cost = cm.total_cost(end_at);
    let held =
        instances as f64 * cfg.cluster_gpus as f64 / instances as f64 * elapsed.as_secs_f64();
    let busy_fraction = if held > 0.0 {
        (busy_secs * cfg.gpus_per_trial as f64 / (cfg.cluster_gpus as f64 * elapsed.as_secs_f64()))
            .min(1.0)
    } else {
        0.0
    };

    let best = trials
        .values()
        .filter_map(|t| t.best_accuracy().map(|a| (t, a)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let (best_trial, best_accuracy) = best
        .ok_or_else(|| RbError::Execution("ASHA finished no trial before the deadline".into()))?;
    Ok(AshaReport {
        best_accuracy,
        best_config: best_trial.config.clone(),
        best_trial_units: best_trial.iters_done(),
        trials_sampled: next_id as u32,
        promotions,
        cost,
        elapsed,
        busy_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_8XLARGE;
    use rb_cloud::CloudPricing;
    use rb_hpo::Dim;

    fn setup() -> (TaskModel, ModelProfile, CloudProfile, SearchSpace) {
        let task = rb_train::task::resnet101_cifar10();
        let physics = ModelProfile::exact_for_task(&task, 1024, 4);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
            .with_provision_delay(SimDuration::from_secs(15))
            .with_init_latency(SimDuration::from_secs(15));
        let space = SearchSpace::new()
            .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
            .add("weight_decay", Dim::LogUniform { lo: 1e-5, hi: 1e-2 })
            .build()
            .unwrap();
        (task, physics, cloud, space)
    }

    fn config(deadline_mins: u64, sample_new: bool) -> AshaConfig {
        AshaConfig {
            eta: 3,
            r: 1,
            big_r: 50,
            gpus_per_trial: 1,
            cluster_gpus: 8,
            deadline: SimDuration::from_mins(deadline_mins),
            initial_trials: 16,
            sample_new_on_free: sample_new,
            seed: 11,
        }
    }

    #[test]
    fn asha_finds_a_good_configuration() {
        let (task, physics, cloud, space) = setup();
        let report = run_asha(&task, &physics, &cloud, &space, &config(30, true)).unwrap();
        assert!(report.trials_sampled > 16, "should keep sampling");
        assert!(report.promotions > 0, "should promote top performers");
        assert!(report.best_accuracy > 0.5, "got {}", report.best_accuracy);
        assert!(report.cost > Cost::ZERO);
        assert!(report.busy_fraction > 0.5, "fixed pool should stay busy");
    }

    #[test]
    fn asha_is_deterministic() {
        let (task, physics, cloud, space) = setup();
        let a = run_asha(&task, &physics, &cloud, &space, &config(20, true)).unwrap();
        let b = run_asha(&task, &physics, &cloud, &space, &config(20, true)).unwrap();
        assert_eq!(a.best_accuracy, b.best_accuracy);
        assert_eq!(a.trials_sampled, b.trials_sampled);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn longer_deadlines_do_not_hurt() {
        let (task, physics, cloud, space) = setup();
        let short = run_asha(&task, &physics, &cloud, &space, &config(10, true)).unwrap();
        let long = run_asha(&task, &physics, &cloud, &space, &config(40, true)).unwrap();
        assert!(long.best_accuracy >= short.best_accuracy - 0.02);
        assert!(long.cost > short.cost, "holding the pool longer costs more");
        assert!(long.trials_sampled >= short.trials_sampled);
    }

    #[test]
    fn without_sampling_slots_idle_and_utilization_decays() {
        let (task, physics, cloud, space) = setup();
        let sampling = run_asha(&task, &physics, &cloud, &space, &config(30, true)).unwrap();
        let idle = run_asha(&task, &physics, &cloud, &space, &config(30, false)).unwrap();
        assert!(
            idle.busy_fraction < sampling.busy_fraction,
            "idle {} !< sampling {}",
            idle.busy_fraction,
            sampling.busy_fraction
        );
        // Only the initial cohort ever runs.
        assert_eq!(idle.trials_sampled, 16);
        assert!(idle.cost <= sampling.cost, "idle pool cannot cost more");
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let (task, physics, cloud, space) = setup();
        let bad_eta = AshaConfig {
            eta: 1,
            ..config(10, true)
        };
        assert!(run_asha(&task, &physics, &cloud, &space, &bad_eta).is_err());
        let bad_cluster = AshaConfig {
            cluster_gpus: 2,
            gpus_per_trial: 4,
            ..config(10, true)
        };
        assert!(run_asha(&task, &physics, &cloud, &space, &bad_cluster).is_err());
        let bad_r = AshaConfig {
            r: 0,
            ..config(10, true)
        };
        assert!(run_asha(&task, &physics, &cloud, &space, &bad_r).is_err());
    }
}
