//! Resource allocation plans.
//!
//! A plan is the vector `a ∈ ℕ^|E|` of §4: `a[i]` GPUs are allocated to the
//! job during stage `i`, shared fairly among that stage's trials. Fairness
//! requires each stage's allocation to be a factor or a multiple of its
//! trial count — the invariant the planner's candidate generation maintains.

use rb_core::{RbError, Result};
use rb_hpo::ExperimentSpec;
use std::fmt;

/// GPUs allocated per stage.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AllocationPlan {
    gpus_per_stage: Vec<u32>,
}

impl AllocationPlan {
    /// Wraps a raw per-stage GPU vector (validated against a spec via
    /// [`AllocationPlan::validate`]).
    pub fn new(gpus_per_stage: Vec<u32>) -> Self {
        AllocationPlan { gpus_per_stage }
    }

    /// The static plan: the same `gpus` at every one of `stages` stages.
    pub fn flat(gpus: u32, stages: usize) -> Self {
        AllocationPlan {
            gpus_per_stage: vec![gpus; stages],
        }
    }

    /// GPUs allocated to stage `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn gpus(&self, i: usize) -> u32 {
        self.gpus_per_stage[i]
    }

    /// Number of stages covered.
    pub fn num_stages(&self) -> usize {
        self.gpus_per_stage.len()
    }

    /// The raw per-stage vector.
    pub fn as_slice(&self) -> &[u32] {
        &self.gpus_per_stage
    }

    /// Mutable access for the planner's decrement steps.
    pub fn set_gpus(&mut self, i: usize, gpus: u32) {
        self.gpus_per_stage[i] = gpus;
    }

    /// Instances needed for stage `i` on machines with `gpus_per_instance`
    /// GPUs, by raw GPU count (ignores placement fragmentation; see
    /// [`AllocationPlan::instances_for_stage`]).
    pub fn instances(&self, i: usize, gpus_per_instance: u32) -> u32 {
        self.gpus_per_stage[i].div_ceil(gpus_per_instance.max(1))
    }

    /// Instances an allocation of `alloc` GPUs over `trials` trials
    /// actually needs once trial colocation is accounted for. A 3-GPU
    /// trial on 4-GPU machines occupies a machine alone (locality forbids
    /// splitting it), so e.g. 32 such trials need 32 machines even though
    /// 96 GPUs fit on 24 — the bin-packing reality the placement
    /// controller enforces (§4.4.1).
    pub fn effective_instances(alloc: u32, trials: u32, gpus_per_instance: u32) -> u32 {
        let gpg = gpus_per_instance.max(1);
        let raw = alloc.div_ceil(gpg);
        if alloc < trials {
            // Waves of single-GPU trials pack perfectly.
            return raw;
        }
        let gpt = (alloc / trials.max(1)).max(1);
        let full_per_trial = gpt / gpg;
        let rem = gpt % gpg;
        let packed = match gpg.checked_div(rem) {
            None => trials * full_per_trial,
            Some(rems_per_node) => trials * full_per_trial + trials.div_ceil(rems_per_node),
        };
        packed.max(raw)
    }

    /// [`AllocationPlan::effective_instances`] for stage `i` of `spec`.
    pub fn instances_for_stage(
        &self,
        i: usize,
        spec: &ExperimentSpec,
        gpus_per_instance: u32,
    ) -> u32 {
        let trials = spec.get_stage(i).expect("index in range").0;
        Self::effective_instances(self.gpus_per_stage[i], trials, gpus_per_instance)
    }

    /// The peak instance count across stages.
    pub fn peak_instances(&self, gpus_per_instance: u32) -> u32 {
        (0..self.num_stages())
            .map(|i| self.instances(i, gpus_per_instance))
            .max()
            .unwrap_or(0)
    }

    /// GPUs each trial receives in stage `i` of `spec`: the floor of fair
    /// sharing (1 when trials outnumber GPUs and run in waves). When the
    /// allocation does not divide evenly, the remainder idles — exactly the
    /// waste a static cluster suffers (§3.2).
    pub fn gpus_per_trial(&self, i: usize, spec: &ExperimentSpec) -> u32 {
        let trials = spec
            .get_stage(i)
            .expect("plan/stage index must be in range")
            .0;
        let alloc = self.gpus_per_stage[i];
        if alloc >= trials {
            alloc / trials
        } else {
            1
        }
    }

    /// True when every stage's allocation divides fairly (a factor or
    /// multiple of the stage's trial count) — the invariant the elastic
    /// planner maintains while stepping (§4.3). Static plans generally do
    /// *not* satisfy this across all stages.
    pub fn is_fair(&self, spec: &ExperimentSpec) -> bool {
        (0..self.num_stages().min(spec.num_stages())).all(|i| {
            let trials = spec.get_stage(i).expect("index in range").0;
            let alloc = self.gpus_per_stage[i];
            if alloc >= trials {
                alloc % trials == 0
            } else {
                trials % alloc == 0
            }
        })
    }

    /// True when the plan allocates the same amount to every stage.
    pub fn is_static(&self) -> bool {
        self.gpus_per_stage.windows(2).all(|w| w[0] == w[1])
    }

    /// Checks structural validity against `spec`: one entry per stage and
    /// every entry positive. (Fairness is *not* required — uneven static
    /// allocations simply leave GPUs idle; see
    /// [`AllocationPlan::is_fair`].)
    ///
    /// # Errors
    ///
    /// Returns [`RbError::InvalidPlan`] describing the first violation.
    pub fn validate(&self, spec: &ExperimentSpec) -> Result<()> {
        if self.gpus_per_stage.len() != spec.num_stages() {
            return Err(RbError::InvalidPlan(format!(
                "plan has {} stages, spec has {}",
                self.gpus_per_stage.len(),
                spec.num_stages()
            )));
        }
        for (i, &alloc) in self.gpus_per_stage.iter().enumerate() {
            let _ = spec.get_stage(i)?;
            if alloc == 0 {
                return Err(RbError::InvalidPlan(format!(
                    "stage {i} allocates zero GPUs"
                )));
            }
        }
        Ok(())
    }

    /// Rounds `alloc` down to the nearest fair allocation for `trials`
    /// (a factor or multiple of it). Returns at least 1.
    pub fn round_down_fair(alloc: u32, trials: u32) -> u32 {
        debug_assert!(trials > 0);
        if alloc >= trials {
            (alloc / trials) * trials
        } else {
            // Largest divisor of `trials` that is <= alloc.
            (1..=alloc).rev().find(|d| trials % d == 0).unwrap_or(1)
        }
    }

    /// The next fair allocation strictly below `alloc` for `trials`, if
    /// one exists. This is the planner's decrement step: "the smallest
    /// integer value such that the new stage allocation is either a factor
    /// or multiple of the number of trials" (§4.3).
    pub fn decrement_fair(alloc: u32, trials: u32) -> Option<u32> {
        if alloc <= 1 {
            return None;
        }
        Some(Self::round_down_fair(alloc - 1, trials))
    }

    /// The largest fair allocation below `alloc` that needs strictly fewer
    /// instances of `gpus_per_instance` GPUs, if one exists.
    ///
    /// Cost under per-instance billing only changes at instance
    /// boundaries, so single-GPU fair decrements (e.g. 16 → 15 for a
    /// 1-trial stage) can show zero improvement and stall a purely
    /// ladder-based greedy search. This jump candidate lands directly on
    /// the next boundary.
    pub fn decrement_to_fewer_instances(
        alloc: u32,
        trials: u32,
        gpus_per_instance: u32,
    ) -> Option<u32> {
        let current = Self::effective_instances(alloc, trials, gpus_per_instance);
        let mut a = alloc;
        while let Some(next) = Self::decrement_fair(a, trials) {
            if Self::effective_instances(next, trials, gpus_per_instance) < current {
                return Some(next);
            }
            a = next;
        }
        None
    }
}

impl fmt::Display for AllocationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, g) in self.gpus_per_stage.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, "] GPUs/stage")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(32, 1), (10, 3), (3, 9), (1, 37)]).unwrap()
    }

    #[test]
    fn validate_accepts_structurally_sound_plans() {
        // Table 3's plan: 32, 20, 12, 8 GPUs.
        let p = AllocationPlan::new(vec![32, 20, 12, 8]);
        p.validate(&spec()).unwrap();
        assert!(p.is_fair(&spec()));
        // Waves: 8 GPUs for 32 trials (4 waves), 5 for 10, 3 for 3, 1 for 1.
        let p = AllocationPlan::new(vec![8, 5, 3, 1]);
        p.validate(&spec()).unwrap();
        assert!(p.is_fair(&spec()));
        // Uneven static plans are valid (GPUs idle) but not fair.
        let p = AllocationPlan::flat(24, 4);
        p.validate(&spec()).unwrap();
        assert!(!p.is_fair(&spec()));
    }

    #[test]
    fn validate_rejects_malformed_plans() {
        let s = spec();
        assert!(
            AllocationPlan::new(vec![32, 20, 12]).validate(&s).is_err(),
            "wrong length"
        );
        assert!(
            AllocationPlan::new(vec![0, 10, 3, 1]).validate(&s).is_err(),
            "zero alloc"
        );
    }

    #[test]
    fn unfair_plans_floor_their_per_trial_share() {
        let s = spec();
        // 48 GPUs over 32 trials → 1 GPU each, 16 idle.
        let p = AllocationPlan::new(vec![48, 10, 3, 1]);
        assert_eq!(p.gpus_per_trial(0, &s), 1);
        // 24 GPUs over 10 trials → 2 each, 4 idle.
        let p = AllocationPlan::flat(24, 4);
        assert_eq!(p.gpus_per_trial(1, &s), 2);
    }

    #[test]
    fn gpus_per_trial_divides_or_is_one() {
        let s = spec();
        let p = AllocationPlan::new(vec![64, 20, 12, 8]);
        assert_eq!(p.gpus_per_trial(0, &s), 2);
        assert_eq!(p.gpus_per_trial(1, &s), 2);
        assert_eq!(p.gpus_per_trial(2, &s), 4);
        assert_eq!(p.gpus_per_trial(3, &s), 8);
        let waves = AllocationPlan::new(vec![8, 5, 3, 1]);
        assert_eq!(waves.gpus_per_trial(0, &s), 1);
    }

    #[test]
    fn instance_math_rounds_up() {
        let p = AllocationPlan::new(vec![32, 20, 12, 8]);
        assert_eq!(p.instances(0, 4), 8);
        assert_eq!(p.instances(1, 4), 5);
        assert_eq!(p.instances(2, 8), 2);
        assert_eq!(p.peak_instances(4), 8);
    }

    #[test]
    fn round_down_fair_cases() {
        // Above the trial count: multiples of it.
        assert_eq!(AllocationPlan::round_down_fair(63, 10), 60);
        assert_eq!(AllocationPlan::round_down_fair(60, 10), 60);
        // Below: divisors.
        assert_eq!(AllocationPlan::round_down_fair(7, 10), 5);
        assert_eq!(AllocationPlan::round_down_fair(4, 10), 2);
        assert_eq!(AllocationPlan::round_down_fair(1, 10), 1);
        // Prime trial counts fall to 1 below the count.
        assert_eq!(AllocationPlan::round_down_fair(6, 7), 1);
    }

    #[test]
    fn decrement_fair_steps_down_through_fair_ladder() {
        // For 10 trials the fair ladder is …, 30, 20, 10, 5, 2, 1.
        let mut a = 30;
        let mut seen = vec![a];
        while let Some(next) = AllocationPlan::decrement_fair(a, 10) {
            assert!(next < a);
            a = next;
            seen.push(a);
        }
        assert_eq!(seen, vec![30, 20, 10, 5, 2, 1]);
    }

    #[test]
    fn decrement_at_one_is_none() {
        assert_eq!(AllocationPlan::decrement_fair(1, 10), None);
    }

    #[test]
    fn flat_plan_is_static() {
        assert!(AllocationPlan::flat(24, 4).is_static());
        assert!(!AllocationPlan::new(vec![32, 16, 8, 8]).is_static());
    }

    #[test]
    fn display_lists_stages() {
        let p = AllocationPlan::new(vec![32, 20]);
        assert_eq!(p.to_string(), "[32, 20] GPUs/stage");
    }
}
