//! The `repro trace` artifact: one fully observed adaptive run under
//! injected drift and spot churn, exported as virtual-time JSONL and a
//! Chrome `trace_event` file (loadable in Perfetto / `chrome://tracing`),
//! plus the byte-stable [`RunSummary`] that `scripts/verify.sh` diffs
//! against `scripts/expected_summary.txt`.

use crate::adapt::slowed_physics;
use crate::tables::{e2e_cloud, profiled_model, search_space};
use rb_core::{Prng, RbError, Result, SimDuration};
use rb_ctrl::{AdaptiveController, ControllerConfig};
use rb_exec::{ExecOptions, ExecutionReport, Executor};
use rb_hpo::ShaParams;
use rb_obs::{export, schema, MemoryRecorder, RecorderHandle, RunSummary};
use rb_planner::{plan_rubberband, PlannerConfig};
use rb_sim::{EngineConfig, Simulator};
use std::path::Path;
use std::sync::Arc;

/// Everything the trace artifact produces.
#[derive(Debug)]
pub struct TraceArtifact {
    /// The execution report the trace describes.
    pub report: ExecutionReport,
    /// The byte-stable rollup (diffed in CI).
    pub summary: RunSummary,
    /// The JSONL export, already schema-validated.
    pub jsonl: String,
    /// Schema-validation statistics for the JSONL export.
    pub jsonl_stats: schema::JsonlStats,
    /// The Chrome `trace_event` export.
    pub chrome: String,
    /// Re-plans the controller applied during the run.
    pub replans: usize,
}

/// Runs the seeded trace workload: the exec-bench SHA job planned from
/// the nominal profiled model, executed 1.5× slower than planned on
/// spot capacity (1 interruption per instance-hour) with the rb-ctrl
/// controller closing the loop — so the trace exercises planner,
/// simulator, cloud, executor, and controller lanes all at once.
///
/// The prediction engine is pinned to one thread: stage-memo hit/miss
/// tallies are scheduling-sensitive under parallel prediction (two
/// threads can both miss the same key), and the summary must be
/// byte-stable for CI.
///
/// # Errors
///
/// Propagates planner/controller/executor errors; a trace that fails
/// JSONL schema validation is an [`RbError::Execution`].
pub fn run_trace(seed: u64) -> Result<TraceArtifact> {
    let task = rb_train::task::resnet101_cifar10();
    let spec = ShaParams::new(16, 1, 20).with_eta(2).generate()?;
    let model = profiled_model(&task, 1024, 4, 16);
    let physics = slowed_physics(&task, 1024, 4, 1.5);
    let mut cloud = e2e_cloud().with_spot_interruptions(1.0);
    cloud.pricing = cloud.pricing.with_spot();
    let space = search_space();
    let deadline = SimDuration::from_mins(30);

    let sink = Arc::new(MemoryRecorder::new());
    let recorder = RecorderHandle::new(sink.clone());
    let sim = Simulator::new(model.clone(), cloud.clone())
        .with_engine(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        })
        .with_recorder(recorder.clone());
    let out = plan_rubberband(&sim, &spec, deadline, &PlannerConfig::default())?;
    let mut controller = AdaptiveController::new(
        sim.clone(),
        spec.clone(),
        &out.plan,
        deadline,
        ControllerConfig::default(),
    )?;

    // Identical config sampling to `rubberband::execute_with`.
    let mut rng = Prng::seed_from_u64(seed ^ 0x005A_3CE0_u64);
    let configs = space.sample_n(spec.initial_trials() as usize, &mut rng);
    let report = Executor::new(spec.clone(), out.plan.clone(), task.clone(), physics, cloud)?
        .with_options(ExecOptions {
            seed,
            ..ExecOptions::default()
        })
        .run_observed(&configs, &mut controller, recorder.clone())?;
    let adaptation = controller.into_log();

    // Mirror the passive cache tallies onto the bus, as the facade does,
    // so the exported trace is self-contained.
    let caches = sim.cache_stats();
    recorder.counter_add("sim", "plan_cache_hits", caches.plan.hits);
    recorder.counter_add("sim", "plan_cache_misses", caches.plan.misses);
    recorder.counter_add("sim", "plan_cache_evictions", caches.plan.evictions);
    recorder.counter_add("sim", "stage_memo_hits", caches.stage_memo.hits);
    recorder.counter_add("sim", "stage_memo_misses", caches.stage_memo.misses);
    recorder.counter_add("sim", "stage_memo_evictions", caches.stage_memo.evictions);

    let log = sink.finish();
    let summary = rubberband::summarize_run(&report, caches, Some(&adaptation), log.events.len());
    let jsonl = export::export_jsonl(&log);
    let jsonl_stats = schema::validate_jsonl(&jsonl)
        .map_err(|e| RbError::Execution(format!("trace JSONL failed schema validation: {e}")))?;
    let chrome = export::export_chrome(&log);
    Ok(TraceArtifact {
        report,
        summary,
        jsonl,
        jsonl_stats,
        chrome,
        replans: adaptation.applied(),
    })
}

/// Writes `trace.jsonl`, `trace.chrome.json`, and `run_summary.txt`
/// under `dir` (created if missing).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifacts(dir: &Path, artifact: &TraceArtifact) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("trace.jsonl"), &artifact.jsonl)?;
    std::fs::write(dir.join("trace.chrome.json"), &artifact.chrome)?;
    std::fs::write(dir.join("run_summary.txt"), artifact.summary.render())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_artifact_is_deterministic_and_consistent() {
        let a = run_trace(1).expect("trace workload runs");
        // The rollup agrees with the report it summarizes.
        assert_eq!(a.summary.jct, a.report.jct);
        assert_eq!(a.summary.total_cost(), a.report.total_cost());
        assert_eq!(a.summary.preemptions, a.report.preemptions as usize);
        // The drift + spot workload actually exercises the controller.
        assert!(a.report.preemptions > 0, "spot churn must preempt");
        assert!(a.jsonl_stats.events > 0 && a.jsonl_stats.counters > 0);
        // Same seed, same bytes — the determinism the CI diff relies on.
        let b = run_trace(1).expect("trace workload runs twice");
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.chrome, b.chrome);
        assert_eq!(a.summary.render(), b.summary.render());
    }
}
