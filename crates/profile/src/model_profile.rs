//! The fitted training-latency profile.

use rb_core::Distribution;
use rb_scaling::{PlacementQuality, RescaledScaling, SharedScaling};
use rb_train::TaskModel;
use std::sync::Arc;

/// Everything the planner/simulator knows about a model's training
/// performance.
///
/// Latency for one *work unit* (one spec "iteration": a fixed block of
/// samples followed by an evaluation) on `g` GPUs is
/// `steps_per_iter · step_latency(g)`; a TRAIN task covering `k` units
/// additionally pays a startup cost (checkpoint load, peer connection
/// establishment — §4.1's "initial latency") and accumulates per-unit
/// noise with variance growing linearly in `k`.
#[derive(Debug, Clone)]
pub struct ModelProfile {
    /// Descriptive name (model / dataset / batch).
    pub name: String,
    /// Fitted per-step latency versus GPU count (packed placement).
    pub scaling: SharedScaling,
    /// SGD steps per spec work unit.
    pub steps_per_iter: u64,
    /// Per-TRAIN-task startup latency in seconds.
    pub train_startup_secs: f64,
    /// Coefficient of variation of one work unit's latency (σ/μ).
    pub unit_noise_frac: f64,
}

impl ModelProfile {
    /// Builds a profile directly from a scaling model (used by tests and
    /// by experiments that posit latencies rather than measure them).
    pub fn from_scaling(
        name: impl Into<String>,
        scaling: SharedScaling,
        steps_per_iter: u64,
        train_startup_secs: f64,
        unit_noise_frac: f64,
    ) -> Self {
        assert!(steps_per_iter > 0, "work units must contain steps");
        ModelProfile {
            name: name.into(),
            scaling,
            steps_per_iter,
            train_startup_secs,
            unit_noise_frac,
        }
    }

    /// Builds a synthetic profile where one work unit takes
    /// `mean_unit_secs_at_1gpu` seconds on a single GPU and scales with
    /// the relative shape of `reference` — the construction used by the
    /// paper's simulated experiments ("training latency sampled from a
    /// normal distribution with μ = 4 s", Fig. 9; "mean training latency
    /// is 12 s", Fig. 12).
    pub fn synthetic(
        name: impl Into<String>,
        reference: SharedScaling,
        mean_unit_secs_at_1gpu: f64,
        noise_std_secs: f64,
    ) -> Self {
        let pinned = Arc::new(RescaledScaling::pin_single_gpu_latency(
            reference,
            mean_unit_secs_at_1gpu,
        ));
        ModelProfile {
            name: name.into(),
            scaling: pinned,
            steps_per_iter: 1,
            train_startup_secs: 0.0,
            unit_noise_frac: noise_std_secs / mean_unit_secs_at_1gpu,
        }
    }

    /// Builds the ground-truth profile for a [`TaskModel`]: analytic
    /// scaling at the given batch size and node shape, epoch-granularity
    /// work units. (The honest path is to *profile* the task instead; see
    /// [`crate::profiler::profile_training`].)
    pub fn exact_for_task(task: &TaskModel, batch_size: u32, node_gpus: u32) -> Self {
        let scaling: SharedScaling = Arc::new(rb_scaling::AnalyticScaling::for_arch(
            &task.arch, batch_size, node_gpus,
        ));
        ModelProfile {
            name: format!("{} (bs={batch_size})", task.name),
            scaling,
            steps_per_iter: task.steps_per_iter(batch_size),
            train_startup_secs: 5.0,
            unit_noise_frac: 0.03,
        }
    }

    /// Mean seconds for one work unit on `gpus` GPUs.
    pub fn unit_mean_secs(&self, gpus: u32, placement: PlacementQuality) -> f64 {
        self.steps_per_iter as f64 * self.scaling.iter_latency_secs(gpus, placement)
    }

    /// The latency distribution of a TRAIN task covering `units` work
    /// units on `gpus` GPUs: startup plus `units` noisy unit latencies
    /// (independent noise ⇒ σ grows as √units).
    pub fn train_task_dist(
        &self,
        units: u64,
        gpus: u32,
        placement: PlacementQuality,
    ) -> Distribution {
        let unit_mean = self.unit_mean_secs(gpus, placement);
        let mean = self.train_startup_secs + units as f64 * unit_mean;
        let std = self.unit_noise_frac * unit_mean * (units as f64).sqrt();
        if std <= 0.0 {
            Distribution::Constant(mean)
        } else {
            Distribution::Normal {
                mean,
                std,
                floor: 0.0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_core::Prng;
    use rb_scaling::zoo::RESNET50;
    use rb_scaling::AnalyticScaling;
    use rb_train::task::resnet101_cifar10;

    fn reference() -> SharedScaling {
        Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, 4))
    }

    #[test]
    fn synthetic_profile_pins_unit_mean() {
        let p = ModelProfile::synthetic("fig9", reference(), 4.0, 1.0);
        assert!((p.unit_mean_secs(1, PlacementQuality::Packed) - 4.0).abs() < 1e-9);
        // More GPUs, faster units — relative shape preserved.
        assert!(
            p.unit_mean_secs(4, PlacementQuality::Packed)
                < p.unit_mean_secs(1, PlacementQuality::Packed)
        );
    }

    #[test]
    fn train_task_dist_mean_and_std() {
        let p = ModelProfile::synthetic("fig9", reference(), 4.0, 1.0);
        let d = p.train_task_dist(16, 1, PlacementQuality::Packed);
        // Mean: 16 units × 4 s; std: 1 s × √16 = 4 s.
        assert!((d.mean() - 64.0).abs() < 1e-9);
        match d {
            Distribution::Normal { std, .. } => assert!((std - 4.0).abs() < 1e-9),
            other => panic!("expected normal, got {other:?}"),
        }
    }

    #[test]
    fn zero_noise_gives_constant_distribution() {
        let p = ModelProfile::synthetic("det", reference(), 4.0, 0.0);
        let d = p.train_task_dist(8, 2, PlacementQuality::Packed);
        assert!(matches!(d, Distribution::Constant(_)));
        let mut rng = Prng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), d.mean());
    }

    #[test]
    fn startup_is_charged_once_per_task() {
        let mut p = ModelProfile::synthetic("s", reference(), 4.0, 0.0);
        p.train_startup_secs = 10.0;
        let one = p.train_task_dist(1, 1, PlacementQuality::Packed).mean();
        let four = p.train_task_dist(4, 1, PlacementQuality::Packed).mean();
        assert!((one - 14.0).abs() < 1e-9);
        assert!((four - 26.0).abs() < 1e-9);
    }

    #[test]
    fn exact_for_task_uses_epoch_steps() {
        let task = resnet101_cifar10();
        let p = ModelProfile::exact_for_task(&task, 1024, 4);
        assert_eq!(p.steps_per_iter, 49);
        assert!(p.unit_mean_secs(1, PlacementQuality::Packed) > 0.0);
    }

    #[test]
    #[should_panic(expected = "steps")]
    fn zero_steps_per_iter_panics() {
        let _ = ModelProfile::from_scaling("bad", reference(), 0, 0.0, 0.0);
    }
}
