//! Dataset descriptors.
//!
//! The experiments touch datasets through exactly two properties: how many
//! samples one training pass covers (epoch accounting) and how many
//! gigabytes must be moved onto each instance (ingress pricing, Fig. 10 —
//! "Downloading ImageNet, a dataset of size 150 GB, from S3 … at $0.01 per
//! GB costs $1.50 … this cost multiplies in a distributed environment").

/// A training dataset's size and shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dataset {
    /// Name, e.g. `"CIFAR-10"`.
    pub name: &'static str,
    /// On-disk size in gigabytes (what each instance downloads once).
    pub size_gb: f64,
    /// Number of training samples (one epoch = one pass over these).
    pub train_samples: u64,
    /// Number of label classes (sets chance accuracy for classification).
    pub num_classes: u32,
}

impl Dataset {
    /// Accuracy of random guessing.
    pub fn chance_accuracy(&self) -> f64 {
        1.0 / f64::from(self.num_classes.max(1))
    }
}

/// CIFAR-10: 50 k train images, ~150 MB — the paper's "small dataset".
pub const CIFAR10: Dataset = Dataset {
    name: "CIFAR-10",
    size_gb: 0.15,
    train_samples: 50_000,
    num_classes: 10,
};

/// CIFAR-100: same images as CIFAR-10, 100 classes.
pub const CIFAR100: Dataset = Dataset {
    name: "CIFAR-100",
    size_gb: 0.15,
    train_samples: 50_000,
    num_classes: 100,
};

/// ImageNet (ILSVRC-2012): 1.28 M train images, ~150 GB — the paper's
/// "large dataset" whose ingress cost dominates in Fig. 10a.
pub const IMAGENET: Dataset = Dataset {
    name: "ImageNet",
    size_gb: 150.0,
    train_samples: 1_281_167,
    num_classes: 1000,
};

/// RTE (GLUE): 2.5 k sentence pairs, binary entailment — the BERT
/// fine-tuning workload of Table 4.
pub const RTE: Dataset = Dataset {
    name: "RTE",
    size_gb: 0.002,
    train_samples: 2_490,
    num_classes: 2,
};

/// All dataset descriptors.
pub const DATASETS: &[Dataset] = &[CIFAR10, CIFAR100, IMAGENET, RTE];

/// Looks up a dataset by name.
pub fn lookup(name: &str) -> Option<&'static Dataset> {
    DATASETS.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chance_accuracy_is_inverse_classes() {
        assert!((CIFAR10.chance_accuracy() - 0.1).abs() < 1e-12);
        assert!((CIFAR100.chance_accuracy() - 0.01).abs() < 1e-12);
        assert!((RTE.chance_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn imagenet_ingress_matches_paper_example() {
        // §6.1.2: 150 GB at $0.01/GB = $1.50 per instance.
        assert!((IMAGENET.size_gb * 0.01 - 1.50).abs() < 1e-9);
    }

    #[test]
    fn lookup_round_trips() {
        for d in DATASETS {
            assert_eq!(lookup(d.name).unwrap(), d);
        }
        assert!(lookup("MNIST").is_none());
    }
}
