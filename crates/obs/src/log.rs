//! Leveled stderr logging with an `RB_LOG` environment filter.
//!
//! Replaces ad-hoc `eprintln!` debugging across the workspace. The
//! filter is parsed once per process from `RB_LOG`:
//!
//! ```text
//! RB_LOG=debug            # global level
//! RB_LOG=repro=debug      # per-target override
//! RB_LOG=warn,bench=trace # default + override, comma-separated
//! ```
//!
//! Levels, most to least severe: `error`, `warn`, `info`, `debug`,
//! `trace`. The default is `warn` (errors and warnings print, the rest
//! is silent), so library users see failures without opting in.
//!
//! Logging writes only to **stderr** and never to the trace bus: log
//! lines are for humans at a terminal; the [`crate::Recorder`] carries
//! the machine-readable record.

use std::fmt;
use std::sync::OnceLock;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            "off" | "none" => None,
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

#[derive(Debug)]
struct Filter {
    /// 0 means everything off.
    default_level: u8,
    /// `(target, level)` overrides, later entries win.
    directives: Vec<(String, u8)>,
}

impl Filter {
    fn parse(spec: &str) -> Filter {
        let mut filter = Filter {
            default_level: Level::Warn as u8,
            directives: Vec::new(),
        };
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match token.split_once('=') {
                Some((target, level)) => {
                    let level = Level::parse(level).map_or(0, |l| l as u8);
                    filter.directives.push((target.trim().to_owned(), level));
                }
                None => {
                    filter.default_level = Level::parse(token).map_or(0, |l| l as u8);
                }
            }
        }
        filter
    }

    fn max_for(&self, target: &str) -> u8 {
        self.directives
            .iter()
            .rev()
            .find(|(t, _)| t == target)
            .map_or(self.default_level, |&(_, level)| level)
    }
}

fn filter() -> &'static Filter {
    static FILTER: OnceLock<Filter> = OnceLock::new();
    FILTER.get_or_init(|| Filter::parse(&std::env::var("RB_LOG").unwrap_or_default()))
}

/// Whether a message at `level` for `target` would print.
pub fn log_enabled(level: Level, target: &str) -> bool {
    level as u8 <= filter().max_for(target)
}

/// Logs a pre-formatted message. Prefer the [`log_error!`],
/// [`log_warn!`], [`log_info!`], [`log_debug!`], [`log_trace!`] macros,
/// which skip argument formatting when the level is filtered out.
///
/// [`log_error!`]: crate::log_error
/// [`log_warn!`]: crate::log_warn
/// [`log_info!`]: crate::log_info
/// [`log_debug!`]: crate::log_debug
/// [`log_trace!`]: crate::log_trace
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if log_enabled(level, target) {
        eprintln!("[{} {target}] {args}", level.label());
    }
}

#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Error, $target) {
            $crate::log::log($crate::log::Level::Error, $target, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Warn, $target) {
            $crate::log::log($crate::log::Level::Warn, $target, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Info, $target) {
            $crate::log::log($crate::log::Level::Info, $target, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Debug, $target) {
            $crate::log::log($crate::log::Level::Debug, $target, format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_trace {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Trace, $target) {
            $crate::log::log($crate::log::Level::Trace, $target, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_filter_is_warn() {
        let f = Filter::parse("");
        assert_eq!(f.max_for("anything"), Level::Warn as u8);
    }

    #[test]
    fn global_level_parses() {
        let f = Filter::parse("debug");
        assert_eq!(f.max_for("x"), Level::Debug as u8);
        let f = Filter::parse("off");
        assert_eq!(f.max_for("x"), 0);
    }

    #[test]
    fn per_target_directives_override_default() {
        let f = Filter::parse("warn, repro=trace ,bench=off");
        assert_eq!(f.max_for("repro"), Level::Trace as u8);
        assert_eq!(f.max_for("bench"), 0);
        assert_eq!(f.max_for("other"), Level::Warn as u8);
    }

    #[test]
    fn unknown_tokens_disable_rather_than_panic() {
        let f = Filter::parse("verbose");
        assert_eq!(f.max_for("x"), 0);
    }

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Trace);
        assert!(Level::parse("WARNING") == Some(Level::Warn));
    }
}
