//! Streaming/batch round-trip: a run recorded through the incremental
//! [`StreamingRecorder`] must produce the *same bytes* as the batch
//! `export_jsonl` of the same run's [`MemoryRecorder`] log — for a
//! plain cell, a chaos cell (fault injection + retry + checkpoint
//! fallback), and a multi-tenant serve cell. This pins the tentpole
//! contract: streaming changes durability, never content.

use rubberband::prelude::*;
use rubberband::rb_cloud::catalog::P3_8XLARGE;
use rubberband::rb_cloud::PoolConfig;
use rubberband::rb_exec::NoopHook;
use rubberband::rb_hpo::Dim;
use rubberband::rb_obs::export::export_jsonl;
use rubberband::rb_obs::schema::validate_jsonl;
use rubberband::rb_obs::StreamingRecorder;
use rubberband::rb_sim::AllocationPlan;
use std::sync::Arc;

fn search_space() -> SearchSpace {
    SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .build()
        .unwrap()
}

fn cloud() -> CloudProfile {
    CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15))
}

fn configs(n: usize, seed: u64) -> Vec<Config> {
    search_space().sample_n(n, &mut Prng::seed_from_u64(seed))
}

/// Runs one executor cell into `recorder` and returns the report.
fn run_cell(options: ExecOptions, recorder: RecorderHandle) -> ExecutionReport {
    let task = rubberband::rb_train::task::resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let spec = ExperimentSpec::from_stages(&[(8, 1), (4, 2), (2, 4)]).unwrap();
    Executor::new(
        spec,
        AllocationPlan::new(vec![8, 4, 4]),
        task,
        physics,
        cloud(),
    )
    .unwrap()
    .with_options(options)
    .run_observed(&configs(8, 7), &mut NoopHook, recorder)
    .unwrap()
}

/// Records the cell twice — batch, then streaming — and asserts the
/// exported JSONL is byte-identical and schema-valid.
fn assert_roundtrip(options: &ExecOptions) {
    let memory = Arc::new(MemoryRecorder::new());
    let batch_report = run_cell(options.clone(), RecorderHandle::new(memory.clone()));
    let batch = export_jsonl(&memory.finish());

    let streaming = Arc::new(StreamingRecorder::in_memory());
    let stream_report = run_cell(options.clone(), RecorderHandle::new(streaming.clone()));
    let streamed = Arc::into_inner(streaming)
        .expect("executor released its handle")
        .into_jsonl();

    assert_eq!(
        format!("{batch_report:?}"),
        format!("{stream_report:?}"),
        "recorder choice must not influence execution"
    );
    assert_eq!(streamed, batch, "streamed JSONL != batch export");
    validate_jsonl(&streamed).expect("streamed trace validates");
}

#[test]
fn plain_cell_streams_byte_identical_to_batch_export() {
    assert_roundtrip(&ExecOptions {
        seed: 7,
        ..ExecOptions::default()
    });
}

#[test]
fn chaos_cell_streams_byte_identical_to_batch_export() {
    assert_roundtrip(&ExecOptions {
        seed: 7,
        faults: FaultPlan {
            capacity_failure_prob: 0.5,
            straggler_prob: 0.25,
            straggler_factor: 40.0,
            checkpoint_corruption_prob: 0.2,
            ..FaultPlan::none()
        },
        retry: Some(RetryPolicy {
            max_retries: 12,
            base_backoff_secs: 5.0,
            max_backoff_secs: 60.0,
            request_timeout_secs: 60.0,
        }),
        checkpoint_retention: 3,
        ..ExecOptions::default()
    });
}

#[test]
fn serve_cell_streams_byte_identical_to_batch_export() {
    let jobs = || -> Vec<JobRequest> {
        let task = rubberband::rb_train::task::resnet101_cifar10();
        let physics = ModelProfile::exact_for_task(&task, 1024, 4);
        let spec = ExperimentSpec::from_stages(&[(4, 1), (2, 2)]).unwrap();
        (0..3u64)
            .map(|k| {
                let executor = Executor::new(
                    spec.clone(),
                    AllocationPlan::new(vec![4, 4]),
                    task.clone(),
                    physics.clone(),
                    cloud(),
                )
                .unwrap()
                .with_options(ExecOptions {
                    seed: 40 + k,
                    ..ExecOptions::default()
                });
                JobRequest::new(
                    executor,
                    configs(4, 90 + k),
                    SimTime::from_secs(k * 60),
                    k as usize % 2,
                )
            })
            .collect()
    };
    let service = || {
        TuningService::new(
            vec![
                TenantSpec::new("tenant-0", 1.0),
                TenantSpec::new("tenant-1", 1.0),
            ],
            ServeOptions {
                max_concurrent: 1,
                max_queue: 8,
                pool: Some(PoolConfig::default()),
                pool_admission: false,
            },
        )
        .unwrap()
    };

    let memory = Arc::new(MemoryRecorder::new());
    let batch_report = service()
        .run_with_recorder(jobs(), &RecorderHandle::new(memory.clone()))
        .unwrap();
    let batch = export_jsonl(&memory.finish());

    let streaming = Arc::new(StreamingRecorder::in_memory());
    let stream_report = service()
        .run_with_recorder(jobs(), &RecorderHandle::new(streaming.clone()))
        .unwrap();
    let streamed = Arc::into_inner(streaming)
        .expect("service released its handle")
        .into_jsonl();

    assert_eq!(batch_report.outcomes.len(), 3);
    assert_eq!(
        format!("{batch_report:?}"),
        format!("{stream_report:?}"),
        "recorder choice must not influence the service"
    );
    assert_eq!(streamed, batch, "streamed JSONL != batch export");
    validate_jsonl(&streamed).expect("streamed trace validates");
}
