//! Fleet-analytics rollup CLI.
//!
//! ```text
//! rollup <dir>    # walk <dir> recursively, aggregate every *.json
//!                 # run manifest, print the fleet report
//! ```
//!
//! Files are visited in sorted path order and the report itself sorts
//! its inputs, so the output is byte-stable for a given artifact tree
//! (`scripts/verify.sh` diffs it against `scripts/expected_rollup.txt`).

use rb_replay::rollup::{parse_run_record, render_rollup, RunRecord};
use std::path::{Path, PathBuf};

/// Collects every `*.json` file under `dir`, depth-first, sorted.
fn manifest_paths(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<std::io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            manifest_paths(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "json") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [dir] = args.as_slice() else {
        eprintln!("usage: rollup <fleet-dir>");
        std::process::exit(2);
    };
    let mut paths = Vec::new();
    if let Err(e) = manifest_paths(Path::new(dir), &mut paths) {
        eprintln!("rollup: cannot walk `{dir}`: {e}");
        std::process::exit(1);
    }
    let mut records: Vec<RunRecord> = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("rollup: cannot read `{}`: {e}", path.display());
                std::process::exit(1);
            }
        };
        match parse_run_record(&text) {
            Ok(r) => records.push(r),
            Err(e) => {
                eprintln!("rollup: bad manifest `{}`: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    print!("{}", render_rollup(&records));
}
