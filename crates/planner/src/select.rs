//! Instance-type selection (extension).
//!
//! §3 assumes the user names the instance type; §7 points at Ernest and
//! CherryPick for choosing cloud configurations automatically. Because
//! RubberBand already predicts JCT and cost for any (model profile, cloud
//! profile) pair, selection falls out naturally: plan the job on every
//! candidate type and keep the cheapest feasible result. The scaling
//! profile differs per type (GPUs per node move the communication cliff;
//! accelerator generation moves per-GPU throughput), so each candidate
//! carries its own fitted [`ModelProfile`].

use crate::greedy::{plan_rubberband, GreedyOutcome, PlannerConfig};
use rb_core::{RbError, Result, SimDuration};
use rb_hpo::ExperimentSpec;
use rb_profile::{CloudProfile, ModelProfile};
use rb_sim::{SimConfig, Simulator};

/// One candidate cloud configuration: the machine shape plus the model's
/// fitted scaling on it.
#[derive(Debug, Clone)]
pub struct InstanceCandidate {
    /// Display name (usually the SKU).
    pub name: String,
    /// The model's scaling/latency profile on this machine shape.
    pub model: ModelProfile,
    /// Pricing and provider latencies for this shape.
    pub cloud: CloudProfile,
}

/// The outcome of instance selection: which candidate won and the plans
/// produced for every candidate (for reporting).
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Index of the winning candidate.
    pub winner: usize,
    /// Per-candidate planning results (`None` when infeasible).
    pub outcomes: Vec<Option<GreedyOutcome>>,
}

/// Plans `spec` on every candidate and returns the cheapest feasible one.
///
/// # Errors
///
/// Returns [`RbError::Infeasible`] when no candidate can meet the
/// deadline; propagates simulator errors.
pub fn select_instance_type(
    candidates: &[InstanceCandidate],
    spec: &ExperimentSpec,
    deadline: SimDuration,
    config: &PlannerConfig,
    sim_config: &SimConfig,
) -> Result<SelectionOutcome> {
    if candidates.is_empty() {
        return Err(RbError::InvalidConfig("no instance candidates".into()));
    }
    let mut outcomes: Vec<Option<GreedyOutcome>> = Vec::with_capacity(candidates.len());
    let mut winner: Option<usize> = None;
    for (i, cand) in candidates.iter().enumerate() {
        let sim =
            Simulator::new(cand.model.clone(), cand.cloud.clone()).with_config(sim_config.clone());
        match plan_rubberband(&sim, spec, deadline, config) {
            Ok(out) => {
                let better = match winner {
                    None => true,
                    Some(w) => {
                        let best: &GreedyOutcome =
                            outcomes[w].as_ref().expect("winner has an outcome");
                        out.prediction.cost < best.prediction.cost
                    }
                };
                outcomes.push(Some(out));
                if better {
                    winner = Some(i);
                }
            }
            Err(RbError::Infeasible { .. }) => outcomes.push(None),
            Err(e) => return Err(e),
        }
    }
    let winner = winner.ok_or_else(|| RbError::Infeasible {
        reason: format!(
            "none of the {} candidate instance types meets {deadline}",
            candidates.len()
        ),
    })?;
    Ok(SelectionOutcome { winner, outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::{P3_16XLARGE, P3_2XLARGE, P3_8XLARGE};
    use rb_cloud::CloudPricing;
    use rb_hpo::ShaParams;
    use rb_scaling::zoo::RESNET50;
    use rb_scaling::AnalyticScaling;
    use std::sync::Arc;

    fn candidate(name: &str, ty: rb_cloud::InstanceType, node_gpus: u32) -> InstanceCandidate {
        let scaling = Arc::new(AnalyticScaling::for_arch(&RESNET50, 512, node_gpus));
        InstanceCandidate {
            name: name.into(),
            model: ModelProfile::from_scaling(name, scaling, 10, 2.0, 0.0),
            cloud: CloudProfile::new(CloudPricing::on_demand(ty))
                .with_provision_delay(SimDuration::from_secs(15))
                .with_init_latency(SimDuration::from_secs(15)),
        }
    }

    fn candidates() -> Vec<InstanceCandidate> {
        vec![
            candidate("p3.2xlarge", P3_2XLARGE, 1),
            candidate("p3.8xlarge", P3_8XLARGE, 4),
            candidate("p3.16xlarge", P3_16XLARGE, 8),
        ]
    }

    fn spec() -> ExperimentSpec {
        ShaParams::new(16, 4, 124).generate().unwrap()
    }

    #[test]
    fn selection_returns_cheapest_feasible_candidate() {
        let cands = candidates();
        let out = select_instance_type(
            &cands,
            &spec(),
            SimDuration::from_mins(60),
            &PlannerConfig::default(),
            &SimConfig {
                samples: 3,
                seed: 1,
                sync_overhead_secs: 1.0,
            },
        )
        .unwrap();
        let costs: Vec<Option<f64>> = out
            .outcomes
            .iter()
            .map(|o| o.as_ref().map(|g| g.prediction.cost.as_dollars()))
            .collect();
        let winner_cost = costs[out.winner].unwrap();
        for c in costs.iter().flatten() {
            assert!(winner_cost <= *c + 1e-9);
        }
    }

    #[test]
    fn impossible_deadline_is_infeasible_for_all() {
        let err = select_instance_type(
            &candidates(),
            &spec(),
            SimDuration::from_secs(5),
            &PlannerConfig::default(),
            &SimConfig {
                samples: 1,
                seed: 1,
                sync_overhead_secs: 1.0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, RbError::Infeasible { .. }));
    }

    #[test]
    fn empty_candidate_list_is_rejected() {
        let err = select_instance_type(
            &[],
            &spec(),
            SimDuration::from_mins(60),
            &PlannerConfig::default(),
            &SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RbError::InvalidConfig(_)));
    }
}
