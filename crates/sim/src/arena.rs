//! Thread-local scratch arenas for the prediction hot path.
//!
//! A prediction composes memoized per-stage samples into per-sample JCT
//! and cost; the composition itself is cheap, so on the warm path the
//! allocator dominated. This module gives every thread one reusable
//! [`PredictArena`] holding all the buffers a prediction (or a stage
//! breakdown) needs in struct-of-arrays layout. Buffers are cleared and
//! re-filled per call but never shrunk, so once a thread has predicted a
//! plan at least as large (stages × samples) as the current one, a
//! prediction performs **zero heap allocation** — the invariant the
//! feature-gated `alloc-counter` assertion in `rb-bench` enforces.
//!
//! Arenas are plain scratch: no prediction result ever lives in one
//! beyond the call that computed it, so arena reuse can never change a
//! result — only skip `malloc`.

use crate::counters::CacheCounters;
use crate::dag::StageSample;
use rb_core::Cost;
use std::cell::RefCell;
use std::sync::Arc;

/// Process-wide warm/cold tally of arena acquisitions: a *hit* is a call
/// whose working set already fit the thread's arena (steady state, no
/// allocation), a *miss* is a call that had to grow it (warm-up). Static
/// because arenas are thread-local rather than per-simulator; surfaced
/// through [`crate::SimCacheStats::arena`].
pub(crate) static ARENA_COUNTERS: CacheCounters = CacheCounters::new();

/// The scratch buffers of one thread's prediction engine, in
/// struct-of-arrays layout:
///
/// ```text
/// per stage  (len = n_stages):  needed | new_inst | stage_arcs | hand
/// per sample (len = n_samples): jct | compute        (SoA, not Vec<RunSample>)
/// per plan   (≤ 2 × n_stages):  releases | release_stack
/// explain    (n_stages / DAG nodes): dur_sum | cost_sum | finish | duration | live
/// ```
///
/// `jct[i]`/`compute[i]` replace the old `Vec<RunSample>`: the aggregation
/// passes stream each array independently, and the data-ingress charge —
/// identical across samples — is applied once at aggregation instead of
/// being carried in every sample.
#[derive(Debug, Default)]
pub(crate) struct PredictArena {
    /// Instances held per stage ([`crate::dag::DagTemplate`] ladder).
    pub needed: Vec<u32>,
    /// Instances newly provisioned per stage.
    pub new_inst: Vec<u32>,
    /// The memoized per-stage sample arrays, one `Arc` clone per stage
    /// (clone = refcount bump, no allocation).
    pub stage_arcs: Vec<Arc<Vec<StageSample>>>,
    /// Release groups `(stage, provisioned_at, count)`.
    pub releases: Vec<(u32, u32, u32)>,
    /// LIFO stack used while expanding `releases`.
    pub release_stack: Vec<(u32, u32)>,
    /// Per-stage instance hand-over times within the current sample.
    pub hand: Vec<f64>,
    /// Sampled job completion times (seconds), index = sample.
    pub jct: Vec<f64>,
    /// Sampled compute bills, index = sample.
    pub compute: Vec<Cost>,
    /// Stage-duration accumulator (`Simulator::explain`).
    pub dur_sum: Vec<f64>,
    /// Stage-cost accumulator (`Simulator::explain`).
    pub cost_sum: Vec<f64>,
    /// Node finish times for full-DAG walks (`Simulator::explain`).
    pub finish: Vec<f64>,
    /// Node durations for full-DAG walks (`Simulator::explain`).
    pub duration: Vec<f64>,
    /// Live-instance hand-over stack (`Simulator::explain`).
    pub live: Vec<f64>,
    /// High-water marks: the largest (stages, samples) working set this
    /// arena has served. Only the warm/cold statistic — capacities are
    /// tracked by the `Vec`s themselves.
    hw_stages: usize,
    hw_samples: usize,
}

impl PredictArena {
    /// Prepares the arena for a working set of `n_stages` stages ×
    /// `n_samples` samples: clears every buffer and sizes the per-sample
    /// arrays. Returns `true` when the working set already fit (steady
    /// state — every `clear`/`resize` below stays within capacity, so the
    /// call allocates nothing); the per-plan buffers (`stage_arcs`,
    /// `releases`, …) are bounded by `n_stages` terms and reach their
    /// fixed point within the first few calls.
    pub fn ensure(&mut self, n_stages: usize, n_samples: usize) -> bool {
        let warm = n_stages <= self.hw_stages && n_samples <= self.hw_samples;
        self.hw_stages = self.hw_stages.max(n_stages);
        self.hw_samples = self.hw_samples.max(n_samples);
        self.needed.clear();
        self.new_inst.clear();
        self.stage_arcs.clear();
        self.releases.clear();
        self.release_stack.clear();
        self.hand.clear();
        self.hand.resize(n_stages, 0.0);
        self.jct.clear();
        self.jct.resize(n_samples, 0.0);
        self.compute.clear();
        self.compute.resize(n_samples, Cost::ZERO);
        warm
    }
}

thread_local! {
    static ARENA: RefCell<PredictArena> = RefCell::new(PredictArena::default());
}

/// Runs `f` with this thread's arena. Callers must not re-enter (the
/// engine never nests predictions on one thread: batch fan-out hands each
/// worker thread its *own* thread-local arena).
pub(crate) fn with_arena<R>(f: impl FnOnce(&mut PredictArena) -> R) -> R {
    ARENA.with(|a| f(&mut a.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_reports_warm_once_highwater_is_reached() {
        let mut a = PredictArena::default();
        assert!(!a.ensure(4, 16), "first use is cold");
        assert!(a.ensure(4, 16), "same shape is warm");
        assert!(a.ensure(3, 8), "smaller shape is warm");
        assert!(!a.ensure(5, 8), "more stages grows the arena");
        assert!(a.ensure(5, 16), "high-water marks are per-axis maxima");
        assert_eq!(a.jct.len(), 16);
        assert_eq!(a.compute.len(), 16);
        assert_eq!(a.hand.len(), 5);
        assert!(a.needed.is_empty(), "ladder buffers start cleared");
    }

    #[test]
    fn buffers_are_cleared_between_uses() {
        let mut a = PredictArena::default();
        a.ensure(2, 4);
        a.needed.extend([3, 1]);
        a.releases.push((0, 0, 2));
        a.jct[0] = 7.0;
        a.ensure(2, 4);
        assert!(a.needed.is_empty());
        assert!(a.releases.is_empty());
        assert_eq!(a.jct, vec![0.0; 4]);
    }
}
