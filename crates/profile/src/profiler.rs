//! The pre-execution measurement step (§5).
//!
//! "RubberBand runs a profiling step … iteratively scaling up the resource
//! allocation to a trial by powers of two and measuring training latencies
//! for each allocation. The data is aggregated to interpolate an estimated
//! training latency scaling function of the model."
//!
//! [`profile_training`] performs exactly that against a ground-truth
//! [`ScalingModel`] (standing in for real hardware): it observes noisy
//! per-step latencies at 1, 2, 4, … GPUs, averages them into knots, fits an
//! [`InterpolatedScaling`], and estimates the noise level from the
//! residual spread. It also accounts the GPU-time the profiling itself
//! consumed, since profiling is only worthwhile because it is cheap
//! relative to the job (§7).

use crate::model_profile::ModelProfile;
use rb_core::{Prng, RbError, Result};
use rb_scaling::{InterpolatedScaling, PlacementQuality, ScalingModel};
use std::sync::Arc;

/// Configuration of the profiling run.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Largest GPU allocation to measure (knots at 1, 2, 4, … up to this).
    pub max_gpus: u32,
    /// Measured steps per allocation point.
    pub steps_per_point: u32,
    /// Relative jitter (σ/μ) of observed step latencies on the substrate.
    pub observation_noise_frac: f64,
    /// Seed for the measurement noise stream.
    pub seed: u64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            max_gpus: 16,
            steps_per_point: 20,
            observation_noise_frac: 0.03,
            seed: 0xC0FFEE,
        }
    }
}

/// The outcome of a profiling run.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The fitted profile, ready for planning.
    pub profile: ModelProfile,
    /// Raw measurements: `(gpus, observed step latencies)`.
    pub measurements: Vec<(u32, Vec<f64>)>,
    /// GPU-seconds consumed by profiling.
    pub profiling_gpu_seconds: f64,
    /// Wall-clock seconds consumed by profiling (points measured
    /// sequentially, as the paper's scale-up procedure does).
    pub profiling_wall_seconds: f64,
}

/// Profiles a training procedure over a ground-truth scaling model.
///
/// `steps_per_iter` and `train_startup_secs` describe the work-unit
/// structure (they are properties of the job specification and training
/// harness, not measured quantities).
///
/// # Errors
///
/// Returns [`RbError::Profiling`] if the configuration is degenerate
/// (zero GPUs or zero measurement steps).
pub fn profile_training(
    truth: &dyn ScalingModel,
    steps_per_iter: u64,
    train_startup_secs: f64,
    config: &ProfilerConfig,
) -> Result<ProfileReport> {
    if config.max_gpus == 0 {
        return Err(RbError::Profiling("max_gpus must be >= 1".into()));
    }
    if config.steps_per_point == 0 {
        return Err(RbError::Profiling("steps_per_point must be >= 1".into()));
    }
    let mut rng = Prng::seed_from_u64(config.seed);
    let mut measurements = Vec::new();
    let mut gpu_seconds = 0.0;
    let mut wall_seconds = 0.0;
    let mut g = 1u32;
    while g <= config.max_gpus {
        let true_mean = truth.iter_latency_secs(g, PlacementQuality::Packed);
        let mut obs = Vec::with_capacity(config.steps_per_point as usize);
        for _ in 0..config.steps_per_point {
            let jitter = 1.0 + config.observation_noise_frac * rng.standard_normal();
            let latency = (true_mean * jitter).max(true_mean * 0.1);
            obs.push(latency);
            gpu_seconds += latency * f64::from(g);
            wall_seconds += latency;
        }
        measurements.push((g, obs));
        if g == config.max_gpus {
            break;
        }
        g = (g * 2).min(config.max_gpus);
    }

    let points: Vec<(u32, f64)> = measurements
        .iter()
        .map(|(g, obs)| (*g, rb_core::stats::mean(obs)))
        .collect();
    let fitted = InterpolatedScaling::from_points(&points, truth.batch_size())?;

    // Estimate relative noise from the pooled residual spread.
    let mut rel_devs = Vec::new();
    for (g, obs) in &measurements {
        let m = rb_core::stats::mean(obs);
        let _ = g;
        for o in obs {
            rel_devs.push(o / m - 1.0);
        }
    }
    let step_noise_frac = rb_core::stats::std(&rel_devs);
    // Per-unit noise: `steps_per_iter` independent steps ⇒ σ shrinks by
    // √steps relative to the unit mean.
    let unit_noise_frac = step_noise_frac / (steps_per_iter as f64).sqrt();

    Ok(ProfileReport {
        profile: ModelProfile::from_scaling(
            format!("profiled[{}]", config.max_gpus),
            Arc::new(fitted),
            steps_per_iter,
            train_startup_secs,
            unit_noise_frac,
        ),
        measurements,
        profiling_gpu_seconds: gpu_seconds,
        profiling_wall_seconds: wall_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_scaling::zoo::RESNET50;
    use rb_scaling::AnalyticScaling;

    fn truth() -> AnalyticScaling {
        AnalyticScaling::for_arch(&RESNET50, 512, 4)
    }

    #[test]
    fn fitted_profile_tracks_truth_at_measured_points() {
        let t = truth();
        let report = profile_training(&t, 25, 5.0, &ProfilerConfig::default()).unwrap();
        for g in [1u32, 2, 4, 8, 16] {
            let fit = report
                .profile
                .scaling
                .iter_latency_secs(g, PlacementQuality::Packed);
            let real = t.iter_latency_secs(g, PlacementQuality::Packed);
            assert!(
                (fit - real).abs() / real < 0.05,
                "{g} GPUs: fit {fit} vs truth {real}"
            );
        }
    }

    #[test]
    fn profiling_measures_powers_of_two_up_to_max() {
        let report = profile_training(&truth(), 1, 0.0, &ProfilerConfig::default()).unwrap();
        let gpus: Vec<u32> = report.measurements.iter().map(|(g, _)| *g).collect();
        assert_eq!(gpus, vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn non_power_of_two_max_adds_final_knot() {
        let cfg = ProfilerConfig {
            max_gpus: 12,
            ..ProfilerConfig::default()
        };
        let report = profile_training(&truth(), 1, 0.0, &cfg).unwrap();
        let gpus: Vec<u32> = report.measurements.iter().map(|(g, _)| *g).collect();
        assert_eq!(gpus, vec![1, 2, 4, 8, 12]);
    }

    #[test]
    fn noise_estimate_is_in_the_right_ballpark() {
        let cfg = ProfilerConfig {
            steps_per_point: 200,
            observation_noise_frac: 0.10,
            ..ProfilerConfig::default()
        };
        let report = profile_training(&truth(), 1, 0.0, &cfg).unwrap();
        let est = report.profile.unit_noise_frac;
        assert!(
            (0.06..0.14).contains(&est),
            "estimated noise {est} far from injected 0.10"
        );
    }

    #[test]
    fn profiling_cost_is_accounted_and_small() {
        let report = profile_training(&truth(), 1, 0.0, &ProfilerConfig::default()).unwrap();
        assert!(report.profiling_gpu_seconds > 0.0);
        assert!(report.profiling_wall_seconds > 0.0);
        // "This can be done on the order of minutes" (§5).
        assert!(
            report.profiling_wall_seconds < 600.0,
            "profiling took {} s",
            report.profiling_wall_seconds
        );
    }

    #[test]
    fn profiling_is_deterministic_in_seed() {
        let a = profile_training(&truth(), 1, 0.0, &ProfilerConfig::default()).unwrap();
        let b = profile_training(&truth(), 1, 0.0, &ProfilerConfig::default()).unwrap();
        assert_eq!(a.measurements, b.measurements);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let bad_gpus = ProfilerConfig {
            max_gpus: 0,
            ..ProfilerConfig::default()
        };
        assert!(profile_training(&truth(), 1, 0.0, &bad_gpus).is_err());
        let bad_steps = ProfilerConfig {
            steps_per_point: 0,
            ..ProfilerConfig::default()
        };
        assert!(profile_training(&truth(), 1, 0.0, &bad_steps).is_err());
    }
}
