//! The placement controller (§4.4, Algorithm 3).
//!
//! During execution the placement controller converts each trial's
//! resource *quantity* into physical resource assignments, maximizing
//! spatial locality: a trial whose allocation fits one machine is placed
//! entirely on that machine; larger trials acquire whole machines to
//! themselves. Assignments that do not need to change are preserved
//! across scheduling epochs, smaller trials can be displaced to make room
//! for larger ones, and reserved (in-flight) placements are never
//! perturbed. Before a scale-down, trials are bin-packed onto the
//! surviving machines so nodes can be released safely (Fig. 5).
//!
//! The Table 1 ablation measures what this buys: without placement
//! control, data-parallel workers scatter across machines and throughput
//! collapses (see [`scatter_placement`] for the baseline behaviour).

pub mod controller;
pub mod plan;

pub use controller::{PlacementController, PlacementDiff};
pub use plan::{scatter_placement, ClusterState, Placement, PlacementPlan};
