//! The service-level rollup: per-job outcomes, per-tenant usage, queue
//! economics, and the shared pool's ledger.

use rb_cloud::PoolStats;
use rb_core::{Cost, SimDuration, SimTime};
use rb_exec::ExecutionReport;
use std::fmt::Write as _;

/// Why an arrival was turned away at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue was at `max_queue` when the job arrived.
    QueueFull,
    /// The tenant's completed spend had reached its budget.
    BudgetExhausted,
}

impl RejectReason {
    /// Stable textual form for traces and the rendered report.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// A job the admission controller rejected.
#[derive(Debug, Clone)]
pub struct RejectedJob {
    /// Submission index of the job.
    pub job: u64,
    /// Tenant that submitted it.
    pub tenant: usize,
    /// When it arrived.
    pub arrival: SimTime,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// One completed job's timeline and bill.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Submission index of the job.
    pub job: u64,
    /// Tenant that submitted it.
    pub tenant: usize,
    /// When it arrived.
    pub arrival: SimTime,
    /// When the scheduler dispatched it (its executor's t0).
    pub dispatched: SimTime,
    /// When its final barrier completed.
    pub finished: SimTime,
    /// Time spent queued: `dispatched - arrival`.
    pub queue_wait: SimDuration,
    /// Whether pool-aware admission dispatched this job early because
    /// its first-stage demand fit inside parked pool capacity.
    pub pool_admitted: bool,
    /// The job's own execution report (JCT measured from dispatch).
    pub report: ExecutionReport,
}

/// One tenant's aggregate usage over the workload.
#[derive(Debug, Clone)]
pub struct TenantUsage {
    /// Tenant name.
    pub name: String,
    /// Fair-share weight.
    pub weight: f64,
    /// Admission budget, if any.
    pub budget: Option<Cost>,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs rejected at admission.
    pub rejected: usize,
    /// Total spend of completed jobs.
    pub spend: Cost,
    /// Median queue wait across this tenant's completed jobs (nearest
    /// rank; zero when no jobs completed).
    pub wait_p50: SimDuration,
    /// 90th-percentile queue wait across this tenant's completed jobs
    /// (nearest rank; zero when no jobs completed).
    pub wait_p90: SimDuration,
}

/// The outcome of a full multi-tenant workload.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Completed jobs, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Rejected arrivals, in arrival order.
    pub rejected: Vec<RejectedJob>,
    /// Per-tenant usage, in tenant order.
    pub tenants: Vec<TenantUsage>,
    /// Shared-pool ledger, when a pool was configured.
    pub pool: Option<PoolStats>,
    /// Jobs dispatched early by pool-aware admission (their first-stage
    /// demand fit inside parked capacity, skipping provision + init).
    pub pool_admits: u64,
    /// Virtual time of the last completion (zero if nothing ran).
    pub makespan: SimTime,
    /// What the meters actually billed: every job's compute + data
    /// cost, plus the pool's parked-instance cost.
    pub billed_cost: Cost,
    /// The bill after the pool's minimum-charge credit: each handoff
    /// avoids terminating the donor instance, so the donor's
    /// minimum-charge premium (billed by its per-job meter) is money a
    /// real shared pool never pays. `billed_cost - min_charge_saved`.
    /// Without a pool this equals [`ServeReport::billed_cost`].
    pub net_cost: Cost,
}

/// Nearest-rank percentile over an ascending-sorted slice: the value at
/// rank `⌈p·n⌉` (1-based), so a 1-sample tenant reports that sample for
/// every percentile and a 2-sample tenant reports its *first* sample as
/// the p50 (⌈0.5·2⌉ = 1) and its second as the p90 (⌈0.9·2⌉ = 2).
pub(crate) fn percentile(sorted: &[SimDuration], p: f64) -> SimDuration {
    if sorted.is_empty() {
        return SimDuration::ZERO;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl ServeReport {
    fn sorted_waits(&self) -> Vec<SimDuration> {
        let mut waits: Vec<SimDuration> = self.outcomes.iter().map(|o| o.queue_wait).collect();
        waits.sort_unstable();
        waits
    }

    /// Median queue wait across completed jobs (nearest rank).
    pub fn queue_wait_p50(&self) -> SimDuration {
        percentile(&self.sorted_waits(), 0.50)
    }

    /// 90th-percentile queue wait across completed jobs (nearest rank).
    pub fn queue_wait_p90(&self) -> SimDuration {
        percentile(&self.sorted_waits(), 0.90)
    }

    /// Worst queue wait across completed jobs.
    pub fn queue_wait_max(&self) -> SimDuration {
        self.sorted_waits()
            .last()
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Completed jobs per virtual hour of makespan.
    pub fn throughput_jobs_per_hour(&self) -> f64 {
        let hours = self.makespan.as_secs_f64() / 3600.0;
        if hours <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / hours
    }

    /// Renders the report as a byte-stable text block. The `ext-serve`
    /// verification sweep diffs this output against a checked-in
    /// expectation, so the format must stay deterministic: fixed field
    /// order, fixed precision, no floating-point accumulation beyond
    /// what the report itself already carries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve: jobs={} rejected={} pool_admits={} makespan_s={:.0} throughput_jph={:.3} billed=${:.4} net=${:.4}",
            self.outcomes.len(),
            self.rejected.len(),
            self.pool_admits,
            self.makespan.as_secs_f64(),
            self.throughput_jobs_per_hour(),
            self.billed_cost.as_dollars(),
            self.net_cost.as_dollars(),
        );
        let _ = writeln!(
            out,
            "queue_wait: p50_s={:.1} p90_s={:.1} max_s={:.1}",
            self.queue_wait_p50().as_secs_f64(),
            self.queue_wait_p90().as_secs_f64(),
            self.queue_wait_max().as_secs_f64(),
        );
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "tenant {}: weight={} completed={} rejected={} spend=${:.4} wait_p50_s={:.1} wait_p90_s={:.1}",
                t.name,
                t.weight,
                t.completed,
                t.rejected,
                t.spend.as_dollars(),
                t.wait_p50.as_secs_f64(),
                t.wait_p90.as_secs_f64(),
            );
        }
        if let Some(p) = &self.pool {
            let _ = writeln!(
                out,
                "pool: offers={} handoffs={} expirations={} drained={} rejected_full={} \
                 double_releases={} conflicts={} min_saved=${:.4} park=${:.4} \
                 ingress_saved_gb={:.1} net_saving=${:.4}",
                p.offers,
                p.handoffs,
                p.expirations,
                p.drained,
                p.rejected_full,
                p.double_releases,
                p.conflicts,
                p.min_charge_saved.as_dollars(),
                p.park_cost.as_dollars(),
                p.ingress_gb_saved,
                p.net_saving().as_dollars(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let waits: Vec<SimDuration> = (1..=10).map(SimDuration::from_secs).collect();
        assert_eq!(percentile(&waits, 0.50), SimDuration::from_secs(5));
        assert_eq!(percentile(&waits, 0.90), SimDuration::from_secs(9));
        assert_eq!(percentile(&waits, 1.0), SimDuration::from_secs(10));
        assert_eq!(percentile(&[], 0.5), SimDuration::ZERO);
        let one = [SimDuration::from_secs(7)];
        assert_eq!(percentile(&one, 0.5), SimDuration::from_secs(7));
    }

    #[test]
    fn small_sample_percentiles_match_the_hand_computed_table() {
        // Nearest rank R = ⌈p·n⌉ (1-based), hand-computed for every
        // sample count a small tenant can have. The 1- and 2-sample
        // rows are the audit targets: a 1-sample tenant reports that
        // sample everywhere; a 2-sample tenant's p50 is its FIRST
        // sample (⌈1.0⌉ = 1), not an interpolation, and its p90 the
        // second.
        #[rustfmt::skip]
        let table: &[(usize, usize, usize)] = &[
            // n, p50 rank, p90 rank (1-based)
            (1, 1, 1),
            (2, 1, 2),
            (3, 2, 3),
            (4, 2, 4),
            (5, 3, 5),
            (6, 3, 6),
            (7, 4, 7),
            (8, 4, 8),
        ];
        for &(n, r50, r90) in table {
            let waits: Vec<SimDuration> = (1..=n as u64).map(SimDuration::from_secs).collect();
            assert_eq!(
                percentile(&waits, 0.50),
                SimDuration::from_secs(r50 as u64),
                "p50 of n={n}"
            );
            assert_eq!(
                percentile(&waits, 0.90),
                SimDuration::from_secs(r90 as u64),
                "p90 of n={n}"
            );
        }
    }

    #[test]
    fn percentile_property_over_sizes_1_to_8() {
        // Property check against an index-free reference: the nearest-
        // rank percentile is the smallest sorted value v such that at
        // least p·n of the samples are ≤ v. Swept over every size
        // 1..=8, several p values, and value layouts with ties.
        fn reference(sorted: &[SimDuration], p: f64) -> SimDuration {
            let n = sorted.len();
            let need = (p * n as f64).ceil().max(1.0) as usize;
            *sorted
                .iter()
                .find(|v| sorted.iter().filter(|w| *w <= *v).count() >= need)
                .expect("non-empty")
        }
        for n in 1usize..=8 {
            for layout in 0u64..3 {
                let waits: Vec<SimDuration> = (0..n as u64)
                    .map(|i| match layout {
                        0 => SimDuration::from_secs(i + 1),           // distinct
                        1 => SimDuration::from_secs((i / 2) * 7 + 1), // ties
                        _ => SimDuration::from_secs(i * i + 3),       // skewed
                    })
                    .collect();
                let mut waits = waits;
                waits.sort_unstable();
                for p in [0.01, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
                    assert_eq!(
                        percentile(&waits, p),
                        reference(&waits, p),
                        "n={n} layout={layout} p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_report_renders_without_panicking() {
        let r = ServeReport {
            outcomes: Vec::new(),
            rejected: Vec::new(),
            tenants: Vec::new(),
            pool: None,
            pool_admits: 0,
            makespan: SimTime::ZERO,
            billed_cost: Cost::ZERO,
            net_cost: Cost::ZERO,
        };
        let text = r.render();
        assert!(text.starts_with("serve: jobs=0 rejected=0"));
        assert_eq!(r.throughput_jobs_per_hour(), 0.0);
    }
}
