//! The in-memory recording sink: an event bus plus a metrics registry.
//!
//! Events arrive only from deterministic single-threaded code paths
//! (the executor loop, the controller, the planner driver), so the
//! event vector order is reproducible. Counters and histograms may be
//! reported from simulator worker threads, so the registry is strictly
//! **order-insensitive**: counters are sums, histograms keep a value
//! multiset whose exported statistics (count/min/max/quantiles) do not
//! depend on arrival order. This is what makes JSONL exports
//! byte-identical across runs and thread counts.

use crate::recorder::{Event, Recorder};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Cap on retained raw histogram values; beyond this, observations
/// still update `count`/`min`/`max` but quantiles become approximate
/// (computed over the first `HIST_CAP` values).
const HIST_CAP: usize = 65_536;

#[derive(Debug, Default, Clone)]
struct HistogramData {
    count: u64,
    min: f64,
    max: f64,
    values: Vec<f64>,
    overflow: u64,
}

impl HistogramData {
    fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        if self.values.len() < HIST_CAP {
            self.values.push(value);
        } else {
            self.overflow += 1;
        }
    }
}

/// Order-insensitive registry of named counters and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<(&'static str, &'static str), u64>>,
    histograms: Mutex<BTreeMap<(&'static str, &'static str), HistogramData>>,
}

impl MetricsRegistry {
    pub fn counter_add(&self, scope: &'static str, name: &'static str, delta: u64) {
        let mut counters = self.counters.lock().expect("metrics lock poisoned");
        *counters.entry((scope, name)).or_insert(0) += delta;
    }

    pub fn histogram(&self, scope: &'static str, name: &'static str, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut hists = self.histograms.lock().expect("metrics lock poisoned");
        hists.entry((scope, name)).or_default().observe(value);
    }

    /// Snapshots every counter and histogram, sorted by `(scope, name)`;
    /// histogram quantiles are computed here over sorted values
    /// (nearest-rank, deterministic regardless of observation order).
    pub fn snapshot(&self) -> (Vec<CounterEntry>, Vec<HistogramEntry>) {
        let counters = self
            .counters
            .lock()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(&(scope, name), &value)| CounterEntry { scope, name, value })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(&(scope, name), data)| {
                let mut sorted = data.values.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("histograms hold no NaN"));
                HistogramEntry {
                    scope,
                    name,
                    count: data.count,
                    min: data.min,
                    max: data.max,
                    p50: quantile(&sorted, 50),
                    p90: quantile(&sorted, 90),
                }
            })
            .collect();
        (counters, histograms)
    }
}

/// A counter at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEntry {
    pub scope: &'static str,
    pub name: &'static str,
    pub value: u64,
}

/// A histogram at snapshot time. Quantiles use the nearest-rank method
/// over the sorted retained values, so they are exact while the
/// histogram holds fewer than its retention cap and deterministic
/// regardless of observation order.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramEntry {
    pub scope: &'static str,
    pub name: &'static str,
    pub count: u64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p90: f64,
}

/// Everything a [`MemoryRecorder`] captured: the ordered event stream
/// plus final counter and histogram values (sorted by name).
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    pub events: Vec<Event>,
    pub counters: Vec<CounterEntry>,
    pub histograms: Vec<HistogramEntry>,
    /// Events evicted by a bounded recorder's ring (0 when unbounded or
    /// the buffer never filled). `events` holds the most recent ones.
    pub dropped_events: u64,
}

impl TraceLog {
    /// The final value of counter `scope.name` (0 if never touched).
    pub fn counter(&self, scope: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.scope == scope && c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Events with the given scope and name, in emission order.
    pub fn events_named<'a>(
        &'a self,
        scope: &'a str,
        name: &'a str,
    ) -> impl Iterator<Item = &'a Event> {
        self.events
            .iter()
            .filter(move |e| e.scope == scope && e.name == name)
    }

    /// The histogram `scope.name`, if any observation was recorded.
    pub fn histogram(&self, scope: &str, name: &str) -> Option<&HistogramEntry> {
        self.histograms
            .iter()
            .find(|h| h.scope == scope && h.name == name)
    }
}

/// The standard recording sink: buffers events and metrics in memory
/// for export once the run completes. By default the event buffer is
/// unbounded; [`with_capacity`](Self::with_capacity) turns it into a
/// ring that keeps only the most recent events and counts the rest as
/// dropped — for long chaos sweeps where the full stream would swamp
/// memory but the tail (and the metrics) still matter.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
    metrics: MetricsRegistry,
    /// Ring capacity; `None` = unbounded.
    capacity: Option<usize>,
    dropped: Mutex<u64>,
}

impl MemoryRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds the event buffer to the most recent `capacity` events
    /// (metrics stay exact). Evicted events are tallied in
    /// [`TraceLog::dropped_events`] and noted by the exporters.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "event ring needs room for at least 1 event");
        self.capacity = Some(capacity);
        self
    }

    /// Number of events buffered so far.
    pub fn event_count(&self) -> usize {
        self.events.lock().expect("event lock poisoned").len()
    }

    /// Events evicted by the ring so far (always 0 when unbounded).
    pub fn dropped_count(&self) -> u64 {
        *self.dropped.lock().expect("event lock poisoned")
    }

    /// Snapshots everything captured so far into an exportable log.
    /// Counters and histograms come out sorted by `(scope, name)`;
    /// histogram quantiles are computed here, over sorted values.
    pub fn finish(&self) -> TraceLog {
        let events = self.events.lock().expect("event lock poisoned").clone();
        let dropped_events = self.dropped_count();
        let (counters, histograms) = self.metrics.snapshot();
        TraceLog {
            events,
            counters,
            histograms,
            dropped_events,
        }
    }
}

/// Nearest-rank quantile over pre-sorted values.
fn quantile(sorted: &[f64], pct: u64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as u64 - 1) * pct / 100) as usize;
    sorted[idx]
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let mut events = self.events.lock().expect("event lock poisoned");
        if let Some(cap) = self.capacity {
            if events.len() >= cap {
                // Ring semantics: drop the oldest, keep the tail.
                events.remove(0);
                *self.dropped.lock().expect("event lock poisoned") += 1;
            }
        }
        events.push(event);
    }

    fn counter_add(&self, scope: &'static str, name: &'static str, delta: u64) {
        self.metrics.counter_add(scope, name, delta);
    }

    fn histogram(&self, scope: &'static str, name: &'static str, value: f64) {
        self.metrics.histogram(scope, name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Lane, Recorder};
    use rb_core::SimTime;

    #[test]
    fn counters_accumulate_and_sort() {
        let rec = MemoryRecorder::new();
        rec.counter_add("b", "y", 2);
        rec.counter_add("a", "x", 1);
        rec.counter_add("b", "y", 3);
        let log = rec.finish();
        assert_eq!(log.counter("b", "y"), 5);
        assert_eq!(log.counter("a", "x"), 1);
        assert_eq!(log.counter("a", "missing"), 0);
        assert_eq!(log.counters[0].scope, "a", "sorted by (scope, name)");
    }

    #[test]
    fn histogram_stats_are_order_insensitive() {
        let forward = MemoryRecorder::new();
        let backward = MemoryRecorder::new();
        let values: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.5).collect();
        for &v in &values {
            forward.histogram("s", "h", v);
        }
        for &v in values.iter().rev() {
            backward.histogram("s", "h", v);
        }
        let (f, b) = (forward.finish(), backward.finish());
        assert_eq!(f.histogram("s", "h"), b.histogram("s", "h"));
        let h = f.histogram("s", "h").unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 49.5);
        assert_eq!(h.p50, 24.5);
        assert_eq!(h.p90, 44.5);
    }

    #[test]
    fn non_finite_histogram_values_are_dropped() {
        let rec = MemoryRecorder::new();
        rec.histogram("s", "h", f64::NAN);
        rec.histogram("s", "h", f64::INFINITY);
        rec.histogram("s", "h", 1.0);
        let h = rec.finish();
        assert_eq!(h.histogram("s", "h").unwrap().count, 1);
    }

    #[test]
    fn bounded_ring_keeps_the_tail_and_counts_drops() {
        let rec = MemoryRecorder::new().with_capacity(3);
        for i in 0..5u64 {
            rec.instant(
                SimTime::from_millis(i),
                "t",
                if i % 2 == 0 { "even" } else { "odd" },
                Lane::Global,
                Vec::new(),
            );
        }
        rec.counter_add("t", "c", 5);
        assert_eq!(rec.event_count(), 3);
        assert_eq!(rec.dropped_count(), 2);
        let log = rec.finish();
        assert_eq!(log.dropped_events, 2);
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.events[0].at, SimTime::from_millis(2), "tail survives");
        // Metrics are exact regardless of event eviction.
        assert_eq!(log.counter("t", "c"), 5);
        // The unbounded default never drops.
        assert_eq!(MemoryRecorder::new().finish().dropped_events, 0);
    }

    #[test]
    #[should_panic(expected = "at least 1 event")]
    fn zero_capacity_is_rejected() {
        let _ = MemoryRecorder::new().with_capacity(0);
    }

    #[test]
    fn events_keep_emission_order() {
        let rec = MemoryRecorder::new();
        rec.instant(SimTime::from_millis(5), "t", "b", Lane::Global, Vec::new());
        rec.instant(SimTime::from_millis(1), "t", "a", Lane::Global, Vec::new());
        let log = rec.finish();
        assert_eq!(log.events.len(), 2);
        assert_eq!(
            log.events[0].name, "b",
            "bus preserves emission order, not time order"
        );
        assert_eq!(log.events_named("t", "a").count(), 1);
    }
}
