//! DAG construction (§4.2).
//!
//! The simulator "constructs the DAG by parsing the specification and
//! allocation plan together stage-by-stage, extending dependency edges
//! from the frontier in each step. For each stage, cluster scaling nodes
//! are first added if provisioning new nodes is necessary. This is
//! followed by adding parallel training nodes and a synchronization node
//! to end the stage. … If the cluster is too small to run all trials in
//! parallel, each queued trial is represented by a TRAIN node with a
//! serial dependency on a previously run trial." Low-latency, zero-cost
//! events (deprovisioning) are unrepresented.

use crate::plan::AllocationPlan;
use rb_core::{Distribution, Prng, Result};
use rb_hpo::ExperimentSpec;
use rb_profile::{CloudProfile, ModelProfile};
use rb_scaling::PlacementQuality;

/// What a DAG node represents.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Provision `new_instances` instances before `stage` begins.
    Scale {
        /// The stage the scale-up precedes.
        stage: usize,
        /// Instances requested.
        new_instances: u32,
    },
    /// Initialize one freshly provisioned instance before `stage`.
    InitInstance {
        /// The stage the instance joins.
        stage: usize,
    },
    /// Train one trial slot for `units` work units on `gpus` GPUs.
    Train {
        /// Stage index.
        stage: usize,
        /// Slot within the stage (0-based; identifies the trial).
        trial_slot: u32,
        /// Work units executed.
        units: u64,
        /// GPUs allocated to the trial.
        gpus: u32,
    },
    /// The end-of-stage evaluation/termination barrier.
    Sync {
        /// Stage index.
        stage: usize,
    },
}

/// A node's latency specification.
#[derive(Debug, Clone, PartialEq)]
pub enum Latency {
    /// One draw from the distribution.
    Dist(Distribution),
    /// The maximum of `n` independent draws — used for SCALE, whose
    /// hand-over completes when the slowest of the requested instances
    /// arrives.
    MaxOf {
        /// Per-instance delay distribution.
        dist: Distribution,
        /// Number of independent draws.
        n: u32,
    },
}

impl Latency {
    /// Samples one latency in seconds.
    pub fn sample(&self, rng: &mut Prng) -> f64 {
        match self {
            Latency::Dist(d) => d.sample(rng).max(0.0),
            Latency::MaxOf { dist, n } => (0..*n).map(|_| dist.sample(rng)).fold(0.0_f64, f64::max),
        }
    }

    /// The latency's mean (upper-bounded approximation for `MaxOf`, which
    /// uses the underlying mean — adequate for reporting only).
    pub fn mean(&self) -> f64 {
        match self {
            Latency::Dist(d) => d.mean(),
            Latency::MaxOf { dist, .. } => dist.mean(),
        }
    }
}

/// One task node: kind, latency, and dependency edges (indices of earlier
/// nodes).
#[derive(Debug, Clone, PartialEq)]
pub struct DagNode {
    /// What the task does.
    pub kind: NodeKind,
    /// Its latency model.
    pub latency: Latency,
    /// Indices of predecessor nodes (always smaller than this node's own
    /// index, so the vector order is a topological order).
    pub preds: Vec<usize>,
}

/// The execution DAG for one (spec, plan) pair, plus the stage-level
/// metadata needed to reconstruct instance lifetimes for billing.
#[derive(Debug, Clone)]
pub struct ExecDag {
    /// Nodes in topological (construction) order.
    pub nodes: Vec<DagNode>,
    /// Index of each stage's SYNC node.
    pub stage_sync: Vec<usize>,
    /// Index of each stage's SCALE node, when the stage grew the cluster.
    pub stage_scale: Vec<Option<usize>>,
    /// Instances held during each stage.
    pub stage_instances: Vec<u32>,
    /// Instances newly provisioned at each stage's start.
    pub stage_new_instances: Vec<u32>,
    /// Total instances provisioned over the job.
    pub total_instances: u32,
}

impl ExecDag {
    /// Builds the DAG for `spec` executed under `plan` with the given
    /// profiles. `sync_overhead_secs` is the barrier's evaluation latency.
    ///
    /// # Errors
    ///
    /// Returns [`rb_core::RbError::InvalidPlan`] if the plan fails
    /// validation against the spec.
    pub fn build(
        spec: &ExperimentSpec,
        plan: &AllocationPlan,
        model: &ModelProfile,
        cloud: &CloudProfile,
        sync_overhead_secs: f64,
    ) -> Result<ExecDag> {
        plan.validate(spec)?;
        let gpg = cloud.gpus_per_instance().max(1);
        let mut nodes: Vec<DagNode> = Vec::new();
        let mut stage_sync = Vec::with_capacity(spec.num_stages());
        let mut stage_scale = Vec::with_capacity(spec.num_stages());
        let mut stage_instances = Vec::with_capacity(spec.num_stages());
        let mut stage_new = Vec::with_capacity(spec.num_stages());
        let mut total_instances = 0u32;
        let mut current_instances = 0u32;
        // The frontier: nodes with out-degree zero that the next stage's
        // first tasks must depend on.
        let mut frontier: Vec<usize> = Vec::new();

        for i in 0..spec.num_stages() {
            let (trials, units) = spec.get_stage(i)?;
            let alloc = plan.gpus(i);
            let needed = plan.instances_for_stage(i, spec, gpg);

            // 1. Cluster scaling, when the stage needs more instances.
            let mut stage_deps = frontier.clone();
            if needed > current_instances {
                let k = needed - current_instances;
                let scale_idx = nodes.len();
                nodes.push(DagNode {
                    kind: NodeKind::Scale {
                        stage: i,
                        new_instances: k,
                    },
                    latency: Latency::MaxOf {
                        dist: cloud.provision_delay.clone(),
                        n: k,
                    },
                    preds: frontier.clone(),
                });
                stage_scale.push(Some(scale_idx));
                let mut init_idxs = Vec::with_capacity(k as usize);
                for _ in 0..k {
                    let idx = nodes.len();
                    nodes.push(DagNode {
                        kind: NodeKind::InitInstance { stage: i },
                        latency: Latency::Dist(cloud.init_latency.clone()),
                        preds: vec![scale_idx],
                    });
                    init_idxs.push(idx);
                }
                // Training barriers on the whole new cluster being ready;
                // the previous frontier is implied transitively via SCALE.
                stage_deps = init_idxs;
                total_instances += k;
                stage_new.push(k);
            } else {
                // Deprovisioning (shrink) is a low-latency, zero-cost event
                // and is unrepresented in the DAG (§4.2).
                stage_scale.push(None);
                stage_new.push(0);
            }
            current_instances = needed;
            stage_instances.push(needed);

            // 2. Training tasks: all-parallel when GPUs suffice, otherwise
            //    waves of `alloc` single-GPU trials chained serially.
            let gpt = plan.gpus_per_trial(i, spec);
            let parallel_slots = if alloc >= trials { trials } else { alloc };
            let placement = PlacementQuality::Packed;
            let mut train_idxs = Vec::with_capacity(trials as usize);
            for slot in 0..trials {
                let preds = if slot < parallel_slots {
                    stage_deps.clone()
                } else {
                    vec![train_idxs[(slot - parallel_slots) as usize]]
                };
                let idx = nodes.len();
                nodes.push(DagNode {
                    kind: NodeKind::Train {
                        stage: i,
                        trial_slot: slot,
                        units,
                        gpus: gpt,
                    },
                    latency: Latency::Dist(model.train_task_dist(units, gpt, placement)),
                    preds,
                });
                train_idxs.push(idx);
            }

            // 3. The synchronization barrier over every trial in the stage.
            let sync_idx = nodes.len();
            nodes.push(DagNode {
                kind: NodeKind::Sync { stage: i },
                latency: Latency::Dist(Distribution::Constant(sync_overhead_secs)),
                preds: train_idxs,
            });
            stage_sync.push(sync_idx);
            frontier = vec![sync_idx];
        }

        Ok(ExecDag {
            nodes,
            stage_sync,
            stage_scale,
            stage_instances,
            stage_new_instances: stage_new,
            total_instances,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG has no nodes (never the case for a valid spec).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over nodes of a given stage and kind (test/debug helper).
    pub fn train_nodes(&self, stage: usize) -> impl Iterator<Item = (usize, &DagNode)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| matches!(n.kind, NodeKind::Train { stage: s, .. } if s == stage))
    }

    /// Renders the DAG in Graphviz DOT format — the representation the
    /// paper draws in Fig. 7. Node labels carry the task kind and mean
    /// latency; `dot -Tsvg` turns the output into the figure.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("digraph exec {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let (label, color) = match n.kind {
                NodeKind::Scale { new_instances, .. } => {
                    (format!("SCALE +{new_instances}"), "lightblue")
                }
                NodeKind::InitInstance { .. } => ("INIT".to_string(), "lightcyan"),
                NodeKind::Train {
                    trial_slot,
                    units,
                    gpus,
                    ..
                } => (
                    format!("TRAIN t{trial_slot}\\n{units}u x {gpus}g"),
                    "palegreen",
                ),
                NodeKind::Sync { stage } => (format!("SYNC s{stage}"), "gold"),
            };
            let _ = writeln!(
                out,
                "  n{i} [label=\"{label}\\n~{:.1}s\", style=filled, fillcolor={color}];",
                n.latency.mean()
            );
            for &p in &n.preds {
                let _ = writeln!(out, "  n{p} -> n{i};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::{P3_2XLARGE, P3_8XLARGE};
    use rb_cloud::CloudPricing;
    use rb_scaling::IdealScaling;
    use std::sync::Arc;

    fn model() -> ModelProfile {
        ModelProfile::from_scaling("ideal", Arc::new(IdealScaling::new(4.0, 512)), 1, 0.0, 0.0)
    }

    fn cloud_1gpu() -> CloudProfile {
        CloudProfile::new(CloudPricing::on_demand(P3_2XLARGE))
            .with_provision_delay(rb_core::SimDuration::from_secs(10))
            .with_init_latency(rb_core::SimDuration::from_secs(20))
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(4, 10), (2, 10), (1, 10)]).unwrap()
    }

    #[test]
    fn node_census_for_shrinking_plan() {
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![4, 2, 1]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        // Stage 0: 1 SCALE + 4 INIT + 4 TRAIN + 1 SYNC = 10.
        // Stages 1, 2: shrink (no scale) → (2 TRAIN + SYNC) + (1 TRAIN + SYNC).
        assert_eq!(dag.len(), 10 + 3 + 2);
        assert_eq!(dag.total_instances, 4);
        assert_eq!(dag.stage_instances, vec![4, 2, 1]);
        assert_eq!(dag.stage_new_instances, vec![4, 0, 0]);
        assert!(dag.stage_scale[0].is_some());
        assert!(dag.stage_scale[1].is_none());
    }

    #[test]
    fn growth_adds_scale_and_init_nodes_mid_job() {
        // Growing plan 1 → 4 → 4.
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![1, 2, 4]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        assert_eq!(dag.stage_new_instances, vec![1, 1, 2]);
        assert_eq!(dag.total_instances, 4);
        // The stage-1 scale node depends on stage-0's sync.
        let scale1 = dag.stage_scale[1].unwrap();
        assert_eq!(dag.nodes[scale1].preds, vec![dag.stage_sync[0]]);
    }

    #[test]
    fn wave_scheduling_builds_serial_chains() {
        // 4 trials on 1 GPU → slots=1: trial k depends on trial k-1.
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![1, 2, 1]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        let trains: Vec<usize> = dag.train_nodes(0).map(|(i, _)| i).collect();
        assert_eq!(trains.len(), 4);
        for w in trains.windows(2) {
            assert_eq!(dag.nodes[w[1]].preds, vec![w[0]], "serial chain broken");
        }
        // Stage 1: 2 trials on 2 GPUs → both parallel, depending on sync 0.
        let t1: Vec<&DagNode> = dag.train_nodes(1).map(|(_, n)| n).collect();
        assert_eq!(t1[0].preds, t1[1].preds);
    }

    #[test]
    fn multi_gpu_instances_change_instance_math() {
        // p3.8xlarge (4 GPUs): 8 GPUs for 4 trials = 2 instances.
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE));
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![8, 4, 2]),
            &model(),
            &cloud,
            1.0,
        )
        .unwrap();
        assert_eq!(dag.stage_instances, vec![2, 1, 1]);
        // Each trial gets 2 GPUs in stage 0.
        for (_, n) in dag.train_nodes(0) {
            match n.kind {
                NodeKind::Train { gpus, .. } => assert_eq!(gpus, 2),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn invalid_plan_is_rejected() {
        // Wrong stage count.
        assert!(ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![4, 2]),
            &model(),
            &cloud_1gpu(),
            1.0
        )
        .is_err());
    }

    #[test]
    fn uneven_allocation_runs_waves_with_idle_remainder() {
        // 3 GPUs for 4 trials: 3 parallel slots, the 4th chains on slot 0.
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![3, 2, 1]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        let trains: Vec<usize> = dag.train_nodes(0).map(|(i, _)| i).collect();
        assert_eq!(trains.len(), 4);
        assert_eq!(dag.nodes[trains[3]].preds, vec![trains[0]]);
        assert_eq!(dag.nodes[trains[1]].preds, dag.nodes[trains[0]].preds);
    }

    #[test]
    fn preds_are_topologically_ordered() {
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![2, 2, 2]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        for (i, n) in dag.nodes.iter().enumerate() {
            for &p in &n.preds {
                assert!(p < i, "node {i} depends on later node {p}");
            }
        }
    }

    #[test]
    fn sync_depends_on_every_train_in_stage() {
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![4, 2, 1]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        for stage in 0..3 {
            let sync = &dag.nodes[dag.stage_sync[stage]];
            let trains: Vec<usize> = dag.train_nodes(stage).map(|(i, _)| i).collect();
            assert_eq!(sync.preds, trains);
        }
    }

    #[test]
    fn dot_rendering_covers_every_node_and_edge() {
        let dag = ExecDag::build(
            &spec(),
            &AllocationPlan::new(vec![4, 2, 1]),
            &model(),
            &cloud_1gpu(),
            1.0,
        )
        .unwrap();
        let dot = dag.to_dot();
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("SCALE").count(), 1);
        assert_eq!(dot.matches("INIT").count(), 4);
        assert_eq!(dot.matches("TRAIN").count(), 4 + 2 + 1);
        assert_eq!(dot.matches("SYNC").count(), 3);
        let edges: usize = dag.nodes.iter().map(|n| n.preds.len()).sum();
        assert_eq!(dot.matches(" -> ").count(), edges);
    }

    #[test]
    fn maxof_latency_sampling_dominates_single_draw() {
        let dist = Distribution::lognormal_from_moments(10.0, 5.0);
        let single = Latency::Dist(dist.clone());
        let max8 = Latency::MaxOf { dist, n: 8 };
        let mut r1 = Prng::seed_from_u64(1);
        let mut r2 = Prng::seed_from_u64(1);
        let mut s_sum = 0.0;
        let mut m_sum = 0.0;
        for _ in 0..500 {
            s_sum += single.sample(&mut r1);
            m_sum += max8.sample(&mut r2);
        }
        assert!(m_sum > s_sum, "max of 8 draws should exceed one draw");
    }
}
