//! The streaming sink: schema-valid JSONL written incrementally.
//!
//! [`MemoryRecorder`](crate::memory::MemoryRecorder) buffers everything
//! and exports once the run completes; a bounded ring caps its memory
//! by *dropping* the oldest events. [`StreamingRecorder`] is the other
//! side of that trade: every event is rendered to its JSONL line the
//! moment it is recorded and pushed into the writer, so the sink keeps
//! **full fidelity past any ring capacity** while holding only one
//! line in memory at a time. The rendering is shared byte-for-byte with
//! [`crate::export::export_jsonl`], so a streamed trace of a run is
//! identical to the batch export of the same run's `TraceLog` — the
//! round-trip tests in `rubberband` pin this.
//!
//! The writer is buffered; [`flush`](StreamingRecorder::flush) defines
//! the explicit durability points (the executor calls it at stage
//! barriers), so a crash loses at most the current stage's tail.
//! [`finish`](StreamingRecorder::finish) appends the metric lines
//! (counters, histograms, and the dropped-events note — always 0 for
//! this sink, kept for format parity) and returns the writer.
//!
//! Like every recorder, the sink only *receives* data: it consumes no
//! randomness and never influences the computation it observes.

use crate::export::{write_event_line, write_metric_lines};
use crate::memory::MetricsRegistry;
use crate::recorder::{Event, Recorder};
use std::fmt;
use std::io::{self, BufWriter, Write};
use std::sync::Mutex;

struct StreamState<W: Write> {
    out: BufWriter<W>,
    seq: usize,
    /// First write error, reported at `finish` (recorders are
    /// infallible by trait contract, so errors are deferred, never
    /// allowed to influence the observed computation).
    error: Option<io::Error>,
}

/// A [`Recorder`] that renders each event to its JSONL line on arrival
/// and writes it through a buffered writer. Metrics stay in an
/// order-insensitive registry until [`finish`](Self::finish).
pub struct StreamingRecorder<W: Write + Send> {
    state: Mutex<StreamState<W>>,
    metrics: MetricsRegistry,
}

impl<W: Write + Send> fmt::Debug for StreamingRecorder<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StreamingRecorder({} events)", self.event_count())
    }
}

impl StreamingRecorder<Vec<u8>> {
    /// A streaming sink over an in-memory buffer — the common case for
    /// tests and for builds that write the file themselves.
    pub fn in_memory() -> Self {
        Self::new(Vec::new())
    }

    /// Finishes an in-memory sink and returns the complete JSONL text.
    ///
    /// # Panics
    ///
    /// Panics when a write failed (impossible for `Vec<u8>`) or the
    /// stream is not UTF-8 (impossible: the renderer emits JSON).
    pub fn into_jsonl(self) -> String {
        let bytes = self.finish().expect("in-memory writes cannot fail");
        String::from_utf8(bytes).expect("JSONL is UTF-8")
    }
}

impl<W: Write + Send> StreamingRecorder<W> {
    /// Wraps `writer` in a buffered streaming sink.
    pub fn new(writer: W) -> Self {
        Self {
            state: Mutex::new(StreamState {
                out: BufWriter::new(writer),
                seq: 0,
                error: None,
            }),
            metrics: MetricsRegistry::default(),
        }
    }

    /// Number of event lines written so far.
    pub fn event_count(&self) -> usize {
        self.state.lock().expect("stream lock poisoned").seq
    }

    /// Flushes buffered lines through to the writer — the explicit
    /// durability points of the stream (stage barriers, job
    /// completions). Errors are deferred to [`finish`](Self::finish).
    pub fn flush(&self) {
        let mut state = self.state.lock().expect("stream lock poisoned");
        if state.error.is_none() {
            if let Err(e) = state.out.flush() {
                state.error = Some(e);
            }
        }
    }

    /// Appends the metric lines, flushes, and returns the inner writer.
    /// The first deferred write error, if any, surfaces here.
    ///
    /// # Errors
    ///
    /// Returns the first write or flush error the stream encountered.
    pub fn finish(self) -> io::Result<W> {
        let state = self.state.into_inner().expect("stream lock poisoned");
        let StreamState {
            mut out,
            seq: _,
            error,
        } = state;
        if let Some(e) = error {
            return Err(e);
        }
        let (counters, histograms) = self.metrics.snapshot();
        let mut tail = String::new();
        // A streaming sink never evicts, so the drop note is always
        // absent — exactly what export_jsonl writes for dropped = 0.
        write_metric_lines(&mut tail, &counters, &histograms, 0);
        out.write_all(tail.as_bytes())?;
        out.flush()?;
        out.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write + Send> Recorder for StreamingRecorder<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let mut line = String::new();
        let mut state = self.state.lock().expect("stream lock poisoned");
        write_event_line(&mut line, state.seq, &event);
        line.push('\n');
        state.seq += 1;
        if state.error.is_none() {
            if let Err(e) = state.out.write_all(line.as_bytes()) {
                state.error = Some(e);
            }
        }
    }

    fn counter_add(&self, scope: &'static str, name: &'static str, delta: u64) {
        self.metrics.counter_add(scope, name, delta);
    }

    fn histogram(&self, scope: &'static str, name: &'static str, value: f64) {
        self.metrics.histogram(scope, name, value);
    }

    fn flush(&self) {
        StreamingRecorder::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export_jsonl;
    use crate::memory::MemoryRecorder;
    use crate::recorder::{Lane, SpanTracker};
    use crate::schema::validate_jsonl;
    use rb_core::SimTime;

    fn drive(rec: &dyn Recorder) {
        let mut spans = SpanTracker::new();
        let (run, _) = spans.open();
        rec.span_start(
            SimTime::ZERO,
            "exec",
            "run",
            Lane::Global,
            run,
            None,
            vec![],
        );
        rec.instant(
            SimTime::from_millis(3),
            "exec",
            "node.up",
            Lane::Node(0),
            vec![("preempted", false.into())],
        );
        rec.span(
            SimTime::from_millis(3),
            SimTime::from_millis(8),
            "exec",
            "trial.segment",
            Lane::Trial(1),
            vec![("stage", 0u64.into())],
        );
        rec.gauge(
            SimTime::from_millis(8),
            "ctrl",
            "drift",
            Lane::Controller,
            1.5,
        );
        rec.span_end(
            SimTime::from_millis(9),
            "exec",
            "run",
            Lane::Global,
            spans.close(),
            vec![],
        );
        rec.counter_add("sim", "hits", 4);
        rec.histogram("sim", "h", 2.5);
    }

    #[test]
    fn stream_matches_batch_export_byte_for_byte() {
        let streaming = StreamingRecorder::in_memory();
        let memory = MemoryRecorder::new();
        drive(&streaming);
        drive(&memory);
        let streamed = streaming.into_jsonl();
        let batch = export_jsonl(&memory.finish());
        assert_eq!(streamed, batch);
        validate_jsonl(&streamed).expect("streamed trace validates");
    }

    #[test]
    fn flush_makes_event_lines_visible_mid_run() {
        // A shared Vec the test can observe mid-stream.
        #[derive(Debug, Clone, Default)]
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let shared = Shared::default();
        let rec = StreamingRecorder::new(shared.clone());
        rec.instant(SimTime::ZERO, "t", "a", Lane::Global, Vec::new());
        rec.flush();
        let visible = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        assert!(
            visible.contains("\"name\":\"a\""),
            "flushed line visible before finish"
        );
        assert_eq!(rec.event_count(), 1);
        rec.finish().expect("finish succeeds");
    }

    #[test]
    fn streaming_keeps_full_fidelity_past_ring_capacity() {
        // The same 100-event run through a 10-slot ring and the stream:
        // the ring keeps a tail, the stream keeps everything.
        let ring = MemoryRecorder::new().with_capacity(10);
        let stream = StreamingRecorder::in_memory();
        for i in 0..100u64 {
            for rec in [&ring as &dyn Recorder, &stream as &dyn Recorder] {
                rec.instant(SimTime::from_millis(i), "t", "e", Lane::Global, Vec::new());
            }
        }
        assert_eq!(ring.finish().events.len(), 10);
        let streamed = stream.into_jsonl();
        let stats = validate_jsonl(&streamed).expect("validates");
        assert_eq!(stats.events, 100);
        assert!(
            !streamed.contains("dropped_events"),
            "streams never drop, so no note"
        );
    }
}
