//! Schema validation for the JSONL trace export.
//!
//! The schema (enforced here, produced by [`crate::export::export_jsonl`]):
//!
//! * Every line is a standalone JSON object.
//! * **Event lines** carry `seq` (integer, strictly increasing from 0),
//!   `t_ms` (non-negative integer virtual time), `scope`/`name`/`lane`
//!   (non-empty strings, `lane` one of `global|controller|planner|cloud`
//!   or `node:<n>|trial:<n>|stage:<n>|job:<n>`), `kind` (`instant`, `span`, or
//!   `gauge`), and `fields` (object). `span` lines add `end_ms >= t_ms`;
//!   `gauge` lines add a *finite* numeric or null `value` (non-finite
//!   readings must be exported as `null`; a numeric literal that
//!   overflows to infinity is rejected).
//! * **Metric lines** carry `metric` (`counter` or `histogram`) and
//!   follow all event lines. Counters carry an integer `value`;
//!   histograms carry `count`/`min`/`max`/`p50`/`p90` (same finite-or-
//!   null rule).

use crate::json::{parse_json, Json};

/// Counts from a successful validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonlStats {
    pub events: usize,
    pub counters: usize,
    pub histograms: usize,
}

fn lane_ok(lane: &str) -> bool {
    match lane {
        "global" | "controller" | "planner" | "cloud" => true,
        _ => lane.split_once(':').is_some_and(|(kind, id)| {
            matches!(kind, "node" | "trial" | "stage" | "job")
                && !id.is_empty()
                && id.bytes().all(|b| b.is_ascii_digit())
        }),
    }
}

fn require_str(obj: &Json, key: &str, line_no: usize) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .ok_or_else(|| format!("line {line_no}: missing or empty string `{key}`"))
}

fn require_u64(obj: &Json, key: &str, line_no: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing or non-integer `{key}`"))
}

fn require_num_or_null(obj: &Json, key: &str, line_no: usize) -> Result<(), String> {
    match obj.get(key) {
        // Finite only: JSON has no NaN/inf, but an overflowing literal
        // like 1e999 parses to f64::INFINITY. Producers must map
        // non-finite values to null (write_json_f64 does).
        Some(Json::Num(v)) if v.is_finite() => Ok(()),
        Some(Json::Num(_)) => Err(format!("line {line_no}: non-finite number in `{key}`")),
        Some(Json::Null) => Ok(()),
        _ => Err(format!("line {line_no}: missing or non-numeric `{key}`")),
    }
}

fn validate_event_line(obj: &Json, line_no: usize, expected_seq: usize) -> Result<(), String> {
    let seq = require_u64(obj, "seq", line_no)?;
    if seq != expected_seq as u64 {
        return Err(format!(
            "line {line_no}: seq {seq} out of order (expected {expected_seq})"
        ));
    }
    let t_ms = require_u64(obj, "t_ms", line_no)?;
    require_str(obj, "scope", line_no)?;
    require_str(obj, "name", line_no)?;
    let lane = require_str(obj, "lane", line_no)?;
    if !lane_ok(&lane) {
        return Err(format!("line {line_no}: bad lane `{lane}`"));
    }
    if !obj.get("fields").is_some_and(Json::is_obj) {
        return Err(format!("line {line_no}: `fields` must be an object"));
    }
    let kind = require_str(obj, "kind", line_no)?;
    match kind.as_str() {
        "instant" => Ok(()),
        "span" => {
            let end_ms = require_u64(obj, "end_ms", line_no)?;
            if end_ms < t_ms {
                return Err(format!("line {line_no}: span ends before it starts"));
            }
            Ok(())
        }
        "gauge" => require_num_or_null(obj, "value", line_no),
        other => Err(format!("line {line_no}: unknown kind `{other}`")),
    }
}

fn validate_metric_line(obj: &Json, line_no: usize) -> Result<bool, String> {
    let metric = require_str(obj, "metric", line_no)?;
    require_str(obj, "scope", line_no)?;
    require_str(obj, "name", line_no)?;
    match metric.as_str() {
        "counter" => {
            require_u64(obj, "value", line_no)?;
            Ok(true)
        }
        "histogram" => {
            require_u64(obj, "count", line_no)?;
            for key in ["min", "max", "p50", "p90"] {
                require_num_or_null(obj, key, line_no)?;
            }
            Ok(false)
        }
        other => Err(format!("line {line_no}: unknown metric kind `{other}`")),
    }
}

/// Validates a JSONL trace export against the schema above.
pub fn validate_jsonl(text: &str) -> Result<JsonlStats, String> {
    let mut stats = JsonlStats {
        events: 0,
        counters: 0,
        histograms: 0,
    };
    let mut in_metrics = false;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {line_no}: blank line"));
        }
        let obj = parse_json(line).map_err(|e| format!("line {line_no}: {e}"))?;
        if obj.get("metric").is_some() {
            in_metrics = true;
            if validate_metric_line(&obj, line_no)? {
                stats.counters += 1;
            } else {
                stats.histograms += 1;
            }
        } else {
            if in_metrics {
                return Err(format!("line {line_no}: event line after metric lines"));
            }
            validate_event_line(&obj, line_no, stats.events)?;
            stats.events += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export_jsonl;
    use crate::memory::MemoryRecorder;
    use crate::recorder::{Lane, Recorder};
    use rb_core::SimTime;

    fn sample_export() -> String {
        let rec = MemoryRecorder::new();
        rec.instant(
            SimTime::from_millis(1),
            "exec",
            "a",
            Lane::Global,
            Vec::new(),
        );
        rec.span(
            SimTime::from_millis(1),
            SimTime::from_millis(2),
            "exec",
            "b",
            Lane::Node(1),
            vec![("k", 1u64.into())],
        );
        rec.gauge(SimTime::from_millis(2), "ctrl", "c", Lane::Controller, 0.5);
        rec.counter_add("sim", "hits", 3);
        rec.histogram("sim", "h", 2.0);
        export_jsonl(&rec.finish())
    }

    #[test]
    fn accepts_own_exports() {
        let stats = validate_jsonl(&sample_export()).expect("export validates");
        assert_eq!(
            stats,
            JsonlStats {
                events: 3,
                counters: 1,
                histograms: 1
            }
        );
    }

    #[test]
    fn rejects_corruption() {
        let good = sample_export();
        // Truncated JSON on the first line.
        let bad = good.replacen("{\"seq\":0", "{\"seq\":", 1);
        assert!(validate_jsonl(&bad).is_err());
        // Out-of-order sequence numbers.
        let bad = good.replace("\"seq\":2", "\"seq\":7");
        assert!(validate_jsonl(&bad).unwrap_err().contains("out of order"));
        // Unknown lane.
        let bad = good.replace("\"lane\":\"node:1\"", "\"lane\":\"gpu:1\"");
        assert!(validate_jsonl(&bad).unwrap_err().contains("bad lane"));
        // Span ending before it starts.
        let bad = good.replace("\"end_ms\":2", "\"end_ms\":0");
        assert!(validate_jsonl(&bad).unwrap_err().contains("ends before"));
        // Event after metrics.
        let mut lines: Vec<&str> = good.lines().collect();
        let event = lines[0];
        lines.push(event);
        let shuffled: String = lines.join("\n");
        assert!(validate_jsonl(&shuffled)
            .unwrap_err()
            .contains("after metric"));
    }

    #[test]
    fn non_finite_gauges_round_trip_as_null() {
        // A NaN drift factor (the pre-fix rb-ctrl bug) must export as
        // null and still validate.
        let rec = MemoryRecorder::new();
        rec.gauge(
            SimTime::ZERO,
            "ctrl",
            "drift_factor",
            Lane::Controller,
            f64::NAN,
        );
        rec.gauge(
            SimTime::from_millis(1),
            "ctrl",
            "drift_factor",
            Lane::Controller,
            f64::INFINITY,
        );
        rec.histogram("sim", "h", f64::NEG_INFINITY);
        let text = export_jsonl(&rec.finish());
        assert!(text.contains("\"value\":null"), "NaN gauge exports as null");
        assert!(
            !text.contains("NaN") && !text.contains("inf"),
            "no bare non-finite literals"
        );
        let stats = validate_jsonl(&text).expect("null-mapped export validates");
        assert_eq!(stats.events, 2);
    }

    #[test]
    fn rejects_non_finite_numbers() {
        let good = sample_export();
        // An overflowing literal parses to f64::INFINITY — the schema
        // must reject it rather than accept an unreadable value.
        let bad = good.replace("\"value\":0.5", "\"value\":1e999");
        assert!(validate_jsonl(&bad).unwrap_err().contains("non-finite"));
    }

    #[test]
    fn lane_grammar() {
        assert!(lane_ok("node:12"));
        assert!(lane_ok("global"));
        assert!(!lane_ok("node:"));
        assert!(!lane_ok("node:x"));
        assert!(!lane_ok("worker:1"));
    }
}
