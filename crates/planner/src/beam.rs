//! The shared beam-search descent engine.
//!
//! Both descent planners — greedy cost descent under a deadline
//! ([`crate::greedy::optimize_plan`]) and JCT descent under a budget
//! ([`crate::budget::plan_min_jct`]) — are instances of the same shape:
//! from an incumbent, generate neighbour candidates, score each against
//! its parent, and move to the best-scoring one. This module widens that
//! shape from a single incumbent to a *beam* of `width` incumbents whose
//! candidates are predicted in one batch per iteration, so the whole
//! frontier amortizes one `predict_batch` call (and its de-duplication
//! and parallel fan-out) instead of paying per-plan prediction latency.
//!
//! # Width-1 bit-identity
//!
//! `width == 1` must reproduce the historical single-incumbent loop
//! *exactly* — same chosen plans, same step counts, same counter and
//! event sequence — because the repro traces and their expected
//! summaries were recorded against it. The invariants that guarantee
//! this:
//!
//! * candidates are generated from beam members **in slot order**, so at
//!   width 1 the candidate vector is byte-identical to the old loop's;
//! * successor slot 0 considers only candidates whose parent is slot 0,
//!   with the same strictly-greater tie-break in candidate order — the
//!   head of the beam therefore walks the exact width-1 lineage;
//! * one `candidates_generated` / `candidates_pruned` /
//!   `steps_taken` counter update and one accept event per iteration,
//!   in the old loop's order.
//!
//! Wider beams only *add* slots after slot 0 (global best score over the
//! whole frontier, skipping duplicates), and every retired incumbent
//! competes for the final answer under the caller's `better` ordering —
//! so a wider beam never returns a worse plan than width 1.

use rb_core::{Result, SimTime};
use rb_hpo::ExperimentSpec;
use rb_obs::Lane;
use rb_sim::{AllocationPlan, Prediction, Simulator};

/// Static context of one beam descent.
pub(crate) struct Descent<'a> {
    pub sim: &'a Simulator,
    pub spec: &'a ExperimentSpec,
    /// Number of incumbents kept per iteration; 0 is treated as 1.
    pub width: usize,
    /// Hard cap on iterations (each iteration advances the whole beam).
    pub max_steps: usize,
    /// Name of the instant event emitted when the beam head advances
    /// (e.g. `"step.accept"`); lane is always [`Lane::Planner`].
    pub accept_event: &'static str,
}

/// Runs beam descent from one warm start.
///
/// * `generate` appends the neighbour candidates of a plan to `out`
///   (called once per beam member per iteration, in slot order).
/// * `score` rates a candidate against its parent: `None` prunes it
///   (counted in `candidates_pruned`), `Some(m)` enters it with marginal
///   benefit `m` — higher is better, strictly-greater tie-break in
///   candidate order.
/// * `better` is the strict "is `a` a better final answer than `b`"
///   ordering used to pick the returned plan among all retired
///   incumbents (ties resolve to the later, deeper incumbent, matching
///   the historical loop's final-incumbent behaviour).
///
/// Returns the best plan seen, its prediction, and the number of
/// iterations the beam advanced (equal to greedy steps at width 1).
///
/// # Errors
///
/// Propagates simulator errors from batch prediction.
pub(crate) fn beam_descent<G, S, B>(
    d: &Descent<'_>,
    start_plan: AllocationPlan,
    start_pred: Prediction,
    mut generate: G,
    score: S,
    better: B,
) -> Result<(AllocationPlan, Prediction, usize)>
where
    G: FnMut(&AllocationPlan, &mut Vec<AllocationPlan>) -> Result<()>,
    S: Fn(&Prediction, &Prediction) -> Option<f64>,
    B: Fn(&Prediction, &Prediction) -> bool,
{
    let width = d.width.max(1);
    let recorder = d.sim.recorder().clone();
    let mut beam: Vec<(AllocationPlan, Prediction)> = vec![(start_plan, start_pred)];
    let mut best: Option<(AllocationPlan, Prediction)> = None;
    let mut steps = 0usize;
    let mut cands: Vec<AllocationPlan> = Vec::new();
    let mut parents: Vec<usize> = Vec::new();
    let mut scored: Vec<Option<(Prediction, f64)>> = Vec::new();
    // Retire an incumbent into the running best; later wins on ties.
    let retire = |best: &mut Option<(AllocationPlan, Prediction)>,
                  plan: AllocationPlan,
                  pred: Prediction| {
        let replace = match best {
            None => true,
            Some((_, b)) => !better(b, &pred),
        };
        if replace {
            *best = Some((plan, pred));
        }
    };
    while steps < d.max_steps && !beam.is_empty() {
        cands.clear();
        parents.clear();
        for (slot, (plan, _)) in beam.iter().enumerate() {
            let before = cands.len();
            generate(plan, &mut cands)?;
            parents.extend(std::iter::repeat(slot).take(cands.len() - before));
        }
        recorder.counter_add("planner", "candidates_generated", cands.len() as u64);
        // One batched prediction over the whole frontier; results come
        // back in candidate order, preserving the tie-break.
        scored.clear();
        let mut pruned = 0u64;
        for (k, pred) in d.sim.predict_batch(d.spec, &cands).into_iter().enumerate() {
            let pred = pred?;
            match score(&beam[parents[k]].1, &pred) {
                Some(m) => scored.push(Some((pred, m))),
                None => {
                    pruned += 1;
                    scored.push(None);
                }
            }
        }
        recorder.counter_add("planner", "candidates_pruned", pruned);
        // Successor slot 0: best-scoring child of the beam head only —
        // the head walks the exact width-1 lineage.
        let mut taken: Vec<usize> = Vec::with_capacity(width);
        let mut head: Option<f64> = None;
        for k in 0..cands.len() {
            if parents[k] != 0 {
                continue;
            }
            if let Some((_, m)) = &scored[k] {
                if head.map_or(true, |h| *m > h) {
                    head = Some(*m);
                    if taken.is_empty() {
                        taken.push(k);
                    } else {
                        taken[0] = k;
                    }
                }
            }
        }
        // Remaining slots: global best score over the whole frontier,
        // skipping already-taken candidates and duplicate plans.
        while taken.len() < width {
            let mut pick: Option<(usize, f64)> = None;
            for k in 0..cands.len() {
                if taken.contains(&k) || taken.iter().any(|&t| cands[t] == cands[k]) {
                    continue;
                }
                if let Some((_, m)) = &scored[k] {
                    let is_better = match &pick {
                        None => true,
                        Some((_, pm)) => *m > *pm,
                    };
                    if is_better {
                        pick = Some((k, *m));
                    }
                }
            }
            match pick {
                Some((k, _)) => taken.push(k),
                None => break,
            }
        }
        // The current incumbents are done either way: retire them.
        for (plan, pred) in beam.drain(..) {
            retire(&mut best, plan, pred);
        }
        if taken.is_empty() {
            break;
        }
        for &k in &taken {
            let (pred, _) = scored[k].as_ref().expect("taken candidates are scored");
            beam.push((cands[k].clone(), *pred));
        }
        steps += 1;
        recorder.counter_add("planner", "steps_taken", 1);
        if recorder.enabled() {
            // Planning precedes virtual time; planner events sit at t=0
            // on their own lane, ordered by sequence.
            let head = &beam[0].1;
            recorder.instant(
                SimTime::ZERO,
                "planner",
                d.accept_event,
                Lane::Planner,
                vec![
                    ("cost_usd", head.cost.as_dollars().into()),
                    ("jct_secs", head.jct.as_secs_f64().into()),
                ],
            );
        }
    }
    // Loop may exit on max_steps with live incumbents; retire them too.
    for (plan, pred) in beam.drain(..) {
        retire(&mut best, plan, pred);
    }
    let (plan, pred) = best.expect("beam starts non-empty");
    Ok((plan, pred, steps))
}

/// Predicts `plans` in one batch and returns the index and prediction of
/// the best plan under `better` (strict; earlier index wins ties) among
/// those passing `keep`. `Ok(None)` when nothing passes.
///
/// # Errors
///
/// Propagates simulator errors.
pub(crate) fn batch_select<K, B>(
    sim: &Simulator,
    spec: &ExperimentSpec,
    plans: &[AllocationPlan],
    mut keep: K,
    better: B,
) -> Result<Option<(usize, Prediction)>>
where
    K: FnMut(&Prediction) -> bool,
    B: Fn(&Prediction, &Prediction) -> bool,
{
    let mut best: Option<(usize, Prediction)> = None;
    for (i, pred) in sim.predict_batch(spec, plans).into_iter().enumerate() {
        let pred = pred?;
        if !keep(&pred) {
            continue;
        }
        let replace = match &best {
            None => true,
            Some((_, b)) => better(&pred, b),
        };
        if replace {
            best = Some((i, pred));
        }
    }
    Ok(best)
}
