//! The trial state machine.
//!
//! A trial trains one hyperparameter configuration. The scheduler may
//! start, pause (checkpoint), resume (restore, possibly on different
//! resources) or terminate it between iterations (§3, §5). The state
//! machine enforces those lifecycle rules; training progress itself is
//! delegated to [`TaskModel`].

use crate::task::TaskModel;
use rb_core::{RbError, Result, TrialId};
use rb_hpo::Config;

/// Lifecycle state of a trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialStatus {
    /// Created but never scheduled.
    Pending,
    /// Currently training on some allocation.
    Running,
    /// Checkpointed and waiting (between stages, or displaced).
    Paused,
    /// Finished all assigned work.
    Completed,
    /// Early-stopped by the tuning algorithm.
    Terminated,
}

/// One observed metric point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricPoint {
    /// Cumulative work units completed when the metric was observed.
    pub iters: u64,
    /// Observed validation accuracy.
    pub accuracy: f64,
}

/// A trial: configuration, progress, metric history and lifecycle state.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The trial's identity.
    pub id: TrialId,
    /// The hyperparameter configuration under evaluation.
    pub config: Config,
    /// Seed for this trial's evaluation-noise stream.
    pub seed: u64,
    status: TrialStatus,
    iters_done: u64,
    history: Vec<MetricPoint>,
}

impl Trial {
    /// Creates a pending trial.
    pub fn new(id: TrialId, config: Config, seed: u64) -> Self {
        Trial {
            id,
            config,
            seed,
            status: TrialStatus::Pending,
            iters_done: 0,
            history: Vec::new(),
        }
    }

    /// Current lifecycle state.
    pub fn status(&self) -> TrialStatus {
        self.status
    }

    /// Cumulative work units completed.
    pub fn iters_done(&self) -> u64 {
        self.iters_done
    }

    /// The full metric history, oldest first.
    pub fn history(&self) -> &[MetricPoint] {
        &self.history
    }

    /// The most recent observed accuracy, if any evaluation has happened.
    pub fn latest_accuracy(&self) -> Option<f64> {
        self.history.last().map(|p| p.accuracy)
    }

    /// The best observed accuracy so far.
    pub fn best_accuracy(&self) -> Option<f64> {
        self.history
            .iter()
            .map(|p| p.accuracy)
            .fold(None, |best, a| Some(best.map_or(a, |b: f64| b.max(a))))
    }

    /// True if the trial can still do work.
    pub fn is_live(&self) -> bool {
        matches!(
            self.status,
            TrialStatus::Pending | TrialStatus::Running | TrialStatus::Paused
        )
    }

    /// Transitions to `Running`.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] unless the trial is pending or
    /// paused.
    pub fn start(&mut self) -> Result<()> {
        match self.status {
            TrialStatus::Pending | TrialStatus::Paused => {
                self.status = TrialStatus::Running;
                Ok(())
            }
            s => Err(RbError::Execution(format!(
                "cannot start {} from {s:?}",
                self.id
            ))),
        }
    }

    /// Transitions to `Paused` (the scheduler checkpointed it).
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] unless the trial is running.
    pub fn pause(&mut self) -> Result<()> {
        match self.status {
            TrialStatus::Running => {
                self.status = TrialStatus::Paused;
                Ok(())
            }
            s => Err(RbError::Execution(format!(
                "cannot pause {} from {s:?}",
                self.id
            ))),
        }
    }

    /// Marks the trial as having finished all its assigned work.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] unless the trial is running or
    /// paused.
    pub fn complete(&mut self) -> Result<()> {
        match self.status {
            TrialStatus::Running | TrialStatus::Paused => {
                self.status = TrialStatus::Completed;
                Ok(())
            }
            s => Err(RbError::Execution(format!(
                "cannot complete {} from {s:?}",
                self.id
            ))),
        }
    }

    /// Early-stops the trial (bottom performer at a barrier).
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] if the trial already finished.
    pub fn terminate(&mut self) -> Result<()> {
        match self.status {
            TrialStatus::Completed | TrialStatus::Terminated => Err(RbError::Execution(format!(
                "cannot terminate {} from {:?}",
                self.id, self.status
            ))),
            _ => {
                self.status = TrialStatus::Terminated;
                Ok(())
            }
        }
    }

    /// Advances the trial by `units` work units under `task`, recording
    /// one metric observation at the end (training APIs evaluate at
    /// iteration boundaries, §3). Returns the observed accuracy.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] unless the trial is running.
    pub fn advance(&mut self, task: &TaskModel, units: u64) -> Result<f64> {
        if self.status != TrialStatus::Running {
            return Err(RbError::Execution(format!(
                "cannot train {}: status {:?}",
                self.id, self.status
            )));
        }
        self.iters_done += units;
        let acc = task.accuracy(&self.config, self.iters_done, self.seed);
        self.history.push(MetricPoint {
            iters: self.iters_done,
            accuracy: acc,
        });
        Ok(acc)
    }

    /// Restores progress and history from a checkpoint snapshot (used by
    /// the checkpoint store; not public API for schedulers).
    pub(crate) fn restore_progress(&mut self, iters_done: u64, history: Vec<MetricPoint>) {
        self.iters_done = iters_done;
        self.history = history;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::resnet101_cifar10;

    fn trial() -> Trial {
        Trial::new(TrialId::new(0), Config::new().with_f64("lr", 0.1), 42)
    }

    #[test]
    fn lifecycle_happy_path() {
        let t = resnet101_cifar10();
        let mut tr = trial();
        assert_eq!(tr.status(), TrialStatus::Pending);
        tr.start().unwrap();
        tr.advance(&t, 1).unwrap();
        tr.pause().unwrap();
        tr.start().unwrap();
        tr.advance(&t, 3).unwrap();
        assert_eq!(tr.iters_done(), 4);
        tr.complete().unwrap();
        assert_eq!(tr.status(), TrialStatus::Completed);
        assert!(!tr.is_live());
    }

    #[test]
    fn history_accumulates_monotonic_iters() {
        let t = resnet101_cifar10();
        let mut tr = trial();
        tr.start().unwrap();
        for units in [1, 3, 9] {
            tr.advance(&t, units).unwrap();
        }
        let iters: Vec<u64> = tr.history().iter().map(|p| p.iters).collect();
        assert_eq!(iters, vec![1, 4, 13]);
        assert!(tr.latest_accuracy().is_some());
        assert!(tr.best_accuracy().unwrap() >= tr.history()[0].accuracy.min(0.0));
    }

    #[test]
    fn invalid_transitions_error() {
        let t = resnet101_cifar10();
        let mut tr = trial();
        assert!(tr.pause().is_err(), "pause pending");
        assert!(tr.advance(&t, 1).is_err(), "train pending");
        assert!(tr.complete().is_err(), "complete pending");
        tr.start().unwrap();
        assert!(tr.start().is_err(), "start running");
        tr.terminate().unwrap();
        assert!(tr.start().is_err(), "start terminated");
        assert!(tr.terminate().is_err(), "terminate terminated");
    }

    #[test]
    fn terminate_from_pending_running_paused() {
        for setup in 0..3 {
            let mut tr = trial();
            if setup >= 1 {
                tr.start().unwrap();
            }
            if setup == 2 {
                tr.pause().unwrap();
            }
            tr.terminate().unwrap();
            assert_eq!(tr.status(), TrialStatus::Terminated);
        }
    }

    #[test]
    fn best_accuracy_tracks_maximum_not_latest() {
        let t = resnet101_cifar10();
        let mut tr = trial();
        tr.start().unwrap();
        for _ in 0..20 {
            tr.advance(&t, 5).unwrap();
        }
        let best = tr.best_accuracy().unwrap();
        for p in tr.history() {
            assert!(best >= p.accuracy);
        }
    }
}
