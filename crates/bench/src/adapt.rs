//! Extension — online adaptation (`repro ext-adapt`).
//!
//! The paper plans once, before execution; this extension measures what
//! closing the loop buys. The Table 2 workload is planned under a 30 min
//! deadline from the *profiled* model, then executed under injected
//! model error (every training iteration slowed by a factor the planner
//! never saw) and spot interruptions, both open loop and with the
//! rb-ctrl adaptation controller re-planning at stage barriers. Each
//! cell of the slowdown × interruption-rate × threshold sweep reports
//! deadline-hit and cost for both modes plus the number of applied
//! re-plans.

use crate::tables::{e2e_cloud, physics_for, profiled_model, search_space};
use rb_core::{Result, SimDuration};
use rb_ctrl::{ControllerConfig, DriftConfig};
use rb_exec::ExecOptions;
use rb_hpo::ShaParams;
use rb_planner::{plan_rubberband, PlannerConfig};
use rb_profile::ModelProfile;
use rb_scaling::RescaledScaling;
use rb_train::TaskModel;
use std::sync::Arc;

/// One sweep cell: open-loop vs adaptive execution of the same plan.
#[derive(Debug, Clone)]
pub struct AdaptRow {
    /// Injected ground-truth slowdown (1.0 = the model is calibrated).
    pub slowdown: f64,
    /// Spot interruptions per instance-hour (0 = on-demand).
    pub rate_per_hour: f64,
    /// The controller's drift re-plan threshold.
    pub threshold: f64,
    /// Open-loop executed JCT in seconds.
    pub open_jct_secs: f64,
    /// Open-loop executed cost in dollars.
    pub open_cost: f64,
    /// Open loop met the deadline.
    pub open_hit: bool,
    /// Adaptive executed JCT in seconds.
    pub adaptive_jct_secs: f64,
    /// Adaptive executed cost in dollars.
    pub adaptive_cost: f64,
    /// Adaptive met the deadline.
    pub adaptive_hit: bool,
    /// Re-plans the controller actually spliced into the plan.
    pub replans: usize,
    /// Preemptions absorbed by the adaptive run.
    pub preemptions: u32,
}

/// Ground-truth physics with every iteration `slowdown`× the nominal
/// latency — the injected model error the planner cannot see.
pub fn slowed_physics(task: &TaskModel, batch: u32, node_gpus: u32, slowdown: f64) -> ModelProfile {
    let mut p = physics_for(task, batch, node_gpus);
    if slowdown != 1.0 {
        p.scaling = Arc::new(RescaledScaling::new(p.scaling.clone(), slowdown));
    }
    p
}

/// Runs the adaptation sweep. The plan is compiled once (nominal model,
/// 30 min deadline); every `slowdown × rate × threshold` cell executes it
/// open loop and with the adaptation controller, from the same seed.
///
/// # Errors
///
/// Propagates planner/executor errors.
pub fn ext_adapt(
    slowdowns: &[f64],
    rates: &[f64],
    thresholds: &[f64],
    seed: u64,
) -> Result<(SimDuration, Vec<AdaptRow>)> {
    let task = rb_train::task::resnet101_cifar10();
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate()?;
    let model = profiled_model(&task, 1024, 4, 32);
    let space = search_space();
    let deadline = SimDuration::from_mins(30);
    let sim = rb_sim::Simulator::new(model.clone(), e2e_cloud());
    let out = plan_rubberband(&sim, &spec, deadline, &PlannerConfig::default())?;

    let mut rows = Vec::new();
    for &slowdown in slowdowns {
        let physics = slowed_physics(&task, 1024, 4, slowdown);
        for &rate in rates {
            let mut cloud = e2e_cloud().with_spot_interruptions(rate);
            if rate > 0.0 {
                cloud.pricing = cloud.pricing.with_spot();
            }
            let options = || ExecOptions {
                seed,
                ..ExecOptions::default()
            };
            let open = rubberband::execute_with(
                &spec, &out.plan, &task, &physics, &cloud, &space, options(),
            )?;
            for &threshold in thresholds {
                let config = ControllerConfig {
                    drift: DriftConfig {
                        replan_threshold: threshold,
                        ..DriftConfig::default()
                    },
                    ..ControllerConfig::default()
                };
                let adaptive = rubberband::execute_adaptive(
                    &spec, &out.plan, &task, &physics, &model, &cloud, &space, deadline,
                    options(), &config,
                )?;
                rows.push(AdaptRow {
                    slowdown,
                    rate_per_hour: rate,
                    threshold,
                    open_jct_secs: open.jct.as_secs_f64(),
                    open_cost: open.total_cost().as_dollars(),
                    open_hit: open.jct <= deadline,
                    adaptive_jct_secs: adaptive.report.jct.as_secs_f64(),
                    adaptive_cost: adaptive.report.total_cost().as_dollars(),
                    adaptive_hit: adaptive.deadline_met(),
                    replans: adaptive.adaptation.applied(),
                    preemptions: adaptive.report.preemptions,
                });
            }
        }
    }
    Ok((deadline, rows))
}

/// Renders the adaptation sweep, ending with a machine-checkable summary
/// line (counts only, so it is stable across platforms —
/// `scripts/verify.sh` diffs it against a checked-in expectation).
pub fn print_ext_adapt(deadline: SimDuration, rows: &[AdaptRow]) {
    println!("Extension — online adaptation (rb-ctrl) under injected drift");
    println!(
        "(Table 2 workload, RubberBand plan @ {deadline} deadline; slowdown is \
         hidden from the planner)\n"
    );
    println!(
        "{:>8} {:>7} {:>9} | {:>10} {:>9} {:>5} | {:>10} {:>9} {:>5} {:>7} {:>6}",
        "slowdown", "spot/h", "threshold", "open JCT", "cost", "hit", "adapt JCT", "cost", "hit",
        "replans", "preempt"
    );
    for r in rows {
        println!(
            "{:>8.2} {:>7.1} {:>9.2} | {:>10} {:>9} {:>5} | {:>10} {:>9} {:>5} {:>7} {:>6}",
            r.slowdown,
            r.rate_per_hour,
            r.threshold,
            SimDuration::from_secs_f64(r.open_jct_secs).to_string(),
            format!("${:.2}", r.open_cost),
            if r.open_hit { "yes" } else { "MISS" },
            SimDuration::from_secs_f64(r.adaptive_jct_secs).to_string(),
            format!("${:.2}", r.adaptive_cost),
            if r.adaptive_hit { "yes" } else { "MISS" },
            r.replans,
            r.preemptions
        );
    }
    let open_hits = rows.iter().filter(|r| r.open_hit).count();
    let adaptive_hits = rows.iter().filter(|r| r.adaptive_hit).count();
    let replans: usize = rows.iter().map(|r| r.replans).sum();
    // Calm cells (no injected drift, no spot churn) must be bit-identical
    // to open loop: the controller observed but never intervened.
    let calm_mismatches = rows
        .iter()
        .filter(|r| r.slowdown == 1.0 && r.rate_per_hour == 0.0)
        .filter(|r| r.replans != 0 || r.adaptive_cost != r.open_cost)
        .count();
    println!(
        "\next-adapt summary: cells={} open_hits={open_hits} adaptive_hits={adaptive_hits} \
         applied_replans={replans} calm_mismatches={calm_mismatches}",
        rows.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_drift_cell_never_replans_and_keeps_cost() {
        let (deadline, rows) = ext_adapt(&[1.0], &[0.0], &[1.15], 1).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.replans, 0, "calibrated run re-planned");
        assert_eq!(r.adaptive_cost, r.open_cost, "controller changed cost");
        assert_eq!(r.adaptive_jct_secs, r.open_jct_secs);
        assert!(r.open_hit && r.adaptive_hit);
        assert!(SimDuration::from_secs_f64(r.open_jct_secs) <= deadline);
    }

    #[test]
    fn adaptation_recovers_the_deadline_under_injected_slowdown() {
        let (_, rows) = ext_adapt(&[1.5], &[0.0], &[1.15], 1).unwrap();
        let r = &rows[0];
        assert!(
            !r.open_hit,
            "open loop unexpectedly met the deadline (jct {}s)",
            r.open_jct_secs
        );
        assert!(r.replans > 0, "no re-plan under 1.5x slowdown");
        assert!(
            r.adaptive_hit,
            "adaptive missed: jct {}s after {} replans",
            r.adaptive_jct_secs, r.replans
        );
        assert!(r.adaptive_jct_secs < r.open_jct_secs);
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let run = || ext_adapt(&[1.5], &[1.0], &[1.25], 7).unwrap().1;
        let a = run();
        let b = run();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.adaptive_jct_secs, y.adaptive_jct_secs);
            assert_eq!(x.adaptive_cost, y.adaptive_cost);
            assert_eq!(x.replans, y.replans);
            assert_eq!(x.preemptions, y.preemptions);
        }
    }
}
