//! # rb-obs — deterministic observability for RubberBand
//!
//! A zero-dependency tracing, metrics and export layer threaded through
//! every crate in the workspace:
//!
//! * [`Recorder`] — the sink trait: structured events (instant / span /
//!   gauge) on per-node, per-trial and per-subsystem [`Lane`]s, plus
//!   order-insensitive counters and histograms. [`NoopRecorder`] is the
//!   default everywhere and is observationally free: executor and
//!   simulator output is bit-identical with or without it (the same
//!   contract as `run()` vs `run_hooked()` in `rb-exec`).
//! * [`MemoryRecorder`] — the in-memory sink; [`TraceLog`] is its
//!   snapshot.
//! * [`export::export_jsonl`] — a JSONL event stream stamped in virtual
//!   time, validated by [`schema::validate_jsonl`].
//! * [`export::export_chrome`] — a Chrome `trace_event` document
//!   loadable in `chrome://tracing` / Perfetto, with lanes per node,
//!   trial, stage and controller.
//! * [`RunSummary`] — the end-of-run rollup (JCT, cost, cache hit
//!   rates, re-plan counts, GPU busy/idle split) surfaced through
//!   `rubberband::execute*`.
//! * [`log`] — leveled stderr logging behind an `RB_LOG` env filter.
//!
//! Everything is stamped in **virtual time** and consumes no
//! randomness, so traces are byte-reproducible from a seed.

pub mod export;
pub mod job;
pub mod json;
pub mod log;
pub mod memory;
pub mod recorder;
pub mod schema;
pub mod streaming;
pub mod summary;

pub use job::{JobScopedRecorder, JOB_LANE_STRIDE};
pub use memory::{CounterEntry, HistogramEntry, MemoryRecorder, MetricsRegistry, TraceLog};
pub use recorder::{
    Event, EventKind, Lane, NoopRecorder, Recorder, RecorderHandle, SpanId, SpanTracker, Value,
};
pub use streaming::StreamingRecorder;
pub use summary::{CacheStats, RunSummary};
