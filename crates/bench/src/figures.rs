//! The simulated experiments: Figs. 4 and 9–12 of the paper.
//!
//! Each function takes the sweep parameters (paper defaults live in the
//! `repro` binary), runs the static and elastic planners through the
//! simulator, and returns structured rows; `print_*` renders the text
//! figure. Infeasible configurations yield `None` entries.

use crate::common::{fig_cloud, policy_prediction, synthetic_rn50};
use rb_core::{Cost, SimDuration};
use rb_hpo::ShaParams;
use rb_planner::Policy;
use rb_scaling::zoo::ZOO;
use rb_scaling::{AnalyticScaling, PlacementQuality, ScalingModel};

/// One model's normalized-throughput curve (Fig. 4).
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Architecture name.
    pub model: &'static str,
    /// `(gpus, speedup over 1 GPU)` points.
    pub speedups: Vec<(u32, f64)>,
}

/// Fig. 4: sub-linear scaling of the model zoo with increasing GPUs
/// (batch 512, 8-GPU machines).
pub fn fig4(gpus: &[u32]) -> Vec<Fig4Row> {
    ZOO.iter()
        .map(|arch| {
            let m = AnalyticScaling::for_arch(arch, 512, 8);
            Fig4Row {
                model: arch.name,
                speedups: gpus
                    .iter()
                    .map(|&g| (g, m.speedup(g, PlacementQuality::Packed)))
                    .collect(),
            }
        })
        .collect()
}

/// Renders Fig. 4 as a table of normalized throughputs.
pub fn print_fig4(rows: &[Fig4Row]) {
    println!("Figure 4 — scaling of deep learning models with increasing GPUs");
    println!("(throughput normalized to 1 GPU; batch 512, 8-GPU nodes)\n");
    print!("{:<14}", "model");
    for (g, _) in &rows[0].speedups {
        print!("{:>8}", format!("{g} GPU"));
    }
    println!();
    for row in rows {
        print!("{:<14}", row.model);
        for (_, s) in &row.speedups {
            print!("{s:>8.2}");
        }
        println!();
    }
}

/// One straggler setting's costs (Fig. 9).
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Straggler σ in seconds (on a 4 s mean iteration).
    pub sigma: f64,
    /// Static policy, per-instance billing.
    pub static_per_instance: Option<f64>,
    /// Static policy, per-function billing.
    pub static_per_function: Option<f64>,
    /// Elastic (RubberBand) policy, per-instance billing.
    pub elastic_per_instance: Option<f64>,
    /// Elastic policy, per-function billing.
    pub elastic_per_function: Option<f64>,
}

/// Fig. 9: impact of stragglers on cost under both billing regimes.
/// `SHA(n=64, r=4, R=508)`, ResNet-50 bs=512, μ = 4 s, init = 0 s.
pub fn fig9(sigmas: &[f64], deadline: SimDuration) -> Vec<Fig9Row> {
    let spec = ShaParams::new(64, 4, 508).generate().expect("paper spec");
    sigmas
        .iter()
        .map(|&sigma| {
            let model = synthetic_rn50(512, 4.0, sigma);
            let cost = |policy: Policy, per_function: bool| -> Option<f64> {
                let mut cloud = fig_cloud(0.0);
                if per_function {
                    cloud.pricing = cloud.pricing.with_per_function_billing();
                }
                policy_prediction(policy, &spec, &model, &cloud, deadline)
                    .ok()
                    .map(|p| p.cost.as_dollars())
            };
            Fig9Row {
                sigma,
                static_per_instance: cost(Policy::Static, false),
                static_per_function: cost(Policy::Static, true),
                elastic_per_instance: cost(Policy::RubberBand, false),
                elastic_per_function: cost(Policy::RubberBand, true),
            }
        })
        .collect()
}

fn opt(v: Option<f64>) -> String {
    v.map(|x| format!("${x:.2}")).unwrap_or_else(|| "—".into())
}

/// Renders Fig. 9.
pub fn print_fig9(rows: &[Fig9Row]) {
    println!("Figure 9 — impact of stragglers on simulated cost under billing regimes");
    println!("(SHA(n=64, r=4, R=508), ResNet-50 bs=512, μ = 4 s/iter, p3.8xlarge)\n");
    println!(
        "{:>6} | {:>12} {:>12} | {:>12} {:>12}",
        "σ (s)", "static/inst", "static/func", "elastic/inst", "elastic/func"
    );
    for r in rows {
        println!(
            "{:>6.1} | {:>12} {:>12} | {:>12} {:>12}",
            r.sigma,
            opt(r.static_per_instance),
            opt(r.static_per_function),
            opt(r.elastic_per_instance),
            opt(r.elastic_per_function)
        );
    }
}

/// One data-price setting's costs (Fig. 10).
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Ingress price in $/GB.
    pub price_per_gb: f64,
    /// Static policy total cost.
    pub static_cost: Option<f64>,
    /// Elastic policy total cost.
    pub elastic_cost: Option<f64>,
}

/// Fig. 10: impact of data-I/O pricing for a dataset of `dataset_gb`
/// downloaded once per instance. Same SHA workload as Fig. 9.
pub fn fig10(dataset_gb: f64, prices: &[f64], deadline: SimDuration) -> Vec<Fig10Row> {
    let spec = ShaParams::new(64, 4, 508).generate().expect("paper spec");
    let model = synthetic_rn50(512, 4.0, 1.0);
    prices
        .iter()
        .map(|&price| {
            let cost = |policy: Policy| -> Option<f64> {
                let mut cloud = fig_cloud(15.0).with_dataset_gb(dataset_gb);
                cloud.pricing = cloud.pricing.with_data_price(Cost::from_dollars(price));
                policy_prediction(policy, &spec, &model, &cloud, deadline)
                    .ok()
                    .map(|p| p.cost.as_dollars())
            };
            Fig10Row {
                price_per_gb: price,
                static_cost: cost(Policy::Static),
                elastic_cost: cost(Policy::RubberBand),
            }
        })
        .collect()
}

/// Renders Fig. 10 (one panel).
pub fn print_fig10(dataset: &str, gb: f64, rows: &[Fig10Row]) {
    println!("Figure 10 ({dataset}, {gb} GB) — impact of data I/O pricing\n");
    println!(
        "{:>10} | {:>12} {:>12} {:>8}",
        "$/GB", "static", "elastic", "ratio"
    );
    for r in rows {
        let ratio = match (r.static_cost, r.elastic_cost) {
            (Some(s), Some(e)) if e > 0.0 => format!("{:.2}x", s / e),
            _ => "—".into(),
        };
        println!(
            "{:>10.3} | {:>12} {:>12} {:>8}",
            r.price_per_gb,
            opt(r.static_cost),
            opt(r.elastic_cost),
            ratio
        );
    }
}

/// One job-size setting's costs (Fig. 11).
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Number of trials `k` in `SHA(n=k, r=4, R=508)`.
    pub trials: u32,
    /// Static policy cost under the billing model.
    pub static_cost: Option<f64>,
    /// Elastic policy cost.
    pub elastic_cost: Option<f64>,
}

/// Fig. 11: cost versus number of trials under one billing model
/// (20-minute constraint in the paper).
pub fn fig11(trial_counts: &[u32], per_function: bool, deadline: SimDuration) -> Vec<Fig11Row> {
    let model = synthetic_rn50(512, 4.0, 1.0);
    trial_counts
        .iter()
        .map(|&k| {
            let spec = ShaParams::new(k, 4, 508).generate().expect("valid spec");
            let cost = |policy: Policy| -> Option<f64> {
                let mut cloud = fig_cloud(15.0);
                if per_function {
                    cloud.pricing = cloud.pricing.with_per_function_billing();
                }
                policy_prediction(policy, &spec, &model, &cloud, deadline)
                    .ok()
                    .map(|p| p.cost.as_dollars())
            };
            Fig11Row {
                trials: k,
                static_cost: cost(Policy::Static),
                elastic_cost: cost(Policy::RubberBand),
            }
        })
        .collect()
}

/// Renders Fig. 11 (one panel).
pub fn print_fig11(billing: &str, rows: &[Fig11Row]) {
    println!("Figure 11 ({billing}) — cost vs number of trials (SHA(k, 4, 508), 20 min)\n");
    println!(
        "{:>8} | {:>12} {:>12} {:>8}",
        "trials", "static", "elastic", "ratio"
    );
    for r in rows {
        let ratio = match (r.static_cost, r.elastic_cost) {
            (Some(s), Some(e)) if e > 0.0 => format!("{:.2}x", s / e),
            _ => "—".into(),
        };
        println!(
            "{:>8} | {:>12} {:>12} {:>8}",
            r.trials,
            opt(r.static_cost),
            opt(r.elastic_cost),
            ratio
        );
    }
}

/// One (init latency, deadline) cell (Fig. 12).
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Time constraint in minutes.
    pub deadline_mins: u64,
    /// Static policy cost.
    pub static_cost: Option<f64>,
    /// Elastic policy cost.
    pub elastic_cost: Option<f64>,
}

/// Fig. 12: cost versus time constraint for one instance-initialization
/// latency. `SHA(n=512, r=4, R=4096)`, ResNet-50 bs=2048, μ = 12 s/iter.
pub fn fig12(init_secs: f64, deadline_mins: &[u64]) -> Vec<Fig12Row> {
    let spec = ShaParams::new(512, 4, 4096).generate().expect("paper spec");
    let model = synthetic_rn50(2048, 12.0, 1.0);
    deadline_mins
        .iter()
        .map(|&mins| {
            let deadline = SimDuration::from_mins(mins);
            let cloud = fig_cloud(init_secs);
            let cost = |policy: Policy| -> Option<f64> {
                policy_prediction(policy, &spec, &model, &cloud, deadline)
                    .ok()
                    .map(|p| p.cost.as_dollars())
            };
            Fig12Row {
                deadline_mins: mins,
                static_cost: cost(Policy::Static),
                elastic_cost: cost(Policy::RubberBand),
            }
        })
        .collect()
}

/// Renders Fig. 12 (one panel).
pub fn print_fig12(init_secs: f64, rows: &[Fig12Row]) {
    println!(
        "Figure 12 ({init_secs:.0} s init latency) — cost vs time constraint \
         (SHA(512, 4, 4096), μ = 12 s/iter)\n"
    );
    println!(
        "{:>10} | {:>12} {:>12} {:>8}",
        "deadline", "static", "elastic", "ratio"
    );
    for r in rows {
        let ratio = match (r.static_cost, r.elastic_cost) {
            (Some(s), Some(e)) if e > 0.0 => format!("{:.2}x", s / e),
            _ => "—".into(),
        };
        println!(
            "{:>9}m | {:>12} {:>12} {:>8}",
            r.deadline_mins,
            opt(r.static_cost),
            opt(r.elastic_cost),
            ratio
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_curves_are_sublinear_and_ordered() {
        let rows = fig4(&[1, 2, 4, 8, 16]);
        assert_eq!(rows.len(), rb_scaling::zoo::ZOO.len());
        for row in &rows {
            assert!((row.speedups[0].1 - 1.0).abs() < 1e-12, "{}", row.model);
            for &(g, s) in &row.speedups {
                assert!(s <= f64::from(g) + 1e-9, "{} superlinear at {g}", row.model);
            }
        }
        // ResNet-50 (light communication) outscales VGG-16 (heavy) at 16.
        let sp = |name: &str| {
            rows.iter()
                .find(|r| r.model == name)
                .unwrap()
                .speedups
                .last()
                .unwrap()
                .1
        };
        assert!(sp("ResNet-50") > sp("VGG-16"));
    }

    #[test]
    fn fig9_straggler_shape_holds_at_small_scale() {
        let rows = fig9(&[1.0, 6.0], SimDuration::from_mins(20));
        let calm = &rows[0];
        let stormy = &rows[1];
        // Per-instance cost grows clearly with σ.
        let pi_growth = stormy.static_per_instance.unwrap() / calm.static_per_instance.unwrap();
        let pf_growth = stormy.static_per_function.unwrap() / calm.static_per_function.unwrap();
        assert!(pi_growth > pf_growth, "{pi_growth} vs {pf_growth}");
        // Elastic never worse than static under either billing model.
        for r in &rows {
            assert!(r.elastic_per_instance.unwrap() <= r.static_per_instance.unwrap() + 1e-9);
        }
    }

    #[test]
    fn fig10_shape_holds_at_small_scale() {
        let rows = fig10(150.0, &[0.0, 0.16], SimDuration::from_mins(20));
        let (free, pricey) = (&rows[0], &rows[1]);
        let ratio = |r: &Fig10Row| r.static_cost.unwrap() / r.elastic_cost.unwrap();
        assert!(
            ratio(pricey) < ratio(free),
            "I/O cost should dilute the benefit"
        );
        assert!(pricey.elastic_cost.unwrap() <= pricey.static_cost.unwrap() + 1e-9);
    }

    #[test]
    fn fig11_gap_grows_with_trials() {
        let rows = fig11(&[16, 128], false, SimDuration::from_mins(20));
        let gap = |r: &Fig11Row| r.static_cost.unwrap() - r.elastic_cost.unwrap();
        assert!(gap(&rows[1]) > gap(&rows[0]));
    }
}
