//! Feature-gated global-allocator instrumentation (`alloc-counter`).
//!
//! The arena engine's contract is *zero heap allocation on the warm
//! prediction path* — a property ordinary tests cannot see. This module
//! provides a counting wrapper around the system allocator; the bench
//! binary installs it as `#[global_allocator]` when built with
//! `--features alloc-counter` and asserts that a warmed-up
//! `Simulator::predict` moves the counter by exactly zero. Off by
//! default: a global counter bump on every allocation is measurable
//! noise, and the default build must benchmark the real allocator.
//!
//! Only allocation *events* are counted (alloc / alloc_zeroed / realloc),
//! not bytes or frees: the invariant under test is "no calls into the
//! allocator", and frees on the warm path are as forbidden as mallocs but
//! always paired with one, so counting acquisitions suffices.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocation events.
/// Install with `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

/// Allocation events since process start (meaningful only when
/// [`CountingAlloc`] is installed as the global allocator). Diff two
/// readings around the code under test; single-threaded sections read
/// exactly.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
