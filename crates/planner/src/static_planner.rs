//! The cost-optimal static (fixed-cluster) baseline (§3.2).
//!
//! "A naive method to minimize cost within the limitations of using a
//! fixed-size cluster is to provision the smallest static cluster such
//! that the expected JCT of the input job fits within the time constraint."
//! Because the search space is one-dimensional, candidate sizes are simply
//! enumerated and predicted; the cheapest feasible size wins. This also
//! provides the warm start for the greedy elastic planner (§4.3).

use crate::beam::batch_select;
use rb_core::{Cost, RbError, Result, SimDuration};
use rb_hpo::ExperimentSpec;
use rb_sim::{AllocationPlan, Prediction, Simulator};
use std::collections::BTreeSet;

/// The cluster sizes worth trying for a static plan: divisors of each
/// stage's trial count (full utilization below it) and multiples of the
/// first stage's trial count (whole GPUs per trial above it), up to
/// `max_gpus_per_trial` per first-stage trial. Sizes in between only add
/// idle GPUs, so they are never cheaper than the next size down.
pub fn static_candidates(spec: &ExperimentSpec, max_gpus_per_trial: u32) -> Vec<u32> {
    let mut set = BTreeSet::new();
    for stage in spec.stages() {
        let t = stage.num_trials;
        for d in 1..=t {
            if t % d == 0 {
                set.insert(d);
            }
        }
    }
    let t0 = spec.initial_trials();
    for k in 1..=max_gpus_per_trial.max(1) {
        set.insert(t0 * k);
    }
    set.into_iter().collect()
}

/// Finds the cost-optimal static allocation meeting `deadline`.
///
/// Returns the plan and its prediction.
///
/// # Errors
///
/// Returns [`RbError::Infeasible`] when no candidate size fits the
/// deadline (the message reports the best JCT found), and propagates
/// simulator errors.
pub fn plan_static_optimal(
    sim: &Simulator,
    spec: &ExperimentSpec,
    deadline: SimDuration,
    max_gpus_per_trial: u32,
) -> Result<(AllocationPlan, Prediction)> {
    let mut plans: Vec<AllocationPlan> = static_candidates(spec, max_gpus_per_trial)
        .into_iter()
        .map(|g| AllocationPlan::flat(g, spec.num_stages()))
        .collect();
    // One batched prediction over all candidate sizes; the keep filter
    // doubles as the pass that tracks the fastest (possibly infeasible)
    // candidate for the error message.
    let mut fastest: Option<Prediction> = None;
    let picked = batch_select(
        sim,
        spec,
        &plans,
        |pred| {
            if fastest.map_or(true, |f| pred.jct < f.jct) {
                fastest = Some(*pred);
            }
            pred.feasible(deadline)
        },
        |a, b| a.cost < b.cost,
    )?;
    match picked {
        Some((i, pred)) => Ok((plans.swap_remove(i), pred)),
        None => Err(RbError::Infeasible {
            reason: format!(
                "no static cluster meets {deadline}; fastest candidate finishes in {}",
                fastest.map_or_else(|| "?".to_string(), |p| p.jct.to_string())
            ),
        }),
    }
}

/// Convenience: the cost of the cheapest static plan ignoring any deadline
/// (useful to bound how much elasticity can possibly save).
///
/// # Errors
///
/// Propagates simulator errors; errors if the candidate set is empty
/// (never the case for a valid spec).
pub fn cheapest_static_cost(
    sim: &Simulator,
    spec: &ExperimentSpec,
    max_gpus_per_trial: u32,
) -> Result<Cost> {
    let plans: Vec<AllocationPlan> = static_candidates(spec, max_gpus_per_trial)
        .into_iter()
        .map(|g| AllocationPlan::flat(g, spec.num_stages()))
        .collect();
    batch_select(sim, spec, &plans, |_| true, |a, b| a.cost < b.cost)?
        .map(|(_, pred)| pred.cost)
        .ok_or_else(|| RbError::Infeasible {
            reason: "no static candidates".into(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_cloud::catalog::P3_2XLARGE;
    use rb_cloud::CloudPricing;
    use rb_profile::{CloudProfile, ModelProfile};
    use rb_scaling::IdealScaling;
    use rb_sim::SimConfig;
    use std::sync::Arc;

    fn sim() -> Simulator {
        let model =
            ModelProfile::from_scaling("ideal", Arc::new(IdealScaling::new(4.0, 512)), 1, 0.0, 0.0);
        let cloud = CloudProfile::new(CloudPricing::on_demand(P3_2XLARGE))
            .with_provision_delay(SimDuration::from_secs(10))
            .with_init_latency(SimDuration::from_secs(20));
        Simulator::new(model, cloud).with_config(SimConfig {
            samples: 1,
            seed: 0,
            sync_overhead_secs: 1.0,
        })
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::from_stages(&[(8, 10), (4, 20), (2, 40), (1, 80)]).unwrap()
    }

    #[test]
    fn candidates_cover_divisors_and_multiples() {
        let c = static_candidates(&spec(), 4);
        // Divisors of 8, 4, 2, 1 → {1, 2, 4, 8}; multiples of 8 up to 32.
        assert_eq!(c, vec![1, 2, 4, 8, 16, 24, 32]);
    }

    #[test]
    fn lax_deadline_picks_small_cheap_cluster() {
        // With ideal scaling every size does the same GPU-work; smaller
        // clusters waste less at barriers/minimum charges, so the
        // cost-optimal feasible plan under a huge deadline is tiny.
        let (plan, pred) =
            plan_static_optimal(&sim(), &spec(), SimDuration::from_hours(10), 8).unwrap();
        assert!(plan.gpus(0) <= 2, "picked {plan}");
        assert!(pred.feasible(SimDuration::from_hours(10)));
    }

    #[test]
    fn tight_deadline_forces_larger_cluster() {
        let (lax_plan, _) =
            plan_static_optimal(&sim(), &spec(), SimDuration::from_hours(10), 8).unwrap();
        // Serial-ish JCT at 1 GPU: 8·40+4·80+2·160+320 s ≈ 1280 s; force
        // parallelism with a ~400 s deadline.
        let (tight_plan, pred) =
            plan_static_optimal(&sim(), &spec(), SimDuration::from_secs(400), 8).unwrap();
        assert!(tight_plan.gpus(0) > lax_plan.gpus(0));
        assert!(pred.feasible(SimDuration::from_secs(400)));
    }

    #[test]
    fn impossible_deadline_reports_infeasible() {
        let err = plan_static_optimal(&sim(), &spec(), SimDuration::from_secs(5), 4).unwrap_err();
        match err {
            RbError::Infeasible { reason } => {
                assert!(reason.contains("fastest"), "{reason}");
            }
            other => panic!("expected Infeasible, got {other}"),
        }
    }

    #[test]
    fn static_plans_are_flat() {
        let (plan, _) =
            plan_static_optimal(&sim(), &spec(), SimDuration::from_hours(1), 8).unwrap();
        assert!(plan.is_static());
        assert_eq!(plan.num_stages(), 4);
    }

    #[test]
    fn cheapest_static_cost_lower_bounds_deadline_constrained_cost() {
        let unconstrained = cheapest_static_cost(&sim(), &spec(), 8).unwrap();
        let (_, tight) =
            plan_static_optimal(&sim(), &spec(), SimDuration::from_secs(400), 8).unwrap();
        assert!(unconstrained <= tight.cost);
    }
}
