//! The ablation and end-to-end experiments: Tables 1–4 of the paper.
//!
//! Unlike the simulated figures, these run the *executor* — the
//! event-accurate runtime — so "real" columns reflect independently
//! sampled noise, migrations, provisioning and billing, not the planner's
//! model.

use crate::common::{fmt_cost_pm, fmt_time_pm};
use rb_cloud::catalog::{P3_16XLARGE, P3_8XLARGE};
use rb_cloud::CloudPricing;
use rb_core::stats::OnlineStats;
use rb_core::{Prng, Result, SimDuration};
use rb_exec::{ExecOptions, Executor};
use rb_hpo::{Dim, ExperimentSpec, SearchSpace, ShaParams};
use rb_planner::{plan_with_policy, render_schedule, PlannerConfig, Policy, ScheduleRow};
use rb_profile::{profile_training, CloudProfile, ModelProfile, ProfilerConfig};
use rb_scaling::AnalyticScaling;
use rb_sim::{AllocationPlan, Prediction, SimConfig, Simulator};
use rb_train::TaskModel;

/// The standard search space for the end-to-end workloads.
pub fn search_space() -> SearchSpace {
    SearchSpace::new()
        .add("lr", Dim::LogUniform { lo: 1e-3, hi: 1.0 })
        .add("weight_decay", Dim::LogUniform { lo: 1e-5, hi: 1e-2 })
        .build()
        .expect("static space is valid")
}

/// Ground-truth physics for a task (what the executor runs on).
pub fn physics_for(task: &TaskModel, batch: u32, node_gpus: u32) -> ModelProfile {
    let mut p = ModelProfile::exact_for_task(task, batch, node_gpus);
    p.train_startup_secs = 5.0;
    p
}

/// Profile a task the way the system does pre-execution (§5), returning
/// the fitted model the planner sees.
pub fn profiled_model(task: &TaskModel, batch: u32, node_gpus: u32, max_gpus: u32) -> ModelProfile {
    let truth = AnalyticScaling::for_arch(&task.arch, batch, node_gpus);
    let mut m = profile_training(
        &truth,
        task.steps_per_iter(batch),
        5.0,
        &ProfilerConfig {
            max_gpus,
            ..ProfilerConfig::default()
        },
    )
    .expect("profiling a valid scaling model succeeds")
    .profile;
    m.train_startup_secs = 5.0;
    m
}

/// The Table 2 cloud: on-demand p3.8xlarge with 15 s scale-up latencies
/// ("using a warm pool of instances", §6.3.1).
pub fn e2e_cloud() -> CloudProfile {
    CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15))
}

// --------------------------------------------------------------------------
// Table 1 — placement controller ablation
// --------------------------------------------------------------------------

/// One row of Table 1: per-trial sample throughput at a worker size.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// GPUs per trial.
    pub gpus: u32,
    /// Mean samples/second with the placement controller.
    pub placed_mean: f64,
    /// Std across trials and seeds, placed.
    pub placed_std: f64,
    /// Mean samples/second with scattered placement.
    pub scattered_mean: f64,
    /// Std across trials and seeds, scattered.
    pub scattered_std: f64,
}

/// Table 1: ResNet-50 (batch 1024) sample throughput at 1/2/4 GPUs per
/// trial on p3.16xlarge instances, with and without the placement
/// controller.
pub fn table1(seeds: &[u64]) -> Result<Vec<Table1Row>> {
    let task = rb_train::task::resnet50_cifar10();
    // Batch 1024 as in the paper's measurement; the table workload trains
    // 4 concurrent trials for 20 work units on a fixed cluster.
    let physics = physics_for(&task, 1024, 8);
    let cloud = CloudProfile::new(CloudPricing::on_demand(P3_16XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15));
    let spec = ExperimentSpec::from_stages(&[(4, 20)])?;
    let space = search_space();
    let mut rows = Vec::new();
    for gpus in [1u32, 2, 4] {
        let plan = AllocationPlan::flat(4 * gpus, 1);
        let mut placed = OnlineStats::new();
        let mut scattered = OnlineStats::new();
        for &seed in seeds {
            for use_placement in [true, false] {
                let exec = Executor::new(
                    spec.clone(),
                    plan.clone(),
                    task.clone(),
                    physics.clone(),
                    cloud.clone(),
                )?
                .with_options(ExecOptions {
                    seed,
                    use_placement_controller: use_placement,
                    ..ExecOptions::default()
                });
                let mut rng = Prng::seed_from_u64(seed);
                let report = exec.run(&space.sample_n(4, &mut rng))?;
                for tput in report.trial_throughput.values() {
                    if use_placement {
                        placed.push(*tput);
                    } else {
                        scattered.push(*tput);
                    }
                }
            }
        }
        rows.push(Table1Row {
            gpus,
            placed_mean: placed.mean(),
            placed_std: placed.std(),
            scattered_mean: scattered.mean(),
            scattered_std: scattered.std(),
        });
    }
    Ok(rows)
}

/// Renders Table 1.
pub fn print_table1(rows: &[Table1Row]) {
    println!("Table 1 — placement controller sample throughput (samples/s)");
    println!("(ResNet-50, batch 1024, p3.16xlarge)\n");
    println!(
        "{:>7} | {:>20} | {:>20}",
        "# GPUs", "placement", "no placement"
    );
    for r in rows {
        println!(
            "{:>7} | {:>9.2} ± {:>8.2} | {:>9.2} ± {:>8.2}",
            r.gpus, r.placed_mean, r.placed_std, r.scattered_mean, r.scattered_std
        );
    }
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        println!(
            "\nscaling 1→{} GPUs: {:.1}x with placement, {:.1}x without",
            last.gpus,
            last.placed_mean / first.placed_mean,
            last.scattered_mean / first.scattered_mean
        );
    }
}

// --------------------------------------------------------------------------
// Tables 2 & 3 — end-to-end across time constraints, and the schedule
// --------------------------------------------------------------------------

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The allocation policy.
    pub policy: Policy,
    /// The deadline in minutes.
    pub max_time_mins: u64,
    /// Planner prediction (the "sim" columns).
    pub sim: Option<Prediction>,
    /// The compiled plan (for Table 3).
    pub plan: Option<AllocationPlan>,
    /// Executed JCT mean/std in seconds across seeds.
    pub real_jct: Option<(f64, f64)>,
    /// Executed cost mean/std in dollars across seeds.
    pub real_cost: Option<(f64, f64)>,
    /// Final accuracy mean/std across seeds (percent).
    pub accuracy: Option<(f64, f64)>,
}

/// Table 2: tuning ResNet-101 on CIFAR-10 (SHA(32, 1, 50, η=3)) across
/// 20/30/40-minute deadlines under all three policies, executed for each
/// seed.
pub fn table2(deadlines_mins: &[u64], seeds: &[u64]) -> Result<Vec<Table2Row>> {
    let task = rb_train::task::resnet101_cifar10();
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate()?;
    let model = profiled_model(&task, 1024, 4, 32);
    let physics = physics_for(&task, 1024, 4);
    let cloud = e2e_cloud();
    let space = search_space();
    let sim = Simulator::new(model, cloud.clone()).with_config(SimConfig {
        samples: 20,
        seed: 0xF16,
        sync_overhead_secs: 1.0,
    });
    let mut rows = Vec::new();
    for &mins in deadlines_mins {
        let deadline = SimDuration::from_mins(mins);
        for policy in [Policy::Static, Policy::NaiveElastic, Policy::RubberBand] {
            let planned =
                plan_with_policy(policy, &sim, &spec, deadline, &PlannerConfig::default());
            let Ok(outcome) = planned else {
                rows.push(Table2Row {
                    policy,
                    max_time_mins: mins,
                    sim: None,
                    plan: None,
                    real_jct: None,
                    real_cost: None,
                    accuracy: None,
                });
                continue;
            };
            let mut jct = OnlineStats::new();
            let mut cost = OnlineStats::new();
            let mut acc = OnlineStats::new();
            for &seed in seeds {
                let exec = Executor::new(
                    spec.clone(),
                    outcome.plan.clone(),
                    task.clone(),
                    physics.clone(),
                    cloud.clone(),
                )?
                .with_options(ExecOptions {
                    seed,
                    ..ExecOptions::default()
                });
                let mut rng = Prng::seed_from_u64(seed ^ 0xC0FFEE);
                let report = exec.run(&space.sample_n(32, &mut rng))?;
                jct.push(report.jct.as_secs_f64());
                cost.push(report.total_cost().as_dollars());
                acc.push(report.best_accuracy * 100.0);
            }
            rows.push(Table2Row {
                policy,
                max_time_mins: mins,
                sim: Some(outcome.prediction),
                plan: Some(outcome.plan),
                real_jct: Some((jct.mean(), jct.std())),
                real_cost: Some((cost.mean(), cost.std())),
                accuracy: Some((acc.mean(), acc.std())),
            });
        }
    }
    Ok(rows)
}

/// Renders Table 2.
pub fn print_table2(rows: &[Table2Row]) {
    println!("Table 2 — cost to complete workload across time constraints");
    println!("(ResNet-101 / CIFAR-10, SHA(n=32, r=1, R=50, η=3), p3.8xlarge)\n");
    println!(
        "{:<14} {:>5} {:>22} {:>16} {:>22} {:>16} {:>14}",
        "policy", "max", "JCT (sim)", "cost (sim)", "JCT (real)", "cost (real)", "acc (%)"
    );
    for r in rows {
        let sim_jct = r
            .sim
            .map(|p| fmt_time_pm(p.jct.as_secs_f64(), p.jct_std_secs))
            .unwrap_or_else(|| "infeasible".into());
        let sim_cost = r
            .sim
            .map(|p| fmt_cost_pm(p.cost.as_dollars(), p.cost_std.as_dollars()))
            .unwrap_or_default();
        let real_jct = r
            .real_jct
            .map(|(m, s)| fmt_time_pm(m, s))
            .unwrap_or_else(|| "*".into());
        let real_cost = r
            .real_cost
            .map(|(m, s)| fmt_cost_pm(m, s))
            .unwrap_or_else(|| "*".into());
        let acc = r
            .accuracy
            .map(|(m, s)| format!("{m:.1} ± {s:.1}"))
            .unwrap_or_else(|| "*".into());
        println!(
            "{:<14} {:>4}m {:>22} {:>16} {:>22} {:>16} {:>14}",
            r.policy.to_string(),
            r.max_time_mins,
            sim_jct,
            sim_cost,
            real_jct,
            real_cost,
            acc
        );
    }
}

/// Table 3: the cluster schedule of the RubberBand plan at the tightest
/// Table 2 deadline.
pub fn table3(rows: &[Table2Row]) -> Option<Vec<ScheduleRow>> {
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate().ok()?;
    let tightest = rows
        .iter()
        .filter(|r| r.policy == Policy::RubberBand && r.plan.is_some())
        .min_by_key(|r| r.max_time_mins)?;
    Some(render_schedule(&spec, tightest.plan.as_ref()?, 4))
}

/// Renders Table 3.
pub fn print_table3(rows: &[ScheduleRow]) {
    println!("Table 3 — example cluster schedule for elastic training");
    println!("(the RubberBand plan at the tightest deadline)\n");
    println!(
        "{:>11} {:>6} {:>9} {:>12}",
        "epoch range", "trials", "GPUs/trial", "cluster size"
    );
    for row in rows {
        println!("{row}");
    }
}

// --------------------------------------------------------------------------
// Table 4 — across models
// --------------------------------------------------------------------------

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Workload name.
    pub model: &'static str,
    /// The deadline in minutes.
    pub max_time_mins: u64,
    /// Fixed-cluster executed cost mean/std (dollars).
    pub fixed_cost: Option<(f64, f64)>,
    /// RubberBand executed cost mean/std (dollars).
    pub rubberband_cost: Option<(f64, f64)>,
}

/// Table 4: fixed-cluster vs RubberBand executed cost for ResNet-101 /
/// CIFAR-10 (20 min), ResNet-152 / CIFAR-100 (60 min), BERT / RTE
/// (20 min).
pub fn table4(seeds: &[u64]) -> Result<Vec<Table4Row>> {
    let workloads: [(&'static str, TaskModel, u32, u64); 3] = [
        (
            "ResNet-101 / CIFAR-10",
            rb_train::task::resnet101_cifar10(),
            1024,
            20,
        ),
        (
            "ResNet-152 / CIFAR-100",
            rb_train::task::resnet152_cifar100(),
            1024,
            60,
        ),
        ("BERT / RTE", rb_train::task::bert_rte(), 256, 20),
    ];
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate()?;
    let cloud = e2e_cloud();
    let space = search_space();
    let mut rows = Vec::new();
    for (name, task, batch, mins) in workloads {
        let model = profiled_model(&task, batch, 4, 32);
        let physics = physics_for(&task, batch, 4);
        let sim = Simulator::new(model, cloud.clone());
        let deadline = SimDuration::from_mins(mins);
        let mut fixed: Option<(f64, f64)> = None;
        let mut elastic: Option<(f64, f64)> = None;
        for policy in [Policy::Static, Policy::RubberBand] {
            let Ok(outcome) =
                plan_with_policy(policy, &sim, &spec, deadline, &PlannerConfig::default())
            else {
                continue;
            };
            let mut cost = OnlineStats::new();
            for &seed in seeds {
                let exec = Executor::new(
                    spec.clone(),
                    outcome.plan.clone(),
                    task.clone(),
                    physics.clone(),
                    cloud.clone(),
                )?
                .with_options(ExecOptions {
                    seed,
                    ..ExecOptions::default()
                });
                let mut rng = Prng::seed_from_u64(seed ^ 0xBEEF);
                let report = exec.run(&space.sample_n(32, &mut rng))?;
                cost.push(report.total_cost().as_dollars());
            }
            let stat = Some((cost.mean(), cost.std()));
            match policy {
                Policy::Static => fixed = stat,
                Policy::RubberBand => elastic = stat,
                Policy::NaiveElastic => unreachable!(),
            }
        }
        rows.push(Table4Row {
            model: name,
            max_time_mins: mins,
            fixed_cost: fixed,
            rubberband_cost: elastic,
        });
    }
    Ok(rows)
}

/// Renders Table 4.
pub fn print_table4(rows: &[Table4Row]) {
    println!("Table 4 — cost to complete workload across models (executed, 3 seeds)\n");
    println!(
        "{:<24} {:>6} {:>18} {:>18}",
        "model", "time", "fixed", "rubberband"
    );
    for r in rows {
        let f = r
            .fixed_cost
            .map(|(m, s)| fmt_cost_pm(m, s))
            .unwrap_or_else(|| "infeasible".into());
        let e = r
            .rubberband_cost
            .map(|(m, s)| fmt_cost_pm(m, s))
            .unwrap_or_else(|| "infeasible".into());
        println!(
            "{:<24} {:>5}m {:>18} {:>18}",
            r.model, r.max_time_mins, f, e
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_placement_beats_scatter() {
        let rows = table1(&[1]).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.placed_mean > r.scattered_mean,
                "{} GPUs: placed {} !> scattered {}",
                r.gpus,
                r.placed_mean,
                r.scattered_mean
            );
        }
        // Scaling factor gap (paper: ~3.8x vs ~1.8x).
        let placed_scale = rows[2].placed_mean / rows[0].placed_mean;
        let scattered_scale = rows[2].scattered_mean / rows[0].scattered_mean;
        assert!(placed_scale > 3.0, "placed scaling {placed_scale}");
        assert!(scattered_scale < 2.5, "scattered scaling {scattered_scale}");
    }

    #[test]
    fn table2_single_row_has_fidelity() {
        let rows = table2(&[30], &[1]).unwrap();
        let rb = rows
            .iter()
            .find(|r| r.policy == Policy::RubberBand)
            .unwrap();
        let sim = rb.sim.unwrap();
        let (real_jct, _) = rb.real_jct.unwrap();
        let err = (real_jct - sim.jct.as_secs_f64()).abs() / sim.jct.as_secs_f64();
        assert!(err < 0.10, "JCT fidelity error {err}");
        let st = rows.iter().find(|r| r.policy == Policy::Static).unwrap();
        assert!(
            rb.real_cost.unwrap().0 <= st.real_cost.unwrap().0 + 0.01,
            "rubberband not cheaper"
        );
        // Table 3 derives from these rows.
        let schedule = table3(&rows).unwrap();
        assert_eq!(schedule.len(), 4);
    }
}
