//! Grid search through the same elastic machinery: enumerate a finite
//! hyperparameter grid (Fig. 2's picture), wrap it in an SHA spec, and
//! run it under a plan.
//!
//! Run with: `cargo run --release --example grid_search`

use rubberband::prelude::*;
use rubberband::rb_cloud::catalog::P3_8XLARGE;
use rubberband::rb_exec::Executor;
use rubberband::rb_hpo::{enumerate_grid, logspace, Dim, ShaParams};

fn main() {
    // A 4×3 grid over (learning rate, weight decay) — 12 configurations.
    let lr_grid: Vec<String> = logspace(1e-3, 1e0, 4)
        .into_iter()
        .map(|v| format!("{v:.6}"))
        .collect();
    let wd_grid: Vec<String> = logspace(1e-5, 1e-3, 3)
        .into_iter()
        .map(|v| format!("{v:.6}"))
        .collect();
    let space = SearchSpace::new()
        .add("lr_choice", Dim::Choice(lr_grid))
        .add("wd_choice", Dim::Choice(wd_grid))
        .build()
        .unwrap();
    let grid = enumerate_grid(&space, 1000).unwrap();
    println!("grid: {} configurations", grid.len());

    // Convert the categorical grid into numeric configs for the trainer.
    let configs: Vec<Config> = grid
        .iter()
        .map(|c| {
            let lr: f64 = match c.get("lr_choice").unwrap() {
                rubberband::rb_hpo::ConfigValue::Choice(s) => s.parse().unwrap(),
                _ => unreachable!(),
            };
            let wd: f64 = match c.get("wd_choice").unwrap() {
                rubberband::rb_hpo::ConfigValue::Choice(s) => s.parse().unwrap(),
                _ => unreachable!(),
            };
            Config::new()
                .with_f64("lr", lr)
                .with_f64("weight_decay", wd)
        })
        .collect();

    // SHA over the 12 grid points, planned elastically.
    let spec = ShaParams::new(12, 1, 20).with_eta(3).generate().unwrap();
    let task = rubberband::rb_train::task::resnet101_cifar10();
    let physics = ModelProfile::exact_for_task(&task, 1024, 4);
    let cloud = CloudProfile::new(CloudPricing::on_demand(P3_8XLARGE))
        .with_provision_delay(SimDuration::from_secs(15))
        .with_init_latency(SimDuration::from_secs(15));
    let outcome =
        rubberband::compile_plan(&spec, &physics, &cloud, SimDuration::from_mins(30)).unwrap();
    println!(
        "plan: {} (predicted {} / {})",
        outcome.plan, outcome.prediction.jct, outcome.prediction.cost
    );

    let report = Executor::new(spec, outcome.plan, task, physics, cloud)
        .unwrap()
        .run(&configs)
        .unwrap();
    println!(
        "winner: {} at {:.1}% — JCT {} cost {}",
        report.best_config,
        report.best_accuracy * 100.0,
        report.jct,
        report.total_cost()
    );
}
