//! Criterion benches for the event-accurate executor and the profiler:
//! the cost of "running" an experiment end to end, and SHA/Hyperband
//! specification generation.

use criterion::{criterion_group, criterion_main, Criterion};
use rb_bench::tables::{e2e_cloud, physics_for, search_space};
use rb_core::Prng;
use rb_exec::{ExecOptions, Executor};
use rb_hpo::{hyperband_brackets, ShaParams};
use rb_profile::{profile_training, ProfilerConfig};
use rb_scaling::AnalyticScaling;
use rb_sim::AllocationPlan;

fn bench_execute_table2_workload(c: &mut Criterion) {
    let task = rb_train::task::resnet101_cifar10();
    let physics = physics_for(&task, 1024, 4);
    let spec = ShaParams::new(32, 1, 50).with_eta(3).generate().unwrap();
    let plan = AllocationPlan::new(vec![32, 20, 12, 8]);
    let space = search_space();
    let configs = space.sample_n(32, &mut Prng::seed_from_u64(3));
    let mut group = c.benchmark_group("executor");
    group.sample_size(20);
    group.bench_function("table2_workload", |b| {
        b.iter(|| {
            Executor::new(
                spec.clone(),
                plan.clone(),
                task.clone(),
                physics.clone(),
                e2e_cloud(),
            )
            .unwrap()
            .with_options(ExecOptions {
                seed: 11,
                ..ExecOptions::default()
            })
            .run(&configs)
            .unwrap()
        })
    });
    group.finish();
}

fn bench_profiler(c: &mut Criterion) {
    let task = rb_train::task::resnet101_cifar10();
    let truth = AnalyticScaling::for_arch(&task.arch, 1024, 4);
    c.bench_function("profile_training_32_gpus", |b| {
        b.iter(|| {
            profile_training(
                &truth,
                49,
                5.0,
                &ProfilerConfig {
                    max_gpus: 32,
                    ..ProfilerConfig::default()
                },
            )
            .unwrap()
        })
    });
}

fn bench_spec_generation(c: &mut Criterion) {
    c.bench_function("sha_generate_512", |b| {
        b.iter(|| ShaParams::new(512, 4, 4096).generate().unwrap())
    });
    c.bench_function("hyperband_brackets_r81", |b| {
        b.iter(|| hyperband_brackets(1, 81, 3).unwrap())
    });
}

criterion_group!(
    benches,
    bench_execute_table2_workload,
    bench_profiler,
    bench_spec_generation
);
criterion_main!(benches);
