//! The checkpoint store.
//!
//! Between iterations a trial can be checkpointed, migrated and restored
//! (§5): one worker serializes the model/optimizer state into a shared
//! object store; new workers fetch the blob and resume. This module
//! reproduces that mechanism with a real byte-level format so that
//! checkpoint sizes (and hence migration latencies) reflect actual state,
//! and restore is an honest inverse of save.

use crate::trial::{MetricPoint, Trial, TrialStatus};
use rb_core::{Prng, RbError, Result, TrialId};
use rb_hpo::{Config, ConfigValue};
use rb_scaling::zoo::ModelArch;
use std::collections::BTreeMap;

const MAGIC: &[u8; 4] = b"RBCK";
const VERSION: u8 = 1;

/// FNV-1a over the blob: the store's out-of-band integrity check. Kept
/// outside the encoded format so checkpoint byte sizes — and hence
/// migration latencies — are unchanged by hardening.
fn blob_checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A serialized trial snapshot plus the model-state payload size.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Which trial this snapshot belongs to.
    pub trial_id: TrialId,
    /// Work units completed at snapshot time.
    pub iters_done: u64,
    /// Serialized trial metadata (config, metric history).
    pub blob: Vec<u8>,
    /// Size of the model + optimizer tensors this checkpoint represents,
    /// in bytes. Not materialized (the learning curve is analytic), but
    /// charged when the checkpoint moves across the network.
    pub model_state_bytes: u64,
}

impl Checkpoint {
    /// Total bytes a migration must move.
    pub fn total_bytes(&self) -> u64 {
        self.model_state_bytes + self.blob.len() as u64
    }
}

/// Model + optimizer state size for an architecture: fp32 weights plus SGD
/// momentum buffers (2 tensors of `params` floats).
pub fn model_state_bytes(arch: &ModelArch) -> u64 {
    (arch.params_millions * 1e6 * 4.0 * 2.0) as u64
}

// --- binary encoding helpers -------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(RbError::Execution("truncated checkpoint".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u64()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| RbError::Execution("invalid utf-8 in checkpoint".into()))
    }
}

/// Serializes a trial's resumable state (id, progress, config, history).
pub fn encode_trial(trial: &Trial) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    put_u64(&mut buf, trial.id.raw());
    put_u64(&mut buf, trial.seed);
    put_u64(&mut buf, trial.iters_done());
    // Config.
    put_u64(&mut buf, trial.config.len() as u64);
    for (name, value) in trial.config.iter() {
        put_str(&mut buf, name);
        match value {
            ConfigValue::Float(v) => {
                buf.push(0);
                put_f64(&mut buf, *v);
            }
            ConfigValue::Int(v) => {
                buf.push(1);
                put_u64(&mut buf, *v as u64);
            }
            ConfigValue::Choice(s) => {
                buf.push(2);
                put_str(&mut buf, s);
            }
        }
    }
    // History.
    put_u64(&mut buf, trial.history().len() as u64);
    for p in trial.history() {
        put_u64(&mut buf, p.iters);
        put_f64(&mut buf, p.accuracy);
    }
    buf
}

/// Decoded checkpoint contents.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSnapshot {
    /// Trial identity.
    pub id: TrialId,
    /// Noise-stream seed.
    pub seed: u64,
    /// Work units completed.
    pub iters_done: u64,
    /// The hyperparameter configuration.
    pub config: Config,
    /// Metric history.
    pub history: Vec<MetricPoint>,
}

/// Deserializes a blob produced by [`encode_trial`].
///
/// # Errors
///
/// Returns [`RbError::Execution`] on truncation, bad magic, or an
/// unsupported version.
pub fn decode_trial(blob: &[u8]) -> Result<TrialSnapshot> {
    let mut r = Reader::new(blob);
    if r.take(4)? != MAGIC {
        return Err(RbError::Execution("bad checkpoint magic".into()));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(RbError::Execution(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    let id = TrialId::new(r.u64()?);
    let seed = r.u64()?;
    let iters_done = r.u64()?;
    let n_cfg = r.u64()? as usize;
    let mut config = Config::new();
    for _ in 0..n_cfg {
        let name = r.str()?;
        let tag = r.u8()?;
        let value = match tag {
            0 => ConfigValue::Float(r.f64()?),
            1 => ConfigValue::Int(r.u64()? as i64),
            2 => ConfigValue::Choice(r.str()?),
            t => return Err(RbError::Execution(format!("unknown config value tag {t}"))),
        };
        config.set(name, value);
    }
    let n_hist = r.u64()? as usize;
    let mut history = Vec::with_capacity(n_hist);
    for _ in 0..n_hist {
        let iters = r.u64()?;
        let accuracy = r.f64()?;
        history.push(MetricPoint { iters, accuracy });
    }
    Ok(TrialSnapshot {
        id,
        seed,
        iters_done,
        config,
        history,
    })
}

/// One stored checkpoint generation plus the checksum captured at save
/// time, before any (injected) storage corruption.
#[derive(Debug, Clone, PartialEq)]
struct Generation {
    ck: Checkpoint,
    checksum: u64,
}

impl Generation {
    fn verifies(&self) -> bool {
        self.checksum == blob_checksum(&self.ck.blob) && decode_trial(&self.ck.blob).is_ok()
    }
}

/// The result of a verified checkpoint read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifiedFetch {
    /// Bytes a migration must move for the generation actually used.
    pub bytes: u64,
    /// Work units lost to falling back: latest generation's progress
    /// minus the used generation's (zero when the latest verifies).
    pub redo_iters: u64,
    /// Newer generations skipped because they failed verification.
    pub fallbacks: u64,
}

/// The in-memory object store holding the last `retain` checkpoint
/// generations per trial (one by default — the paper's model).
///
/// Reads verify an out-of-band checksum plus a full decode; a corrupted
/// latest generation falls back to the newest older one that verifies.
/// Corruption can be injected deterministically (seeded per put, like
/// the spot stream) for chaos testing; with injection off and retention
/// 1 the store behaves bit-identically to the unhardened original.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    store: BTreeMap<TrialId, Vec<Generation>>,
    puts: u64,
    retain: usize,
    /// (probability, seed) for injected storage corruption.
    corrupt: Option<(f64, u64)>,
    corrupted: u64,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore {
            store: BTreeMap::new(),
            puts: 0,
            retain: 1,
            corrupt: None,
            corrupted: 0,
        }
    }
}

impl CheckpointStore {
    /// Creates an empty store retaining one generation per trial.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Sets how many generations to keep per trial (hardened mode uses
    /// at least 2 so a corrupted write has a fallback).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn with_retention(mut self, k: usize) -> Self {
        assert!(k >= 1, "retention must keep at least one generation");
        self.retain = k;
        self
    }

    /// Generations kept per trial.
    pub fn retention(&self) -> usize {
        self.retain
    }

    /// Arms deterministic storage-corruption injection: each put flips
    /// one random bit of the stored blob with probability `prob`, using
    /// a per-put counter stream from `seed`. The checksum is captured
    /// before the flip, so verification catches every injected fault.
    /// A zero probability draws nothing.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not a probability.
    pub fn set_corruption(&mut self, prob: f64, seed: u64) {
        assert!(
            (0.0..=1.0).contains(&prob),
            "corruption probability must be in [0, 1], got {prob}"
        );
        self.corrupt = if prob > 0.0 { Some((prob, seed)) } else { None };
    }

    /// Storage corruptions injected so far.
    pub fn corruptions_injected(&self) -> u64 {
        self.corrupted
    }

    /// Checkpoints a trial, retiring the oldest generation beyond the
    /// retention limit.
    pub fn save(&mut self, trial: &Trial, arch: &ModelArch) -> &Checkpoint {
        let mut ck = Checkpoint {
            trial_id: trial.id,
            iters_done: trial.iters_done(),
            blob: encode_trial(trial),
            model_state_bytes: model_state_bytes(arch),
        };
        let checksum = blob_checksum(&ck.blob);
        if let Some((prob, seed)) = self.corrupt {
            // Per-put counter stream: whether (and where) put #k corrupts
            // is a pure function of (seed, k), independent of which trial
            // or how many stores share the seed.
            let mut rng = Prng::for_stream(seed, self.puts);
            if rng.next_f64() < prob {
                let bit = rng.next_below(ck.blob.len() as u64 * 8);
                ck.blob[(bit / 8) as usize] ^= 1 << (bit % 8);
                self.corrupted += 1;
            }
        }
        self.puts += 1;
        let gens = self.store.entry(trial.id).or_default();
        gens.push(Generation { ck, checksum });
        while gens.len() > self.retain {
            gens.remove(0);
        }
        &gens.last().expect("just pushed").ck
    }

    /// Fetches the latest checkpoint for a trial (unverified — size and
    /// metadata lookups; reads that matter go through
    /// [`CheckpointStore::fetch_verified`]).
    pub fn get(&self, id: TrialId) -> Option<&Checkpoint> {
        self.store.get(&id).and_then(|g| g.last()).map(|g| &g.ck)
    }

    /// Verifies generations newest-first and reports the one a reader
    /// should use: its transfer size, the work units lost to falling
    /// back, and how many corrupted generations were skipped.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] if no checkpoint exists or every
    /// retained generation fails verification.
    pub fn fetch_verified(&self, id: TrialId) -> Result<VerifiedFetch> {
        let gens = self
            .store
            .get(&id)
            .filter(|g| !g.is_empty())
            .ok_or_else(|| RbError::Execution(format!("no checkpoint for {id}")))?;
        let latest_iters = gens.last().expect("non-empty").ck.iters_done;
        let mut fallbacks = 0;
        for gen in gens.iter().rev() {
            if gen.verifies() {
                return Ok(VerifiedFetch {
                    bytes: gen.ck.total_bytes(),
                    redo_iters: latest_iters - gen.ck.iters_done,
                    fallbacks,
                });
            }
            fallbacks += 1;
        }
        Err(RbError::Execution(format!(
            "checkpoint for {id} corrupted beyond recovery \
             ({fallbacks} generation(s) failed verification)"
        )))
    }

    /// Restores a trial's progress from its newest checkpoint generation
    /// that passes verification. The trial must be paused or pending (a
    /// freshly created replacement); it is left paused, ready to be
    /// started.
    ///
    /// # Errors
    ///
    /// Returns [`RbError::Execution`] if no checkpoint exists, every
    /// generation fails verification, or the snapshot belongs to a
    /// different trial.
    pub fn restore(&self, trial: &mut Trial) -> Result<()> {
        let gens = self
            .store
            .get(&trial.id)
            .filter(|g| !g.is_empty())
            .ok_or_else(|| RbError::Execution(format!("no checkpoint for {}", trial.id)))?;
        if trial.status() == TrialStatus::Running {
            return Err(RbError::Execution(format!(
                "cannot restore running trial {}",
                trial.id
            )));
        }
        let mut failed = 0;
        for gen in gens.iter().rev() {
            if gen.checksum != blob_checksum(&gen.ck.blob) {
                failed += 1;
                continue;
            }
            let Ok(snap) = decode_trial(&gen.ck.blob) else {
                failed += 1;
                continue;
            };
            if snap.id != trial.id {
                return Err(RbError::Execution(format!(
                    "checkpoint for {} offered to {}",
                    snap.id, trial.id
                )));
            }
            trial.restore_progress(snap.iters_done, snap.history);
            return Ok(());
        }
        Err(RbError::Execution(format!(
            "checkpoint for {} corrupted beyond recovery \
             ({failed} generation(s) failed verification)",
            trial.id
        )))
    }

    /// Drops a trial's checkpoints (e.g. after termination).
    pub fn evict(&mut self, id: TrialId) {
        self.store.remove(&id);
    }

    /// Number of trials with at least one stored checkpoint.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no checkpoints are stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Total writes since creation.
    pub fn total_puts(&self) -> u64 {
        self.puts
    }

    /// Total bytes currently resident across all retained generations
    /// (metadata blobs only; model tensors are accounted virtually).
    pub fn resident_blob_bytes(&self) -> u64 {
        self.store
            .values()
            .flat_map(|gens| gens.iter())
            .map(|g| g.ck.blob.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::resnet101_cifar10;
    use rb_scaling::zoo::RESNET101;

    fn trained_trial() -> Trial {
        let task = resnet101_cifar10();
        let mut tr = Trial::new(
            TrialId::new(3),
            Config::new()
                .with_f64("lr", 0.05)
                .with_f64("weight_decay", 1e-4),
            99,
        );
        tr.start().unwrap();
        tr.advance(&task, 1).unwrap();
        tr.advance(&task, 3).unwrap();
        tr.pause().unwrap();
        tr
    }

    #[test]
    fn encode_decode_round_trip() {
        let tr = trained_trial();
        let snap = decode_trial(&encode_trial(&tr)).unwrap();
        assert_eq!(snap.id, tr.id);
        assert_eq!(snap.seed, tr.seed);
        assert_eq!(snap.iters_done, tr.iters_done());
        assert_eq!(snap.config, tr.config);
        assert_eq!(snap.history, tr.history().to_vec());
    }

    #[test]
    fn round_trip_preserves_all_value_kinds() {
        let mut cfg = Config::new();
        cfg.set("lr", ConfigValue::Float(0.1));
        cfg.set("layers", ConfigValue::Int(-3));
        cfg.set("opt", ConfigValue::Choice("adam".into()));
        let tr = Trial::new(TrialId::new(1), cfg.clone(), 5);
        let snap = decode_trial(&encode_trial(&tr)).unwrap();
        assert_eq!(snap.config, cfg);
    }

    #[test]
    fn decode_rejects_every_truncation() {
        // The encoding is exactly self-describing: decode consumes every
        // byte encode wrote, so *any* proper prefix must fail — whether
        // the cut lands mid-magic, mid-length-prefix, or mid-payload.
        let tr = trained_trial();
        let blob = encode_trial(&tr);
        for cut in 0..blob.len() {
            let err = decode_trial(&blob[..cut]).expect_err("prefix decoded");
            assert!(
                matches!(err, RbError::Execution(_)),
                "cut at {cut}: {err:?}"
            );
        }
        assert!(decode_trial(&blob).is_ok());
    }

    #[test]
    fn decode_rejects_header_bit_flips() {
        let tr = trained_trial();
        let blob = encode_trial(&tr);
        // Every bit of every MAGIC byte.
        for byte in 0..4 {
            for bit in 0..8 {
                let mut bad = blob.clone();
                bad[byte] ^= 1 << bit;
                let err = decode_trial(&bad).unwrap_err();
                assert!(
                    err.to_string().contains("magic"),
                    "byte {byte} bit {bit}: {err}"
                );
            }
        }
        // Every bit of the VERSION byte.
        for bit in 0..8 {
            let mut bad = blob.clone();
            bad[4] ^= 1 << bit;
            let err = decode_trial(&bad).unwrap_err();
            assert!(err.to_string().contains("version"), "bit {bit}: {err}");
        }
    }

    #[test]
    fn decode_rejects_corrupted_length_prefixes_and_tags() {
        let tr = trained_trial();
        let blob = encode_trial(&tr);
        // Layout: MAGIC(4) VERSION(1) id(8) seed(8) iters(8) n_cfg(8) ...
        // Flipping the high bit of n_cfg's length prefix demands ~2^63
        // config entries — the reader must run out of bytes, not OOM.
        let mut huge_count = blob.clone();
        huge_count[29 + 7] ^= 0x80;
        let err = decode_trial(&huge_count).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Same for the first config name's string length prefix.
        let mut huge_str = blob.clone();
        huge_str[37 + 7] ^= 0x80;
        assert!(decode_trial(&huge_str).is_err());
        // The first config entry is ("lr", Float): its tag byte sits
        // right after the 8-byte length prefix and the 2-byte name.
        let tag_pos = 37 + 8 + 2;
        assert_eq!(blob[tag_pos], 0, "expected a Float tag");
        let mut bad_tag = blob.clone();
        bad_tag[tag_pos] = 7;
        let err = decode_trial(&bad_tag).unwrap_err();
        assert!(
            err.to_string().contains("unknown config value tag"),
            "{err}"
        );
    }

    #[test]
    fn silent_payload_flips_decode_but_fail_the_checksum() {
        // A bit flip in a metric payload produces a structurally valid
        // blob — exactly the corruption class decode alone cannot catch
        // and the store's out-of-band checksum exists for.
        let tr = trained_trial();
        let blob = encode_trial(&tr);
        let pristine = blob_checksum(&blob);
        let mut flipped = blob.clone();
        let last = flipped.len() - 1; // low-order byte of the final accuracy
        flipped[last] ^= 0x01;
        assert!(
            decode_trial(&flipped).is_ok(),
            "flip is structurally silent"
        );
        assert_ne!(blob_checksum(&flipped), pristine);
    }

    #[test]
    fn save_restore_resumes_training_seamlessly() {
        let task = resnet101_cifar10();
        let mut store = CheckpointStore::new();
        let mut tr = trained_trial();
        store.save(&tr, &RESNET101);

        // Simulate migration: a fresh replacement trial object.
        let mut replacement = Trial::new(tr.id, tr.config.clone(), tr.seed);
        store.restore(&mut replacement).unwrap();
        assert_eq!(replacement.iters_done(), 4);
        assert_eq!(replacement.history(), tr.history());

        // Continuing from the restore matches continuing the original:
        // the learning curve is a function of (config, iters, seed).
        replacement.start().unwrap();
        let a_restored = replacement.advance(&task, 9).unwrap();
        tr.start().unwrap();
        let a_original = tr.advance(&task, 9).unwrap();
        assert_eq!(a_restored, a_original);
    }

    #[test]
    fn preemption_recovery_is_bit_identical_to_uninterrupted_training() {
        // The executor's spot-recovery path in miniature: checkpoint at a
        // barrier, lose mid-stage progress to a reclaim, restore on a
        // replacement, retrain the stage. The recovered trial must be
        // bit-identical — iteration count, per-point history, final
        // accuracy — to one that was never preempted.
        let task = resnet101_cifar10();
        let cfg = Config::new()
            .with_f64("lr", 0.05)
            .with_f64("weight_decay", 1e-4);

        // Uninterrupted reference: stage of 4 iters, then a stage of 9.
        let mut reference = Trial::new(TrialId::new(7), cfg.clone(), 0x5EED);
        reference.start().unwrap();
        reference.advance(&task, 4).unwrap();
        let ref_acc = reference.advance(&task, 9).unwrap();

        // Victim: barrier checkpoint after 4 iters, 5 in-flight iters lost
        // to the preemption (never checkpointed), worker migrates.
        let mut store = CheckpointStore::new();
        let mut victim = Trial::new(TrialId::new(7), cfg.clone(), 0x5EED);
        victim.start().unwrap();
        victim.advance(&task, 4).unwrap();
        victim.pause().unwrap();
        store.save(&victim, &RESNET101);
        victim.start().unwrap();
        victim.advance(&task, 5).unwrap();
        drop(victim); // the node is gone

        // Replacement restores from the barrier checkpoint and retrains.
        let mut replacement = Trial::new(TrialId::new(7), cfg, 0x5EED);
        store.restore(&mut replacement).unwrap();
        assert_eq!(replacement.iters_done(), 4, "resumes at the barrier");
        replacement.start().unwrap();
        let rec_acc = replacement.advance(&task, 9).unwrap();

        assert_eq!(rec_acc.to_bits(), ref_acc.to_bits(), "accuracy diverged");
        assert_eq!(replacement.iters_done(), reference.iters_done());
        assert_eq!(replacement.history(), reference.history());
    }

    #[test]
    fn restore_requires_matching_checkpoint() {
        let store = CheckpointStore::new();
        let mut tr = trained_trial();
        assert!(store.restore(&mut tr).is_err(), "empty store");
    }

    #[test]
    fn restore_refuses_running_trial() {
        let mut store = CheckpointStore::new();
        let mut tr = trained_trial();
        store.save(&tr, &RESNET101);
        tr.start().unwrap();
        assert!(store.restore(&mut tr).is_err());
    }

    #[test]
    fn store_bookkeeping() {
        let mut store = CheckpointStore::new();
        assert!(store.is_empty());
        let tr = trained_trial();
        store.save(&tr, &RESNET101);
        store.save(&tr, &RESNET101); // overwrite
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_puts(), 2);
        assert!(store.resident_blob_bytes() > 0);
        store.evict(tr.id);
        assert!(store.is_empty());
        assert!(store.get(tr.id).is_none());
    }

    #[test]
    fn retention_keeps_the_last_k_generations() {
        let task = resnet101_cifar10();
        let mut store = CheckpointStore::new().with_retention(2);
        assert_eq!(store.retention(), 2);
        let mut tr = trained_trial(); // 4 iters done
        store.save(&tr, &RESNET101);
        tr.start().unwrap();
        tr.advance(&task, 2).unwrap();
        tr.pause().unwrap();
        store.save(&tr, &RESNET101); // 6 iters
        tr.start().unwrap();
        tr.advance(&task, 2).unwrap();
        tr.pause().unwrap();
        store.save(&tr, &RESNET101); // 8 iters; the 4-iter gen retires
        assert_eq!(store.len(), 1, "one trial, many generations");
        assert_eq!(store.total_puts(), 3);
        assert_eq!(store.get(tr.id).unwrap().iters_done, 8, "get = latest");
        let fetch = store.fetch_verified(tr.id).unwrap();
        assert_eq!(fetch.fallbacks, 0);
        assert_eq!(fetch.redo_iters, 0);
        // Two resident generations' blobs, not three.
        let one_blob = store.get(tr.id).unwrap().blob.len() as u64;
        assert!(store.resident_blob_bytes() >= 2 * one_blob - 64);
        assert!(store.resident_blob_bytes() < 3 * one_blob);
    }

    #[test]
    fn corrupted_latest_falls_back_to_previous_generation() {
        let task = resnet101_cifar10();
        let mut store = CheckpointStore::new().with_retention(2);
        let mut tr = trained_trial(); // 4 iters
        store.save(&tr, &RESNET101); // clean generation
        tr.start().unwrap();
        tr.advance(&task, 3).unwrap();
        tr.pause().unwrap();
        store.set_corruption(1.0, 0xBAD);
        store.save(&tr, &RESNET101); // 7 iters, corrupted in storage
        assert_eq!(store.corruptions_injected(), 1);

        let fetch = store.fetch_verified(tr.id).unwrap();
        assert_eq!(fetch.fallbacks, 1, "latest generation skipped");
        assert_eq!(fetch.redo_iters, 3, "work since the clean barrier");

        // Restore lands on the clean 4-iter generation, and retraining
        // from it reproduces the original curve bit-for-bit.
        let mut replacement = Trial::new(tr.id, tr.config.clone(), tr.seed);
        store.restore(&mut replacement).unwrap();
        assert_eq!(replacement.iters_done(), 4);
        replacement.start().unwrap();
        let acc = replacement.advance(&task, 3).unwrap();
        assert_eq!(acc.to_bits(), tr.latest_accuracy().unwrap().to_bits());
    }

    #[test]
    fn single_generation_corruption_is_unrecoverable() {
        let mut store = CheckpointStore::new(); // baseline: retain 1
        store.set_corruption(1.0, 0xBAD);
        let tr = trained_trial();
        store.save(&tr, &RESNET101);
        assert!(store.fetch_verified(tr.id).is_err());
        let mut replacement = Trial::new(tr.id, tr.config.clone(), tr.seed);
        let err = store.restore(&mut replacement).unwrap_err();
        assert!(
            err.to_string().contains("corrupted beyond recovery"),
            "{err}"
        );
    }

    #[test]
    fn corruption_injection_is_deterministic_and_optional() {
        let tr = trained_trial();
        let run = |prob: f64| {
            let mut store = CheckpointStore::new().with_retention(4);
            store.set_corruption(prob, 42);
            for _ in 0..8 {
                store.save(&tr, &RESNET101);
            }
            (
                store.corruptions_injected(),
                store.fetch_verified(tr.id).map(|f| f.fallbacks),
            )
        };
        assert_eq!(run(0.5), run(0.5), "same seed, same corruptions");
        let (none, fetch) = run(0.0);
        assert_eq!(none, 0, "zero probability never corrupts");
        assert_eq!(fetch.unwrap(), 0);
    }

    #[test]
    fn model_state_bytes_scale_with_params() {
        // ResNet-101: 44.5 M params × 4 B × 2 (weights + momentum).
        let b = model_state_bytes(&RESNET101);
        assert_eq!(b, (44.5e6 * 8.0) as u64);
        let ck = Checkpoint {
            trial_id: TrialId::new(0),
            iters_done: 0,
            blob: vec![0; 100],
            model_state_bytes: b,
        };
        assert_eq!(ck.total_bytes(), b + 100);
    }
}
