//! Property-based tests for the placement controller under churn.

use proptest::prelude::*;
use rb_core::TrialId;
use rb_placement::{ClusterState, PlacementController};
use std::collections::BTreeMap;

fn allocations(gpus: &[u32]) -> BTreeMap<TrialId, u32> {
    gpus.iter()
        .enumerate()
        .map(|(i, &g)| (TrialId::new(i as u64), g))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Two consecutive reallocations over a generous cluster always leave
    /// a valid, complete, locality-preserving plan, and repeating the
    /// same allocations is a no-op.
    #[test]
    fn controller_survives_reallocation_churn(
        first in proptest::collection::vec(1u32..9, 1..10),
        second in proptest::collection::vec(1u32..9, 1..10),
    ) {
        let gpn = 4u32;
        let need = |v: &[u32]| v.iter().map(|a| a.div_ceil(gpn)).sum::<u32>();
        let nodes = need(&first).max(need(&second)).max(1);
        let cluster = ClusterState::with_n_nodes(nodes, gpn);
        let mut pc = PlacementController::new();
        pc.update(&allocations(&first), &cluster).unwrap();
        let a2 = allocations(&second);
        pc.update(&a2, &cluster).unwrap();
        prop_assert!(pc.plan().is_valid_for(&cluster));
        for (&t, &g) in &a2 {
            prop_assert_eq!(pc.plan().assigned_gpus(t), g);
            let chunks = pc.plan().get(t).unwrap();
            prop_assert!(chunks.len() as u32 <= g.div_ceil(gpn), "scattered");
        }
        let diff = pc.update(&a2, &cluster).unwrap();
        prop_assert!(diff.is_noop());
    }

    /// Scale-down either frees exactly the requested nodes while keeping
    /// every trial placed, or refuses and leaves the plan untouched.
    #[test]
    fn scale_down_is_all_or_nothing(
        allocs in proptest::collection::vec(1u32..5, 1..8),
        extra_nodes in 0u32..4,
        remove in 1usize..4,
    ) {
        let gpn = 4u32;
        let nodes = allocs.iter().map(|a| a.div_ceil(gpn)).sum::<u32>() + extra_nodes;
        let cluster = ClusterState::with_n_nodes(nodes.max(1), gpn);
        let map = allocations(&allocs);
        let mut pc = PlacementController::new();
        pc.update(&map, &cluster).unwrap();
        let before = pc.plan().clone();
        match pc.plan_scale_down(&cluster, remove) {
            Ok((freed, _moved)) => {
                prop_assert_eq!(freed.len(), remove);
                for (&t, &g) in &map {
                    prop_assert_eq!(pc.plan().assigned_gpus(t), g);
                    let chunks = pc.plan().get(t).unwrap();
                    for c in chunks {
                        prop_assert!(!freed.contains(&c.node), "trial on freed node");
                    }
                }
                prop_assert!(pc.plan().is_valid_for(&cluster));
            }
            Err(_) => {
                prop_assert_eq!(pc.plan(), &before);
            }
        }
    }
}
